package coordcharge

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/obs"
	"coordcharge/internal/rack"
	"coordcharge/internal/scenario"
)

// Grid signal plane acceptance: the BBU fleet as a virtual power plant. A
// 90 s outage at peak load drains every battery, and 35 % of the
// interconnection cap is withdrawn five minutes into the recharge — a
// connect-and-manage grid connection shrinking mid-storm. 35 % leaves
// ~221 kW against a ~200 kW IT peak, under the fleet's unconstrained
// recharge draw: the cap genuinely binds. The fleet must
// recover with zero breaker trips AND zero cap violations at any tick, in
// strict priority order, on both control planes; a separate run must show
// deliberate battery discharge shaving the grid peak without missing a
// single recharge SLA; and the whole grid plane must be deterministic —
// identical flight digests across repeat runs and across kill-and-resume.

// checkGridShrinkRun asserts the cap-shrink survival bar on one result.
func checkGridShrinkRun(t *testing.T, res *scenario.CoordResult) {
	t.Helper()
	if len(res.Tripped) != 0 {
		t.Fatalf("breakers tripped under the shrunk cap: %v", res.Tripped)
	}
	if res.Guard.ITCapped != 0 || res.Guard.MaxITCut != 0 {
		t.Fatalf("guard capped IT load (%d racks, %v max cut); cap compliance must come from charge shedding",
			res.Guard.ITCapped, res.Guard.MaxITCut)
	}
	if res.Grid.ViolationTicks != 0 || res.Grid.MaxOverCap != 0 {
		t.Fatalf("interconnection cap violated: %d ticks, %v max over",
			res.Grid.ViolationTicks, res.Grid.MaxOverCap)
	}
	if res.Grid.CapChanges < 2 {
		t.Fatalf("cap changes = %d, want the shrink and the restore to register", res.Grid.CapChanges)
	}
	if res.LastChargeDone == 0 {
		t.Fatal("recharges still outstanding at the horizon; the squeezed queue must drain")
	}
	n := res.Racks[rack.P1] + res.Racks[rack.P2] + res.Racks[rack.P3]
	if res.Storm.Storms == 0 || res.Storm.Admitted < n {
		t.Fatalf("storm metrics = %+v, want every rack admitted through the queue", res.Storm)
	}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if got := len(res.ChargeDurations[p]); got != res.Racks[p] {
			t.Fatalf("%v: only %d/%d racks completed their recharge", p, got, res.Racks[p])
		}
	}
	p1 := meanDuration(res.ChargeDurations[rack.P1])
	p2 := meanDuration(res.ChargeDurations[rack.P2])
	p3 := meanDuration(res.ChargeDurations[rack.P3])
	if !(p1 < p2 && p2 < p3) {
		t.Fatalf("completion means not priority-ordered: P1 %v, P2 %v, P3 %v", p1, p2, p3)
	}
}

// TestGridStormShrinkSurvival: 8 seeds on the synchronous plane. Admission
// headroom must re-derive from the shrunk effective cap on every wave —
// grants sized against the breaker limit alone would blow straight through
// the 221 kW cap.
func TestGridStormShrinkSurvival(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec, err := scenario.GridStormSpec(seed, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			res, err := scenario.RunCoordinated(spec)
			if err != nil {
				t.Fatal(err)
			}
			checkGridShrinkRun(t, res)
		})
	}
}

// TestGridStormShrinkSurvivalDistributed: the same bar over the message
// bus. Cap enforcement still acts within the tick — the grid policy holds
// direct rack handles (the server-management plane), so bus latency cannot
// open a violation window.
func TestGridStormShrinkSurvivalDistributed(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec, err := scenario.GridStormSpec(seed, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			spec.Distributed = true
			res, err := scenario.RunCoordinated(spec)
			if err != nil {
				t.Fatal(err)
			}
			checkGridShrinkRun(t, res)
		})
	}
}

// TestGridPeakShave: during the demand-response window the measured grid
// draw must sit at or below the 190 kW target while batteries carry the
// difference, and every recharge — including the shaving racks' own — must
// still meet its SLA deadline.
func TestGridPeakShave(t *testing.T) {
	spec, err := scenario.GridShaveSpec(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tripped) != 0 {
		t.Fatalf("breakers tripped: %v", res.Tripped)
	}
	if res.Grid.ShaveStarts == 0 || res.Grid.ShavedEnergy <= 0 {
		t.Fatalf("no shaving happened: %+v", res.Grid)
	}
	// Window bounds relative to the transition: the DR event opens two
	// hours after the peak (== loseAt) and runs 10 minutes.
	winStart, winEnd := 2*time.Hour, 2*time.Hour+10*time.Minute
	target := spec.Grid.Policy.ShaveTarget
	shavedSamples := 0
	var peakIn, peakWould float64
	for _, sm := range res.Samples {
		if sm.T < winStart || sm.T >= winEnd {
			continue
		}
		if sm.Shaved > 0 {
			shavedSamples++
		}
		if v := float64(sm.Total); v > peakIn {
			peakIn = v
		}
		if v := float64(sm.Total + sm.Shaved); v > peakWould {
			peakWould = v
		}
		// One tick of slack for the recruit that answers a load wiggle; a
		// rack's worth of sustained overshoot means the policy stopped
		// holding the target.
		if float64(sm.Total) > float64(target)+1 && sm.Shaved == 0 {
			t.Fatalf("draw %v over target %v at %v with nothing shaving", sm.Total, target, sm.T)
		}
	}
	if shavedSamples == 0 {
		t.Fatal("no in-window sample shows batteries carrying load")
	}
	if peakIn >= peakWould {
		t.Fatalf("measured peak %.0f W not below would-be unshaved peak %.0f W", peakIn, peakWould)
	}
	if peakIn > float64(target)*1.05 {
		t.Fatalf("measured in-window peak %.0f W, want near target %v", peakIn, target)
	}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if res.SLAMet[p] != res.Racks[p] {
			t.Fatalf("%v: %d/%d SLAs met; shaving must not cost a recharge deadline",
				p, res.SLAMet[p], res.Racks[p])
		}
	}
}

// TestGridStormDigestReproducible: the grid plane introduces no
// nondeterminism — two fresh runs of the same seed produce byte-identical
// flight digests.
func TestGridStormDigestReproducible(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec, err := scenario.GridStormSpec(seed, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			digest := func() string {
				run := spec
				run.Obs = obs.NewSink(0)
				if _, err := scenario.RunCoordinated(run); err != nil {
					t.Fatal(err)
				}
				return run.Obs.Flight.Digest()
			}
			if a, b := digest(), digest(); a != b {
				t.Fatalf("flight digests diverged across identical runs:\n  first  %s\n  second %s", a, b)
			}
		})
	}
}

// TestGridCrashResume: kill-and-resume through the shrink window. The grid
// cursor (event position, defer/shave state, integrals) must restore
// bit-exactly — the resumed run's summary and flight digest must match an
// uninterrupted run's. Sync restores state directly; distributed restores
// by verified deterministic replay.
func TestGridCrashResume(t *testing.T) {
	for _, tc := range []struct {
		name        string
		distributed bool
	}{
		{"sync", false},
		{"distributed", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := scenario.GridStormSpec(1, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			spec.Distributed = tc.distributed

			wantSummary, wantDigest := runUninterrupted(t, spec)
			gotSummary, gotDigest := runWithKills(t, spec, chaosKills(1))

			if gotDigest != wantDigest {
				t.Errorf("flight digest diverged after kill-and-resume:\n  resumed       %s\n  uninterrupted %s", gotDigest, wantDigest)
			}
			if gotSummary != wantSummary {
				t.Errorf("summary diverged after kill-and-resume:\n--- resumed ---\n%s--- uninterrupted ---\n%s", gotSummary, wantSummary)
			}
		})
	}
}
