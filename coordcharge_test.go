package coordcharge

import (
	"fmt"
	"testing"
	"time"
)

// The facade exposes a complete workflow: build a row, run an open
// transition, coordinate the recharge, and verify SLAs.
func TestFacadeEndToEnd(t *testing.T) {
	surface := Fig5Surface()
	racks := make([]*Rack, 6)
	loads := make([]Load, 6)
	prios := []Priority{P1, P1, P2, P2, P3, P3}
	for i := range racks {
		racks[i] = NewRack("r", prios[i], VariableCharger{}, surface)
		racks[i].SetDemand(9 * Kilowatt)
		loads[i] = racks[i]
	}
	root, err := BuildTopology(TopologySpec{Name: "msb", RacksPerRPP: 3}, loads)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := BuildControlHierarchy(root, ModePriorityAware, DefaultPlannerConfig(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range racks {
		r.LoseInput(0)
	}
	for _, r := range racks {
		r.Step(10*time.Second, 10*time.Second)
	}
	for _, r := range racks {
		r.RestoreInput(10 * time.Second)
	}
	hier.Tick(13 * time.Second)
	for i, r := range racks {
		if !r.Charging() {
			t.Errorf("rack %d not charging", i)
		}
	}
	// P1 racks got a higher setpoint than P3 racks.
	if racks[0].Pack().Setpoint() <= racks[5].Pack().Setpoint() {
		t.Errorf("P1 setpoint %v not above P3 %v", racks[0].Pack().Setpoint(), racks[5].Pack().Setpoint())
	}
}

func TestFacadeBatteryRoundTrip(t *testing.T) {
	b := NewBBU(DefaultBatteryParams())
	if b.State() != FullyCharged {
		t.Fatalf("state = %v", b.State())
	}
	b.Discharge(3300*Watt, 90*time.Second)
	if b.State() != FullyDischarged {
		t.Fatalf("state = %v", b.State())
	}
	b.StartCharge(5 * Ampere)
	b.StepCharge(2 * time.Hour)
	if b.State() != FullyCharged {
		t.Fatalf("state after charge = %v", b.State())
	}
}

func TestFacadePlanners(t *testing.T) {
	cfg := DefaultPlannerConfig()
	racks := []RackView{
		{ID: 0, Priority: P1, DOD: 0.3},
		{ID: 1, Priority: P3, DOD: 0.3},
	}
	plan := PlanPriorityAware(100*Kilowatt, racks, cfg)
	if len(plan) != 2 {
		t.Fatalf("plan size %d", len(plan))
	}
	global := PlanGlobal(100*Kilowatt, racks, cfg)
	if global[0].Current != global[1].Current {
		t.Error("global plan not uniform")
	}
	ids := ThrottleToMinimum(1*Kilowatt, []ActiveCharge{
		{RackInfo: racks[0], Current: 5},
		{RackInfo: racks[1], Current: 5},
	}, cfg)
	if len(ids) == 0 || ids[0] != 1 {
		t.Errorf("throttle order = %v, want P3 (id 1) first", ids)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if got := Eq1(0.75); got != 3.5 {
		t.Errorf("Eq1(0.75) = %v", got)
	}
	if got := DODFromOutage(12600*Watt, 45*time.Second); got != 0.5 {
		t.Errorf("DODFromOutage = %v", got)
	}
	if len(TableI()) != 11 {
		t.Error("TableI size")
	}
	dl := DefaultDeadlines()
	if dl[P1] != 30*time.Minute {
		t.Errorf("P1 deadline = %v", dl[P1])
	}
	gen, err := NewTraceGenerator(TraceSpec{NumRacks: 4, Seed: 1})
	if err != nil || gen.NumRacks() != 4 {
		t.Errorf("trace generator: %v", err)
	}
	sim, err := NewReliabilitySimulator(TableI(), 1)
	if err != nil || sim == nil {
		t.Errorf("reliability simulator: %v", err)
	}
	if NewEngine().Now() != 0 {
		t.Error("engine clock not at zero")
	}
}

func TestFacadeDistributedPlane(t *testing.T) {
	engine := NewEngine()
	fabric := NewBus(engine, ConstantLatency(5*time.Millisecond))
	surface := Fig5Surface()
	rpp := NewNode("frpp", LevelRPP, DefaultRPPLimit)
	var racks []*Rack
	for i := 0; i < 3; i++ {
		r := NewRack(fmt.Sprintf("fd%d", i), Priority(1+i), VariableCharger{}, surface)
		r.SetDemand(9 * Kilowatt)
		rpp.AttachLoad(r)
		NewAsyncAgent(fabric, engine, r, 0)
		racks = append(racks, r)
	}
	leaf := NewAsyncLeaf(fabric, engine, rpp, racks, ModePriorityAware, DefaultPlannerConfig(), false, 2*time.Second)
	msbNode := NewNode("fmsb", LevelMSB, DefaultMSBLimit)
	upper := NewAsyncUpper(fabric, engine, msbNode, []*AsyncLeaf{leaf}, ModePriorityAware, DefaultPlannerConfig(), 4*time.Second)
	for _, r := range racks {
		r.LoseInput(0)
	}
	for now := time.Second; now <= 40*time.Second; now += time.Second {
		if now == 6*time.Second {
			for _, r := range racks {
				r.RestoreInput(now)
			}
		}
		for _, r := range racks {
			r.Step(now, time.Second)
		}
		engine.Run(now)
	}
	if upper.Metrics().PlansComputed == 0 {
		t.Error("distributed plan never computed through the facade wiring")
	}
	for _, r := range racks {
		if !r.Charging() {
			t.Error("rack not charging")
		}
	}
}

func TestFacadeMiscConstructors(t *testing.T) {
	d := NewDetailedRack("det", VariableCharger{}, DefaultBatteryParams())
	if len(d.Zones()) != 2 {
		t.Errorf("detailed rack zones = %d", len(d.Zones()))
	}
	gen, err := NewTraceGenerator(TraceSpec{NumRacks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := TraceFirstPeak(gen, 24*time.Hour, time.Hour); p <= 0 {
		t.Errorf("first peak = %v", p)
	}
	res, err := RunCaseII(1, 1)
	if err != nil || res.MaxIncrease <= 0 {
		t.Errorf("Case II: %v %v", res, err)
	}
	end, err := RunEndurance(EnduranceSpec{Years: 2, Seed: 1})
	if err != nil || end.Events == 0 {
		t.Errorf("endurance: %v %v", end, err)
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	res, err := RunExperiment(ExperimentSpec{
		NumP1: 4, NumP2: 4, NumP3: 4, Seed: 1,
		MSBLimit: 1 * Megawatt, Mode: ModePriorityAware, AvgDOD: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxCapping != 0 {
		t.Errorf("unexpected capping %v", res.Metrics.MaxCapping)
	}
	// A few high-load racks can exceed ~74 % DOD where the P1 SLA is
	// infeasible even at 5 A (Fig 9b saturates); everything feasible is met.
	total := res.SLAMet[P1] + res.SLAMet[P2] + res.SLAMet[P3]
	if total < 9 {
		t.Errorf("SLAs met = %d/12 with unconstrained power", total)
	}
	if res.SLAMet[P3] != 4 {
		t.Errorf("P3 SLAs met = %d/4 (always feasible)", res.SLAMet[P3])
	}
}
