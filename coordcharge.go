// Package coordcharge is a from-scratch reproduction of "Coordinated
// Priority-aware Charging of Distributed Batteries in Oversubscribed Data
// Centers" (Malla et al., MICRO 2020): the variable battery charger, the
// Dynamo-style coordinated control plane, the priority-aware charging
// algorithm, and every substrate the paper's evaluation depends on — battery
// electrochemistry, the data-center power hierarchy, a discrete-event
// simulator, synthetic production traces, and the reliability Monte Carlo.
//
// This root package is the public facade: it re-exports the library's main
// types and constructors so downstream users can depend on a single import.
// The implementation lives in internal/ packages, one per subsystem (see
// DESIGN.md for the inventory and the per-experiment index).
//
// # Quick start
//
//	surface := coordcharge.Fig5Surface()
//	r := coordcharge.NewRack("rack0", coordcharge.P1, coordcharge.VariableCharger{}, surface)
//	r.SetDemand(9 * 1000)       // 9 kW of servers
//	r.LoseInput(0)              // open transition begins
//	r.Step(45e9, 45e9)          // 45 s on battery
//	r.RestoreInput(45e9)        // power back: recharge starts per Eq 1
//
// See examples/ for runnable programs and cmd/ for the experiment binaries
// that regenerate every table and figure in the paper.
package coordcharge

import (
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/reliability"
	"coordcharge/internal/scenario"
	"coordcharge/internal/sim"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// Physical quantity types (SI base units).
type (
	// Power is electric power in watts.
	Power = units.Power
	// Energy is energy in joules.
	Energy = units.Energy
	// Current is electric current in amperes.
	Current = units.Current
	// Voltage is electric potential in volts.
	Voltage = units.Voltage
	// Fraction is a dimensionless ratio (SOC, DOD, efficiency).
	Fraction = units.Fraction
)

// Unit constants.
const (
	Watt     = units.Watt
	Kilowatt = units.Kilowatt
	Megawatt = units.Megawatt
	Ampere   = units.Ampere
	Volt     = units.Volt
)

// Battery modelling.
type (
	// BBU is the electrochemical battery-backup-unit model (CC-CV).
	BBU = battery.BBU
	// BatteryParams are the BBU's electrochemical constants.
	BatteryParams = battery.Params
	// ChargeTimeSurface is the empirical Fig 5 charge-time table T(I, DOD).
	ChargeTimeSurface = battery.Surface
	// RackPack is the rack-level battery pack used by the coordinated
	// simulator (the paper's §V-B1 abstraction).
	RackPack = battery.RackPack
	// BatteryState is the BBU lifecycle state (Fig 8(a)).
	BatteryState = battery.State
)

// Battery states.
const (
	FullyCharged    = battery.FullyCharged
	Charging        = battery.Charging
	Discharging     = battery.Discharging
	FullyDischarged = battery.FullyDischarged
)

// DefaultBatteryParams returns the calibrated production BBU parameters.
func DefaultBatteryParams() BatteryParams { return battery.DefaultParams() }

// NewBBU returns a fully charged BBU.
func NewBBU(p BatteryParams) *BBU { return battery.New(p) }

// Fig5Surface returns the empirical charge-time surface reconstructed from
// the paper's Fig 5 lab data.
func Fig5Surface() *ChargeTimeSurface { return battery.Fig5Surface() }

// DODFromOutage estimates a rack battery's depth of discharge from the IT
// load and outage duration, as the leaf controller does.
func DODFromOutage(itLoad Power, dur time.Duration) Fraction {
	return battery.DODFromOutage(itLoad, dur)
}

// ParsePower parses "2.3MW" / "190kW" / "380W" style strings.
func ParsePower(s string) (Power, error) { return units.ParsePower(s) }

// ParseCurrent parses "2.5A" style strings.
func ParseCurrent(s string) (Current, error) { return units.ParseCurrent(s) }

// ParseFraction parses "0.7" or "70%" style ratios.
func ParseFraction(s string) (Fraction, error) { return units.ParseFraction(s) }

// Charger policies.
type (
	// ChargerPolicy selects the local initial charging current.
	ChargerPolicy = charger.Policy
	// OriginalCharger is the fixed-5A first-generation charger.
	OriginalCharger = charger.Original
	// VariableCharger is the paper's new DOD-proportional charger (Eq 1).
	VariableCharger = charger.Variable
)

// Eq1 computes the variable charger's current for a depth of discharge.
func Eq1(dod Fraction) Current { return charger.Eq1(dod) }

// Racks and priorities.
type (
	// Rack is one server rack: IT load, priority, battery pack, charger.
	Rack = rack.Rack
	// Priority is the rack's service priority class.
	Priority = rack.Priority
	// DetailedRack models the Open Rack V2 power internals explicitly: two
	// zones of three 2+1-redundant PSU+BBU pairs.
	DetailedRack = rack.DetailedRack
	// PSU is one power supply unit and its paired BBU.
	PSU = rack.PSU
	// Zone is one of a rack's two power zones.
	Zone = rack.Zone
)

// Rack priorities.
const (
	P1 = rack.P1
	P2 = rack.P2
	P3 = rack.P3
)

// NewRack constructs a rack with input power up and a full battery.
func NewRack(name string, p Priority, policy ChargerPolicy, surface *ChargeTimeSurface) *Rack {
	return rack.New(name, p, policy, surface)
}

// NewDetailedRack constructs a hardware-explicit rack (two zones × three
// PSU+BBU pairs, all healthy and fully charged).
func NewDetailedRack(name string, policy ChargerPolicy, params BatteryParams) *DetailedRack {
	return rack.NewDetailed(name, policy, params)
}

// Power hierarchy.
type (
	// Node is one circuit breaker in the power-delivery tree.
	Node = power.Node
	// Level is a node's position in the hierarchy.
	Level = power.Level
	// TopologySpec describes an MSB-rooted topology to build.
	TopologySpec = power.Spec
	// Load is anything that draws power from a breaker.
	Load = power.Load
)

// Hierarchy levels and breaker ratings (Open Compute defaults).
const (
	LevelMSB        = power.LevelMSB
	LevelSB         = power.LevelSB
	LevelRPP        = power.LevelRPP
	DefaultMSBLimit = power.DefaultMSBLimit
	DefaultSBLimit  = power.DefaultSBLimit
	DefaultRPPLimit = power.DefaultRPPLimit
)

// NewNode constructs a single circuit breaker (use BuildTopology for whole
// trees).
func NewNode(name string, level Level, limit Power) *Node {
	return power.NewNode(name, level, limit)
}

// BuildTopology assembles an MSB → SB → RPP tree over the loads.
func BuildTopology(spec TopologySpec, loads []Load) (*Node, error) {
	return power.Build(spec, loads)
}

// The priority-aware charging core (the paper's primary contribution).
type (
	// PlannerConfig carries the planner's model and policy knobs.
	PlannerConfig = core.Config
	// RackView is the controller's view of a rack at charge start.
	RackView = core.RackInfo
	// Assignment is the planner's decision for one rack.
	Assignment = core.Assignment
	// ActiveCharge is a rack mid-charge, as seen during overload response.
	ActiveCharge = core.ActiveCharge
)

// DefaultPlannerConfig returns the production planner configuration
// (Fig 5 surface, Table II deadlines, 1 A override resolution).
func DefaultPlannerConfig() PlannerConfig { return core.DefaultConfig() }

// DefaultDeadlines returns Table II's charging-time SLAs per priority.
func DefaultDeadlines() map[Priority]time.Duration { return core.DefaultDeadlines() }

// PlanPriorityAware runs Algorithm 1 (highest-priority-lowest-discharge-
// first) over the racks given the breaker's available power.
func PlanPriorityAware(available Power, racks []RackView, cfg PlannerConfig) []Assignment {
	return core.PlanPriorityAware(available, racks, cfg)
}

// PlanGlobal runs the evaluation's uniform-rate baseline.
func PlanGlobal(available Power, racks []RackView, cfg PlannerConfig) []Assignment {
	return core.PlanGlobal(available, racks, cfg)
}

// ThrottleToMinimum selects racks to throttle to the 1 A minimum in the
// paper's lowest-priority-highest-discharge-first order.
func ThrottleToMinimum(excess Power, active []ActiveCharge, cfg PlannerConfig) []int {
	return core.ThrottleToMinimum(excess, active, cfg)
}

// The Dynamo-style control plane.
type (
	// Agent is the per-rack TOR-switch request handler.
	Agent = dynamo.Agent
	// Controller protects one circuit breaker.
	Controller = dynamo.Controller
	// ControlHierarchy mirrors the power tree with one controller per
	// breaker.
	ControlHierarchy = dynamo.Hierarchy
	// Mode selects the coordination policy.
	Mode = dynamo.Mode
)

// Coordination modes.
const (
	ModeNone          = dynamo.ModeNone
	ModeGlobal        = dynamo.ModeGlobal
	ModePriorityAware = dynamo.ModePriorityAware
	ModePostpone      = dynamo.ModePostpone
)

// Engine is the discrete-event simulation kernel.
type Engine = sim.Engine

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// The distributed control plane: agents and controllers as separate
// components exchanging messages over a simulated network.
type (
	// Bus is the deterministic in-simulation message fabric.
	Bus = bus.Bus
	// BusMessage is one datagram between endpoints.
	BusMessage = bus.Message
	// AsyncAgent is the message-driven per-rack request handler.
	AsyncAgent = dynamo.AsyncAgent
	// AsyncLeaf is the message-driven leaf (RPP) controller.
	AsyncLeaf = dynamo.AsyncLeaf
	// AsyncUpper is the message-driven upper-level (SB/MSB) controller that
	// aggregates exclusively through leaf controllers.
	AsyncUpper = dynamo.AsyncUpper
	// RackSnapshot is an agent's rack-state report.
	RackSnapshot = dynamo.Snapshot
)

// NewBus builds a message fabric over the engine; latency may be nil for
// instant (but still engine-ordered) delivery.
func NewBus(engine *Engine, latency bus.LatencyModel) *Bus { return bus.New(engine, latency) }

// ConstantLatency returns a fixed one-way delivery delay model.
func ConstantLatency(d time.Duration) bus.LatencyModel { return bus.ConstantLatency(d) }

// NewAsyncAgent registers a rack's agent on the bus; settle is the charger
// command-settling time (~20 s in the Fig 11 prototype).
func NewAsyncAgent(b *Bus, engine *Engine, r *Rack, settle time.Duration) *AsyncAgent {
	return dynamo.NewAsyncAgent(b, engine, r, settle)
}

// NewAsyncLeaf registers a leaf controller polling the given racks' agents.
func NewAsyncLeaf(b *Bus, engine *Engine, node *Node, racks []*Rack, mode Mode, cfg PlannerConfig, plans bool, poll time.Duration) *AsyncLeaf {
	return dynamo.NewAsyncLeaf(b, engine, node, racks, mode, cfg, plans, poll)
}

// NewAsyncUpper registers an upper-level controller polling leaf controllers.
func NewAsyncUpper(b *Bus, engine *Engine, node *Node, leaves []*AsyncLeaf, mode Mode, cfg PlannerConfig, poll time.Duration) *AsyncUpper {
	return dynamo.NewAsyncUpper(b, engine, node, leaves, mode, cfg, poll)
}

// BuildControlHierarchy creates one controller per breaker under root.
// engine may be nil when latency is zero.
func BuildControlHierarchy(root *Node, mode Mode, cfg PlannerConfig, engine *Engine, latency time.Duration) (*ControlHierarchy, error) {
	return dynamo.BuildHierarchy(root, mode, cfg, engine, latency)
}

// Traces.
type (
	// TraceSource is a replayable per-rack power trace.
	TraceSource = trace.Source
	// TraceSpec parameterises the synthetic generator.
	TraceSpec = trace.Spec
	// TraceGenerator produces synthetic diurnal rack power analytically.
	TraceGenerator = trace.Generator
)

// NewTraceGenerator builds a deterministic synthetic trace.
func NewTraceGenerator(spec TraceSpec) (*TraceGenerator, error) {
	return trace.NewGenerator(spec)
}

// TraceFirstPeak scans a trace for its aggregate maximum within the horizon.
func TraceFirstPeak(s TraceSource, horizon, resolution time.Duration) time.Duration {
	return trace.FirstPeak(s, horizon, resolution)
}

// Reliability analysis.
type (
	// ReliabilitySimulator runs the Table I Monte Carlo.
	ReliabilitySimulator = reliability.Simulator
	// ComponentFailure is one Table I row.
	ComponentFailure = reliability.Component
)

// TableI returns the paper's component failure/repair data.
func TableI() []ComponentFailure { return reliability.TableI() }

// NewReliabilitySimulator builds a Monte Carlo simulator over the components.
func NewReliabilitySimulator(components []ComponentFailure, seed int64) (*ReliabilitySimulator, error) {
	return reliability.NewSimulator(components, seed)
}

// Experiment harness.
type (
	// ExperimentSpec parameterises one MSB-level coordinated run.
	ExperimentSpec = scenario.CoordSpec
	// ExperimentResult is its outcome.
	ExperimentResult = scenario.CoordResult
)

// RunExperiment executes one MSB-level coordinated-charging experiment.
func RunExperiment(spec ExperimentSpec) (*ExperimentResult, error) {
	return scenario.RunCoordinated(spec)
}

// RunCaseII replays the paper's Case II building-wide open-transition event.
func RunCaseII(numMSB int, seed int64) (*scenario.CaseIIResult, error) {
	return scenario.RunCaseII(numMSB, seed)
}

// Endurance simulation: realized AOR through the real control plane.
type (
	// EnduranceSpec parameterises a multi-year endurance run.
	EnduranceSpec = scenario.EnduranceSpec
	// EnduranceResult carries the realized per-priority AOR.
	EnduranceResult = scenario.EnduranceResult
)

// RunEndurance replays Table I failure events at their hierarchy levels
// against a live MSB and measures each priority's realized availability of
// redundancy.
func RunEndurance(spec EnduranceSpec) (*EnduranceResult, error) {
	return scenario.RunEndurance(spec)
}
