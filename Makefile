# Convenience targets for the coordcharge reproduction.

GO ?= go
BENCH_OUT ?= BENCH_latest.json
# The committed baseline the regression gate compares against; refresh with
# `make bench-json BENCH_OUT=BENCH_PR<N>.json` when a PR changes performance
# on purpose.
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_TOLERANCE ?= 25
# Benchmarks cheaper than this (ns/op in the baseline) are reported but not
# gated: at one measured iteration their timing is scheduler noise.
BENCH_FLOOR ?= 10000000
# Absolute floor on the event kernel: every X/event benchmark must run at
# least this many times faster than its X/dense sibling. Unlike the relative
# tolerance, this cannot drift across baseline refreshes.
BENCH_MIN_SPEEDUP ?= 5

# The committed coordvet debt ledger: `make lint` fails only on findings not
# recorded here. Capture/prune it with `make lint-baseline` after paying down
# or deliberately baselining debt (the ledger should only ever shrink).
LINT_BASELINE ?= coordvet_baseline.json
LINT_SARIF ?= coordvet.sarif

.PHONY: build lint lint-fix lint-sarif lint-baseline test test-short test-race bench bench-json bench-compare profile cover fuzz reproduce examples clean

build:
	$(GO) build ./...

# Formatting + the repo's own domain-aware analyzers (cmd/coordvet),
# gated against the committed baseline.
lint:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/coordvet -baseline $(LINT_BASELINE) ./...

# Apply every machine-safe suggested fix (TODO-justified //coordvet:transient
# and //coordvet:detached annotations), then gofmt the result. Grep for
# TODO(coordvet) afterwards and replace the placeholders with real reasons.
lint-fix:
	$(GO) run ./cmd/coordvet -fix ./...
	gofmt -w .

# SARIF 2.1.0 findings log for CI annotators (not baseline-filtered: the
# artifact documents the whole surface, the gate is `make lint`).
lint-sarif:
	$(GO) run ./cmd/coordvet -format sarif -out $(LINT_SARIF) ./... || true

# Re-capture the ledger to exactly the current findings (prunes retired
# entries). Review the diff before committing: additions are new debt.
lint-baseline:
	$(GO) run ./cmd/coordvet -write-baseline $(LINT_BASELINE) ./...

test: lint
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One pass over every benchmark, archived as machine-readable JSON.
# Override the destination per snapshot: make bench-json BENCH_OUT=BENCH_PR7.json
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Regression gate: one benchmark pass diffed against the committed baseline.
# Fails if any benchmark is more than BENCH_TOLERANCE percent slower.
bench-compare:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | \
		$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) \
			-tolerance $(BENCH_TOLERANCE) -floor $(BENCH_FLOOR) \
			-min-speedup $(BENCH_MIN_SPEEDUP)

# CPU + heap profiles of the heaviest benchmark, for pprof inspection:
#   go tool pprof cpu.pprof
profile:
	$(GO) test -bench=BenchmarkTable3MaxCapping -benchtime=1x -run='^$$' \
		-cpuprofile cpu.pprof -memprofile mem.pprof .

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/config/
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=30s ./internal/faults/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/units/
	$(GO) test -fuzz=FuzzCheckpointDecode -fuzztime=30s ./internal/ckpt/
	$(GO) test -fuzz=FuzzAdvisorRequest -fuzztime=30s ./internal/svc/
	$(GO) test -fuzz=FuzzTraceFrame -fuzztime=30s ./internal/svc/
	$(GO) test -fuzz=FuzzGridSeries -fuzztime=30s ./internal/grid/

reproduce:
	$(GO) run ./cmd/reproduce -out artifacts

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/priorityrow
	$(GO) run ./examples/reliability
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/psufailure

clean:
	rm -rf artifacts
