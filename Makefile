# Convenience targets for the coordcharge reproduction.

GO ?= go

.PHONY: build test test-short test-race bench bench-json cover fuzz reproduce examples clean

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One pass over every benchmark, archived as machine-readable JSON.
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | $(GO) run ./cmd/benchjson > BENCH_PR3.json

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/config/
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=30s ./internal/faults/

reproduce:
	$(GO) run ./cmd/reproduce -out artifacts

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/priorityrow
	$(GO) run ./examples/reliability
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/psufailure

clean:
	rm -rf artifacts
