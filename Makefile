# Convenience targets for the coordcharge reproduction.

GO ?= go
BENCH_OUT ?= BENCH_latest.json

.PHONY: build lint test test-short test-race bench bench-json cover fuzz reproduce examples clean

build:
	$(GO) build ./...

# Formatting + the repo's own domain-aware analyzers (cmd/coordvet).
lint:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/coordvet ./...

test: lint
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One pass over every benchmark, archived as machine-readable JSON.
# Override the destination per snapshot: make bench-json BENCH_OUT=BENCH_PR7.json
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/config/
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=30s ./internal/faults/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/units/

reproduce:
	$(GO) run ./cmd/reproduce -out artifacts

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/priorityrow
	$(GO) run ./examples/reliability
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/psufailure

clean:
	rm -rf artifacts
