package coordcharge

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/obs"
	"coordcharge/internal/scenario"
	"coordcharge/internal/units"
)

// Kernel parity: the event-driven kernel's one correctness bar. For every
// scenario arm and seed, a run with CoordSpec.Kernel = "event" must produce a
// flight digest and result summary byte-identical to the dense reference —
// including runs hard-killed and resumed from checkpoints, and checkpoints
// written by one kernel and resumed by the other. Arms the kernel cannot
// prove bounds for (faults, the grid plane) exercise the silent dense
// fallback and must be trivially byte-equal with zero skipped ticks.

// kernelArm is one scenario family under parity test.
type kernelArm struct {
	name string
	spec func(seed int64) scenario.CoordSpec
	// eligible: the event kernel actually engages (skipped ticks > 0);
	// otherwise the arm proves the dense fallback.
	eligible bool
}

func kernelArms() []kernelArm {
	return []kernelArm{
		{"baseline", func(seed int64) scenario.CoordSpec {
			return scenario.CoordSpec{
				NumP1: 10, NumP2: 10, NumP3: 10, Seed: seed,
				MSBLimit: 230 * units.Kilowatt, Mode: dynamo.ModePriorityAware,
				AvgDOD: 0.5, MaxChargeDuration: 6 * time.Hour,
			}
		}, true},
		{"storm", func(seed int64) scenario.CoordSpec {
			spec := stormSpec(seed)
			armStorm(&spec)
			return spec
		}, true},
		{"outage", func(seed int64) scenario.CoordSpec {
			// stormSpec without admission: the hair-trigger curve trips
			// breakers, exercising the kernel's tripped/overdrawn density.
			return stormSpec(seed)
		}, true},
		{"grid-shrink", func(seed int64) scenario.CoordSpec {
			spec, err := scenario.GridStormSpec(seed, 0.35)
			if err != nil {
				panic(err)
			}
			return spec
		}, false},
		{"grid-shave", func(seed int64) scenario.CoordSpec {
			spec, err := scenario.GridShaveSpec(seed)
			if err != nil {
				panic(err)
			}
			return spec
		}, false},
		{"faults", func(seed int64) scenario.CoordSpec {
			spec := stormSpec(seed)
			armStorm(&spec)
			spec.Faults = faults.Default()
			spec.Faults.Seed = seed
			spec.StaleAfter = 10 * time.Second
			spec.Retry = dynamo.DefaultRetryPolicy()
			return spec
		}, false},
	}
}

// runKernel executes one spec on the requested kernel with a fresh flight
// recorder and returns the full result plus the digest.
func runKernel(t *testing.T, spec scenario.CoordSpec, kernel string) (*scenario.CoordResult, string) {
	t.Helper()
	spec.Kernel = kernel
	spec.Obs = obs.NewSink(0)
	res, err := scenario.RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res, spec.Obs.Flight.Digest()
}

func checkKernelParity(t *testing.T, arm kernelArm, seed int64) {
	t.Helper()
	dense, denseDigest := runKernel(t, arm.spec(seed), scenario.KernelDense)
	event, eventDigest := runKernel(t, arm.spec(seed), scenario.KernelEvent)

	if eventDigest != denseDigest {
		t.Errorf("flight digest diverged:\n  event %s\n  dense %s", eventDigest, denseDigest)
	}
	if got, want := event.Summary(), dense.Summary(); got != want {
		t.Errorf("summary diverged:\n--- event ---\n%s--- dense ---\n%s", got, want)
	}
	if dense.KernelTicksSkipped != 0 || dense.KernelTicksExecuted != 0 {
		t.Errorf("dense run reported kernel counters: executed=%d skipped=%d",
			dense.KernelTicksExecuted, dense.KernelTicksSkipped)
	}
	if arm.eligible {
		if event.KernelTicksSkipped == 0 {
			t.Errorf("eligible arm skipped no ticks (executed=%d); the kernel never engaged",
				event.KernelTicksExecuted)
		}
	} else if event.KernelTicksSkipped != 0 || event.KernelTicksExecuted != 0 {
		t.Errorf("ineligible arm must fall back to dense, got executed=%d skipped=%d",
			event.KernelTicksExecuted, event.KernelTicksSkipped)
	}
}

// TestKernelParity: 4 seeds across every arm, uninterrupted.
func TestKernelParity(t *testing.T) {
	for _, arm := range kernelArms() {
		t.Run(arm.name, func(t *testing.T) {
			seeds := int64(4)
			if testing.Short() && arm.name != "storm" {
				seeds = 1
			}
			for seed := int64(1); seed <= seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					t.Parallel()
					checkKernelParity(t, arm, seed)
				})
			}
		})
	}
}

// TestKernelCrashResume: the chaos harness on the event kernel. A storm run
// is hard-killed mid-outage and mid-drain, resumed from checkpoints, and must
// land byte-identical to the uninterrupted *dense* run — checkpoint writes on
// the skip path, wake-queue export, and the restore-time schedule rebuild all
// sit on this path.
func TestKernelCrashResume(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := stormSpec(seed)
			armStorm(&spec)
			wantSummary, wantDigest := runUninterrupted(t, spec)

			spec.Kernel = scenario.KernelEvent
			gotSummary, gotDigest := runWithKills(t, spec, chaosKills(seed))
			if gotDigest != wantDigest {
				t.Errorf("flight digest diverged after kill-and-resume:\n  event resumed %s\n  dense         %s", gotDigest, wantDigest)
			}
			if gotSummary != wantSummary {
				t.Errorf("summary diverged after kill-and-resume:\n--- event resumed ---\n%s--- dense ---\n%s", gotSummary, wantSummary)
			}
		})
	}
}

// TestKernelCrossPlaneResume: checkpoints are portable between kernels in
// both directions. An event-written checkpoint is resumed by the dense loop,
// and a dense-written checkpoint by the event kernel; both runs must match
// the uninterrupted dense reference byte for byte.
func TestKernelCrossPlaneResume(t *testing.T) {
	seed := int64(3)
	spec := stormSpec(seed)
	armStorm(&spec)
	wantSummary, wantDigest := runUninterrupted(t, spec)

	for _, tc := range []struct {
		name  string
		order []string // kernel per attempt: attempt 0 writes, later attempts resume
	}{
		{"event-writes-dense-resumes", []string{scenario.KernelEvent, scenario.KernelDense, scenario.KernelDense}},
		{"dense-writes-event-resumes", []string{scenario.KernelDense, scenario.KernelEvent, scenario.KernelEvent}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gotSummary, gotDigest := runWithKillsVariant(t, spec, chaosKills(seed), func(attempt int) string {
				if attempt >= len(tc.order) {
					return tc.order[len(tc.order)-1]
				}
				return tc.order[attempt]
			})
			if gotDigest != wantDigest {
				t.Errorf("flight digest diverged:\n  resumed %s\n  dense   %s", gotDigest, wantDigest)
			}
			if gotSummary != wantSummary {
				t.Errorf("summary diverged:\n--- resumed ---\n%s--- dense ---\n%s", gotSummary, wantSummary)
			}
		})
	}
}
