// Command coordvet runs the repo's domain-aware static analysis suite
// (internal/lint): eight analyzers enforcing the contracts the runtime tests
// can only check after the fact — control-plane determinism, map-iteration
// order feeding the flight digest, nil-safe observability, mutex
// annotations, error hygiene, checkpoint round-trip parity, unit/dimension
// safety, and goroutine lifecycle discipline.
//
// Usage:
//
//	go run ./cmd/coordvet ./...                       # whole repo
//	go run ./cmd/coordvet -baseline coordvet_baseline.json ./...   # CI gate
//	go run ./cmd/coordvet -run determinism ./internal/...
//	go run ./cmd/coordvet -fix ./...                  # apply suggested fixes
//	go run ./cmd/coordvet -format sarif -out vet.sarif ./...
//	go run ./cmd/coordvet -list
//
// Modes:
//
//   - -baseline FILE subtracts the committed debt ledger from the findings:
//     only findings not in the ledger fail the run. Ledger entries that no
//     longer match anything are reported to stderr as retired (prune them
//     with -write-baseline). A missing FILE is an empty ledger.
//   - -write-baseline FILE writes the ledger covering exactly the current
//     findings and exits 0 — the one-time capture when a new analyzer
//     lands, and the prune step when debt is paid down.
//   - -fix applies every machine-safe suggested fix in place (today:
//     inserting TODO-justified //coordvet:transient and //coordvet:detached
//     annotations), reports what it changed, and exits 0; re-run coordvet
//     to see what remains. Conflicting fixes in one file are skipped.
//   - -format sarif emits SARIF 2.1.0 (for CI annotators) instead of the
//     text lines; -out FILE redirects either format to a file.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings are
// reported as file:line:col: [analyzer] message. Suppress a single finding
// with `//coordvet:ignore <analyzer> <justification>` on the same line or
// the line above; stale suppressions are themselves findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"coordcharge/internal/lint"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes in place and exit")
	baselinePath := flag.String("baseline", "", "subtract the findings ledger at this path; fail only on new findings")
	writeBaseline := flag.String("write-baseline", "", "write a ledger covering the current findings to this path and exit")
	format := flag.String("format", "text", "output format: text or sarif")
	outPath := flag.String("out", "", "write findings to this file instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: coordvet [-run a,b] [-fix] [-baseline file] [-write-baseline file] [-format text|sarif] [-out file] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "coordvet: unknown -format %q (want text or sarif)\n", *format)
		os.Exit(2)
	}

	analyzers := lint.All()
	if *runList != "" {
		var err error
		analyzers, err = lint.ByName(*runList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordvet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordvet:", err)
		os.Exit(2)
	}

	prog := loader.Program(pkgs)
	diags := lint.Run(prog, analyzers)

	if *fix {
		fixed, applied, skipped, err := lint.ApplyFixes(prog, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordvet:", err)
			os.Exit(2)
		}
		files := make([]string, 0, len(fixed))
		for file := range fixed {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			if err := os.WriteFile(file, fixed[file], 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "coordvet:", err)
				os.Exit(2)
			}
		}
		fmt.Printf("coordvet: applied %d fix(es) across %d file(s)\n", applied, len(fixed))
		for _, d := range skipped {
			fmt.Printf("coordvet: skipped conflicting fix: %s\n", d)
		}
		return
	}

	if *writeBaseline != "" {
		b := lint.NewBaseline(loader.ModRoot, diags)
		if err := lint.WriteBaseline(*writeBaseline, b); err != nil {
			fmt.Fprintln(os.Stderr, "coordvet:", err)
			os.Exit(2)
		}
		fmt.Printf("coordvet: wrote %d baseline entr(ies) to %s\n", len(b.Findings), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		b, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordvet:", err)
			os.Exit(2)
		}
		fresh, retired := b.Filter(loader.ModRoot, diags)
		for _, e := range retired {
			fmt.Fprintf(os.Stderr, "coordvet: baseline entry retired (finding fixed): %s [%s] %s\n",
				e.File, e.Analyzer, e.Message)
		}
		if len(retired) > 0 {
			fmt.Fprintf(os.Stderr, "coordvet: prune retired entries with -write-baseline %s\n", *baselinePath)
		}
		diags = fresh
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordvet:", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}

	switch *format {
	case "sarif":
		if err := lint.WriteSARIF(out, loader.ModRoot, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "coordvet:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "coordvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
