// Command coordvet runs the repo's domain-aware static analysis suite
// (internal/lint): five analyzers enforcing the contracts the runtime tests
// can only check after the fact — control-plane determinism, map-iteration
// order feeding the flight digest, nil-safe observability, mutex
// annotations, and error hygiene.
//
// Usage:
//
//	go run ./cmd/coordvet ./...              # whole repo (CI invocation)
//	go run ./cmd/coordvet -run determinism ./internal/...
//	go run ./cmd/coordvet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings are
// reported as file:line:col: [analyzer] message. Suppress a single finding
// with `//coordvet:ignore <analyzer> <justification>` on the same line or
// the line above; stale suppressions are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"coordcharge/internal/lint"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: coordvet [-run a,b] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *runList != "" {
		var err error
		analyzers, err = lint.ByName(*runList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coordvet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordvet:", err)
		os.Exit(2)
	}

	diags := lint.Run(loader.Program(pkgs), analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "coordvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
