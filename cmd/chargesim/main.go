// Command chargesim regenerates the battery-charger figures of the paper:
// Fig 3 (full-discharge CC-CV profile), Fig 4 (recharge power by depth of
// discharge), Fig 5 (charge time surface), and Fig 6(b) (the variable
// charger's Eq 1 current selection).
//
// Usage:
//
//	chargesim -fig 3|4|5|6 [-csv]
//	chargesim -all
package main

import (
	"flag"
	"fmt"
	"os"

	"coordcharge/internal/report"
	"coordcharge/internal/scenario"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3, 4, 5, or 6)")
	all := flag.Bool("all", false, "regenerate every charger figure")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII charts")
	flag.Parse()

	var charts []*report.Chart
	switch {
	case *all:
		charts = append(charts, scenario.Fig3Charts()...)
		charts = append(charts, scenario.Fig4Chart(), scenario.Fig5Chart(), scenario.Fig6bChart())
	case *fig == 3:
		charts = scenario.Fig3Charts()
	case *fig == 4:
		charts = []*report.Chart{scenario.Fig4Chart()}
	case *fig == 5:
		charts = []*report.Chart{scenario.Fig5Chart()}
	case *fig == 6:
		charts = []*report.Chart{scenario.Fig6bChart()}
	default:
		fmt.Fprintln(os.Stderr, "chargesim: pass -fig 3|4|5|6 or -all")
		flag.Usage()
		os.Exit(2)
	}
	for _, c := range charts {
		var err error
		if *csv {
			err = c.RenderCSV(os.Stdout)
		} else {
			err = c.RenderASCII(os.Stdout, 78, 18)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chargesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
