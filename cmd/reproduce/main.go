// Command reproduce regenerates every artifact of the paper in one run and
// writes them to an output directory: each figure as an ASCII chart and a
// CSV series, each table as text and CSV, plus a summary index.
//
// Usage:
//
//	reproduce -out artifacts [-years 20000] [-seed 1] [-fast]
//
// -fast skips the slowest artifacts (the full Fig 13/14/15 sweeps and the
// full-population Fig 2) for a quick smoke of the pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"coordcharge/internal/ckpt"
	"coordcharge/internal/report"
	"coordcharge/internal/scenario"
)

type artifact struct {
	name  string
	build func() (*report.Chart, *report.Table, error)
}

func main() {
	out := flag.String("out", "artifacts", "output directory")
	years := flag.Float64("years", 20000, "Monte Carlo horizon in simulated years")
	seed := flag.Int64("seed", 1, "seed for traces and the Monte Carlo")
	fast := flag.Bool("fast", false, "skip the slowest artifacts")
	flag.Parse()

	arts := collect(*years, *seed, *fast)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var index strings.Builder
	fmt.Fprintf(&index, "coordcharge reproduction artifacts (seed %d, %s)\n\n", *seed, time.Now().UTC().Format(time.RFC3339))
	for _, a := range arts {
		start := time.Now()
		chart, table, err := a.build()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", a.name, err))
		}
		if chart != nil {
			if err := writeChart(*out, a.name, chart); err != nil {
				fatal(err)
			}
		}
		if table != nil {
			if err := writeTable(*out, a.name, table); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(&index, "%-22s %8s\n", a.name, time.Since(start).Round(time.Millisecond))
		fmt.Printf("wrote %s (%s)\n", a.name, time.Since(start).Round(time.Millisecond))
	}
	if err := ckpt.WriteAtomic(filepath.Join(*out, "INDEX.txt"), []byte(index.String())); err != nil {
		fatal(err)
	}
}

// collect enumerates the artifact builders in paper order.
func collect(years float64, seed int64, fast bool) []artifact {
	chartOnly := func(f func() *report.Chart) func() (*report.Chart, *report.Table, error) {
		return func() (*report.Chart, *report.Table, error) { return f(), nil, nil }
	}
	arts := []artifact{
		{name: "fig02_region_outage", build: func() (*report.Chart, *report.Table, error) {
			factor := 1
			if fast {
				factor = 16
			}
			return scenario.Fig2Chart(factor), nil, nil
		}},
		{name: "fig03_charge_profile", build: func() (*report.Chart, *report.Table, error) {
			charts := scenario.Fig3Charts()
			// The power chart is the headline; current/voltage are appended
			// as extra series files by the caller loop, so merge titles.
			return charts[0], nil, nil
		}},
		{name: "fig03_current", build: chartOnly(func() *report.Chart { return scenario.Fig3Charts()[1] })},
		{name: "fig03_voltage", build: chartOnly(func() *report.Chart { return scenario.Fig3Charts()[2] })},
		{name: "fig04_power_by_dod", build: chartOnly(scenario.Fig4Chart)},
		{name: "fig05_charge_time", build: chartOnly(scenario.Fig5Chart)},
		{name: "fig06b_eq1", build: chartOnly(scenario.Fig6bChart)},
		{name: "fig07_row_validation", build: chartOnly(scenario.Fig7Chart)},
		{name: "table1_components", build: func() (*report.Chart, *report.Table, error) {
			return nil, scenario.TableITable(), nil
		}},
		{name: "fig09a_aor", build: func() (*report.Chart, *report.Table, error) {
			c, err := scenario.Fig9aChart(years, seed)
			return c, nil, err
		}},
		{name: "table2_sla", build: func() (*report.Chart, *report.Table, error) {
			t, err := scenario.TableIITable(years, seed)
			return nil, t, err
		}},
		{name: "table2_breakdown", build: func() (*report.Chart, *report.Table, error) {
			t, err := scenario.BreakdownTable(years, seed, 30*time.Minute)
			return nil, t, err
		}},
		{name: "fig09b_sla_current", build: chartOnly(scenario.Fig9bChart)},
		{name: "fig10_prototype_row", build: chartOnly(scenario.Fig10Chart)},
		{name: "fig11_override", build: chartOnly(scenario.Fig11Chart)},
		{name: "fig12_trace", build: func() (*report.Chart, *report.Table, error) {
			c, err := scenario.Fig12Chart(seed)
			return c, nil, err
		}},
	}
	if !fast {
		arts = append(arts,
			artifact{name: "fig13_table3", build: func() (*report.Chart, *report.Table, error) {
				res, err := scenario.RunFig13(seed)
				if err != nil {
					return nil, nil, err
				}
				// Fig 13 produces six charts; write them here and return the
				// table through the normal path.
				for i, c := range res.Charts {
					if err := writeChart(flag.Lookup("out").Value.String(), fmt.Sprintf("fig13%c", 'a'+i), c); err != nil {
						return nil, nil, err
					}
				}
				return nil, res.TableIII, nil
			}},
			artifact{name: "fig14_sweeps", build: func() (*report.Chart, *report.Table, error) {
				charts, err := scenario.RunFig14(seed)
				if err != nil {
					return nil, nil, err
				}
				for i, c := range charts {
					if err := writeChart(flag.Lookup("out").Value.String(), fmt.Sprintf("fig14%c", 'a'+i), c); err != nil {
						return nil, nil, err
					}
				}
				return nil, nil, nil
			}},
			artifact{name: "fig15_distributions", build: func() (*report.Chart, *report.Table, error) {
				charts, err := scenario.RunFig15(seed)
				if err != nil {
					return nil, nil, err
				}
				for i, c := range charts {
					if err := writeChart(flag.Lookup("out").Value.String(), fmt.Sprintf("fig15%c", 'a'+i), c); err != nil {
						return nil, nil, err
					}
				}
				return nil, nil, nil
			}},
			artifact{name: "case2_building", build: func() (*report.Chart, *report.Table, error) {
				res, err := scenario.RunCaseII(12, seed)
				if err != nil {
					return nil, nil, err
				}
				return nil, res.Table, nil
			}},
			artifact{name: "endurance_realized_aor", build: func() (*report.Chart, *report.Table, error) {
				res, err := scenario.RunEndurance(scenario.EnduranceSpec{Years: 30, Seed: seed})
				if err != nil {
					return nil, nil, err
				}
				return nil, scenario.EnduranceTable(res), nil
			}},
			artifact{name: "capacity_advice", build: func() (*report.Chart, *report.Table, error) {
				adv, err := scenario.Advise(scenario.AdvisorSpec{
					NumP1: 89, NumP2: 142, NumP3: 85, Seed: seed,
				})
				if err != nil {
					return nil, nil, err
				}
				return nil, scenario.AdviceTable(adv), nil
			}},
		)
	}
	return arts
}

func writeChart(dir, name string, c *report.Chart) error {
	return report.SaveChart(dir, name, c)
}

func writeTable(dir, name string, t *report.Table) error {
	return report.SaveTable(dir, name, t)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
	os.Exit(1)
}
