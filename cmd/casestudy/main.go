// Command casestudy replays the paper's production events and prototype
// experiments: Fig 2 (the regional utility-sag recharge spike), Fig 7 (the
// variable-charger production validation row), Fig 10 (the coordinated
// 17-rack prototype row), and Fig 11 (the fine-grained override latency).
//
// The -case2 flag additionally replays Case II (§II-D): a building-wide open
// transition to diesel generators under the original charger, showing the
// >20 % per-MSB power jump and the building-wide server capping.
//
// Usage:
//
//	casestudy -fig 2|7|10|11 [-csv]
//	casestudy -case2 [-msbs 12]
//	casestudy -all
package main

import (
	"flag"
	"fmt"
	"os"

	"coordcharge/internal/report"
	"coordcharge/internal/scenario"
)

func main() {
	fig := flag.Int("fig", 0, "figure to replay (2, 7, 10, or 11)")
	all := flag.Bool("all", false, "replay every case study")
	sample := flag.Int("sample", 1, "Fig 2 population divisor (1 = every rack in the region)")
	case2 := flag.Bool("case2", false, "replay the Case II building-wide event")
	msbs := flag.Int("msbs", 12, "Case II building size in MSBs")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII charts")
	flag.Parse()

	if *case2 || *all {
		res, err := scenario.RunCaseII(*msbs, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casestudy: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			err = res.Table.RenderCSV(os.Stdout)
		} else {
			err = res.Table.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "casestudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("estimated servers power-capped: %d (max per-MSB increase %v)\n\n",
			res.ServersCapped, res.MaxIncrease)
		if !*all && *fig == 0 {
			return
		}
	}

	var charts []*report.Chart
	if *all || *fig == 2 {
		charts = append(charts, scenario.Fig2Chart(*sample))
	}
	if *all || *fig == 7 {
		charts = append(charts, scenario.Fig7Chart())
	}
	if *all || *fig == 10 {
		charts = append(charts, scenario.Fig10Chart())
	}
	if *all || *fig == 11 {
		charts = append(charts, scenario.Fig11Chart())
	}
	if len(charts) == 0 {
		fmt.Fprintln(os.Stderr, "casestudy: pass -fig 2|7|10|11 or -all")
		flag.Usage()
		os.Exit(2)
	}
	for _, c := range charts {
		var err error
		if *csv {
			err = c.RenderCSV(os.Stdout)
		} else {
			err = c.RenderASCII(os.Stdout, 78, 18)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "casestudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
