// Command advisor answers the capacity question behind the paper's
// introduction: how much breaker capacity does a rack population need under
// a given charging strategy? It compares static worst-case provisioning
// (peak IT plus 1.9 kW of recharge per rack — the 25 % reserve the paper
// calls "stranded most of the time") against the minimum limit at which the
// strategy avoids all server capping and meets every feasible charging-time
// SLA, and prices the difference at the paper's $10–$20 per watt.
//
// Usage:
//
//	advisor -p1 89 -p2 142 -p3 85 -dod 0.7 -mode priority-aware
//	advisor -mode none -policy original        # the uncoordinated baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/scenario"
	"coordcharge/internal/units"
)

func main() {
	p1 := flag.Int("p1", 89, "P1 rack count")
	p2 := flag.Int("p2", 142, "P2 rack count")
	p3 := flag.Int("p3", 85, "P3 rack count")
	dod := flag.Float64("dod", 0.7, "discharge level to provision for")
	modeStr := flag.String("mode", "priority-aware", "none, global, priority-aware, or postpone")
	policyStr := flag.String("policy", "variable", "local charger: original or variable")
	seed := flag.Int64("seed", 1, "trace seed")
	resKW := flag.Float64("res", 10, "limit search resolution in kW")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	var mode dynamo.Mode
	switch *modeStr {
	case "none":
		mode = dynamo.ModeNone
	case "global":
		mode = dynamo.ModeGlobal
	case "priority-aware":
		mode = dynamo.ModePriorityAware
	case "postpone":
		mode = dynamo.ModePostpone
	default:
		fmt.Fprintf(os.Stderr, "advisor: unknown mode %q\n", *modeStr)
		os.Exit(2)
	}
	pol, err := charger.ByName(*policyStr)
	check(err)

	adv, err := scenario.Advise(scenario.AdvisorSpec{
		NumP1: *p1, NumP2: *p2, NumP3: *p3,
		AvgDOD:      units.Fraction(*dod),
		Mode:        mode,
		LocalPolicy: pol,
		Seed:        *seed,
		Resolution:  units.Power(*resKW) * units.Kilowatt,
	})
	check(err)
	tbl := scenario.AdviceTable(adv)
	if *csv {
		check(tbl.RenderCSV(os.Stdout))
	} else {
		check(tbl.Render(os.Stdout))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "advisor: %v\n", err)
		os.Exit(1)
	}
}
