// Command aorsim runs the reliability analysis of the paper's §IV-A: the
// Monte Carlo over the Table I component failure model that relates battery
// charging time to the availability of redundancy (AOR) of rack power.
//
// Usage:
//
//	aorsim -table 1          # the component failure/repair input data
//	aorsim -fig 9a           # AOR vs charging time sweep
//	aorsim -fig 9b           # SLA charging current vs DOD per priority
//	aorsim -table 2          # AOR achieved by each priority's SLA
//	aorsim -all
//
// The -years flag sets the simulated horizon (the paper uses 1e5 years).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"coordcharge/internal/report"
	"coordcharge/internal/scenario"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (9a or 9b)")
	table := flag.Int("table", 0, "table to regenerate (1 or 2)")
	all := flag.Bool("all", false, "regenerate every reliability artifact")
	years := flag.Float64("years", 1e5, "simulated years for the Monte Carlo")
	seed := flag.Int64("seed", 1, "random seed")
	breakdown := flag.Bool("breakdown", false, "attribute loss of redundancy per component")
	chargeMin := flag.Float64("charge", 30, "charge time in minutes for -breakdown")
	csv := flag.Bool("csv", false, "emit CSV instead of text")
	flag.Parse()

	emitChart := func(c *report.Chart) {
		var err error
		if *csv {
			err = c.RenderCSV(os.Stdout)
		} else {
			err = c.RenderASCII(os.Stdout, 78, 18)
		}
		check(err)
		fmt.Println()
	}
	emitTable := func(t *report.Table) {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		check(err)
		fmt.Println()
	}

	ran := false
	if *all || *table == 1 {
		emitTable(scenario.TableITable())
		ran = true
	}
	if *all || *fig == "9a" {
		c, err := scenario.Fig9aChart(*years, *seed)
		check(err)
		emitChart(c)
		ran = true
	}
	if *all || *table == 2 {
		t, err := scenario.TableIITable(*years, *seed)
		check(err)
		emitTable(t)
		ran = true
	}
	if *all || *fig == "9b" {
		emitChart(scenario.Fig9bChart())
		ran = true
	}
	if *all || *breakdown {
		t, err := scenario.BreakdownTable(*years, *seed, time.Duration(*chargeMin*float64(time.Minute)))
		check(err)
		emitTable(t)
		ran = true
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "aorsim: pass -fig 9a|9b, -table 1|2, or -all")
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "aorsim: %v\n", err)
		os.Exit(1)
	}
}
