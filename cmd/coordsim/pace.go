package main

import "time"

// wallSleep is coordsim's only wall-clock tap, following the svc.Clock
// pattern: the -pace hook deliberately slaves virtual time to the wall clock
// so a live scraper can watch a run unfold in real time. Funnelling the
// sleep through this one allowlisted function (see coordvet's determinism
// analyzer) keeps the rest of the command under the no-wall-clock contract —
// a stray time.Sleep anywhere else in coordsim is still a finding.
func wallSleep(d time.Duration) { time.Sleep(d) }
