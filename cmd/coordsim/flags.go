package main

import (
	"fmt"
	"time"

	"coordcharge/internal/ckpt"
)

// flagValues is the subset of parsed flag state that cross-flag validation
// needs: which flags were set explicitly, plus the values whose contents
// (not just presence) participate in a rule. Keeping it a plain struct makes
// the validation pure and table-testable; main assembles it from the flag
// package and exits 2 on the first error.
type flagValues struct {
	set     map[string]bool
	pace    float64
	seed    int64
	resume  string
	gridFig string
	kernel  string
}

// validateCombination rejects incoherent flag combinations up front, before
// any simulation work starts, so a typo'd invocation fails fast with a clear
// message instead of silently ignoring half the flags. It returns the first
// violation found, or nil.
func validateCombination(v flagValues) error {
	set := v.set
	// Flags that only mean something inside a custom -run experiment.
	for _, name := range []string{"storm", "faults", "watchdog", "trace", "analytics", "serve", "pace", "admission", "guard", "grid", "kernel"} {
		if set[name] && !set["run"] {
			return fmt.Errorf("-%s requires -run", name)
		}
	}
	if set["kernel"] {
		switch v.kernel {
		case "dense", "event":
		default:
			return fmt.Errorf(`-kernel must be "dense" or "event" (got %q)`, v.kernel)
		}
	}
	if set["run"] {
		for _, name := range []string{"fig", "table", "all", "endurance", "config", "grid-fig"} {
			if set[name] {
				return fmt.Errorf("-run is incompatible with -%s", name)
			}
		}
	}
	// Storm machinery needs a storm to act on.
	for _, name := range []string{"admission", "guard"} {
		if set[name] && !set["storm"] {
			return fmt.Errorf("-%s requires -storm (there is no recharge storm without a grid event)", name)
		}
	}
	// Series files attach to a grid spec; without -grid they would be read
	// and silently dropped.
	for _, name := range []string{"grid-cap-csv", "grid-price-csv", "grid-carbon-csv"} {
		if set[name] && !set["grid"] {
			return fmt.Errorf("-%s requires -grid (the series attaches to the grid signal plane)", name)
		}
	}
	if set["grid-fig"] {
		switch v.gridFig {
		case "shrink", "shave":
		default:
			return fmt.Errorf(`-grid-fig must be "shrink" or "shave" (got %q)`, v.gridFig)
		}
		for _, name := range []string{"endurance", "config"} {
			if set[name] {
				return fmt.Errorf("-grid-fig is incompatible with -%s", name)
			}
		}
	}
	if set["pace"] && !set["serve"] {
		return fmt.Errorf("-pace requires -serve (pacing only matters when something is scraping the run)")
	}
	if set["pace"] && v.pace < 0 {
		return fmt.Errorf("-pace must be >= 0 (got %v)", v.pace)
	}
	if set["years"] && !set["endurance"] {
		return fmt.Errorf("-years requires -endurance")
	}
	// Checkpoint/resume only exist on the long-running paths.
	if set["checkpoint-interval"] && !set["checkpoint"] {
		return fmt.Errorf("-checkpoint-interval requires -checkpoint")
	}
	for _, name := range []string{"checkpoint", "resume"} {
		if set[name] && !set["run"] && !set["endurance"] {
			return fmt.Errorf("-%s requires -run or -endurance", name)
		}
	}
	if set["resume"] && set["config"] {
		return fmt.Errorf("-resume is incompatible with -config (resume describes the experiment through flags)")
	}
	if set["resume"] {
		// Catch a seed mismatch at flag time, before the fleet is built: the
		// scenario layer would reject it anyway, but here it is a usage
		// error (exit 2) with the flag named.
		ckSeed, err := checkpointSeed(v.resume)
		if err != nil {
			return fmt.Errorf("-resume %s: %v", v.resume, err)
		}
		if ckSeed != v.seed {
			return fmt.Errorf("-resume %s was checkpointed with -seed %d, but this invocation uses -seed %d", v.resume, ckSeed, v.seed)
		}
	}
	return nil
}

// checkpointSeed reads just the seed out of a checkpoint file's verified
// payload.
func checkpointSeed(path string) (int64, error) {
	var probe struct {
		Seed int64 `json:"seed"`
	}
	if err := ckpt.ReadFile(path, &probe); err != nil {
		return 0, err
	}
	return probe.Seed, nil
}

// checkpointFlags carries the -checkpoint/-checkpoint-interval/-resume
// values into the run paths.
type checkpointFlags struct {
	path     string
	interval time.Duration
	resume   string
}
