// Command coordsim runs the MSB-level coordinated-charging evaluation of the
// paper's §V-B: 316 racks (89 P1 / 142 P2 / 85 P3) replaying a synthetic
// production trace with an open transition injected at the first peak.
//
// Usage:
//
//	coordsim -fig 12             # the weekly aggregate trace
//	coordsim -fig 13 [-table 3]  # MSB power by algorithm × limit × discharge
//	coordsim -fig 14             # racks meeting SLA vs power limit (prod mix)
//	coordsim -fig 15             # ... for even and all-P1 distributions
//	coordsim -all
//
// Beyond the paper's artifacts:
//
//	coordsim -run -mode postpone -limit 2.15 -dod 0.7 [-analytics]
//	coordsim -run -trace t.csv -p1 4 -p2 4 -p3 4   # replay an imported trace
//	coordsim -run -faults default -watchdog 30s    # degraded control plane
//	coordsim -run -faults cmdloss=0.2,ctlmtbf=10m,ctlmttr=8s
//	coordsim -run -storm 90s -admission -guard     # grid event + storm survival
//	coordsim -run -storm 90s -admission -guard -grid "capshrink=3h+2h(0.3)"
//	coordsim -grid-fig shrink                      # cap-shrink storm sweep
//	coordsim -grid-fig shave                       # peak-shave (VPP) figure
//	coordsim -endurance -years 50                  # realized AOR vs Table II
//	coordsim -config exp.json                      # experiments from a file
package main

import (
	"flag"
	"fmt"
	"os"

	"coordcharge/internal/report"
	"coordcharge/internal/scenario"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (12, 13, 14, or 15)")
	table := flag.Int("table", 0, "table to regenerate (3)")
	all := flag.Bool("all", false, "regenerate every evaluation artifact")
	seed := flag.Int64("seed", 1, "trace seed")
	csv := flag.Bool("csv", false, "emit CSV instead of text")
	configPath := flag.String("config", "", "run the experiments in a JSON experiment file")
	// Endurance flags.
	endurance := flag.Bool("endurance", false, "run the multi-year realized-AOR endurance simulation")
	years := flag.Float64("years", 50, "endurance horizon in simulated years")
	// Custom single-experiment flags.
	run := flag.Bool("run", false, "run one custom experiment instead of a paper artifact")
	mode := flag.String("mode", "priority-aware", "custom run: none, global, priority-aware, or postpone")
	policy := flag.String("policy", "variable", "custom run: local charger (original or variable)")
	limitMW := flag.Float64("limit", 2.5, "custom run: MSB power limit in MW")
	dod := flag.Float64("dod", 0.5, "custom run: target average depth of discharge")
	p1 := flag.Int("p1", 89, "custom run: P1 rack count")
	p2 := flag.Int("p2", 142, "custom run: P2 rack count")
	p3 := flag.Int("p3", 85, "custom run: P3 rack count")
	tracePath := flag.String("trace", "", "custom run: CSV trace file (tracegen format) replacing the synthetic trace")
	analytics := flag.Bool("analytics", false, "custom run: also print duration/DOD distribution analytics")
	faultsSpec := flag.String("faults", "", "custom run: control-plane fault injection — off, default, or a k=v list overriding the defaults (seed, telloss, telstale, cmdloss, cmddup, cmddelay, cmddelaymax, agentmtbf, agentmttr, ctlmtbf, ctlmttr)")
	watchdog := flag.Duration("watchdog", 0, "custom run: rack fail-safe watchdog TTL (0 disables)")
	stormDur := flag.Duration("storm", 0, "custom run: site-wide outage duration (grid-event storm; replaces the -dod-derived transition length)")
	admission := flag.Bool("admission", false, "custom run: arm recharge-storm admission control (priority-aware waves under measured headroom)")
	guard := flag.Bool("guard", false, "custom run: arm the last-line breaker guard (sheds charging current before the trip window closes)")
	gridSpec := flag.String("grid", "", "custom run: grid signal plane — off, on, or semicolon-separated key=value elements (cap=205kW@0,143.5kW@10m; price=40@0,95@6h; synthprice=seed:step:horizon:base:swing; droop/dr/capshrink events as at+dur(frac); deferprice/defercarbon/maxdefer; shave/shaveprice/shavedod/shaveprio)")
	gridCapCSV := flag.String("grid-cap-csv", "", "custom run: interconnection-cap series CSV (offset,value rows; watts) attached to -grid")
	gridPriceCSV := flag.String("grid-price-csv", "", "custom run: energy-price series CSV ($/MWh) attached to -grid")
	gridCarbonCSV := flag.String("grid-carbon-csv", "", "custom run: carbon-intensity series CSV (gCO2/kWh) attached to -grid")
	gridFig := flag.String("grid-fig", "", "grid experiment to regenerate: shrink (storm recovery under a shrinking cap) or shave (peak shaving, the BBU fleet as a virtual power plant)")
	kernel := flag.String("kernel", scenario.KernelDense, "custom run: tick-loop kernel — dense (every tick) or event (analytic advance between state-change events; bit-identical results)")
	serve := flag.String("serve", "", "custom run: serve the observability surface (/metrics, /healthz, /debug/flight, pprof) on this address while the run executes, e.g. :8080")
	pace := flag.Float64("pace", 0, "custom run: simulated seconds per wall-clock second (0 = free-running); requires -serve")
	// Checkpoint/resume flags (custom and endurance runs).
	checkpoint := flag.String("checkpoint", "", "write a crash-safe checkpoint to this path at -checkpoint-interval of virtual time; SIGTERM writes a final checkpoint and exits 0")
	checkpointInterval := flag.Duration("checkpoint-interval", 0, "virtual time between checkpoint writes (default: 5m for -run, 30 days for -endurance)")
	resume := flag.String("resume", "", "resume a checkpointed run from this file; the other flags must describe the same experiment")
	flag.Parse()
	validateFlags(*pace, *seed, *resume, *gridFig, *kernel)
	ckf := checkpointFlags{path: *checkpoint, interval: *checkpointInterval, resume: *resume}

	if *configPath != "" {
		runConfig(*configPath, *csv)
		return
	}
	if *run {
		runCustom(customSpec{
			mode: *mode, policy: *policy, limitMW: *limitMW, dod: *dod,
			p1: *p1, p2: *p2, p3: *p3, seed: *seed, tracePath: *tracePath,
			analytics: *analytics, faultsSpec: *faultsSpec, watchdog: *watchdog,
			storm: *stormDur, admission: *admission, guard: *guard,
			grid: *gridSpec, gridCapCSV: *gridCapCSV,
			gridPriceCSV: *gridPriceCSV, gridCarbonCSV: *gridCarbonCSV,
			serve: *serve, pace: *pace, ckpt: ckf, kernel: *kernel,
		})
		return
	}
	if *endurance {
		runEndurance(*years, *seed, *mode, *policy, *limitMW, *p1, *p2, *p3, *csv, ckf)
		return
	}

	emitChart := func(c *report.Chart) {
		var err error
		if *csv {
			err = c.RenderCSV(os.Stdout)
		} else {
			err = c.RenderASCII(os.Stdout, 78, 18)
		}
		check(err)
		fmt.Println()
	}

	ran := false
	switch *gridFig {
	case "shrink":
		res, err := scenario.RunGridShrink(*seed)
		check(err)
		emitChart(res.Chart)
		if *csv {
			check(res.Table.RenderCSV(os.Stdout))
		} else {
			check(res.Table.Render(os.Stdout))
		}
		fmt.Println()
		ran = true
	case "shave":
		res, err := scenario.RunGridShave(*seed)
		check(err)
		emitChart(res.Chart)
		g := res.Run.Grid
		fmt.Printf("shave: %d starts (%d rotations), %v carried by batteries; cap violations %d; peak draw %v\n",
			g.ShaveStarts, g.ShaveRotations, g.ShavedEnergy, g.ViolationTicks, g.PeakDraw)
		ran = true
	}
	if *all || *fig == 12 {
		c, err := scenario.Fig12Chart(*seed)
		check(err)
		emitChart(c)
		ran = true
	}
	if *all || *fig == 13 || *table == 3 {
		res, err := scenario.RunFig13(*seed)
		check(err)
		if *all || *fig == 13 {
			for _, c := range res.Charts {
				emitChart(c)
			}
		}
		if *csv {
			check(res.TableIII.RenderCSV(os.Stdout))
		} else {
			check(res.TableIII.Render(os.Stdout))
		}
		fmt.Println()
		ran = true
	}
	if *all || *fig == 14 {
		charts, err := scenario.RunFig14(*seed)
		check(err)
		for _, c := range charts {
			emitChart(c)
		}
		ran = true
	}
	if *all || *fig == 15 {
		charts, err := scenario.RunFig15(*seed)
		check(err)
		for _, c := range charts {
			emitChart(c)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "coordsim: pass -fig 12|13|14|15, -table 3, -grid-fig shrink|shave, or -all")
		flag.Usage()
		os.Exit(2)
	}
}

// validateFlags assembles the parsed flag state and exits 2 on the first
// combination error (see validateCombination for the rules).
func validateFlags(pace float64, seed int64, resume, gridFig, kernel string) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateCombination(flagValues{set: set, pace: pace, seed: seed, resume: resume, gridFig: gridFig, kernel: kernel}); err != nil {
		fmt.Fprintf(os.Stderr, "coordsim: %v\n", err)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordsim: %v\n", err)
		os.Exit(1)
	}
}
