package main

import (
	"path/filepath"
	"strings"
	"testing"

	"coordcharge/internal/ckpt"
)

func mkSet(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestValidateCombination(t *testing.T) {
	// A real checkpoint file for the -resume content rules.
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	if err := ckpt.WriteFileAtomic(ckptPath, map[string]any{"kind": "coordinated", "seed": 7}); err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "torn.ckpt")
	data := []byte("coordcharge-ckpt not json")
	if err := ckpt.WriteAtomic(truncated, data); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		v       flagValues
		wantErr string // substring; empty = valid
	}{
		{"bare", flagValues{set: mkSet()}, ""},
		{"run alone", flagValues{set: mkSet("run")}, ""},
		{"storm without run", flagValues{set: mkSet("storm")}, "-storm requires -run"},
		{"run with fig", flagValues{set: mkSet("run", "fig")}, "incompatible with -fig"},
		{"admission without storm", flagValues{set: mkSet("run", "admission")}, "-admission requires -storm"},
		{"pace without serve", flagValues{set: mkSet("run", "pace")}, "-pace requires -serve"},
		{"negative pace", flagValues{set: mkSet("run", "pace", "serve"), pace: -1}, "must be >= 0"},
		{"years without endurance", flagValues{set: mkSet("years")}, "-years requires -endurance"},

		{"grid without run", flagValues{set: mkSet("grid")}, "-grid requires -run"},
		{"grid with run", flagValues{set: mkSet("run", "grid")}, ""},
		{"grid cap csv without grid", flagValues{set: mkSet("run", "grid-cap-csv")}, "-grid-cap-csv requires -grid"},
		{"grid price csv without grid", flagValues{set: mkSet("run", "grid-price-csv")}, "-grid-price-csv requires -grid"},
		{"grid carbon csv with grid", flagValues{set: mkSet("run", "grid", "grid-carbon-csv")}, ""},
		{"grid-fig shrink", flagValues{set: mkSet("grid-fig"), gridFig: "shrink"}, ""},
		{"grid-fig shave", flagValues{set: mkSet("grid-fig"), gridFig: "shave"}, ""},
		{"grid-fig bogus", flagValues{set: mkSet("grid-fig"), gridFig: "blackout"}, `-grid-fig must be "shrink" or "shave"`},
		{"grid-fig with run", flagValues{set: mkSet("run", "grid-fig"), gridFig: "shave"}, "incompatible with -grid-fig"},
		{"grid-fig with endurance", flagValues{set: mkSet("endurance", "grid-fig"), gridFig: "shrink"}, "-grid-fig is incompatible with -endurance"},

		{"interval without checkpoint", flagValues{set: mkSet("run", "checkpoint-interval")}, "-checkpoint-interval requires -checkpoint"},
		{"checkpoint without run", flagValues{set: mkSet("checkpoint")}, "-checkpoint requires -run or -endurance"},
		{"checkpoint with run", flagValues{set: mkSet("run", "checkpoint")}, ""},
		{"checkpoint with endurance", flagValues{set: mkSet("endurance", "checkpoint", "checkpoint-interval")}, ""},
		{"resume without run", flagValues{set: mkSet("resume"), resume: ckptPath, seed: 7}, "-resume requires -run or -endurance"},
		{"resume with config", flagValues{set: mkSet("endurance", "resume", "config"), resume: ckptPath, seed: 7}, "-resume is incompatible with -config"},
		{"resume seed match", flagValues{set: mkSet("run", "resume", "seed"), resume: ckptPath, seed: 7}, ""},
		{"resume seed mismatch", flagValues{set: mkSet("run", "resume", "seed"), resume: ckptPath, seed: 8}, "checkpointed with -seed 7"},
		{"resume default seed mismatch", flagValues{set: mkSet("run", "resume"), resume: ckptPath, seed: 1}, "checkpointed with -seed 7"},
		{"resume missing file", flagValues{set: mkSet("run", "resume"), resume: filepath.Join(dir, "nope.ckpt"), seed: 1}, "-resume"},
		{"resume corrupt file", flagValues{set: mkSet("run", "resume"), resume: truncated, seed: 1}, "-resume"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateCombination(tc.v)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
