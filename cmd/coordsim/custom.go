package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/config"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/grid"
	"coordcharge/internal/obs"
	"coordcharge/internal/rack"
	"coordcharge/internal/scenario"
	"coordcharge/internal/storm"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// customSpec collects the -run flags.
type customSpec struct {
	mode, policy  string
	limitMW, dod  float64
	p1, p2, p3    int
	seed          int64
	tracePath     string
	analytics     bool
	faultsSpec    string
	watchdog      time.Duration
	storm         time.Duration
	admission     bool
	guard         bool
	grid          string
	gridCapCSV    string
	gridPriceCSV  string
	gridCarbonCSV string
	serve         string
	pace          float64
	ckpt          checkpointFlags
	kernel        string
}

// buildGridSpec lowers the -grid flag family onto a grid.Spec: the inline
// spec string plus any CSV-loaded signal series, attached before validation
// so thresholds referencing a file-loaded series parse.
func buildGridSpec(cs customSpec) (*grid.Spec, error) {
	loadCSV := func(path string) (*grid.Series, error) {
		if path == "" {
			return nil, nil
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := grid.ParseSeriesCSV(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return s, nil
	}
	cap, err := loadCSV(cs.gridCapCSV)
	if err != nil {
		return nil, err
	}
	price, err := loadCSV(cs.gridPriceCSV)
	if err != nil {
		return nil, err
	}
	carbon, err := loadCSV(cs.gridCarbonCSV)
	if err != nil {
		return nil, err
	}
	return grid.ParseSpecWith(cs.grid, cap, price, carbon)
}

// armInterrupt wires SIGTERM (and Ctrl-C) to a graceful stop: the poll
// function is handed to the scenario layer as Spec.Interrupt, so the run
// writes a final checkpoint at the next tick boundary and returns a partial
// result instead of dying mid-write.
func armInterrupt() func() bool {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	interrupted := false
	return func() bool {
		if !interrupted {
			select {
			case <-stop:
				interrupted = true
			default:
			}
		}
		return interrupted
	}
}

// reportInterrupted prints the resume hint after a graceful stop.
func reportInterrupted(ckpt checkpointFlags) {
	if ckpt.path != "" {
		fmt.Fprintf(os.Stderr, "coordsim: interrupted; checkpoint written to %s — resume with -resume %s\n", ckpt.path, ckpt.path)
	} else {
		fmt.Fprintln(os.Stderr, "coordsim: interrupted; no -checkpoint configured, run state was not saved")
	}
}

func parseMode(s string) (dynamo.Mode, error) { return config.ParseMode(s) }

// runConfig executes every experiment section of a JSON experiment file.
func runConfig(path string, csv bool) {
	f, err := config.Load(path)
	check(err)
	if f.Coordinated != nil {
		spec, err := f.Coordinated.CoordSpec()
		check(err)
		res, err := scenario.RunCoordinated(spec)
		check(err)
		printCoordSummary(spec, res)
	}
	if f.Endurance != nil {
		spec, err := f.Endurance.EnduranceSpec()
		check(err)
		res, err := scenario.RunEndurance(spec)
		check(err)
		tbl := scenario.EnduranceTable(res)
		if csv {
			check(tbl.RenderCSV(os.Stdout))
		} else {
			check(tbl.Render(os.Stdout))
		}
	}
	if f.Advisor != nil {
		spec, err := f.Advisor.AdvisorSpec()
		check(err)
		adv, err := scenario.Advise(spec)
		check(err)
		tbl := scenario.AdviceTable(adv)
		if csv {
			check(tbl.RenderCSV(os.Stdout))
		} else {
			check(tbl.Render(os.Stdout))
		}
	}
}

// printCoordSummary prints the standard single-experiment report.
func printCoordSummary(spec scenario.CoordSpec, res *scenario.CoordResult) {
	fmt.Printf("experiment: %d racks (%d/%d/%d), %s mode, %s charger, %v limit\n",
		spec.NumP1+spec.NumP2+spec.NumP3, spec.NumP1, spec.NumP2, spec.NumP3,
		spec.Mode, spec.LocalPolicy.Name(), spec.MSBLimit)
	fmt.Printf("  transition length:        %v (realised avg DOD %v)\n",
		res.TransitionLength, res.AvgDOD)
	fmt.Printf("  peak MSB draw:            %v\n", res.PeakPower)
	fmt.Printf("  max server capping:       %v (%.0f%% of IT load)\n",
		res.Metrics.MaxCapping, float64(res.Metrics.MaxCappingFraction)*100)
	fmt.Printf("  SLAs met:                 P1 %d/%d, P2 %d/%d, P3 %d/%d\n",
		res.SLAMet[rack.P1], res.Racks[rack.P1],
		res.SLAMet[rack.P2], res.Racks[rack.P2],
		res.SLAMet[rack.P3], res.Racks[rack.P3])
	fmt.Printf("  last charge completed:    %v after the transition\n",
		res.LastChargeDone.Round(time.Second))
	if len(res.Tripped) > 0 {
		fmt.Printf("  BREAKERS TRIPPED:         %v\n", res.Tripped)
	}
	printStormSummary(spec, res)
	printGridSummary(spec, res)
	printFaultSummary(spec, res)
}

// printStormSummary reports the grid event's battery-side cost and what the
// storm machinery did. Silent when neither admission nor the guard is armed
// and the batteries carried the whole outage.
func printStormSummary(spec scenario.CoordSpec, res *scenario.CoordResult) {
	if res.UnservedEnergy > 0 || res.LoadDropEvents > 0 {
		fmt.Printf("  UNSERVED IT LOAD:         %v across %d rack load drops\n",
			res.UnservedEnergy, res.LoadDropEvents)
	}
	if spec.Storm != nil {
		fmt.Printf("  storm admission:          storms %d, paused %d, admitted %d in %d waves (max queue %d, promotions %d)\n",
			res.Storm.Storms, res.Storm.Enqueued, res.Storm.Admitted,
			res.Storm.Waves, res.Storm.MaxQueue, res.Storm.Promotions)
	}
	if spec.Guard != nil {
		fmt.Printf("  breaker guard:            fires %d, demoted %d, paused %d, IT capped %d (max cut %v), resumed %d\n",
			res.Guard.Fires, res.Guard.Demoted, res.Guard.Paused,
			res.Guard.ITCapped, res.Guard.MaxITCut, res.Guard.Resumed)
	}
}

// printGridSummary reports what the grid signal plane did: event and defer
// activity, cap enforcement, peak shaving, and the run's grid-facing
// integrals. Silent when the grid plane is off.
func printGridSummary(spec scenario.CoordSpec, res *scenario.CoordResult) {
	if spec.Grid == nil {
		return
	}
	g := res.Grid
	fmt.Printf("  grid signals:             cap changes %d, droop %d, DR windows %d, defer ticks %d (valve lifts %d)\n",
		g.CapChanges, g.DroopEvents, g.DRWindows, g.DeferTicks, g.DeferLifts)
	fmt.Printf("  grid cap enforcement:     demoted %d, paused %d, SLA repairs %d; violations %d ticks (max over %v)\n",
		g.CapDemotions, g.CapPauses, g.SLARepairs, g.ViolationTicks, g.MaxOverCap)
	if g.ShaveStarts > 0 {
		fmt.Printf("  grid peak shaving:        %d starts (%d rotations), %v carried by batteries\n",
			g.ShaveStarts, g.ShaveRotations, g.ShavedEnergy)
	}
	line := fmt.Sprintf("  grid draw:                peak %v, %v total", g.PeakDraw, g.GridEnergy)
	if spec.Grid.Price != nil {
		line += fmt.Sprintf(", $%.2f energy cost", g.EnergyCost)
	}
	if spec.Grid.Carbon != nil {
		line += fmt.Sprintf(", %.1f kg CO2", g.CarbonKg)
	}
	fmt.Println(line)
}

// printFaultSummary reports what the injector did to the control plane and how
// the degraded modes responded. Silent when fault injection is off and no
// watchdog is armed.
func printFaultSummary(spec scenario.CoordSpec, res *scenario.CoordResult) {
	if !spec.Faults.Enabled() && spec.WatchdogTTL == 0 {
		return
	}
	c := res.FaultCounters
	fmt.Printf("  faults injected:          reads dropped %d / stale %d; commands dropped %d, duplicated %d, delayed %d; outages %d agent, %d controller\n",
		c.ReadsDropped, c.ReadsStaled, c.CommandsDropped, c.CommandsDuplicated,
		c.CommandsDelayed, c.AgentOutages, c.ControllerOutages)
	fmt.Printf("  degraded-mode response:   retries %d, abandoned %d, stale evals %d, controller restarts %d/%d, fail-safe activations %d\n",
		res.Metrics.Retries, res.Metrics.AbandonedOverrides, res.Metrics.StaleTelemetry,
		res.Metrics.Restarts, res.Metrics.Crashes, res.FailSafeActivations)
}

// printAnalytics renders the run's distribution analytics.
func printAnalytics(res *scenario.CoordResult) {
	fmt.Println()
	check(scenario.ChargeDurationTable(res).Render(os.Stdout))
	fmt.Println()
	check(scenario.DODHistogramTable(res, 8).Render(os.Stdout))
	fmt.Println()
	check(scenario.ChargeDurationCDF(res).RenderASCII(os.Stdout, 78, 16))
}

// runEndurance executes the multi-year realized-AOR simulation and prints
// the comparison against Table II targets.
func runEndurance(years float64, seed int64, modeStr, policyStr string, limitMW float64, p1, p2, p3 int, csv bool, ckpt checkpointFlags) {
	mode, err := parseMode(modeStr)
	check(err)
	pol, err := charger.ByName(policyStr)
	check(err)
	spec := scenario.EnduranceSpec{
		Years: years, Seed: seed,
		NumP1: p1, NumP2: p2, NumP3: p3,
		Mode: mode, LocalPolicy: pol,
		Checkpoint:      ckpt.path,
		CheckpointEvery: ckpt.interval,
		Resume:          ckpt.resume,
		Interrupt:       armInterrupt(),
	}
	if limitMW > 0 {
		spec.MSBLimit = units.Power(limitMW) * units.Megawatt
	}
	res, err := scenario.RunEndurance(spec)
	check(err)
	if res.Interrupted {
		reportInterrupted(ckpt)
		return
	}
	tbl := scenario.EnduranceTable(res)
	if csv {
		check(tbl.RenderCSV(os.Stdout))
	} else {
		check(tbl.Render(os.Stdout))
	}
	fmt.Printf("\nmax server capping over the horizon: %v; overrides issued: %d\n",
		res.Metrics.MaxCapping, res.Metrics.OverridesIssued)
}

// runCustom executes one user-specified experiment and prints a summary.
func runCustom(cs customSpec) {
	mode, err := parseMode(cs.mode)
	check(err)
	pol, err := charger.ByName(cs.policy)
	check(err)
	spec := scenario.CoordSpec{
		NumP1: cs.p1, NumP2: cs.p2, NumP3: cs.p3,
		Seed:        cs.seed,
		MSBLimit:    units.Power(cs.limitMW) * units.Megawatt,
		Mode:        mode,
		LocalPolicy: pol,
		AvgDOD:      units.Fraction(cs.dod),
	}
	if cs.faultsSpec != "" {
		fcfg, err := faults.ParseSpec(cs.faultsSpec)
		check(err)
		spec.Faults = fcfg
	}
	spec.WatchdogTTL = cs.watchdog
	spec.OutageLen = cs.storm
	if cs.admission {
		c := storm.Default()
		spec.Storm = &c
	}
	if cs.guard {
		g := storm.DefaultGuardConfig()
		spec.Guard = &g
	}
	gs, err := buildGridSpec(cs)
	check(err)
	spec.Grid = gs
	if spec.Faults.Enabled() || spec.WatchdogTTL > 0 {
		// A lossy control plane needs the degraded-mode machinery armed:
		// staleness detection and override retransmission.
		spec.StaleAfter = 10 * time.Second
		spec.Retry = dynamo.DefaultRetryPolicy()
	}
	if cs.tracePath != "" {
		f, err := os.Open(cs.tracePath)
		check(err)
		m, err := trace.ReadCSV(f)
		f.Close()
		check(err)
		spec.Trace = m
	}
	spec.Kernel = cs.kernel
	spec.Checkpoint = cs.ckpt.path
	spec.CheckpointEvery = cs.ckpt.interval
	spec.Resume = cs.ckpt.resume
	spec.Interrupt = armInterrupt()
	if cs.serve != "" {
		sink := obs.NewSink(obs.DefaultFlightCap)
		spec.Obs = sink
		srv, addr, err := obs.Serve(cs.serve, sink, func() map[string]any {
			return map[string]any{"mode": cs.mode, "seed": cs.seed}
		})
		check(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "coordsim: observability on http://%s (metrics, healthz, debug/flight, debug/pprof)\n", addr)
		if cs.pace > 0 {
			// Pace virtual time against the wall clock so a scraper can watch
			// the run unfold: sleep one tick's worth of wall time, scaled.
			step := spec.Step
			if step == 0 {
				step = 3 * time.Second // RunCoordinated's default tick
			}
			wait := time.Duration(float64(step) / cs.pace)
			spec.StepHook = func(time.Duration) { wallSleep(wait) }
		}
	}
	res, err := scenario.RunCoordinated(spec)
	check(err)
	if res.Interrupted {
		reportInterrupted(cs.ckpt)
		return
	}

	fmt.Printf("experiment: %d racks (%d/%d/%d), %s mode, %s charger, %.2f MW limit, target DOD %.0f%%\n",
		cs.p1+cs.p2+cs.p3, cs.p1, cs.p2, cs.p3, mode, pol.Name(), cs.limitMW, cs.dod*100)
	fmt.Printf("  transition length:        %v (realised avg DOD %v)\n",
		res.TransitionLength, res.AvgDOD)
	fmt.Printf("  peak MSB draw:            %v\n", res.PeakPower)
	fmt.Printf("  max server capping:       %v (%.0f%% of IT load)\n",
		res.Metrics.MaxCapping, float64(res.Metrics.MaxCappingFraction)*100)
	fmt.Printf("  capped energy:            %v\n", res.Metrics.CappedEnergy)
	fmt.Printf("  overrides issued:         %d (plans %d, throttle events %d)\n",
		res.Metrics.OverridesIssued, res.Metrics.PlansComputed, res.Metrics.ThrottleEvents)
	fmt.Printf("  SLAs met:                 P1 %d/%d, P2 %d/%d, P3 %d/%d\n",
		res.SLAMet[rack.P1], res.Racks[rack.P1],
		res.SLAMet[rack.P2], res.Racks[rack.P2],
		res.SLAMet[rack.P3], res.Racks[rack.P3])
	fmt.Printf("  last charge completed:    %v after the transition\n",
		res.LastChargeDone.Round(time.Second))
	if len(res.Tripped) > 0 {
		fmt.Printf("  BREAKERS TRIPPED:         %v\n", res.Tripped)
	}
	if n := res.KernelTicksExecuted + res.KernelTicksSkipped; n > 0 {
		fmt.Printf("  event kernel:             %d/%d ticks executed densely (%d skipped)\n",
			res.KernelTicksExecuted, n, res.KernelTicksSkipped)
	}
	printStormSummary(spec, res)
	printGridSummary(spec, res)
	printFaultSummary(spec, res)
	if cs.analytics {
		printAnalytics(res)
	}
}
