// Command tracegen synthesizes a per-rack power trace shaped like the
// paper's production MSB trace (Fig 12) and writes it as CSV, suitable for
// re-import through the trace reader or for external analysis.
//
// Usage:
//
//	tracegen -racks 316 -hours 168 -step 3s -seed 1 > trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

func main() {
	racks := flag.Int("racks", 316, "number of racks")
	hours := flag.Float64("hours", 1, "trace length in hours")
	step := flag.Duration("step", 3*time.Second, "sampling interval")
	seed := flag.Int64("seed", 1, "random seed")
	trough := flag.Float64("trough", 0, "aggregate trough in MW (0 = scale the 1.9 MW default)")
	peak := flag.Float64("peak", 0, "aggregate peak in MW (0 = scale the 2.1 MW default)")
	flag.Parse()

	spec := trace.Spec{
		NumRacks:    *racks,
		Seed:        *seed,
		Duration:    time.Duration(*hours * float64(time.Hour)),
		TroughPower: units.Power(*trough) * units.Megawatt,
		PeakPower:   units.Power(*peak) * units.Megawatt,
	}
	gen, err := trace.NewGenerator(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	m, err := trace.Materialize(gen, 0, spec.Duration, *step)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := m.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
