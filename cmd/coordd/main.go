// Command coordd is the coordinated-charging daemon: a supervised,
// long-running service hosting a resident fleet simulation while serving
// concurrent what-if advisor queries, on-demand runs, and validated trace
// ingestion over HTTP (see internal/svc).
//
// Usage:
//
//	coordd -addr :8080 -ckpt-dir /var/lib/coordd       # production shape
//	coordd -addr :0 -p1 4 -p2 6 -p3 4 -pace 60         # small paced fleet
//	coordd -no-resident                                 # API plane only
//
// Lifecycle: SIGTERM (or Ctrl-C) drains — in-flight requests finish, the
// resident run writes a final checkpoint, and the process exits 0. On
// restart with the same -ckpt-dir, the daemon auto-discovers the newest
// verified checkpoint and resumes the resident run bit-exactly, falling back
// to the previous-good generation when the latest fails digest verification.
// -fresh ignores any checkpoint and starts over.
//
// The API surface:
//
//	POST /api/v1/advise     what-if breaker sizing (defaults to the resident population)
//	POST /api/v1/run        launch one coordinated run
//	POST /api/v1/ingest     NDJSON trace upload (validated, quarantined on failure)
//	GET  /api/v1/status     lifecycle, pool, breaker, trace store
//	GET  /metrics, /healthz, /debug/flight, /debug/service/flight, /debug/pprof/...
//
// Overload behavior: requests beyond the worker pool and its deficit-aged
// wait queue are shed with 429 + Retry-After; repeated compute failures trip
// a circuit breaker that rejects with 503 until a cooldown probe succeeds.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coordcharge/internal/obs"
	"coordcharge/internal/svc"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address (use :0 for an ephemeral port)")
	ckptDir := flag.String("ckpt-dir", "", "directory for resident-run checkpoints; enables crash-safe auto-resume")
	ckptEvery := flag.Duration("checkpoint-interval", 0, "virtual time between resident checkpoint writes (default 5m)")
	fresh := flag.Bool("fresh", false, "ignore any existing checkpoint and start the resident run from scratch")
	noResident := flag.Bool("no-resident", false, "serve the API plane without a resident simulation")
	// Resident fleet shape (mirrors coordsim -run).
	p1 := flag.Int("p1", 89, "resident fleet: P1 rack count")
	p2 := flag.Int("p2", 142, "resident fleet: P2 rack count")
	p3 := flag.Int("p3", 85, "resident fleet: P3 rack count")
	seed := flag.Int64("seed", 1, "resident fleet: trace seed")
	limitMW := flag.Float64("limit", 2.5, "resident fleet: MSB power limit in MW")
	dod := flag.Float64("dod", 0.5, "resident fleet: target average depth of discharge")
	mode := flag.String("mode", "priority-aware", "resident fleet: none, global, priority-aware, or postpone")
	policy := flag.String("policy", "variable", "resident fleet: local charger (original or variable)")
	outage := flag.Duration("outage", 0, "resident fleet: site-wide grid-event duration (replaces the -dod-derived transition)")
	admission := flag.Bool("admission", false, "resident fleet: arm recharge-storm admission control")
	guard := flag.Bool("guard", false, "resident fleet: arm the last-line breaker guard")
	faultsSpec := flag.String("faults", "", "resident fleet: control-plane fault injection (off, default, or k=v list)")
	gridSpec := flag.String("grid", "", "resident fleet: grid signal plane (off, on, or semicolon key=value elements — see coordsim -grid)")
	watchdog := flag.Duration("watchdog", 0, "resident fleet: rack fail-safe watchdog TTL (0 disables)")
	pace := flag.Float64("pace", 0, "resident fleet: simulated seconds per wall-clock second (0 = free-running)")
	// Service plane.
	workers := flag.Int("workers", 0, "compute worker pool size (default 4)")
	queueCap := flag.Int("queue", 0, "admission wait-queue capacity (default 4×workers; -1 disables queueing)")
	ageBoost := flag.Duration("age-boost", 0, "queue wait that promotes a request one priority class (default 5s)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline; the run-watchdog aborts requests that outlive it (default 60s)")
	brkThreshold := flag.Int("breaker-threshold", 0, "consecutive compute failures that trip the circuit breaker (default 5)")
	brkCooldown := flag.Duration("breaker-cooldown", 0, "how long a tripped breaker stays open before a half-open probe (default 15s)")
	stallTTL := flag.Duration("stall-ttl", 0, "resident-run stall watchdog: abort after this long without a completed tick (default 2m; negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain window on SIGTERM before the resident run is hard-aborted")
	flag.Parse()

	opt := svc.Options{
		Pace:            *pace,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Fresh:           *fresh,
		Pool: svc.PoolConfig{
			Workers:  *workers,
			QueueCap: *queueCap,
			AgeBoost: *ageBoost,
		},
		Breaker: svc.BreakerConfig{
			Threshold: *brkThreshold,
			Cooldown:  *brkCooldown,
		},
		RequestTimeout: *reqTimeout,
		WatchdogTTL:    *stallTTL,
	}
	if !*noResident {
		opt.Resident = &svc.RunRequest{
			P1: *p1, P2: *p2, P3: *p3,
			Seed:      *seed,
			LimitMW:   *limitMW,
			AvgDOD:    *dod,
			Mode:      *mode,
			Policy:    *policy,
			OutageS:   outage.Seconds(),
			Admission: *admission,
			Guard:     *guard,
			WatchdogS: watchdog.Seconds(),
			Faults:    *faultsSpec,
			Grid:      *gridSpec,
		}
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
	}

	s, err := svc.New(opt)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := obs.NewServer(s.Handler())
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}() //coordvet:detached process-lifetime server; exits only via fatal or process end
	// The address line is machine-read by the chaos harness; keep its shape.
	fmt.Printf("coordd: listening on http://%s\n", ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Fprintln(os.Stderr, "coordd: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: flip the service to draining first (new requests get fast
	// 503s and the resident run checkpoints), then let the HTTP server
	// finish whatever was in flight.
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "coordd: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "coordd: stopped")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "coordd: %v\n", err)
	os.Exit(1)
}
