// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark results can be archived and diffed
// mechanically (see `make bench-json`).
//
// Each benchmark line
//
//	BenchmarkStormRecovery-8   1   203417385 ns/op   97.30 recovery-min
//
// becomes
//
//	{"name":"StormRecovery","pkg":"coordcharge","procs":8,"iterations":1,
//	 "metrics":{"ns/op":203417385,"recovery-min":97.3}}
//
// Non-benchmark lines (goos/goarch/cpu headers, PASS/ok trailers) set the
// document's context fields and are otherwise ignored, so the tool can be fed
// the raw output of `go test -bench=. ./...` across many packages.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole document: machine context plus every benchmark.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	doc := &Doc{Benchmarks: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok, err := parseBench(line, pkg)
			if err != nil {
				return nil, err
			}
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseBench parses one "BenchmarkName-P  N  value unit  value unit ..."
// line. Lines that merely start with "Benchmark" but do not follow the
// results grammar (e.g. a failure message) are skipped, not fatal.
func parseBench(line, pkg string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	r := Result{Name: name, Pkg: pkg, Procs: procs, Iterations: iters,
		Metrics: map[string]float64{}}
	// The tail is value/unit pairs; an odd leftover is a malformed line.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false, fmt.Errorf("odd value/unit tail in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bad value %q in %q", rest[i], line)
		}
		r.Metrics[rest[i+1]] = v
	}
	return r, true, nil
}
