// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark results can be archived and diffed
// mechanically (see `make bench-json`).
//
// Each benchmark line
//
//	BenchmarkStormRecovery-8   1   203417385 ns/op   97.30 recovery-min
//
// becomes
//
//	{"name":"StormRecovery","pkg":"coordcharge","procs":8,"iterations":1,
//	 "metrics":{"ns/op":203417385,"recovery-min":97.3}}
//
// Non-benchmark lines (goos/goarch/cpu headers, PASS/ok trailers) set the
// document's context fields and are otherwise ignored, so the tool can be fed
// the raw output of `go test -bench=. ./...` across many packages.
//
// With -compare old.json the tool becomes a regression gate instead of a
// converter: fresh `go test -bench` text on stdin is parsed and its ns/op
// diffed against the archived document. Any benchmark slower than the
// baseline by more than -tolerance percent — or present in the baseline but
// missing from stdin — fails the run (exit 1). See `make bench-compare`.
//
// -min-speedup N adds an absolute floor on the event kernel: every new-run
// benchmark named X/event must have an X/dense sibling at least N times
// slower. Unlike the relative tolerance gate, this floor cannot drift — a
// sequence of sub-tolerance regressions still fails once the measured
// speedup crosses under N.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"coordcharge/internal/ckpt"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole document: machine context plus every benchmark.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	compareWith := flag.String("compare", "", "baseline JSON document to diff ns/op against (regression-gate mode)")
	tolerance := flag.Float64("tolerance", 10, "allowed ns/op regression in percent before -compare fails")
	floor := flag.Float64("floor", 0, "baseline ns/op below which a benchmark is reported but not gated (single-iteration noise)")
	minSpeedup := flag.Float64("min-speedup", 0, "with -compare: minimum dense/event ns/op ratio for every X/event benchmark in the new run (0 disables)")
	out := flag.String("out", "", "write the JSON document to this file atomically (temp+fsync+rename) instead of stdout, so a crash mid-run cannot tear an archived baseline")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *compareWith != "" {
		old, err := loadDoc(*compareWith)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		report, ok := compare(old, doc, *tolerance, *floor)
		fmt.Print(report)
		if *minSpeedup > 0 {
			spReport, spOK := speedupGate(doc, *minSpeedup, *floor)
			fmt.Print(spReport)
			ok = ok && spOK
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *out != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = ckpt.WriteAtomic(*out, append(data, '\n'))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func loadDoc(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compare diffs new ns/op against old, benchmark by benchmark (matched by
// name). It returns a human-readable report and whether the gate passes:
// every baseline benchmark must be present in the new run and no more than
// tolerance percent slower. New-only benchmarks and baseline entries without
// an ns/op metric are reported but never fail the gate; neither do
// benchmarks whose baseline cost is under floor ns — at one measured
// iteration their timing is dominated by scheduler noise, not by the code
// under test (they must still be present, so renames refresh the baseline).
func compare(old, new *Doc, tolerance, floor float64) (string, bool) {
	newByName := map[string]Result{}
	for _, r := range new.Benchmarks {
		newByName[r.Name] = r
	}
	var b strings.Builder
	ok := true
	for _, base := range old.Benchmarks {
		baseNs, has := base.Metrics["ns/op"]
		if !has || baseNs <= 0 {
			fmt.Fprintf(&b, "  ?  %-40s baseline has no ns/op\n", base.Name)
			continue
		}
		cur, found := newByName[base.Name]
		if !found {
			fmt.Fprintf(&b, "FAIL %-40s missing from new run\n", base.Name)
			ok = false
			continue
		}
		curNs := cur.Metrics["ns/op"]
		delta := (curNs - baseNs) / baseNs * 100
		verdict := " ok "
		switch {
		case baseNs < floor:
			verdict = "  - " // under the noise floor: informational only
		case delta > tolerance:
			verdict = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "%s %-40s %14.0f -> %14.0f ns/op  %+7.1f%%\n",
			verdict, base.Name, baseNs, curNs, delta)
	}
	baseNames := map[string]bool{}
	for _, r := range old.Benchmarks {
		baseNames[r.Name] = true
	}
	var added []string
	for name := range newByName {
		if !baseNames[name] {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(&b, " new %-40s %14.0f ns/op (no baseline)\n",
			name, newByName[name].Metrics["ns/op"])
	}
	if ok {
		fmt.Fprintf(&b, "benchjson: gate passed (tolerance %.0f%%)\n", tolerance)
	} else {
		fmt.Fprintf(&b, "benchjson: gate FAILED (tolerance %.0f%%)\n", tolerance)
	}
	return b.String(), ok
}

// speedupGate enforces the event kernel's absolute performance floor on the
// new run: for every benchmark named X/event there must be an X/dense
// sibling, and dense must cost at least min times event's ns/op. Finding no
// pairs at all fails too — losing the kernel benchmarks entirely must not
// read as a pass. An event arm under the noise floor is reported but not
// gated — its single-iteration ratio is scheduler noise — and a regression
// severe enough to push it over the floor re-arms the gate automatically.
func speedupGate(doc *Doc, min, floor float64) (string, bool) {
	byName := map[string]Result{}
	var events []string
	for _, r := range doc.Benchmarks {
		byName[r.Name] = r
		if strings.HasSuffix(r.Name, "/event") {
			events = append(events, r.Name)
		}
	}
	sort.Strings(events)
	var b strings.Builder
	ok := true
	for _, name := range events {
		base := strings.TrimSuffix(name, "/event")
		dense, found := byName[base+"/dense"]
		if !found {
			fmt.Fprintf(&b, "FAIL %-40s has no %s/dense sibling\n", name, base)
			ok = false
			continue
		}
		eventNs := byName[name].Metrics["ns/op"]
		denseNs := dense.Metrics["ns/op"]
		if eventNs <= 0 || denseNs <= 0 {
			fmt.Fprintf(&b, "FAIL %-40s missing ns/op for the speedup ratio\n", name)
			ok = false
			continue
		}
		ratio := denseNs / eventNs
		verdict := " ok "
		switch {
		case eventNs < floor:
			verdict = "  - " // under the noise floor: informational only
		case ratio < min:
			verdict = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "%s %-40s %6.1fx over dense (floor %.1fx)\n", verdict, name, ratio, min)
	}
	if len(events) == 0 {
		fmt.Fprintf(&b, "FAIL no */event benchmarks found to gate\n")
		ok = false
	}
	if ok {
		fmt.Fprintf(&b, "benchjson: speedup floor passed (>= %.1fx)\n", min)
	} else {
		fmt.Fprintf(&b, "benchjson: speedup floor FAILED (>= %.1fx)\n", min)
	}
	return b.String(), ok
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	doc := &Doc{Benchmarks: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok, err := parseBench(line, pkg)
			if err != nil {
				return nil, err
			}
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseBench parses one "BenchmarkName-P  N  value unit  value unit ..."
// line. Lines that merely start with "Benchmark" but do not follow the
// results grammar (e.g. a failure message) are skipped, not fatal.
func parseBench(line, pkg string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	r := Result{Name: name, Pkg: pkg, Procs: procs, Iterations: iters,
		Metrics: map[string]float64{}}
	// The tail is value/unit pairs; an odd leftover is a malformed line.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false, fmt.Errorf("odd value/unit tail in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bad value %q in %q", rest[i], line)
		}
		r.Metrics[rest[i+1]] = v
	}
	return r, true, nil
}
