package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: coordcharge
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStormRecovery-8   	       1	 203417385 ns/op	        97.30 recovery-min
BenchmarkObsOverhead/disabled-8         	       2	 100777446 ns/op
BenchmarkObsOverhead/enabled-8          	       2	 134066046 ns/op	      5540 events
PASS
ok  	coordcharge	12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU == "" {
		t.Fatalf("context not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "StormRecovery" || b.Pkg != "coordcharge" || b.Procs != 8 || b.Iterations != 1 {
		t.Fatalf("first benchmark = %+v", b)
	}
	if b.Metrics["ns/op"] != 203417385 || b.Metrics["recovery-min"] != 97.30 {
		t.Fatalf("first benchmark metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[2].Name != "ObsOverhead/enabled" || doc.Benchmarks[2].Metrics["events"] != 5540 {
		t.Fatalf("sub-benchmark = %+v", doc.Benchmarks[2])
	}
}

func TestParseSkipsMalformedNames(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken\nBenchmarkAlso-8 notanumber ns/op\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage, want 0", len(doc.Benchmarks))
	}
}
