package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: coordcharge
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStormRecovery-8   	       1	 203417385 ns/op	        97.30 recovery-min
BenchmarkObsOverhead/disabled-8         	       2	 100777446 ns/op
BenchmarkObsOverhead/enabled-8          	       2	 134066046 ns/op	      5540 events
PASS
ok  	coordcharge	12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU == "" {
		t.Fatalf("context not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "StormRecovery" || b.Pkg != "coordcharge" || b.Procs != 8 || b.Iterations != 1 {
		t.Fatalf("first benchmark = %+v", b)
	}
	if b.Metrics["ns/op"] != 203417385 || b.Metrics["recovery-min"] != 97.30 {
		t.Fatalf("first benchmark metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[2].Name != "ObsOverhead/enabled" || doc.Benchmarks[2].Metrics["events"] != 5540 {
		t.Fatalf("sub-benchmark = %+v", doc.Benchmarks[2])
	}
}

func TestParseSkipsMalformedNames(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken\nBenchmarkAlso-8 notanumber ns/op\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage, want 0", len(doc.Benchmarks))
	}
}

func docFromText(t *testing.T, text string) *Doc {
	t.Helper()
	doc, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestCompareWithinTolerance(t *testing.T) {
	old := docFromText(t, "BenchmarkA 1 1000 ns/op")
	cur := docFromText(t, "BenchmarkA 1 1080 ns/op")
	report, ok := compare(old, cur, 10, 0)
	if !ok {
		t.Fatalf("8%% regression failed a 10%% gate:\n%s", report)
	}
	if !strings.Contains(report, "gate passed") {
		t.Fatalf("report missing pass marker:\n%s", report)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	old := docFromText(t, "BenchmarkA 1 1000 ns/op")
	cur := docFromText(t, "BenchmarkA 1 1500 ns/op")
	report, ok := compare(old, cur, 10, 0)
	if ok {
		t.Fatalf("50%% regression passed a 10%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report missing failure marker:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	old := docFromText(t, "BenchmarkA 1 1000 ns/op")
	cur := docFromText(t, "BenchmarkA 1 400 ns/op")
	if report, ok := compare(old, cur, 10, 0); !ok {
		t.Fatalf("speedup failed the gate:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := docFromText(t, "BenchmarkA 1 1000 ns/op\nBenchmarkB 1 2000 ns/op")
	cur := docFromText(t, "BenchmarkA 1 1000 ns/op")
	report, ok := compare(old, cur, 10, 0)
	if ok {
		t.Fatalf("missing benchmark passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "missing from new run") {
		t.Fatalf("report missing the missing-benchmark marker:\n%s", report)
	}
}

func TestCompareNewBenchmarkReportedNotFatal(t *testing.T) {
	old := docFromText(t, "BenchmarkA 1 1000 ns/op")
	cur := docFromText(t, "BenchmarkA 1 1000 ns/op\nBenchmarkNew 1 5 ns/op")
	report, ok := compare(old, cur, 10, 0)
	if !ok {
		t.Fatalf("new benchmark failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "no baseline") {
		t.Fatalf("report missing new-benchmark marker:\n%s", report)
	}
}

func TestSpeedupGate(t *testing.T) {
	cur := docFromText(t, `BenchmarkFig13Kernel/dense 1 100000000 ns/op
BenchmarkFig13Kernel/event 1 10000000 ns/op
BenchmarkStormKernel/dense 1 25000000 ns/op
BenchmarkStormKernel/event 1 4000000 ns/op`)
	if report, ok := speedupGate(cur, 5, 0); !ok {
		t.Fatalf("10x and 6.25x speedups failed a 5x floor:\n%s", report)
	}
	if report, ok := speedupGate(cur, 8, 0); ok {
		t.Fatalf("6.25x speedup passed an 8x floor:\n%s", report)
	} else if !strings.Contains(report, "StormKernel/event") {
		t.Fatalf("report does not name the failing pair:\n%s", report)
	}
}

func TestSpeedupGateNoiseFloorExemptsCheapEventArm(t *testing.T) {
	// The event arm sits under the noise floor: its 3x ratio is reported,
	// not gated. A regression pushing it over the floor re-arms the gate.
	cur := docFromText(t, `BenchmarkStormKernel/dense 1 24000000 ns/op
BenchmarkStormKernel/event 1 8000000 ns/op`)
	if report, ok := speedupGate(cur, 5, 10_000_000); !ok {
		t.Fatalf("under-floor event arm failed the gate:\n%s", report)
	}
	cur = docFromText(t, `BenchmarkStormKernel/dense 1 24000000 ns/op
BenchmarkStormKernel/event 1 12000000 ns/op`)
	if report, ok := speedupGate(cur, 5, 10_000_000); ok {
		t.Fatalf("over-floor 2x ratio passed a 5x gate:\n%s", report)
	}
}

func TestSpeedupGateMissingDenseSiblingFails(t *testing.T) {
	cur := docFromText(t, "BenchmarkFig13Kernel/event 1 10000000 ns/op")
	report, ok := speedupGate(cur, 5, 0)
	if ok {
		t.Fatalf("orphan event benchmark passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "no") || !strings.Contains(report, "dense sibling") {
		t.Fatalf("report missing the orphan marker:\n%s", report)
	}
}

func TestSpeedupGateNoPairsFails(t *testing.T) {
	cur := docFromText(t, "BenchmarkA 1 1000 ns/op")
	if report, ok := speedupGate(cur, 5, 0); ok {
		t.Fatalf("a run with no kernel benchmarks passed the speedup gate:\n%s", report)
	}
}

func TestCompareFloorExemptsNoisyMicrobenchmarks(t *testing.T) {
	old := docFromText(t, "BenchmarkMicro 1 1000 ns/op\nBenchmarkBig 1 50000000 ns/op")
	cur := docFromText(t, "BenchmarkMicro 1 9000 ns/op\nBenchmarkBig 1 50000000 ns/op")
	if report, ok := compare(old, cur, 10, 10_000_000); !ok {
		t.Fatalf("under-floor regression failed the gate:\n%s", report)
	}
	// The floor does not exempt genuinely gated benchmarks.
	cur = docFromText(t, "BenchmarkMicro 1 1000 ns/op\nBenchmarkBig 1 90000000 ns/op")
	if report, ok := compare(old, cur, 10, 10_000_000); ok {
		t.Fatalf("over-floor regression passed the gate:\n%s", report)
	}
	// Nor does it excuse a missing benchmark.
	cur = docFromText(t, "BenchmarkBig 1 50000000 ns/op")
	if report, ok := compare(old, cur, 10, 10_000_000); ok {
		t.Fatalf("missing under-floor benchmark passed the gate:\n%s", report)
	}
}
