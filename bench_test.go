// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices called out in DESIGN.md §5. Each
// benchmark runs the same code path as the corresponding cmd/ binary; custom
// metrics report the headline quantity of the artifact (spike magnitude,
// capping, SLA counts) alongside the usual ns/op.
package coordcharge

import (
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/reliability"
	"coordcharge/internal/scenario"
	"coordcharge/internal/storm"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// BenchmarkFig2RegionOutage replays Case I: the regional utility sag whose
// battery recharge spiked a 61.6 MW region by ~9.3 MW (original charger).
func BenchmarkFig2RegionOutage(b *testing.B) {
	var spike float64
	for i := 0; i < b.N; i++ {
		c := scenario.Fig2Chart(16)
		pts := c.Series[0].Points
		base, peak := pts[0].Y, 0.0
		for _, p := range pts {
			if p.Y > peak {
				peak = p.Y
			}
		}
		spike = peak - base
	}
	b.ReportMetric(spike, "spike-MW")
}

// BenchmarkFig3ChargeProfile regenerates the full-discharge CC-CV charging
// sequence of one BBU at 5 A.
func BenchmarkFig3ChargeProfile(b *testing.B) {
	p := battery.DefaultParams()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		pts := battery.Profile(p, 5, 1, 10*time.Second)
		total = pts[len(pts)-1].T
	}
	b.ReportMetric(total.Minutes(), "charge-min")
}

// BenchmarkFig4PowerVsDOD regenerates the recharge-power-versus-time curves
// for four depths of discharge.
func BenchmarkFig4PowerVsDOD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = scenario.Fig4Chart()
	}
}

// BenchmarkFig5ChargeTimeGrid evaluates the empirical charge-time surface
// over the full (current × DOD) grid.
func BenchmarkFig5ChargeTimeGrid(b *testing.B) {
	s := battery.Fig5Surface()
	for i := 0; i < b.N; i++ {
		for c := units.Current(1); c <= 5; c += 0.1 {
			for d := units.Fraction(0); d <= 1; d += 0.01 {
				_ = s.ChargeTime(c, d)
			}
		}
	}
}

// BenchmarkFig6VariableCurrent evaluates Eq 1 across the DOD range.
func BenchmarkFig6VariableCurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for d := units.Fraction(0); d <= 1; d += 0.001 {
			_ = charger.Eq1(d)
		}
	}
}

// BenchmarkFig7RowValidation replays the 14-rack variable-charger production
// test (60 s RPP transition, ~20 % DOD).
func BenchmarkFig7RowValidation(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		c := scenario.Fig7Chart()
		spike := func(s int) float64 {
			base, peak := c.Series[s].Points[0].Y, 0.0
			for _, p := range c.Series[s].Points {
				if p.Y > peak {
					peak = p.Y
				}
			}
			return peak - base
		}
		reduction = 1 - spike(0)/spike(1)
	}
	b.ReportMetric(reduction*100, "reduction-%")
}

// BenchmarkFig9aAORMonteCarlo runs the Table I reliability Monte Carlo and
// sweeps AOR across charging times (1000 simulated years per iteration).
func BenchmarkFig9aAORMonteCarlo(b *testing.B) {
	var aor30 float64
	for i := 0; i < b.N; i++ {
		s, err := reliability.NewSimulator(reliability.TableI(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pts := s.Sweep(1000, []time.Duration{30 * time.Minute, 60 * time.Minute, 90 * time.Minute})
		aor30 = float64(pts[0].AOR) * 100
	}
	b.ReportMetric(aor30, "AOR30min-%")
}

// BenchmarkTable2SLADerivation derives Table II (AOR per priority SLA).
func BenchmarkTable2SLADerivation(b *testing.B) {
	var p1Loss float64
	for i := 0; i < b.N; i++ {
		s, err := reliability.NewSimulator(reliability.TableI(), 1)
		if err != nil {
			b.Fatal(err)
		}
		rows := s.TableII(2000)
		p1Loss = rows[0].LossHoursPerYear
	}
	b.ReportMetric(p1Loss, "P1-loss-hr/yr")
}

// BenchmarkFig9bSLACurrent inverts the charge-time surface for the SLA
// current of every priority across the DOD range.
func BenchmarkFig9bSLACurrent(b *testing.B) {
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
			for d := units.Fraction(0); d <= 1; d += 0.01 {
				_, _ = cfg.SLACurrent(p, d)
			}
		}
	}
}

// BenchmarkFig10PrototypeRow replays the 17-rack prototype row coordinated
// by a leaf controller (9 P1 at 2 A, 8 P2/P3 at 1 A).
func BenchmarkFig10PrototypeRow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = scenario.Fig10Chart()
	}
}

// BenchmarkFig11OverrideLatency replays the fine-grained single-rack
// override with the 20 s command-settling latency.
func BenchmarkFig11OverrideLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = scenario.Fig11Chart()
	}
}

// BenchmarkFig12TraceGen synthesizes the weekly 316-rack MSB trace and scans
// its aggregate envelope.
func BenchmarkFig12TraceGen(b *testing.B) {
	var peakMW float64
	for i := 0; i < b.N; i++ {
		gen, err := trace.NewGenerator(trace.Spec{NumRacks: 316, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		st := trace.AggregateStats(gen, 0, 7*24*time.Hour, 30*time.Minute)
		peakMW = st.Max.MW()
	}
	b.ReportMetric(peakMW, "peak-MW")
}

// fig13Run executes one Fig 13 cell at production scale.
func fig13Run(b *testing.B, mode dynamo.Mode, pol charger.Policy, limit units.Power, dod units.Fraction) *scenario.CoordResult {
	b.Helper()
	res, err := scenario.RunCoordinated(scenario.CoordSpec{
		NumP1: 89, NumP2: 142, NumP3: 85, Seed: 1,
		MSBLimit: limit, Mode: mode, LocalPolicy: pol, AvgDOD: dod,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig13CoordinatedCharging runs the hardest Fig 13 case — (f) high
// discharge at the 2.3 MW low limit — under all three algorithms.
func BenchmarkFig13CoordinatedCharging(b *testing.B) {
	b.ReportAllocs()
	var prioCapKW float64
	for i := 0; i < b.N; i++ {
		_ = fig13Run(b, dynamo.ModeNone, charger.Original{}, 2.3*units.Megawatt, 0.7)
		_ = fig13Run(b, dynamo.ModeNone, charger.Variable{}, 2.3*units.Megawatt, 0.7)
		prio := fig13Run(b, dynamo.ModePriorityAware, charger.Variable{}, 2.3*units.Megawatt, 0.7)
		prioCapKW = prio.Metrics.MaxCapping.KW()
	}
	b.ReportMetric(prioCapKW, "prio-cap-kW")
}

// BenchmarkTable3MaxCapping regenerates the full Table III: six cases under
// three algorithms (18 production-scale runs per iteration).
func BenchmarkTable3MaxCapping(b *testing.B) {
	b.ReportAllocs()
	var origWorstKW float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunFig13(1)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Charts
		// Parse-free worst case: rerun the original charger's (f) cell.
		orig := fig13Run(b, dynamo.ModeNone, charger.Original{}, 2.3*units.Megawatt, 0.7)
		origWorstKW = orig.Metrics.MaxCapping.KW()
	}
	b.ReportMetric(origWorstKW, "orig-cap-kW")
}

// BenchmarkFig14SLAVsLimit sweeps the power limit for priority-aware versus
// global charging at medium discharge (one Fig 14 row per iteration).
func BenchmarkFig14SLAVsLimit(b *testing.B) {
	var paP1 float64
	for i := 0; i < b.N; i++ {
		pa, err := scenario.RunSweep(scenario.SweepSpec{
			Label: "bench", NumP1: 89, NumP2: 142, NumP3: 85,
			AvgDOD: 0.5, Mode: dynamo.ModePriorityAware, Seed: 1,
			Limits: []units.Power{2.6 * units.Megawatt, 2.4 * units.Megawatt, 2.2 * units.Megawatt},
		})
		if err != nil {
			b.Fatal(err)
		}
		_, err = scenario.RunSweep(scenario.SweepSpec{
			Label: "bench", NumP1: 89, NumP2: 142, NumP3: 85,
			AvgDOD: 0.5, Mode: dynamo.ModeGlobal, Seed: 1,
			Limits: []units.Power{2.6 * units.Megawatt, 2.4 * units.Megawatt, 2.2 * units.Megawatt},
		})
		if err != nil {
			b.Fatal(err)
		}
		paP1 = pa.Series[0].Points[1].Y // P1 SLAs met at 2.4 MW
	}
	b.ReportMetric(paP1, "PA-P1@2.4MW")
}

// BenchmarkFig15PriorityDistributions contrasts priority-aware and global
// charging when every rack is P1 (the paper's ~3× average improvement).
func BenchmarkFig15PriorityDistributions(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		limits := []units.Power{2.6 * units.Megawatt, 2.4 * units.Megawatt, 2.2 * units.Megawatt}
		pa, err := scenario.RunSweep(scenario.SweepSpec{
			Label: "bench", NumP1: 316, AvgDOD: 0.5,
			Mode: dynamo.ModePriorityAware, Seed: 1, Limits: limits,
		})
		if err != nil {
			b.Fatal(err)
		}
		gl, err := scenario.RunSweep(scenario.SweepSpec{
			Label: "bench", NumP1: 316, AvgDOD: 0.5,
			Mode: dynamo.ModeGlobal, Seed: 1, Limits: limits,
		})
		if err != nil {
			b.Fatal(err)
		}
		var paSum, glSum float64
		for k := range limits {
			paSum += pa.Series[0].Points[k].Y
			glSum += gl.Series[0].Points[k].Y
		}
		if glSum > 0 {
			ratio = paSum / glSum
		} else {
			ratio = paSum
		}
	}
	b.ReportMetric(ratio, "PA/global")
}

// BenchmarkAblationSortOrder compares Algorithm 1's grant order against the
// priority-only, DOD-only, and arrival orders on total SLAs met.
func BenchmarkAblationSortOrder(b *testing.B) {
	racks := make([]core.RackInfo, 316)
	for i := range racks {
		racks[i] = core.RackInfo{
			ID:       i,
			Priority: rack.Priority(1 + i%3),
			DOD:      units.Fraction(10+(i*13)%81) / 100,
		}
	}
	available := 316*380*units.Watt + 100*380*units.Watt
	var alg1Total float64
	for i := 0; i < b.N; i++ {
		for _, o := range []core.OrderPolicy{core.OrderPriorityThenDOD, core.OrderPriorityOnly, core.OrderDODOnly, core.OrderArrival} {
			cfg := core.DefaultConfig()
			cfg.Order = o
			met := core.SLAMetByPriority(core.PlanPriorityAware(available, racks, cfg))
			if o == core.OrderPriorityThenDOD {
				alg1Total = float64(met[rack.P1] + met[rack.P2] + met[rack.P3])
			}
		}
	}
	b.ReportMetric(alg1Total, "alg1-SLAs")
}

// BenchmarkAblationQuantisation compares the 1 A production override grid
// against a 0.1 A grid.
func BenchmarkAblationQuantisation(b *testing.B) {
	racks := make([]core.RackInfo, 316)
	for i := range racks {
		racks[i] = core.RackInfo{ID: i, Priority: rack.Priority(1 + i%3), DOD: units.Fraction(10+(i*13)%81) / 100}
	}
	available := 316*380*units.Watt + 100*380*units.Watt
	var gain float64
	for i := 0; i < b.N; i++ {
		coarse := core.DefaultConfig()
		fine := core.DefaultConfig()
		fine.Resolution = 0.1
		sum := func(m map[rack.Priority]int) float64 {
			return float64(m[rack.P1] + m[rack.P2] + m[rack.P3])
		}
		nc := sum(core.SLAMetByPriority(core.PlanPriorityAware(available, racks, coarse)))
		nf := sum(core.SLAMetByPriority(core.PlanPriorityAware(available, racks, fine)))
		gain = nf - nc
	}
	b.ReportMetric(gain, "fine-grid-gain")
}

// BenchmarkAblationThrottle compares reverse-order minimum throttling with
// proportional scaling on how many P1 racks each touches.
func BenchmarkAblationThrottle(b *testing.B) {
	cfg := core.DefaultConfig()
	var active []core.ActiveCharge
	for i := 0; i < 316; i++ {
		active = append(active, core.ActiveCharge{
			RackInfo: core.RackInfo{ID: i, Priority: rack.Priority(1 + i%3), DOD: 0.5},
			Current:  3,
		})
	}
	excess := 100 * 380 * units.Watt
	var reverseP1 float64
	for i := 0; i < b.N; i++ {
		ids := core.ThrottleToMinimum(excess, active, cfg)
		n := 0
		for _, id := range ids {
			if active[id].Priority == rack.P1 {
				n++
			}
		}
		reverseP1 = float64(n)
		_ = core.ThrottleProportional(excess, active, cfg)
	}
	b.ReportMetric(reverseP1, "P1-throttled")
}

// BenchmarkDistributedControlPlane runs a charging event on the
// message-passing control plane (30 racks; agents, leaf controllers, and an
// MSB controller over the simulated network) and reports the message volume.
func BenchmarkDistributedControlPlane(b *testing.B) {
	var overrides float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunCoordinated(scenario.CoordSpec{
			NumP1: 10, NumP2: 10, NumP3: 10, Seed: 1,
			MSBLimit: 225 * units.Kilowatt, Mode: dynamo.ModePriorityAware,
			AvgDOD: 0.5, Distributed: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		overrides = float64(res.Metrics.OverridesIssued)
	}
	b.ReportMetric(overrides, "overrides")
}

// BenchmarkEnduranceRealizedAOR runs ten simulated years of Table I failure
// events through the live control plane.
func BenchmarkEnduranceRealizedAOR(b *testing.B) {
	var p1AOR float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.RunEndurance(scenario.EnduranceSpec{Years: 10, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		p1AOR = float64(res.AOR[rack.P1]) * 100
	}
	b.ReportMetric(p1AOR, "P1-AOR-%")
}

// BenchmarkCapacityAdvisor sizes a 30-rack breaker (≈16 bisection probes).
func BenchmarkCapacityAdvisor(b *testing.B) {
	var savedKW float64
	for i := 0; i < b.N; i++ {
		adv, err := scenario.Advise(scenario.AdvisorSpec{
			NumP1: 10, NumP2: 10, NumP3: 10, AvgDOD: 0.5,
			Mode: dynamo.ModePriorityAware, Seed: 1,
			Resolution: 5 * units.Kilowatt,
		})
		if err != nil {
			b.Fatal(err)
		}
		savedKW = adv.SavedPower.KW()
	}
	b.ReportMetric(savedKW, "saved-kW")
}

// BenchmarkAblationCommandLatency measures why fast override settling
// matters: with a slow (60 s) command path, racks charge at their local
// variable-charger currents during the window before the plan lands, and the
// transient overload forces capping that instant coordination avoids.
func BenchmarkAblationCommandLatency(b *testing.B) {
	var capSlowKW float64
	for i := 0; i < b.N; i++ {
		run := func(latency time.Duration) units.Power {
			res, err := scenario.RunCoordinated(scenario.CoordSpec{
				NumP1: 89, NumP2: 142, NumP3: 85, Seed: 1,
				MSBLimit: 2.3 * units.Megawatt, Mode: dynamo.ModePriorityAware,
				AvgDOD: 0.7, CommandLatency: latency,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Metrics.MaxCapping
		}
		fast := run(0)
		slow := run(60 * time.Second)
		if fast > slow {
			b.Fatalf("fast control capped more (%v) than slow (%v)", fast, slow)
		}
		capSlowKW = slow.KW()
	}
	b.ReportMetric(capSlowKW, "slow-cap-kW")
}

// BenchmarkAblationPollCadence sweeps the distributed plane's polling period
// — the detection-latency knob the paper's 3-second telemetry implies.
func BenchmarkAblationPollCadence(b *testing.B) {
	var p1At30s float64
	for i := 0; i < b.N; i++ {
		for _, step := range []time.Duration{3 * time.Second, 30 * time.Second} {
			res, err := scenario.RunCoordinated(scenario.CoordSpec{
				NumP1: 10, NumP2: 10, NumP3: 10, Seed: 1,
				MSBLimit: 225 * units.Kilowatt, Mode: dynamo.ModePriorityAware,
				AvgDOD: 0.5, Distributed: true, Step: step,
			})
			if err != nil {
				b.Fatal(err)
			}
			if step == 30*time.Second {
				p1At30s = float64(res.SLAMet[rack.P1])
			}
		}
	}
	b.ReportMetric(p1At30s, "P1-SLAs@30s")
}

// BenchmarkStormRecovery replays the recharge-storm survival scenario
// (DESIGN.md §7): a site-wide 90 s outage at peak load drains 30 BBUs, and
// the admission-controlled, guard-protected recharge must clear the backlog
// under a breaker tightened to a 5%-over-for-30s trip rule. Reports the
// wall-clock of one full recovery and the time the last rack finished.
func BenchmarkStormRecovery(b *testing.B) {
	b.ReportAllocs()
	var recoveryMin float64
	for i := 0; i < b.N; i++ {
		sc := storm.Default()
		sc.Reserve = 0.01
		g := storm.DefaultGuardConfig()
		res, err := scenario.RunCoordinated(scenario.CoordSpec{
			NumP1: 10, NumP2: 10, NumP3: 10, Seed: 1,
			MSBLimit: 205 * units.Kilowatt, Mode: dynamo.ModePriorityAware,
			OutageLen:         90 * time.Second,
			TripRule:          &power.TripRule{Fraction: 0.05, Sustain: 30 * time.Second},
			MaxChargeDuration: 6 * time.Hour,
			Storm:             &sc, Guard: &g,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tripped) > 0 {
			b.Fatalf("breaker tripped during storm recovery: %v", res.Tripped)
		}
		if res.LastChargeDone == 0 {
			b.Fatal("recharges still outstanding at the horizon")
		}
		recoveryMin = res.LastChargeDone.Minutes()
	}
	b.ReportMetric(recoveryMin, "recovery-min")
}

// obsOverheadSpec is the storm-recovery scenario BenchmarkObsOverhead replays
// under each observability setting: every instrumented path (controllers,
// admission queue, guard, watchdogs) is on the hot loop.
func obsOverheadSpec(s *obs.Sink) scenario.CoordSpec {
	sc := storm.Default()
	sc.Reserve = 0.01
	g := storm.DefaultGuardConfig()
	return scenario.CoordSpec{
		NumP1: 10, NumP2: 10, NumP3: 10, Seed: 1,
		MSBLimit: 205 * units.Kilowatt, Mode: dynamo.ModePriorityAware,
		OutageLen:         90 * time.Second,
		TripRule:          &power.TripRule{Fraction: 0.05, Sustain: 30 * time.Second},
		MaxChargeDuration: 6 * time.Hour,
		Storm:             &sc, Guard: &g,
		Obs: s,
	}
}

// BenchmarkObsOverhead measures what the observability plane costs a storm
// run. The disabled case is the default for every library caller — nil sink,
// every metric and event call hitting the nil-receiver fast path — and must
// stay within noise of a build without instrumentation (<2 %). The enabled
// case carries the full registry and flight recorder and reports how many
// events one recovery journals.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scenario.RunCoordinated(obsOverheadSpec(nil)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		var events float64
		for i := 0; i < b.N; i++ {
			sink := obs.NewSink(obs.DefaultFlightCap)
			if _, err := scenario.RunCoordinated(obsOverheadSpec(sink)); err != nil {
				b.Fatal(err)
			}
			events = float64(sink.Flight.Total())
		}
		b.ReportMetric(events, "events")
	})
}

// BenchmarkAblationPostpone contrasts the postponed-charging extension with
// the stock priority-aware algorithm at a tight limit.
func BenchmarkAblationPostpone(b *testing.B) {
	var p1Gain float64
	for i := 0; i < b.N; i++ {
		pa := fig13Run(b, dynamo.ModePriorityAware, charger.Variable{}, 2.15*units.Megawatt, 0.5)
		pp := fig13Run(b, dynamo.ModePostpone, charger.Variable{}, 2.15*units.Megawatt, 0.5)
		p1Gain = float64(pp.SLAMet[rack.P1] - pa.SLAMet[rack.P1])
	}
	b.ReportMetric(p1Gain, "P1-gain")
}

// BenchmarkGridShave runs the grid signal plane's peak-shave experiment: the
// storm fleet rides out the outage, recovers, and then holds a 190 kW
// demand-response target by deliberately discharging batteries. The custom
// metrics report the energy the grid did not deliver at the peak and that the
// shave cost no recharge SLA.
func BenchmarkGridShave(b *testing.B) {
	b.ReportAllocs()
	var shavedWh, slaMisses float64
	for i := 0; i < b.N; i++ {
		spec, err := scenario.GridShaveSpec(1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := scenario.RunCoordinated(spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Grid.ShaveStarts == 0 || res.Grid.ViolationTicks != 0 {
			b.Fatalf("shave did not hold: %+v", res.Grid)
		}
		shavedWh = res.Grid.ShavedEnergy.Wh()
		slaMisses = float64(res.Racks[rack.P1] + res.Racks[rack.P2] + res.Racks[rack.P3] -
			res.SLAMet[rack.P1] - res.SLAMet[rack.P2] - res.SLAMet[rack.P3])
	}
	b.ReportMetric(shavedWh, "shaved-Wh")
	b.ReportMetric(slaMisses, "SLA-misses")
}

// benchKernelPair runs the same scenario family under the dense loop and the
// event kernel as twin sub-benchmarks. Committing both measurements to the
// benchmark baseline locks the kernel's speedup ratio: a kernel regression
// blows the event arm's tolerance, a dense regression blows the other.
func benchKernelPair(b *testing.B, run func(b *testing.B, kernel string) *scenario.CoordResult) {
	for _, kernel := range []string{scenario.KernelDense, scenario.KernelEvent} {
		b.Run(kernel, func(b *testing.B) {
			b.ReportAllocs()
			var skipped, executed float64
			for i := 0; i < b.N; i++ {
				res := run(b, kernel)
				skipped = float64(res.KernelTicksSkipped)
				executed = float64(res.KernelTicksExecuted)
			}
			if kernel == scenario.KernelEvent {
				if skipped == 0 {
					b.Fatal("event kernel never engaged (zero skipped ticks)")
				}
				b.ReportMetric(skipped, "ticks-skipped")
				b.ReportMetric(executed, "ticks-executed")
			}
		})
	}
}

// BenchmarkFig13Kernel: the hardest Fig 13 cell — (f) high discharge at the
// 2.3 MW low limit under priority-aware charging — on both kernels.
func BenchmarkFig13Kernel(b *testing.B) {
	benchKernelPair(b, func(b *testing.B, kernel string) *scenario.CoordResult {
		res, err := scenario.RunCoordinated(scenario.CoordSpec{
			NumP1: 89, NumP2: 142, NumP3: 85, Seed: 1,
			MSBLimit: 2.3 * units.Megawatt, Mode: dynamo.ModePriorityAware,
			LocalPolicy: charger.Variable{}, AvgDOD: 0.7,
			Kernel: kernel,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	})
}

// BenchmarkTable3Kernel: the full priority-aware Table III row — six
// production-scale cells (two limits by three discharge depths) per iteration
// — on both kernels.
func BenchmarkTable3Kernel(b *testing.B) {
	benchKernelPair(b, func(b *testing.B, kernel string) *scenario.CoordResult {
		var last *scenario.CoordResult
		for _, limit := range []units.Power{2.8 * units.Megawatt, 2.3 * units.Megawatt} {
			for _, dod := range []units.Fraction{0.3, 0.5, 0.7} {
				res, err := scenario.RunCoordinated(scenario.CoordSpec{
					NumP1: 89, NumP2: 142, NumP3: 85, Seed: 1,
					MSBLimit: limit, Mode: dynamo.ModePriorityAware,
					LocalPolicy: charger.Variable{}, AvgDOD: dod,
					Kernel: kernel,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		}
		return last
	})
}

// BenchmarkStormRecoveryKernel: the recharge-storm survival scenario
// (BenchmarkStormRecovery's exact spec) on both kernels. The storm is the
// kernel's adversarial case — admission waves and guard activity force dense
// spans — so this pair bounds the speedup from below.
func BenchmarkStormRecoveryKernel(b *testing.B) {
	benchKernelPair(b, func(b *testing.B, kernel string) *scenario.CoordResult {
		spec := obsOverheadSpec(nil)
		spec.Kernel = kernel
		res, err := scenario.RunCoordinated(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tripped) > 0 {
			b.Fatalf("breaker tripped during storm recovery: %v", res.Tripped)
		}
		if res.LastChargeDone == 0 {
			b.Fatal("recharges still outstanding at the horizon")
		}
		return res
	})
}
