package coordcharge

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"coordcharge/internal/obs"
	"coordcharge/internal/scenario"
	"coordcharge/internal/svc"
)

// Service-level chaos: the coordd daemon must shed load instead of falling
// over, and must survive a hard kill (SIGKILL, no drain, no final
// checkpoint) by auto-resuming from the last cadence checkpoint bit-exact.
// The flood arm runs in-process against svc.Service; the kill arms drive the
// real binary as a subprocess over HTTP, exactly as an operator would.

// chaosResident is the fleet shape shared by every arm of the chaos suite
// and by the in-process control run the resumed daemon is compared against.
// Mode and policy are spelled out because they must match the coordd flag
// defaults the subprocess runs with.
func chaosResident() *svc.RunRequest {
	return &svc.RunRequest{
		P1: 1, P2: 1, P3: 1,
		Seed:    5,
		AvgDOD:  0.3,
		LimitMW: 0.2,
		Mode:    "priority-aware",
		Policy:  "variable",
	}
}

// chaosControl runs the chaos resident uninterrupted in-process and returns
// the ground-truth flight digest and wire summary.
func chaosControl(t *testing.T) (digest string, summary []byte) {
	t.Helper()
	spec, err := chaosResident().Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Obs = obs.NewSink(0)
	res, err := scenario.RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	summary, err = json.Marshal(svc.Summarize(res))
	if err != nil {
		t.Fatal(err)
	}
	return spec.Obs.Flight.Digest(), summary
}

// TestServiceFloodShedsCleanly is the overload acceptance: a thousand
// concurrent advisor queries against a service with a small worker pool and
// a resident simulation running under default fault-injection rates. Every
// response must be a deliberate verdict — success, shed, breaker/drain
// rejection, or deadline abort — never a 500, and at least part of the flood
// must have been shed with a Retry-After hint.
func TestServiceFloodShedsCleanly(t *testing.T) {
	resident := chaosResident()
	resident.Faults = "default"
	s, err := svc.New(svc.Options{
		Resident: resident,
		Pool:     svc.PoolConfig{Workers: 4, QueueCap: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	h := s.Handler()

	// Every query sizes a 60-rack fleet — slow enough that a simultaneous
	// release genuinely contends for the 4 workers instead of draining
	// faster than goroutines can arrive.
	const flood = 1000
	codes := make([]int, flood)
	retryAfter := make([]string, flood)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			body := fmt.Sprintf(`{"p1":20,"p2":20,"p3":20,"avg_dod":0.5,"seed":%d}`, 1+i%7)
			r := httptest.NewRequest(http.MethodPost, "/api/v1/advise", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			codes[i] = w.Code
			retryAfter[i] = w.Header().Get("Retry-After")
		}(i)
	}
	close(start)
	wg.Wait()

	counts := map[int]int{}
	for i, c := range codes {
		counts[c]++
		switch c {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("query %d: verdict %d is not a deliberate overload outcome", i, c)
		}
		if c == http.StatusTooManyRequests && retryAfter[i] == "" {
			t.Errorf("query %d: shed without Retry-After", i)
		}
	}
	t.Logf("flood verdicts: %v", counts)
	if counts[http.StatusOK] == 0 {
		t.Error("flood produced no successes")
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Error("a 1000-wide flood against 4 workers never shed: admission control is not engaged")
	}
	// The service survived: it still answers.
	r := httptest.NewRequest(http.MethodGet, "/api/v1/status", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("status after flood: %d", w.Code)
	}
}

// buildCoordd compiles the daemon once per test binary invocation.
var buildCoordd = sync.OnceValues(func() (string, error) {
	bin := filepath.Join(os.TempDir(), fmt.Sprintf("coordd-chaos-%d", os.Getpid()))
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/coordd").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build ./cmd/coordd: %v\n%s", err, out)
	}
	return bin, nil
})

// coorddProc is one live daemon subprocess.
type coorddProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startCoordd launches the daemon on an ephemeral port and blocks until it
// announces its address.
func startCoordd(t *testing.T, extra ...string) *coorddProc {
	t.Helper()
	bin, err := buildCoordd()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-p1", "1", "-p2", "1", "-p3", "1",
		"-seed", "5", "-dod", "0.3", "-limit", "0.2",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Dir = "."
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "coordd: listening on "); ok {
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return &coorddProc{cmd: cmd, base: rest}
		}
	}
	t.Fatalf("coordd exited before announcing its address: %v", sc.Err())
	return nil
}

// getJSON fetches one endpoint into out.
func (p *coorddProc) getJSON(t *testing.T, path string, out any) {
	t.Helper()
	resp, err := http.Get(p.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// runAndKill boots a paced checkpointing daemon, waits for ten virtual
// minutes of resident progress past the first observed tick (several
// 2-minute cadence checkpoints, so a rotated previous generation exists),
// then hard-kills it — SIGKILL, no drain, no final checkpoint.
func runAndKill(t *testing.T, dir string) {
	t.Helper()
	p := startCoordd(t,
		"-ckpt-dir", dir,
		"-checkpoint-interval", "2m",
		"-pace", "200",
	)
	deadline := time.Now().Add(60 * time.Second)
	first := -1.0
	for {
		if time.Now().After(deadline) {
			t.Fatal("resident never advanced 10 virtual minutes before the kill")
		}
		var health map[string]any
		p.getJSON(t, "/healthz", &health)
		tick, _ := health["resident_tick_s"].(float64)
		if tick > 0 {
			if first < 0 {
				first = tick
			}
			if tick-first >= 600 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
	// A kill landing inside the rotation window (latest renamed to .prev,
	// new latest not yet published) legitimately leaves only the previous
	// generation — that torn state is exactly what ReadFileFallback
	// recovers from, so require at least one generation, not specifically
	// the newest.
	latest := filepath.Join(dir, svc.ResidentCheckpointFile)
	_, errLatest := os.Stat(latest)
	_, errPrev := os.Stat(latest + ".prev")
	if errLatest != nil && errPrev != nil {
		t.Fatalf("no cadence checkpoint generation survived the kill: %v / %v", errLatest, errPrev)
	}
}

// resumeAndVerify restarts the daemon free-running over the same checkpoint
// directory, waits for the resumed resident to finish, and requires its
// flight digest and wire summary to match the uninterrupted in-process
// control byte-for-byte.
func resumeAndVerify(t *testing.T, dir string) {
	t.Helper()
	wantDigest, wantSummary := chaosControl(t)
	p := startCoordd(t, "-ckpt-dir", dir)

	deadline := time.Now().Add(60 * time.Second)
	var status struct {
		State    string `json:"state"`
		Resident *struct {
			Summary json.RawMessage `json:"summary"`
		} `json:"resident"`
	}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("resumed resident never reached idle (state %q)", status.State)
		}
		p.getJSON(t, "/api/v1/status", &status)
		if status.State == "idle" {
			break
		}
		if status.State == "degraded" {
			t.Fatal("resumed resident degraded instead of completing")
		}
		time.Sleep(20 * time.Millisecond)
	}

	var dig struct {
		Digest string `json:"digest"`
	}
	p.getJSON(t, "/debug/flight/digest", &dig)
	if dig.Digest != wantDigest {
		t.Errorf("resumed flight digest %s != control %s", dig.Digest, wantDigest)
	}
	if status.Resident == nil {
		t.Fatal("idle daemon reports no resident")
	}
	var got svc.RunSummary
	if err := json.Unmarshal(status.Resident.Summary, &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantSummary) {
		t.Errorf("resumed summary diverged:\nresumed %s\ncontrol %s", gotJSON, wantSummary)
	}
}

// TestCoorddKillResumeBitExact: hard-kill the daemon mid-run, restart it over
// the same checkpoint directory, and require the auto-resumed run to be
// byte-identical to an uninterrupted one.
func TestCoorddKillResumeBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos skipped in -short")
	}
	dir := t.TempDir()
	runAndKill(t, dir)
	resumeAndVerify(t, dir)
}

// TestCoorddKillResumeCorruptedLatest additionally corrupts the newest
// checkpoint generation after the kill; the restart must fall back to the
// previous-good generation and still converge bit-exact.
func TestCoorddKillResumeCorruptedLatest(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos skipped in -short")
	}
	dir := t.TempDir()
	runAndKill(t, dir)
	path := filepath.Join(dir, svc.ResidentCheckpointFile)
	if _, err := os.Stat(path + ".prev"); err != nil {
		t.Fatalf("no previous checkpoint generation on disk: %v", err)
	}
	// Corrupt the newest generation; if the kill already tore the rotation
	// (no latest on disk), fabricate a garbage newest generation — either
	// way the restart must reject it and fall back to the previous good
	// one.
	raw, err := os.ReadFile(path)
	if err == nil && len(raw) > 0 {
		raw[len(raw)/2] ^= 0x40
	} else {
		raw = []byte(`{"magic":"not-a-checkpoint"}`)
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	resumeAndVerify(t, dir)
}
