package coordcharge

import (
	"bytes"
	"testing"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/scenario"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// The system's safety property, end to end: whatever the power limit,
// discharge depth, charger hardware, and coordination mode, the Dynamo
// control plane prevents every breaker from tripping. This is the paper's
// raison d'être — batteries must never cause the outage they exist to
// prevent.
func TestIntegrationNoBreakerEverTrips(t *testing.T) {
	limits := []float64{250, 220, 205, 190} // kW, for a 30-rack population
	dods := []units.Fraction{0.3, 0.7, 1.0}
	cases := []struct {
		mode dynamo.Mode
		pol  charger.Policy
	}{
		{dynamo.ModeNone, charger.Original{}},
		{dynamo.ModeNone, charger.Variable{}},
		{dynamo.ModeGlobal, charger.Variable{}},
		{dynamo.ModePriorityAware, charger.Variable{}},
		{dynamo.ModePostpone, charger.Variable{}},
	}
	for _, limit := range limits {
		for _, dod := range dods {
			for _, c := range cases {
				res, err := scenario.RunCoordinated(scenario.CoordSpec{
					NumP1: 10, NumP2: 10, NumP3: 10, Seed: 3,
					MSBLimit:    units.Power(limit) * units.Kilowatt,
					Mode:        c.mode,
					LocalPolicy: c.pol,
					AvgDOD:      dod,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Tripped) != 0 {
					t.Errorf("limit=%vkW dod=%v mode=%v policy=%s: breakers tripped: %v",
						limit, dod, c.mode, c.pol.Name(), res.Tripped)
				}
			}
		}
	}
}

// Priority-aware coordination never performs worse than the uncoordinated
// variable charger on capping, across the sweep.
func TestIntegrationCoordinationNeverIncreasesCapping(t *testing.T) {
	for _, limit := range []float64{230, 215, 205} {
		for _, dod := range []units.Fraction{0.3, 0.5, 0.7} {
			uncoord, err := scenario.RunCoordinated(scenario.CoordSpec{
				NumP1: 10, NumP2: 10, NumP3: 10, Seed: 7,
				MSBLimit: units.Power(limit) * units.Kilowatt,
				Mode:     dynamo.ModeNone, LocalPolicy: charger.Variable{}, AvgDOD: dod,
			})
			if err != nil {
				t.Fatal(err)
			}
			coord, err := scenario.RunCoordinated(scenario.CoordSpec{
				NumP1: 10, NumP2: 10, NumP3: 10, Seed: 7,
				MSBLimit: units.Power(limit) * units.Kilowatt,
				Mode:     dynamo.ModePriorityAware, LocalPolicy: charger.Variable{}, AvgDOD: dod,
			})
			if err != nil {
				t.Fatal(err)
			}
			if coord.Metrics.MaxCapping > uncoord.Metrics.MaxCapping {
				t.Errorf("limit=%v dod=%v: coordinated capping %v exceeds uncoordinated %v",
					limit, dod, coord.Metrics.MaxCapping, uncoord.Metrics.MaxCapping)
			}
		}
	}
}

// A trace exported to CSV and re-imported drives the simulation to the same
// outcome as the in-memory source: the full tracegen → ReadCSV → experiment
// pipeline is lossless at simulation granularity.
func TestIntegrationExternalTraceRoundTrip(t *testing.T) {
	gen, err := trace.NewGenerator(trace.Spec{
		NumRacks: 12, Seed: 5,
		TroughPower: units.Power(1.9e6 * 12.0 / 316),
		PeakPower:   units.Power(2.1e6 * 12.0 / 316),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Materialize a window covering the whole experiment at the simulation
	// step.
	m, err := trace.Materialize(gen, 0, 20*time.Hour, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.CoordSpec{
		NumP1: 4, NumP2: 4, NumP3: 4, Seed: 5,
		MSBLimit: 90 * units.Kilowatt, Mode: dynamo.ModePriorityAware, AvgDOD: 0.5,
	}
	direct := spec
	direct.Trace = m
	imported := spec
	imported.Trace = back
	a, err := scenario.RunCoordinated(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.RunCoordinated(imported)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgDOD != b.AvgDOD {
		// CSV rounds to 0.1 W; DOD may differ in the last digits only.
		if d := float64(a.AvgDOD - b.AvgDOD); d > 1e-4 || d < -1e-4 {
			t.Errorf("avg DOD differs: %v vs %v", a.AvgDOD, b.AvgDOD)
		}
	}
	for _, p := range []Priority{P1, P2, P3} {
		if a.SLAMet[p] != b.SLAMet[p] {
			t.Errorf("%v SLAs differ: %d vs %d", p, a.SLAMet[p], b.SLAMet[p])
		}
	}
	if a.Metrics.MaxCapping != b.Metrics.MaxCapping {
		t.Errorf("capping differs: %v vs %v", a.Metrics.MaxCapping, b.Metrics.MaxCapping)
	}
}

// Rejects a trace whose rack count does not match the spec.
func TestIntegrationTraceShapeMismatch(t *testing.T) {
	gen, _ := trace.NewGenerator(trace.Spec{NumRacks: 5, Seed: 1})
	_, err := scenario.RunCoordinated(scenario.CoordSpec{
		NumP1: 4, NumP2: 4, NumP3: 4, AvgDOD: 0.5, Trace: gen,
	})
	if err == nil {
		t.Error("mismatched trace accepted")
	}
}

// The postpone extension dominates stock priority-aware charging on P1 SLAs
// under severe constraint (its design goal) without tripping anything.
func TestIntegrationPostponeHelpsUnderSevereConstraint(t *testing.T) {
	run := func(mode dynamo.Mode) *scenario.CoordResult {
		res, err := scenario.RunCoordinated(scenario.CoordSpec{
			NumP1: 10, NumP2: 10, NumP3: 10, Seed: 3,
			MSBLimit: 206 * units.Kilowatt, // below the 30-rack floor threshold
			Mode:     mode, AvgDOD: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pa := run(dynamo.ModePriorityAware)
	pp := run(dynamo.ModePostpone)
	if pp.SLAMet[P1] < pa.SLAMet[P1] {
		t.Errorf("postpone P1 SLAs (%d) worse than stock (%d)", pp.SLAMet[P1], pa.SLAMet[P1])
	}
	if len(pp.Tripped) != 0 {
		t.Errorf("postpone tripped breakers: %v", pp.Tripped)
	}
}
