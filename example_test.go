package coordcharge_test

import (
	"fmt"
	"time"

	"coordcharge"
)

// The variable charger's Eq 1: the CC setpoint scales with depth of
// discharge, cutting shallow-discharge recharge power by 60 %.
func ExampleEq1() {
	for _, dod := range []coordcharge.Fraction{0.2, 0.5, 0.75, 1.0} {
		fmt.Printf("DOD %v -> %v\n", dod, coordcharge.Eq1(dod))
	}
	// Output:
	// DOD 20.0% -> 2.00 A
	// DOD 50.0% -> 2.00 A
	// DOD 75.0% -> 3.50 A
	// DOD 100.0% -> 5.00 A
}

// A rack rides an open transition on its batteries and recharges at the
// current its local variable charger picks from the depth of discharge.
func ExampleRack() {
	r := coordcharge.NewRack("web-42", coordcharge.P2,
		coordcharge.VariableCharger{}, coordcharge.Fig5Surface())
	r.SetDemand(12600 * coordcharge.Watt)

	r.LoseInput(0)
	r.Step(45*time.Second, 45*time.Second) // 45 s on battery at full load
	r.RestoreInput(45 * time.Second)

	fmt.Printf("DOD %v, charging at %v, recharge power %v\n",
		r.LastDOD(), r.Pack().Setpoint(), r.RechargePower())
	// Output:
	// DOD 50.0%, charging at 2.00 A, recharge power 760.0 W
}

// Algorithm 1 grants SLA charging currents highest-priority-lowest-
// discharge-first within the breaker's available power.
func ExamplePlanPriorityAware() {
	cfg := coordcharge.DefaultPlannerConfig()
	racks := []coordcharge.RackView{
		{ID: 0, Name: "db-1", Priority: coordcharge.P1, DOD: 0.30},
		{ID: 1, Name: "web-1", Priority: coordcharge.P3, DOD: 0.30},
	}
	// Power for the two 1 A floors plus one 2-amp upgrade: the P1 rack wins.
	plan := coordcharge.PlanPriorityAware(2*380+2*380, racks, cfg)
	for _, a := range plan {
		fmt.Printf("%s (%v): %v, meets SLA %v\n", a.Name, a.Priority, a.Current, a.MeetsSLA)
	}
	// Output:
	// db-1 (P1): 3.00 A, meets SLA true
	// web-1 (P3): 1.00 A, meets SLA true
}

// The charge-time surface answers both directions: how long a charge takes,
// and the minimum current that meets a deadline.
func ExampleChargeTimeSurface() {
	s := coordcharge.Fig5Surface()
	fmt.Printf("full charge at 5 A: %v\n", s.ChargeTime(5, 1.0))
	i, ok := s.RequiredCurrent(0.5, 60*time.Minute, 1)
	fmt.Printf("60-minute SLA at 50%% DOD needs %v (feasible %v)\n", i, ok)
	// Output:
	// full charge at 5 A: 36m0s
	// 60-minute SLA at 50% DOD needs 2.00 A (feasible true)
}

// DODFromOutage is the controller's depth-of-discharge estimate from the
// outage length and IT load (§IV-B).
func ExampleDODFromOutage() {
	fmt.Println(coordcharge.DODFromOutage(12600*coordcharge.Watt, 90*time.Second))
	fmt.Println(coordcharge.DODFromOutage(6300*coordcharge.Watt, 45*time.Second))
	// Output:
	// 100.0%
	// 25.0%
}
