package rng

import (
	"math/rand"
	"testing"
	"time"
)

// The counting wrapper must not perturb the streams: a Source must emit the
// same draws as a bare math/rand generator with the same seed, which is what
// every committed seed-pinned expectation in this repository depends on.
func TestCountingWrapperPreservesStreams(t *testing.T) {
	s := New(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if got, want := s.Float64(), ref.Float64(); got != want {
			t.Fatalf("draw %d: Float64 %v, bare math/rand %v", i, got, want)
		}
	}
	s2 := New(7)
	ref2 := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if got, want := s2.Normal(5, 2), 5+2*ref2.NormFloat64(); got != want {
			t.Fatalf("draw %d: Normal %v, want %v", i, got, want)
		}
		if got, want := s2.Exp(3), ref2.ExpFloat64()*3; got != want {
			t.Fatalf("draw %d: Exp %v, want %v", i, got, want)
		}
		if got, want := s2.Intn(97), ref2.Intn(97); got != want {
			t.Fatalf("draw %d: Intn %v, want %v", i, got, want)
		}
	}
}

// State/FromState must round-trip mid-stream: the restored source continues
// with exactly the draws the original would have produced next, across every
// helper (uniform, ziggurat-based, permutation).
func TestStateRoundTripMidStream(t *testing.T) {
	burn := func(s *Source, n int) {
		for i := 0; i < n; i++ {
			switch i % 5 {
			case 0:
				s.Float64()
			case 1:
				s.Normal(0, 1)
			case 2:
				s.Exp(10)
			case 3:
				s.Intn(1000)
			case 4:
				s.Perm(7)
			}
		}
	}
	for _, n := range []int{0, 1, 17, 500} {
		orig := New(99)
		burn(orig, n)
		restored := FromState(orig.State())
		if restored.State() != orig.State() {
			t.Fatalf("burn %d: state %+v, restored %+v", n, orig.State(), restored.State())
		}
		for i := 0; i < 200; i++ {
			if a, b := orig.Float64(), restored.Float64(); a != b {
				t.Fatalf("burn %d, draw %d: original %v, restored %v", n, i, a, b)
			}
			if a, b := orig.NormalDuration(time.Hour, time.Minute), restored.NormalDuration(time.Hour, time.Minute); a != b {
				t.Fatalf("burn %d, draw %d: NormalDuration %v vs %v", n, i, a, b)
			}
		}
	}
}

// Split must stay deterministic and counted: a restored parent produces the
// same child streams as the original.
func TestSplitAfterRestore(t *testing.T) {
	orig := New(5)
	orig.Float64()
	restored := FromState(orig.State())
	c1, c2 := orig.Split(), restored.Split()
	if c1.State().Seed != c2.State().Seed {
		t.Fatalf("split seeds diverge: %d vs %d", c1.State().Seed, c2.State().Seed)
	}
	for i := 0; i < 50; i++ {
		if a, b := c1.Float64(), c2.Float64(); a != b {
			t.Fatalf("child draw %d: %v vs %v", i, a, b)
		}
	}
}
