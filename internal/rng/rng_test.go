package rng

import (
	"math"
	"testing"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds produced %d identical draws of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Float64() == c2.Float64() {
		t.Error("split children produced identical first draw")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(45)
	}
	mean := sum / n
	if math.Abs(mean-45) > 0.5 {
		t.Errorf("Exp mean = %v, want ~45", mean)
	}
}

func TestExpDurationMean(t *testing.T) {
	s := New(12)
	const n = 100000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.ExpDuration(45 * time.Second)
	}
	mean := sum / n
	if mean < 44*time.Second || mean > 46*time.Second {
		t.Errorf("ExpDuration mean = %v, want ~45s", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Normal sd = %v, want ~3", math.Sqrt(variance))
	}
}

func TestNormalDurationNonNegative(t *testing.T) {
	s := New(14)
	for i := 0; i < 10000; i++ {
		if d := s.NormalDuration(time.Hour, 10*time.Hour); d < 0 {
			t.Fatalf("NormalDuration produced negative %v", d)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(15)
	for i := 0; i < 10000; i++ {
		v := s.TruncNormal(0, 100, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(16)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := New(17)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[s.Intn(3)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("Intn(3) bucket %d count %d, want ~1000", i, c)
		}
	}
}
