// Package rng provides deterministic, seedable random sources and the
// probability distributions used by the reliability Monte Carlo simulation
// (exponential inter-failure times, normally distributed annual maintenance)
// and by the synthetic trace generator.
//
// Every consumer of randomness in this repository takes an explicit
// *rng.Source so that simulations are reproducible run-to-run and the test
// suite can pin seeds.
package rng

import (
	"math"
	"math/rand"
	"time"
)

// Source is a deterministic random source. It wraps math/rand with the
// distribution helpers the simulator needs.
type Source struct {
	r    *rand.Rand
	seed int64
	cs   *countingSource
}

// countingSource wraps the underlying generator and counts how many times it
// has been stepped. Every rand.Rand method draws its entropy through Int63 or
// Uint64, and each of those advances the generator exactly one step, so the
// pair (seed, calls) pins the stream position exactly: replaying calls steps
// from a fresh seed reproduces the generator state bit for bit. That is what
// lets a checkpoint capture an RNG mid-stream without changing the stream
// itself.
type countingSource struct {
	src   rand.Source64
	calls uint64
}

func (c *countingSource) Int63() int64 { c.calls++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.calls++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.calls = 0 }

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Source{r: rand.New(cs), seed: seed, cs: cs}
}

// State is a serializable stream position: the seed the source was created
// with and the number of generator steps consumed since. FromState rebuilds
// the exact mid-stream generator from it.
type State struct {
	Seed  int64  `json:"seed"`
	Calls uint64 `json:"calls"`
}

// State returns the source's current stream position.
func (s *Source) State() State { return State{Seed: s.seed, Calls: s.cs.calls} }

// FromState reconstructs a source at the exact stream position st describes
// by reseeding and fast-forwarding the recorded number of generator steps.
func FromState(st State) *Source {
	s := New(st.Seed)
	for i := uint64(0); i < st.Calls; i++ {
		s.cs.src.Uint64()
	}
	s.cs.calls = st.Calls
	return s
}

// Split derives a new independent-looking source from s. It is used to give
// each simulated component its own stream so that adding a component does not
// perturb the draws of the others.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform draw in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Exp returns an exponentially distributed draw with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// ExpDuration returns an exponentially distributed duration with the given
// mean.
func (s *Source) ExpDuration(mean time.Duration) time.Duration {
	return time.Duration(s.Exp(float64(mean)))
}

// Normal returns a normally distributed draw with mean mu and standard
// deviation sigma.
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// NormalDuration returns a normally distributed duration truncated below at
// zero. Annual-maintenance intervals use this (mu = 1 year, sigma from the
// maintenance dataset); truncation prevents nonsensical negative intervals.
func (s *Source) NormalDuration(mu, sigma time.Duration) time.Duration {
	d := s.Normal(float64(mu), float64(sigma))
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// TruncNormal returns a normal draw clamped to [lo, hi].
func (s *Source) TruncNormal(mu, sigma, lo, hi float64) float64 {
	v := s.Normal(mu, sigma)
	return math.Min(hi, math.Max(lo, v))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomises the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
