// Package config loads experiment specifications from JSON files, so that
// fleets of experiments can be versioned and replayed without recompiling.
// The on-disk schema uses plain strings and numbers; Load translates them
// into the scenario package's typed specs (charger policies, coordination
// modes, typed power units) with validation.
//
// Example file:
//
//	{
//	  "coordinated": {
//	    "p1": 89, "p2": 142, "p3": 85,
//	    "mode": "priority-aware",
//	    "charger": "variable",
//	    "limit_mw": 2.3,
//	    "avg_dod": 0.5,
//	    "seed": 1
//	  }
//	}
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/scenario"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// Coordinated is the JSON shape of a scenario.CoordSpec.
type Coordinated struct {
	P1      int     `json:"p1"`
	P2      int     `json:"p2"`
	P3      int     `json:"p3"`
	Mode    string  `json:"mode"`
	Charger string  `json:"charger,omitempty"`
	LimitMW float64 `json:"limit_mw"`
	AvgDOD  float64 `json:"avg_dod"`
	Seed    int64   `json:"seed,omitempty"`
	// LatencySec models the override command-settling latency.
	LatencySec float64 `json:"latency_sec,omitempty"`
	// Distributed selects the message-passing control plane.
	Distributed bool `json:"distributed,omitempty"`
	// TraceCSV optionally names a trace file (tracegen format) to replay in
	// place of the synthetic generator. Relative to the working directory.
	TraceCSV string `json:"trace_csv,omitempty"`
}

// Endurance is the JSON shape of a scenario.EnduranceSpec.
type Endurance struct {
	Years   float64 `json:"years"`
	P1      int     `json:"p1,omitempty"`
	P2      int     `json:"p2,omitempty"`
	P3      int     `json:"p3,omitempty"`
	Mode    string  `json:"mode"`
	Charger string  `json:"charger,omitempty"`
	LimitMW float64 `json:"limit_mw,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// Advisor is the JSON shape of a scenario.AdvisorSpec.
type Advisor struct {
	P1      int     `json:"p1"`
	P2      int     `json:"p2"`
	P3      int     `json:"p3"`
	Mode    string  `json:"mode"`
	Charger string  `json:"charger,omitempty"`
	AvgDOD  float64 `json:"avg_dod,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// File is a complete experiment specification: any combination of sections.
type File struct {
	Coordinated *Coordinated `json:"coordinated,omitempty"`
	Endurance   *Endurance   `json:"endurance,omitempty"`
	Advisor     *Advisor     `json:"advisor,omitempty"`
}

// ParseMode translates a mode name used across CLIs and config files.
func ParseMode(s string) (dynamo.Mode, error) {
	switch s {
	case "", "priority-aware":
		return dynamo.ModePriorityAware, nil
	case "none":
		return dynamo.ModeNone, nil
	case "global":
		return dynamo.ModeGlobal, nil
	case "postpone":
		return dynamo.ModePostpone, nil
	default:
		return 0, fmt.Errorf("config: unknown mode %q (want none, global, priority-aware, or postpone)", s)
	}
}

func parseCharger(s string) (charger.Policy, error) {
	if s == "" {
		return charger.Variable{}, nil
	}
	return charger.ByName(s)
}

// Read parses a File from JSON, rejecting unknown fields so that typos in
// experiment files fail loudly.
func Read(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if f.Coordinated == nil && f.Endurance == nil && f.Advisor == nil {
		return nil, fmt.Errorf("config: file has no experiment sections")
	}
	return &f, nil
}

// Load reads a File from disk.
func Load(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer fh.Close()
	return Read(fh)
}

// CoordSpec converts the JSON section into a runnable spec.
func (c *Coordinated) CoordSpec() (scenario.CoordSpec, error) {
	mode, err := ParseMode(c.Mode)
	if err != nil {
		return scenario.CoordSpec{}, err
	}
	pol, err := parseCharger(c.Charger)
	if err != nil {
		return scenario.CoordSpec{}, err
	}
	spec := scenario.CoordSpec{
		NumP1: c.P1, NumP2: c.P2, NumP3: c.P3,
		Seed:        c.Seed,
		MSBLimit:    units.Power(c.LimitMW) * units.Megawatt,
		Mode:        mode,
		LocalPolicy: pol,
		AvgDOD:      units.Fraction(c.AvgDOD),
	}
	if c.LatencySec > 0 {
		spec.CommandLatency = time.Duration(c.LatencySec * float64(time.Second))
	}
	spec.Distributed = c.Distributed
	if c.TraceCSV != "" {
		f, err := os.Open(c.TraceCSV)
		if err != nil {
			return scenario.CoordSpec{}, fmt.Errorf("config: trace_csv: %w", err)
		}
		defer f.Close()
		m, err := trace.ReadCSV(f)
		if err != nil {
			return scenario.CoordSpec{}, fmt.Errorf("config: trace_csv: %w", err)
		}
		spec.Trace = m
	}
	return spec, nil
}

// EnduranceSpec converts the JSON section into a runnable spec.
func (e *Endurance) EnduranceSpec() (scenario.EnduranceSpec, error) {
	mode, err := ParseMode(e.Mode)
	if err != nil {
		return scenario.EnduranceSpec{}, err
	}
	pol, err := parseCharger(e.Charger)
	if err != nil {
		return scenario.EnduranceSpec{}, err
	}
	return scenario.EnduranceSpec{
		Years: e.Years,
		NumP1: e.P1, NumP2: e.P2, NumP3: e.P3,
		Seed:        e.Seed,
		MSBLimit:    units.Power(e.LimitMW) * units.Megawatt,
		Mode:        mode,
		LocalPolicy: pol,
	}, nil
}

// AdvisorSpec converts the JSON section into a runnable spec.
func (a *Advisor) AdvisorSpec() (scenario.AdvisorSpec, error) {
	mode, err := ParseMode(a.Mode)
	if err != nil {
		return scenario.AdvisorSpec{}, err
	}
	pol, err := parseCharger(a.Charger)
	if err != nil {
		return scenario.AdvisorSpec{}, err
	}
	return scenario.AdvisorSpec{
		NumP1: a.P1, NumP2: a.P2, NumP3: a.P3,
		AvgDOD:      units.Fraction(a.AvgDOD),
		Mode:        mode,
		LocalPolicy: pol,
		Seed:        a.Seed,
	}, nil
}
