package config

import (
	"strings"
	"testing"
)

// FuzzRead hardens the experiment-file parser: arbitrary JSON must either
// error or produce sections that convert into specs without panicking.
func FuzzRead(f *testing.F) {
	f.Add(sample)
	f.Add(`{}`)
	f.Add(`{"coordinated": {"p1": 1}}`)
	f.Add(`{"endurance": {"years": 1e308, "mode": "global"}}`)
	f.Add(`{"advisor": {"p1": -5, "charger": "original"}}`)
	f.Add(`not json at all`)
	f.Add(`{"coordinated": null, "advisor": null}`)

	f.Fuzz(func(t *testing.T, data string) {
		file, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		// Conversions must not panic; spec validation happens at run time.
		if file.Coordinated != nil {
			_, _ = file.Coordinated.CoordSpec()
		}
		if file.Endurance != nil {
			_, _ = file.Endurance.EnduranceSpec()
		}
		if file.Advisor != nil {
			_, _ = file.Advisor.AdvisorSpec()
		}
	})
}
