package config

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"coordcharge/internal/dynamo"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

const sample = `{
  "coordinated": {
    "p1": 89, "p2": 142, "p3": 85,
    "mode": "priority-aware",
    "charger": "variable",
    "limit_mw": 2.3,
    "avg_dod": 0.5,
    "seed": 7,
    "latency_sec": 20
  },
  "endurance": {
    "years": 30,
    "mode": "global",
    "limit_mw": 0.205,
    "seed": 2
  },
  "advisor": {
    "p1": 10, "p2": 10, "p3": 10,
    "mode": "none",
    "charger": "original",
    "avg_dod": 0.7
  }
}`

func TestReadFullFile(t *testing.T) {
	f, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := f.Coordinated.CoordSpec()
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumP1 != 89 || cs.NumP2 != 142 || cs.NumP3 != 85 {
		t.Errorf("rack counts: %d/%d/%d", cs.NumP1, cs.NumP2, cs.NumP3)
	}
	if cs.Mode != dynamo.ModePriorityAware {
		t.Errorf("mode = %v", cs.Mode)
	}
	if cs.MSBLimit != 2.3*units.Megawatt {
		t.Errorf("limit = %v", cs.MSBLimit)
	}
	if cs.AvgDOD != 0.5 || cs.Seed != 7 {
		t.Errorf("dod/seed = %v/%d", cs.AvgDOD, cs.Seed)
	}
	if cs.CommandLatency != 20*time.Second {
		t.Errorf("latency = %v", cs.CommandLatency)
	}
	if cs.LocalPolicy.Name() != "variable" {
		t.Errorf("policy = %s", cs.LocalPolicy.Name())
	}

	es, err := f.Endurance.EnduranceSpec()
	if err != nil {
		t.Fatal(err)
	}
	if es.Years != 30 || es.Mode != dynamo.ModeGlobal || es.MSBLimit != 205*units.Kilowatt {
		t.Errorf("endurance spec: %+v", es)
	}

	as, err := f.Advisor.AdvisorSpec()
	if err != nil {
		t.Fatal(err)
	}
	if as.Mode != dynamo.ModeNone || as.LocalPolicy.Name() != "original" || as.AvgDOD != 0.7 {
		t.Errorf("advisor spec: %+v", as)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"coordinated": {"p1": 1, "typo_field": 2}}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestReadRejectsEmptyFile(t *testing.T) {
	if _, err := Read(strings.NewReader(`{}`)); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestParseModeAll(t *testing.T) {
	cases := map[string]dynamo.Mode{
		"":               dynamo.ModePriorityAware,
		"priority-aware": dynamo.ModePriorityAware,
		"none":           dynamo.ModeNone,
		"global":         dynamo.ModeGlobal,
		"postpone":       dynamo.ModePostpone,
	}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestBadModeOrChargerInSections(t *testing.T) {
	f, err := Read(strings.NewReader(`{"coordinated": {"p1": 1, "mode": "bogus"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Coordinated.CoordSpec(); err == nil {
		t.Error("bogus coordinated mode accepted")
	}
	f, _ = Read(strings.NewReader(`{"advisor": {"p1": 1, "charger": "bogus"}}`))
	if _, err := f.Advisor.AdvisorSpec(); err == nil {
		t.Error("bogus advisor charger accepted")
	}
	f, _ = Read(strings.NewReader(`{"endurance": {"years": 1, "mode": "bogus"}}`))
	if _, err := f.Endurance.EnduranceSpec(); err == nil {
		t.Error("bogus endurance mode accepted")
	}
}

func TestCoordinatedTraceAndDistributed(t *testing.T) {
	// Write a valid trace file and reference it.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	gen, err := trace.NewGenerator(trace.Spec{NumRacks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.Materialize(gen, 0, time.Minute, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfgJSON := `{"coordinated": {"p1": 1, "p2": 1, "p3": 1, "mode": "priority-aware",
		"limit_mw": 0.05, "avg_dod": 0.5, "distributed": true, "trace_csv": ` + strconv.Quote(path) + `}}`
	file, err := Read(strings.NewReader(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := file.Coordinated.CoordSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Distributed {
		t.Error("distributed flag lost")
	}
	if spec.Trace == nil || spec.Trace.NumRacks() != 3 {
		t.Error("trace not loaded")
	}
	// A missing trace file errors cleanly.
	file, _ = Read(strings.NewReader(`{"coordinated": {"p1": 1, "trace_csv": "/no/such/file.csv"}}`))
	if _, err := file.Coordinated.CoordSpec(); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestLoadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Coordinated == nil || f.Endurance == nil || f.Advisor == nil {
		t.Error("sections missing after disk round trip")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
