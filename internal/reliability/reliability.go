// Package reliability implements the paper's §IV-A Monte Carlo analysis:
// how battery charging time affects the availability of redundancy (AOR) of
// rack power — the fraction of time the rack battery is fully charged.
//
// Every component in the critical power path (Fig 8(b)) is an independent
// block in a series system, failing per Table I. Utility failures and
// maintenance cause two open transitions each (one when the failure or
// maintenance begins, one when service is restored); power outages cause an
// extended input loss until repair. After every input-power loss the battery
// charges for the swept charging time, during which redundancy is
// unavailable. Failures and repairs are exponentially distributed except
// annual maintenance, which is normally distributed (μ = 1 year, σ = 41
// days), matching the paper's modelling assumptions.
//
// Timelines span up to 10⁵ simulated years, which overflows time.Duration,
// so the internal timeline unit is float64 hours.
package reliability

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/par"
	"coordcharge/internal/rng"
	"coordcharge/internal/units"
)

// FailureType categorises a Table I row.
type FailureType int

// Failure types from Table I.
const (
	UtilityFailure FailureType = iota
	CorrectiveMaintenance
	AnnualMaintenance
	PowerOutage
)

// String names the failure type.
func (f FailureType) String() string {
	switch f {
	case UtilityFailure:
		return "utility failure"
	case CorrectiveMaintenance:
		return "corrective maintenance"
	case AnnualMaintenance:
		return "annual maintenance"
	case PowerOutage:
		return "power outage"
	default:
		return fmt.Sprintf("FailureType(%d)", int(f))
	}
}

// Component is one row of Table I: a component/failure-type pair with its
// mean time between failures and mean time to repair, both in hours.
type Component struct {
	Name      string
	Type      FailureType
	MTBFHours float64
	MTTRHours float64
}

// TableI returns the paper's Table I: component failure and repair times.
func TableI() []Component {
	return []Component{
		{"Utility", UtilityFailure, 6.39e3, 0.6},
		{"Sub/MSG", CorrectiveMaintenance, 5.87e4, 8.0},
		{"MSB", CorrectiveMaintenance, 4.12e4, 20.2},
		{"SB", CorrectiveMaintenance, 1.51e5, 8.7},
		{"RPP", CorrectiveMaintenance, 6.31e5, 5.5},
		{"MSB", AnnualMaintenance, 8.76e3, 12.8},
		{"SB", AnnualMaintenance, 8.76e3, 7.4},
		{"RPP", AnnualMaintenance, 8.76e3, 9.9},
		{"MSB", PowerOutage, 2.93e5, 6.4},
		{"SB", PowerOutage, 5.20e5, 4.6},
		{"RPP", PowerOutage, 6.25e6, 10.9},
	}
}

// Disruption is one interval of rack input-power loss, in hours since the
// simulation start. For open transitions the interval is seconds long; for
// power outages it spans the repair.
type Disruption struct {
	Start, End float64 // hours
}

// Simulator draws failure timelines for a rack's power path.
type Simulator struct {
	components []Component
	// OpenTransitionMeanSec is the mean open-transition length (exponential;
	// paper: 45 s).
	OpenTransitionMeanSec float64
	// AnnualSigmaHours is the annual-maintenance interval spread (normal;
	// paper: 41 days).
	AnnualSigmaHours float64
	src              *rng.Source
}

// NewSimulator builds a simulator over the given components (use TableI()).
func NewSimulator(components []Component, seed int64) (*Simulator, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("reliability: no components")
	}
	for _, c := range components {
		if c.MTBFHours <= 0 || c.MTTRHours <= 0 {
			return nil, fmt.Errorf("reliability: component %s has non-positive MTBF/MTTR", c.Name)
		}
	}
	return &Simulator{
		components:            components,
		OpenTransitionMeanSec: 45,
		AnnualSigmaHours:      41 * 24,
		src:                   rng.New(seed),
	}, nil
}

const hoursPerYear = 8760

// Event is one failure/maintenance/outage occurrence of a component, with
// enough detail to replay it against a simulated power hierarchy: when it
// begins, how long until service is restored, and the lengths of the open
// transitions it causes (zero for power outages, which are a continuous
// input loss instead).
type Event struct {
	Component Component
	// StartHours is the event begin time.
	StartHours float64
	// RepairHours is the time until restoration: the gap between the two
	// open transitions for failures/maintenance, or the outage length.
	RepairHours float64
	// OT1Hours and OT2Hours are the open-transition lengths at the start
	// and end of the event (zero for power outages).
	OT1Hours, OT2Hours float64
}

// IsOutage reports whether the event is an extended input loss rather than
// a pair of open transitions.
func (e Event) IsOutage() bool { return e.Component.Type == PowerOutage }

// componentEvents draws one component's failure events.
func (s *Simulator) componentEvents(c Component, src *rng.Source, horizonHours float64) []Event {
	var out []Event
	t := 0.0
	for {
		switch c.Type {
		case AnnualMaintenance:
			iv := src.Normal(c.MTBFHours, s.AnnualSigmaHours)
			if iv < 0 {
				iv = 0
			}
			t += iv
		default:
			t += src.Exp(c.MTBFHours)
		}
		if t >= horizonHours {
			break
		}
		ev := Event{Component: c, StartHours: t, RepairHours: src.Exp(c.MTTRHours)}
		if c.Type != PowerOutage {
			ev.OT1Hours = src.Exp(s.OpenTransitionMeanSec) / 3600
			ev.OT2Hours = src.Exp(s.OpenTransitionMeanSec) / 3600
		}
		out = append(out, ev)
	}
	return out
}

// splitSources derives one independent source per component, in component
// order. The serial split loop fixes each component's stream as a pure
// function of the parent seed, so the draws themselves can then run on any
// number of workers without changing a single sample.
func (s *Simulator) splitSources() []*rng.Source {
	srcs := make([]*rng.Source, len(s.components))
	for i := range s.components {
		srcs[i] = s.src.Split()
	}
	return srcs
}

// Events generates the merged, start-sorted failure-event stream over the
// horizon. The endurance simulator replays these against a real power
// hierarchy; Disruptions reduces the same stream to input-loss intervals for
// the analytic AOR model. Component streams are drawn concurrently and
// merged in component order before the sort, so the output is byte-identical
// to a serial draw.
func (s *Simulator) Events(horizonYears float64) []Event {
	horizon := horizonYears * hoursPerYear
	srcs := s.splitSources()
	streams := par.Map(len(s.components), 0, func(i int) []Event {
		return s.componentEvents(s.components[i], srcs[i], horizon)
	})
	var out []Event
	for _, evs := range streams {
		out = append(out, evs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartHours < out[j].StartHours })
	return out
}

// componentDisruptions draws one component's input-power-loss intervals.
func (s *Simulator) componentDisruptions(c Component, src *rng.Source, horizonHours float64) []Disruption {
	events := s.componentEvents(c, src, horizonHours)
	var out []Disruption
	for _, ev := range events {
		if ev.IsOutage() {
			out = append(out, Disruption{ev.StartHours, ev.StartHours + ev.RepairHours})
			continue
		}
		out = append(out, Disruption{ev.StartHours, ev.StartHours + ev.OT1Hours})
		restore := ev.StartHours + ev.RepairHours
		out = append(out, Disruption{restore, restore + ev.OT2Hours})
	}
	return out
}

// Disruptions generates the merged, start-sorted stream of input-power-loss
// intervals over the given horizon. Like Events, the per-component draws run
// concurrently after a serial source split, preserving byte-identical output.
func (s *Simulator) Disruptions(horizonYears float64) []Disruption {
	horizon := horizonYears * hoursPerYear
	srcs := s.splitSources()
	streams := par.Map(len(s.components), 0, func(i int) []Disruption {
		return s.componentDisruptions(s.components[i], srcs[i], horizon)
	})
	var out []Disruption
	for _, ds := range streams {
		out = append(out, ds...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ComponentLoss attributes loss of redundancy to one Table I row.
type ComponentLoss struct {
	Component Component
	// EventsPerYear is the component's failure rate.
	EventsPerYear float64
	// LossHoursPerYear is the redundancy-unavailable time this component
	// alone would cause at the given charge time (cross-component overlaps
	// make the sum slightly exceed the joint loss).
	LossHoursPerYear float64
}

// Breakdown attributes loss of redundancy to each component class at the
// given battery charging time — the "where do my 5 hours a year go?"
// analysis behind Table II.
func (s *Simulator) Breakdown(horizonYears float64, chargeTime time.Duration) []ComponentLoss {
	horizon := horizonYears * hoursPerYear
	srcs := s.splitSources()
	return par.Map(len(s.components), 0, func(i int) ComponentLoss {
		c := s.components[i]
		ds := s.componentDisruptions(c, srcs[i], horizon)
		aor := AOR(ds, chargeTime, horizonYears)
		events := float64(len(ds))
		if c.Type != PowerOutage {
			events /= 2 // two disruptions per failure event
		}
		return ComponentLoss{
			Component:        c,
			EventsPerYear:    events / horizonYears,
			LossHoursPerYear: (1 - float64(aor)) * hoursPerYear,
		}
	})
}

// AOR computes the availability of redundancy over the horizon for a given
// battery charging time: one minus the fraction of time covered by the union
// of [disruption start, disruption end + charge time] intervals. Each
// disruption leaves the battery needing a full recharge; a disruption
// arriving mid-recharge restarts the charge (the union extension models
// exactly that).
func AOR(ds []Disruption, chargeTime time.Duration, horizonYears float64) units.Fraction {
	horizon := horizonYears * hoursPerYear
	ct := chargeTime.Hours()
	unavailable := 0.0
	curStart, curEnd := 0.0, -1.0
	for _, d := range ds {
		if d.Start >= horizon {
			break
		}
		end := d.End + ct
		if d.Start > curEnd {
			if curEnd > curStart {
				unavailable += minf(curEnd, horizon) - curStart
			}
			curStart, curEnd = d.Start, end
			continue
		}
		if end > curEnd {
			curEnd = end
		}
	}
	if curEnd > curStart {
		unavailable += minf(curEnd, horizon) - curStart
	}
	return units.Fraction(1 - unavailable/horizon)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SweepPoint is one sample of the Fig 9a curve.
type SweepPoint struct {
	ChargeTime time.Duration
	AOR        units.Fraction
	// LossHoursPerYear is the expected loss-of-redundancy time (Table II's
	// middle column).
	LossHoursPerYear float64
}

// Sweep runs the Monte Carlo once and evaluates AOR at each charging time
// (Fig 9a). The disruption stream is shared across charge times, which both
// matches the paper's methodology (one failure model, varying charger) and
// removes sampling noise from the comparison.
func (s *Simulator) Sweep(horizonYears float64, chargeTimes []time.Duration) []SweepPoint {
	ds := s.Disruptions(horizonYears)
	out := make([]SweepPoint, 0, len(chargeTimes))
	for _, ct := range chargeTimes {
		aor := AOR(ds, ct, horizonYears)
		out = append(out, SweepPoint{
			ChargeTime:       ct,
			AOR:              aor,
			LossHoursPerYear: (1 - float64(aor)) * hoursPerYear,
		})
	}
	return out
}

// RequiredChargeTime inverts the Fig 9a relationship: the longest battery
// charging time whose AOR still meets targetAOR, searched over [1 min, max]
// at the given resolution (zero selects one minute). It returns false when
// even the shortest charge misses the target. This is how a new priority
// tier's charging-time SLA is derived from an availability goal.
func (s *Simulator) RequiredChargeTime(horizonYears float64, targetAOR units.Fraction, max time.Duration, resolution time.Duration) (time.Duration, bool) {
	if resolution <= 0 {
		resolution = time.Minute
	}
	if max <= 0 {
		max = 3 * time.Hour
	}
	ds := s.Disruptions(horizonYears)
	if AOR(ds, time.Minute, horizonYears) < targetAOR {
		return 0, false
	}
	// AOR is monotone nonincreasing in charge time: bisect.
	lo, hi := time.Minute, max
	if AOR(ds, max, horizonYears) >= targetAOR {
		return max, true
	}
	for hi-lo > resolution {
		mid := lo + (hi-lo)/2
		if AOR(ds, mid, horizonYears) >= targetAOR {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// SLARow is one row of Table II: a priority's AOR target and the charging
// time that achieves it.
type SLARow struct {
	Priority         string
	AOR              units.Fraction
	LossHoursPerYear float64
	ChargeTimeSLA    time.Duration
}

// TableII evaluates the paper's Table II: the AOR each priority's
// charging-time SLA achieves under the Table I failure model.
func (s *Simulator) TableII(horizonYears float64) []SLARow {
	slas := []struct {
		name string
		ct   time.Duration
	}{
		{"P1 (high)", 30 * time.Minute},
		{"P2 (normal)", 60 * time.Minute},
		{"P3 (low)", 90 * time.Minute},
	}
	ds := s.Disruptions(horizonYears)
	out := make([]SLARow, 0, len(slas))
	for _, row := range slas {
		aor := AOR(ds, row.ct, horizonYears)
		out = append(out, SLARow{
			Priority:         row.name,
			AOR:              aor,
			LossHoursPerYear: (1 - float64(aor)) * hoursPerYear,
			ChargeTimeSLA:    row.ct,
		})
	}
	return out
}
