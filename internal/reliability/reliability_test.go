package reliability

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestFailureTypeString(t *testing.T) {
	want := map[FailureType]string{
		UtilityFailure:        "utility failure",
		CorrectiveMaintenance: "corrective maintenance",
		AnnualMaintenance:     "annual maintenance",
		PowerOutage:           "power outage",
		FailureType(9):        "FailureType(9)",
	}
	for f, w := range want {
		if got := f.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(f), got, w)
		}
	}
}

func TestTableIShape(t *testing.T) {
	rows := TableI()
	if len(rows) != 11 {
		t.Fatalf("Table I has %d rows, want 11", len(rows))
	}
	counts := map[FailureType]int{}
	for _, r := range rows {
		counts[r.Type]++
		if r.MTBFHours <= 0 || r.MTTRHours <= 0 {
			t.Errorf("row %s has non-positive times", r.Name)
		}
	}
	if counts[UtilityFailure] != 1 || counts[CorrectiveMaintenance] != 4 ||
		counts[AnnualMaintenance] != 3 || counts[PowerOutage] != 3 {
		t.Errorf("row distribution = %v", counts)
	}
	// Spot values from the paper.
	if rows[0].MTBFHours != 6.39e3 || rows[0].MTTRHours != 0.6 {
		t.Errorf("utility row = %+v", rows[0])
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	if _, err := NewSimulator(nil, 1); err == nil {
		t.Error("empty component list accepted")
	}
	bad := []Component{{"x", UtilityFailure, 0, 1}}
	if _, err := NewSimulator(bad, 1); err == nil {
		t.Error("zero MTBF accepted")
	}
}

func TestDisruptionsSortedAndBounded(t *testing.T) {
	s, err := NewSimulator(TableI(), 42)
	if err != nil {
		t.Fatal(err)
	}
	const years = 500
	ds := s.Disruptions(years)
	if !sort.SliceIsSorted(ds, func(i, j int) bool { return ds[i].Start < ds[j].Start }) {
		t.Error("disruptions not sorted by start")
	}
	for _, d := range ds {
		if d.End < d.Start {
			t.Fatalf("inverted disruption %+v", d)
		}
		if d.Start < 0 {
			t.Fatalf("negative start %+v", d)
		}
	}
	// Expected event rate: ~4.8 failures/yr, most producing two transitions
	// → ~9.6 disruptions/yr.
	perYear := float64(len(ds)) / years
	if perYear < 7 || perYear < 0 || perYear > 13 {
		t.Errorf("disruptions per year = %.1f, want ~9.6", perYear)
	}
}

func TestDisruptionDeterminism(t *testing.T) {
	a, _ := NewSimulator(TableI(), 7)
	b, _ := NewSimulator(TableI(), 7)
	da, db := a.Disruptions(100), b.Disruptions(100)
	if len(da) != len(db) {
		t.Fatalf("same seed different lengths: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestAORNoDisruptionsIsOne(t *testing.T) {
	if got := AOR(nil, time.Hour, 10); got != 1 {
		t.Errorf("AOR with no disruptions = %v, want 1", got)
	}
}

func TestAORSingleOutageArithmetic(t *testing.T) {
	// One 2-hour outage plus a 1-hour charge in a 1-year horizon.
	ds := []Disruption{{100, 102}}
	aor := AOR(ds, time.Hour, 1)
	want := 1 - 3.0/8760
	if math.Abs(float64(aor)-want) > 1e-12 {
		t.Errorf("AOR = %v, want %v", aor, want)
	}
}

func TestAORMergesOverlappingRecharges(t *testing.T) {
	// Two disruptions 30 minutes apart with a 1-hour charge: the second
	// arrives mid-recharge, so the union is [100, 100.51+1], not 2×(1+ε).
	ds := []Disruption{{100, 100.01}, {100.5, 100.51}}
	aor := AOR(ds, time.Hour, 1)
	want := 1 - (100.51+1-100)/8760
	if math.Abs(float64(aor)-want) > 1e-9 {
		t.Errorf("AOR = %v, want %v", aor, want)
	}
}

func TestAORClipsAtHorizon(t *testing.T) {
	// Disruption near the end of the horizon: the recharge tail beyond the
	// horizon must not count.
	horizonYears := 1.0
	ds := []Disruption{{8759.5, 8759.6}}
	aor := AOR(ds, 10*time.Hour, horizonYears)
	want := 1 - 0.5/8760
	if math.Abs(float64(aor)-want) > 1e-9 {
		t.Errorf("AOR = %v, want %v", aor, want)
	}
}

// Fig 9a: AOR decreases (roughly linearly) as charging time increases, in
// the 99.8–99.97% band the paper reports.
func TestFig9aShape(t *testing.T) {
	s, _ := NewSimulator(TableI(), 1)
	var cts []time.Duration
	for m := 15; m <= 120; m += 15 {
		cts = append(cts, time.Duration(m)*time.Minute)
	}
	pts := s.Sweep(20000, cts)
	for i, p := range pts {
		if p.AOR < 0.997 || p.AOR > 0.9999 {
			t.Errorf("AOR(%v) = %v, outside the paper's band", p.ChargeTime, p.AOR)
		}
		if i > 0 && p.AOR >= pts[i-1].AOR {
			t.Errorf("AOR not decreasing at %v: %v then %v", p.ChargeTime, pts[i-1].AOR, p.AOR)
		}
	}
	// Linearity check: the marginal AOR loss per 15 min is roughly constant
	// (each extra minute of charging converts 1:1 into unavailability).
	d1 := float64(pts[1].AOR - pts[0].AOR)
	dn := float64(pts[len(pts)-1].AOR - pts[len(pts)-2].AOR)
	if math.Abs(d1-dn) > 0.35*math.Abs(d1) {
		t.Errorf("AOR slope varies too much: first step %v, last step %v", d1, dn)
	}
}

// Table II: the 30/60/90-minute SLAs land near 99.94%/99.90%/99.85% AOR
// (5.26/8.76/13.14 h/yr loss of redundancy).
func TestTableIIAnchors(t *testing.T) {
	s, _ := NewSimulator(TableI(), 3)
	rows := s.TableII(20000)
	if len(rows) != 3 {
		t.Fatalf("Table II rows = %d", len(rows))
	}
	wantLoss := []float64{5.26, 8.76, 13.14}
	for i, row := range rows {
		if math.Abs(row.LossHoursPerYear-wantLoss[i])/wantLoss[i] > 0.30 {
			t.Errorf("%s loss = %.2f h/yr, want within 30%% of %.2f", row.Priority, row.LossHoursPerYear, wantLoss[i])
		}
		if row.AOR < 0.9975 || row.AOR > 0.9997 {
			t.Errorf("%s AOR = %v, implausible", row.Priority, row.AOR)
		}
	}
	if rows[0].AOR <= rows[1].AOR || rows[1].AOR <= rows[2].AOR {
		t.Error("AOR not ordered P1 > P2 > P3")
	}
}

func TestSweepSharedStreamMonotoneProperty(t *testing.T) {
	// Within one sweep (shared disruption stream) AOR is strictly
	// nonincreasing in charge time, for any seed.
	for seed := int64(0); seed < 5; seed++ {
		s, _ := NewSimulator(TableI(), seed)
		cts := []time.Duration{10 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour}
		pts := s.Sweep(1000, cts)
		for i := 1; i < len(pts); i++ {
			if pts[i].AOR > pts[i-1].AOR {
				t.Fatalf("seed %d: AOR increased with charge time", seed)
			}
		}
		for _, p := range pts {
			if p.AOR < 0 || p.AOR > 1 {
				t.Fatalf("seed %d: AOR out of [0,1]: %v", seed, p.AOR)
			}
		}
	}
}

func TestOutageDominatedByRepairTime(t *testing.T) {
	// A component that only produces outages: unavailability ≈ (MTTR +
	// charge)/(MTBF) for MTTR ≫ charge.
	comp := []Component{{"X", PowerOutage, 1000, 10}}
	s, _ := NewSimulator(comp, 5)
	pts := s.Sweep(20000, []time.Duration{time.Hour})
	wantLoss := (10.0 + 1) / 1000 * hoursPerYear
	if math.Abs(pts[0].LossHoursPerYear-wantLoss)/wantLoss > 0.15 {
		t.Errorf("outage loss = %.1f h/yr, want ~%.1f", pts[0].LossHoursPerYear, wantLoss)
	}
}

func TestRequiredChargeTimeInvertsTableII(t *testing.T) {
	s, _ := NewSimulator(TableI(), 3)
	const years = 10000
	// The 99.90% AOR target (P2) should be achievable with a charge time in
	// the neighbourhood of the paper's 60-minute SLA.
	ct, ok := s.RequiredChargeTime(years, 0.9990, 3*time.Hour, time.Minute)
	if !ok {
		t.Fatal("99.90% AOR reported unreachable")
	}
	if ct < 40*time.Minute || ct > 80*time.Minute {
		t.Errorf("charge time for 99.90%% AOR = %v, want ~60 min", ct)
	}
	// The returned time actually meets the target...
	s2, _ := NewSimulator(TableI(), 3)
	ds := s2.Disruptions(years)
	if got := AOR(ds, ct, years); got < 0.9990 {
		t.Errorf("AOR at returned charge time = %v < target", got)
	}
	// ...and is maximal at the resolution.
	if got := AOR(ds, ct+2*time.Minute, years); got >= 0.9990 {
		t.Errorf("charge time not maximal: %v still meets target", ct+2*time.Minute)
	}
}

func TestRequiredChargeTimeUnreachableTarget(t *testing.T) {
	s, _ := NewSimulator(TableI(), 3)
	if _, ok := s.RequiredChargeTime(2000, 0.99999, time.Hour, time.Minute); ok {
		t.Error("five-nines AOR reported achievable despite outage floor")
	}
}

func TestRequiredChargeTimeGenerousTarget(t *testing.T) {
	s, _ := NewSimulator(TableI(), 3)
	ct, ok := s.RequiredChargeTime(2000, 0.99, 2*time.Hour, time.Minute)
	if !ok || ct != 2*time.Hour {
		t.Errorf("generous target = %v/%v, want full max duration", ct, ok)
	}
}

func TestBreakdownAttribution(t *testing.T) {
	s, _ := NewSimulator(TableI(), 9)
	const years = 5000
	rows := s.Breakdown(years, 30*time.Minute)
	if len(rows) != 11 {
		t.Fatalf("breakdown rows = %d, want 11", len(rows))
	}
	var sum float64
	byName := map[string]ComponentLoss{}
	for _, r := range rows {
		if r.LossHoursPerYear < 0 {
			t.Errorf("%s negative loss", r.Component.Name)
		}
		sum += r.LossHoursPerYear
		if r.Component.Type == UtilityFailure {
			byName["utility"] = r
		}
	}
	// The sum of per-component losses approximates the joint loss (overlaps
	// are rare), which at 30 min charge time is ~5 hr/yr.
	s2, _ := NewSimulator(TableI(), 9)
	joint := s2.TableII(years)[0].LossHoursPerYear
	if sum < joint*0.95 || sum > joint*1.10 {
		t.Errorf("breakdown sum %.2f vs joint %.2f hr/yr", sum, joint)
	}
	// Utility failures are the most frequent event class (~1.4/yr).
	u := byName["utility"]
	if u.EventsPerYear < 1.1 || u.EventsPerYear > 1.7 {
		t.Errorf("utility events/yr = %.2f, want ~1.37", u.EventsPerYear)
	}
	// Annual maintenance happens ~1/yr per component.
	for _, r := range rows {
		if r.Component.Type == AnnualMaintenance {
			if r.EventsPerYear < 0.9 || r.EventsPerYear > 1.1 {
				t.Errorf("%s annual events/yr = %.2f", r.Component.Name, r.EventsPerYear)
			}
		}
	}
}

func TestAnnualMaintenanceRate(t *testing.T) {
	// An annual component produces ~1 failure → 2 disruptions per year.
	comp := []Component{{"MSB", AnnualMaintenance, 8760, 5}}
	s, _ := NewSimulator(comp, 5)
	ds := s.Disruptions(2000)
	perYear := float64(len(ds)) / 2000
	if math.Abs(perYear-2) > 0.15 {
		t.Errorf("annual maintenance disruptions/yr = %.2f, want ~2", perYear)
	}
}
