package reliability

import (
	"testing"
	"time"
)

func BenchmarkDisruptions1000y(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewSimulator(TableI(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		_ = s.Disruptions(1000)
	}
}

func BenchmarkAORUnion(b *testing.B) {
	s, err := NewSimulator(TableI(), 1)
	if err != nil {
		b.Fatal(err)
	}
	ds := s.Disruptions(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AOR(ds, time.Duration(15+i%106)*time.Minute, 10000)
	}
}
