package svc

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"coordcharge/internal/rack"
)

// FuzzAdvisorRequest hammers the strict decoder with arbitrary bytes. The
// invariant is the validation contract itself: whatever survives
// DecodeAdvisorRequest must satisfy every bound Validate promises, and must
// lower onto an AdvisorSpec without error — the compute path may assume a
// decoded request is physically sane.
func FuzzAdvisorRequest(f *testing.F) {
	f.Add([]byte(`{"p1":1,"p2":2,"p3":3,"avg_dod":0.5}`))
	f.Add([]byte(`{"p1":0,"p2":0,"p3":0,"avg_dod":0.7,"mode":"postpone","policy":"original"}`))
	f.Add([]byte(`{"avg_dod":1e308,"resolution_kw":-0}`))
	f.Add([]byte(`{"p1":1024,"priority":3,"seed":-9223372036854775808}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"p1":1}{"p1":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeAdvisorRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if q.P1 < 0 || q.P2 < 0 || q.P3 < 0 || q.P1+q.P2+q.P3 > MaxRacks {
			t.Fatalf("decoder admitted population %d/%d/%d", q.P1, q.P2, q.P3)
		}
		if math.IsNaN(q.AvgDOD) || q.AvgDOD < 0 || q.AvgDOD > 1 {
			t.Fatalf("decoder admitted avg_dod %v", q.AvgDOD)
		}
		if math.IsNaN(q.ResolutionKW) || q.ResolutionKW < 0 || q.ResolutionKW > 1000 {
			t.Fatalf("decoder admitted resolution_kw %v", q.ResolutionKW)
		}
		if _, err := q.Spec(); err != nil {
			t.Fatalf("validated request failed to lower: %v", err)
		}
	})
}

// FuzzTraceFrame hammers the ingestion plane: an arbitrary header line plus
// an arbitrary frame line. Whatever passes ParseIngestHeader + ValidateFrame
// must be physically plausible — finite wattages within the rack's rated IT
// load, on the declared grid — because the trace store feeds simulations
// directly.
func FuzzTraceFrame(f *testing.F) {
	f.Add([]byte(`{"name":"t","racks":2,"step_s":10}`), []byte(`{"t_s":0,"w":[100,200]}`))
	f.Add([]byte(`{"name":"t","racks":1,"step_s":0.5}`), []byte(`{"t_s":1e308,"w":[1e308]}`))
	f.Add([]byte(`{"name":"../../etc","racks":1,"step_s":10}`), []byte(`{"t_s":0,"w":[-0]}`))
	f.Add([]byte(`{"name":"t","racks":3,"step_s":3600}`), []byte(`{"t_s":0,"w":[12600,0,1.5]}`))
	f.Fuzz(func(t *testing.T, header, frame []byte) {
		h, err := ParseIngestHeader(header)
		if err != nil {
			return
		}
		if h.Racks <= 0 || h.Racks > MaxIngestRacks || h.StepS <= 0 || h.StepS > 3600 {
			t.Fatalf("header validation admitted %+v", h)
		}
		var fr TraceFrame
		if json.Unmarshal(frame, &fr) != nil {
			return
		}
		if ValidateFrame(h, &fr, -1, 0) != nil {
			return
		}
		if len(fr.W) != h.Racks {
			t.Fatalf("frame width %d admitted against %d racks", len(fr.W), h.Racks)
		}
		for i, w := range fr.W {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 || w > float64(rack.MaxITLoad) {
				t.Fatalf("frame value %d admitted: %v", i, w)
			}
		}
		// A frame accepted as a successor must sit exactly one declared step
		// after its predecessor.
		next := fr
		next.TS = fr.TS + h.StepS
		if err := ValidateFrame(h, &next, fr.TS, 1); err != nil {
			// Float growth can push TS out of the finite range; reject is
			// fine, admitting a wrong grid is not.
			return
		}
	})
}
