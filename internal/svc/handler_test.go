package svc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestService builds a started Service and registers its drain.
func newTestService(t *testing.T, opt Options) *Service {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// do drives one request through the handler in-process.
func do(h http.Handler, method, path, body string, hdr ...string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		r.Header.Set(hdr[i], hdr[i+1])
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestStatusWithoutResident(t *testing.T) {
	s := newTestService(t, Options{})
	w := do(s.Handler(), http.MethodGet, "/api/v1/status", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp StatusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != StateIdle {
		t.Errorf("state = %q, want idle", resp.State)
	}
	if resp.Resident != nil {
		t.Errorf("resident = %+v, want absent", resp.Resident)
	}
}

func TestAdviseEndpoint(t *testing.T) {
	s := newTestService(t, Options{})
	h := s.Handler()
	w := do(h, http.MethodPost, "/api/v1/advise", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var adv AdviceResponse
	if err := json.Unmarshal(w.Body.Bytes(), &adv); err != nil {
		t.Fatal(err)
	}
	if adv.Racks != 3 || adv.MinFullSLALimitW <= 0 {
		t.Errorf("advice = %+v", adv)
	}
	if w := do(h, http.MethodPost, "/api/v1/advise", `{"p1":1,"zap":2}`); w.Code != http.StatusBadRequest {
		t.Errorf("malformed request: status = %d, want 400", w.Code)
	}
	if w := do(h, http.MethodGet, "/api/v1/advise", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET advise: status = %d, want 405", w.Code)
	}
}

// TestOverloadSheds429 fills the single worker and its disabled queue; the
// next request must shed with 429 and a Retry-After hint.
func TestOverloadSheds429(t *testing.T) {
	s := newTestService(t, Options{Pool: PoolConfig{Workers: 1, QueueCap: -1}})
	block := make(chan struct{})
	entered := make(chan struct{})
	h := s.supervised(true, func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	})
	go do(h, http.MethodPost, "/api/v1/advise", `{}`)
	<-entered
	w := do(h, http.MethodPost, "/api/v1/advise", `{}`)
	close(block)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestPanicRecovered pins the supervision contract: a panicking handler
// becomes a 500 and the service keeps serving.
func TestPanicRecovered(t *testing.T) {
	s := newTestService(t, Options{})
	boom := s.supervised(false, func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	w := do(boom, http.MethodGet, "/api/v1/status", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	if got := s.cPanics.Value(); got != 1 {
		t.Errorf("svc.panics = %d, want 1", got)
	}
	// The daemon is still alive and the panic is journaled.
	if w := do(s.Handler(), http.MethodGet, "/api/v1/status", ""); w.Code != http.StatusOK {
		t.Fatalf("service died after panic: %d", w.Code)
	}
	found := false
	for _, e := range s.ServiceFlight().Last(16) {
		if e.Kind == "panic" {
			found = true
		}
	}
	if !found {
		t.Error("panic not journaled in the service flight recorder")
	}
}

// TestComputePanicTripsBreaker: panics inside the compute path count as
// breaker failures and surface as 500s, never crashes.
func TestComputePanicTripsBreaker(t *testing.T) {
	s := newTestService(t, Options{Breaker: BreakerConfig{Threshold: 2}})
	for i := 0; i < 2; i++ {
		_, err := s.compute(func() (any, error) { panic("planner bug") })
		if err == nil || !strings.Contains(err.Error(), "compute panic") {
			t.Fatalf("compute err = %v", err)
		}
	}
	if st, trips := s.brk.State(); st != BreakerOpen || trips != 1 {
		t.Fatalf("breaker = %v/%d, want open after 2 panics", st, trips)
	}
	// An open breaker rejects API compute with 503 + Retry-After.
	w := do(s.Handler(), http.MethodPost, "/api/v1/advise", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestProbeEarlyExitDoesNotWedgeBreaker drives the probe-wedge regression end
// to end: the half-open probe request 405s before reaching compute (no
// verdict), and the next valid request must still be admitted as a fresh
// probe and close the breaker — not be rejected with 503 forever.
func TestProbeEarlyExitDoesNotWedgeBreaker(t *testing.T) {
	fc := newFakeClock()
	s := newTestService(t, Options{
		Clock:   fc.Clock(),
		Breaker: BreakerConfig{Threshold: 1, Cooldown: time.Second},
	})
	h := s.Handler()
	if _, err := s.compute(func() (any, error) { return nil, fmt.Errorf("planner down") }); err == nil {
		t.Fatal("compute failure not surfaced")
	}
	if st, _ := s.brk.State(); st != BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
	fc.Advance(2 * time.Second)
	// The probe request exits the handler before compute: method not allowed.
	if w := do(h, http.MethodGet, "/api/v1/advise", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("probe status = %d, want 405", w.Code)
	}
	// The verdict-less probe released its slot: a valid request is admitted
	// as the next probe and its success closes the breaker.
	w := do(h, http.MethodPost, "/api/v1/advise", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("post-probe status = %d: %s, want 200 (breaker wedged?)", w.Code, w.Body)
	}
	if st, _ := s.brk.State(); st != BreakerClosed {
		t.Fatalf("breaker = %v, want closed", st)
	}
}

// TestRequestDeadlineAborts504: the run-watchdog (the request deadline wired
// into HardStop) aborts a query that cannot finish in time.
func TestRequestDeadlineAborts504(t *testing.T) {
	s := newTestService(t, Options{RequestTimeout: time.Millisecond})
	// 60 racks is far more than a millisecond of advisor bisection.
	w := do(s.Handler(), http.MethodPost, "/api/v1/advise", `{"p1":20,"p2":20,"p3":20,"avg_dod":0.7}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s, want 504", w.Code, w.Body)
	}
	// The abort is not a compute failure: the breaker must stay closed.
	if st, _ := s.brk.State(); st != BreakerClosed {
		t.Errorf("breaker = %v after deadline abort, want closed", st)
	}
}

func TestIngestAndRunOverIngestedTrace(t *testing.T) {
	s := newTestService(t, Options{})
	h := s.Handler()
	var b strings.Builder
	b.WriteString(`{"name":"up","racks":3,"step_s":10}` + "\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, `{"t_s":%d,"w":[4000,5000,6000]}`+"\n", i*10)
	}
	if w := do(h, http.MethodPost, "/api/v1/ingest", b.String()); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", w.Code, w.Body)
	}
	// Referencing it with the wrong population is a client error.
	if w := do(h, http.MethodPost, "/api/v1/run", `{"p1":1,"p2":1,"p3":2,"avg_dod":0.3,"limit_mw":0.2,"trace":"up"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("mismatched trace: %d, want 400", w.Code)
	}
	if w := do(h, http.MethodPost, "/api/v1/run", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.3,"limit_mw":0.2,"trace":"nope"}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", w.Code)
	}
	w := do(h, http.MethodPost, "/api/v1/run", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.3,"limit_mw":0.2,"trace":"up"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("run over trace: %d %s", w.Code, w.Body)
	}
	var sum RunSummary
	if err := json.Unmarshal(w.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Racks["P1"] != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestIngestQuarantine(t *testing.T) {
	s := newTestService(t, Options{})
	h := s.Handler()
	bad := "{\"name\":\"evil\",\"racks\":2,\"step_s\":10}\n{\"t_s\":0,\"w\":[1,99999]}\n"
	if w := do(h, http.MethodPost, "/api/v1/ingest", bad); w.Code != http.StatusBadRequest {
		t.Fatalf("bad upload: %d, want 400", w.Code)
	}
	var resp StatusResponse
	w := do(h, http.MethodGet, "/api/v1/status", "")
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", resp.Quarantined)
	}
	if len(resp.Traces) != 0 {
		t.Errorf("quarantined trace entered the store: %+v", resp.Traces)
	}
	// The quarantine is journaled.
	found := false
	for _, e := range s.ServiceFlight().Last(16) {
		if e.Comp == "svc/ingest" && e.Kind == "quarantine" {
			found = true
		}
	}
	if !found {
		t.Error("quarantine not journaled")
	}
}

func TestDrainingRejectsWith503(t *testing.T) {
	s := newTestService(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	w := do(s.Handler(), http.MethodPost, "/api/v1/advise", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 while draining", w.Code)
	}
	if s.State() != StateStopped {
		t.Errorf("state = %q, want stopped", s.State())
	}
}
