package svc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"coordcharge/internal/obs"
)

// ErrBreakerOpen rejects a request because the planner/advisor path has
// failed repeatedly and the circuit breaker is cooling down.
var ErrBreakerOpen = errors.New("svc: circuit breaker open")

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe request; its outcome closes or
	// re-opens the breaker.
	BreakerHalfOpen
)

// String renders the state for status payloads and flight events.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// BreakerConfig parameterises the compute-path circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	// Zero selects the default (5).
	Threshold int
	// Cooldown is how long the breaker stays open before half-opening for a
	// probe. Zero selects the default (15 s).
	Cooldown time.Duration
}

// withDefaults resolves zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Cooldown == 0 {
		c.Cooldown = 15 * time.Second
	}
	return c
}

// breaker is a consecutive-failure circuit breaker around the
// planner/advisor compute path. A run of Threshold failures trips it open;
// requests are then rejected with ErrBreakerOpen (the HTTP layer maps this
// to 503 + Retry-After) until Cooldown elapses, after which exactly one
// probe request is admitted half-open. The probe's outcome closes the
// breaker or re-opens it for another cooldown. It is safe for concurrent
// use.
type breaker struct {
	cfg   BreakerConfig
	clock Clock
	sink  *obs.Sink
	now   func() time.Duration // service-journal timestamp (elapsed wall time)

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	failures int          // guarded by mu
	openedAt time.Time    // guarded by mu
	probing  bool         // guarded by mu
	probeSeq uint64       // guarded by mu; token of the probe in flight
	trips    int          // guarded by mu

	cTrips, cRejected *obs.Counter
}

// newBreaker builds a closed breaker. sink/now attach the service journal
// (both may be nil/zero for detached use).
func newBreaker(cfg BreakerConfig, clock Clock, sink *obs.Sink, now func() time.Duration) *breaker {
	b := &breaker{cfg: cfg.withDefaults(), clock: clock.withDefaults(), sink: sink, now: now}
	b.cTrips = sink.Counter("svc.breaker_trips")
	b.cRejected = sink.Counter("svc.breaker_rejected")
	return b
}

// Allow asks to pass one request through. It returns ErrBreakerOpen with the
// remaining cooldown when the breaker is open (or a half-open probe is
// already in flight); the caller surfaces the wait as Retry-After. When the
// admitted request is the half-open probe, probe is its nonzero token and the
// caller MUST eventually hand it to releaseProbe (deferring it on every exit
// path), or a probe that never reaches a verdict wedges the breaker.
func (b *breaker) Allow() (retryAfter time.Duration, probe uint64, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return 0, 0, nil
	case BreakerOpen:
		elapsed := b.clock.Now().Sub(b.openedAt)
		if elapsed < b.cfg.Cooldown {
			b.cRejected.Inc()
			return b.cfg.Cooldown - elapsed, 0, ErrBreakerOpen
		}
		// Cooldown over: half-open and admit this request as the probe.
		b.state = BreakerHalfOpen
		b.journalLocked("half-open")
		return 0, b.startProbeLocked(), nil
	default: // BreakerHalfOpen
		if b.probing {
			b.cRejected.Inc()
			return b.cfg.Cooldown, 0, ErrBreakerOpen
		}
		return 0, b.startProbeLocked(), nil
	}
}

// startProbeLocked marks a probe in flight and mints its token; the caller
// holds mu.
func (b *breaker) startProbeLocked() uint64 {
	b.probing = true
	b.probeSeq++
	return b.probeSeq
}

// releaseProbe guarantees a half-open probe cannot wedge the breaker. If the
// probe reached a verdict (Success/Failure already cleared probing and moved
// the state) this is a no-op; if it ended without one — the handler bailed
// before compute (wrong method, bad JSON, unknown trace) or the run was
// deadline-aborted, which is the client's doing and therefore inconclusive —
// the probe slot is returned so the breaker stays half-open and the next
// request probes again. The token keys the release to its own probe: a stale
// deferred release cannot clear a newer probe admitted after this one's
// verdict.
func (b *breaker) releaseProbe(token uint64) {
	if token == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing && b.probeSeq == token {
		b.probing = false
		b.journalLocked("probe-release")
	}
}

// Success reports a request that completed cleanly: any state resets to
// closed.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		b.journalLocked("close")
	}
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a compute-path failure. Closed breakers count toward the
// trip threshold; a failed half-open probe re-opens immediately.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.tripLocked()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.tripLocked()
		}
	}
}

// tripLocked opens the breaker; the caller holds mu.
func (b *breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.failures = 0
	b.probing = false
	b.trips++
	b.cTrips.Inc()
	b.journalLocked("trip")
}

// journalLocked records a state transition in the service journal; the
// caller holds mu.
func (b *breaker) journalLocked(kind string) {
	if b.sink != nil && b.now != nil {
		b.sink.Event(b.now(), "svc/breaker", kind,
			"state", b.state.String(),
			"trips", fmt.Sprintf("%d", b.trips))
	}
}

// State returns the current position (resolving an expired open cooldown as
// open until the next Allow observes it) and the total trip count.
func (b *breaker) State() (BreakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
