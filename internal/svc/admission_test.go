package svc

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for the supervision machinery.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Clock() Clock {
	return Clock{
		Now: func() time.Time {
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.now
		},
		Sleep: func(d time.Duration) { f.Advance(d) },
	}
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// waitDepth polls until the pool reports the wanted queue depth.
func waitDepth(t *testing.T, p *pool, queued int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if _, q, _ := p.Depth(); q == queued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d", queued)
}

// TestPoolConfigNegativeWorkersDefaults: a negative worker count is a
// misconfiguration (e.g. coordd -workers -1), not a request to shed 100% of
// compute traffic; like zero it resolves to the default.
func TestPoolConfigNegativeWorkersDefaults(t *testing.T) {
	cfg := PoolConfig{Workers: -1}.withDefaults()
	if cfg.Workers != 4 || cfg.QueueCap != 16 {
		t.Fatalf("cfg = %+v, want Workers 4, QueueCap 16", cfg)
	}
}

func TestPoolFastPathThenShed(t *testing.T) {
	fc := newFakeClock()
	p := newPool(PoolConfig{Workers: 1, QueueCap: -1}, fc.Clock(), nil, nil)
	if err := p.Acquire(context.Background(), 2); err != nil {
		t.Fatalf("fast path: %v", err)
	}
	// Worker busy and queueing disabled: the next arrival must shed.
	if err := p.Acquire(context.Background(), 1); err != ErrSaturated {
		t.Fatalf("overload: err = %v, want ErrSaturated", err)
	}
	if _, _, shed := p.Depth(); shed != 1 {
		t.Fatalf("shed count = %d, want 1", shed)
	}
	p.Release()
	if err := p.Acquire(context.Background(), 2); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestPoolAgingPromotesStarvedWaiter pins the deficit-aging contract: a P3
// request that has waited past AgeBoost outranks a fresher P2, exactly like
// storm.Queue's aged recharge admissions.
func TestPoolAgingPromotesStarvedWaiter(t *testing.T) {
	fc := newFakeClock()
	p := newPool(PoolConfig{Workers: 1, QueueCap: 8, AgeBoost: 5 * time.Second}, fc.Clock(), nil, nil)
	if err := p.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	admitted := make(chan int, 2)
	enqueue := func(prio int) {
		go func() {
			if err := p.Acquire(context.Background(), prio); err == nil {
				admitted <- prio
			}
		}()
	}
	enqueue(3)
	waitDepth(t, p, 1)
	fc.Advance(12 * time.Second) // P3 ages two classes: effective priority 1
	enqueue(2)
	waitDepth(t, p, 2)

	p.Release()
	if got := <-admitted; got != 3 {
		t.Fatalf("first admitted priority = %d, want the aged 3", got)
	}
	p.Release()
	if got := <-admitted; got != 2 {
		t.Fatalf("second admitted priority = %d, want 2", got)
	}
}

// TestPoolFreshHighPriorityBeatsAgedLow pins the tiebreak: aging promotes at
// most to class 1, where nominal priority then wins.
func TestPoolFreshHighPriorityBeatsAgedLow(t *testing.T) {
	fc := newFakeClock()
	p := newPool(PoolConfig{Workers: 1, QueueCap: 8, AgeBoost: 5 * time.Second}, fc.Clock(), nil, nil)
	if err := p.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan int, 2)
	acq := func(prio int) {
		go func() {
			if err := p.Acquire(context.Background(), prio); err == nil {
				admitted <- prio
			}
		}()
	}
	acq(3)
	waitDepth(t, p, 1)
	fc.Advance(time.Minute) // far past any boost: effective 1, nominal 3
	acq(1)
	waitDepth(t, p, 2)
	p.Release()
	if got := <-admitted; got != 1 {
		t.Fatalf("first admitted priority = %d, want nominal 1", got)
	}
	p.Release()
}

func TestPoolCancelWhileQueued(t *testing.T) {
	fc := newFakeClock()
	p := newPool(PoolConfig{Workers: 1, QueueCap: 4}, fc.Clock(), nil, nil)
	if err := p.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Acquire(ctx, 2) }()
	waitDepth(t, p, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, queued, _ := p.Depth(); queued != 0 {
		t.Fatalf("canceled waiter still queued (depth %d)", queued)
	}
	// The slot was never granted away: releasing and re-acquiring works.
	p.Release()
	if err := p.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRetryAfterScalesWithQueue(t *testing.T) {
	fc := newFakeClock()
	p := newPool(PoolConfig{Workers: 2, QueueCap: 16}, fc.Clock(), nil, nil)
	if got := p.RetryAfter(); got != time.Second {
		t.Fatalf("empty queue Retry-After = %v, want 1s", got)
	}
	for i := 0; i < 2; i++ {
		if err := p.Acquire(context.Background(), 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		go p.Acquire(context.Background(), 2) //nolint — intentionally left queued
	}
	waitDepth(t, p, 6)
	if got := p.RetryAfter(); got != 4*time.Second {
		t.Fatalf("Retry-After with 6 queued over 2 workers = %v, want 4s", got)
	}
}
