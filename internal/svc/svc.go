// Package svc is the long-running service plane of the coordinated-charging
// reproduction: a supervised daemon (cmd/coordd) hosting a resident fleet
// simulation while serving concurrent what-if advisor queries, on-demand
// runs, and validated trace ingestion over the obs HTTP surface.
//
// The package turns the batch simulator into something operable:
//
//   - Supervision. Every request runs under a deadline-carrying context;
//     panics in handlers or compute are recovered into 500s and journaled; a
//     run-watchdog aborts simulations that stop making progress instead of
//     letting them pin a worker forever.
//
//   - Admission control. A bounded worker pool fronted by a bounded,
//     deficit-aged wait queue (the internal/storm aging idiom applied to API
//     requests) sheds excess load with 429 + Retry-After; a circuit breaker
//     around the planner/advisor path trips on repeated failures and
//     half-opens after a cooldown, so a persistent fault degrades into fast
//     rejections instead of a pile-up.
//
//   - Validated ingestion. Request specs and streamed trace frames are
//     schema- and physics-checked before they can touch a simulation;
//     malformed input is quarantined and counted, never simulated.
//
//   - Lifecycle. SIGTERM drains: in-flight work finishes, the resident run
//     writes a final checkpoint, and the process exits cleanly. On restart
//     the daemon auto-discovers the latest verified checkpoint and resumes
//     the resident run bit-exactly, falling back to the previous-good
//     generation when the newest one fails digest verification.
//
// Determinism boundary: the resident simulation journals to a digest-bearing
// flight recorder exactly as a batch run would — same events, same digest.
// Service-plane events (admissions, sheds, breaker trips, drains) are
// wall-clock phenomena, so they go to a *separate* recorder sharing the same
// metrics registry; the resident digest stays reproducible under arbitrary
// API load.
package svc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"coordcharge/internal/ckpt"
	"coordcharge/internal/obs"
	"coordcharge/internal/scenario"
	"coordcharge/internal/trace"
)

// Service lifecycle states.
const (
	// StateStarting covers construction until the resident run's first tick.
	StateStarting = "starting"
	// StateResuming marks a restart that found a checkpoint and is replaying
	// to the checkpoint boundary.
	StateResuming = "resuming"
	// StateRunning means the resident simulation is ticking.
	StateRunning = "running"
	// StateIdle means the resident run completed (or none was configured);
	// the API plane keeps serving.
	StateIdle = "idle"
	// StateDegraded means the resident run failed, was aborted by the
	// watchdog, or could not resume; the API plane keeps serving.
	StateDegraded = "degraded"
	// StateDraining means shutdown has begun: new work is rejected while
	// in-flight work finishes and the resident run checkpoints.
	StateDraining = "draining"
	// StateStopped means drain completed.
	StateStopped = "stopped"
)

// ResidentCheckpointFile is the checkpoint name inside Options.CheckpointDir;
// the previous generation lives beside it at ckpt.PrevPath of this name.
const ResidentCheckpointFile = "resident.ckpt"

// Options configures a Service.
type Options struct {
	// Resident, when non-nil, is the fleet simulation the daemon hosts. It
	// is validated like any API run request and also provides the default
	// population for advisor queries that omit rack counts.
	Resident *RunRequest
	// Pace slaves the resident run's virtual time to the wall clock at this
	// ratio (e.g. 60 = one virtual minute per wall second); 0 free-runs.
	Pace float64
	// CheckpointDir, when non-empty, holds the resident run's cadence
	// checkpoints; restarts auto-resume from it.
	CheckpointDir string
	// CheckpointEvery overrides the cadence (default: scenario's 5 min of
	// virtual time).
	CheckpointEvery time.Duration
	// Fresh ignores any existing checkpoint and starts the resident run
	// from scratch.
	Fresh bool
	// Pool bounds request admission; Breaker guards the compute path.
	Pool    PoolConfig
	Breaker BreakerConfig
	// RequestTimeout is the per-request deadline (default 60 s); the
	// run-watchdog aborts request simulations that outlive it.
	RequestTimeout time.Duration
	// WatchdogTTL is how long the resident run may go without completing a
	// tick before the stall watchdog aborts it and marks the service
	// degraded (default 2 min; negative disables).
	WatchdogTTL time.Duration
	// FlightCap sizes both flight recorders (default obs.DefaultFlightCap).
	FlightCap int
	// Clock injects time for tests; zero uses the wall clock.
	Clock Clock
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.WatchdogTTL == 0 {
		o.WatchdogTTL = 2 * time.Minute
	}
	if o.FlightCap <= 0 {
		o.FlightCap = obs.DefaultFlightCap
	}
	return o
}

// Service is the daemon core. Construct with New, serve Handler over an
// obs-plane server, stop with Shutdown.
type Service struct {
	opt     Options
	clock   Clock
	simSink *obs.Sink // resident run's digest-bearing flight recorder + shared registry
	svcSink *obs.Sink // service journal: same registry, separate recorder
	pool    *pool
	brk     *breaker
	started time.Time

	draining   atomic.Bool
	drainFlag  atomic.Bool  // resident Interrupt: checkpoint and stop
	abortFlag  atomic.Bool  // resident HardStop: watchdog abort
	lastTickNS atomic.Int64 // virtual time of the resident run's last tick
	lastBeatNS atomic.Int64 // elapsed() at the resident run's last tick (watchdog heartbeat)

	residentDone chan struct{} // closed when the resident goroutine exits
	watchdogStop chan struct{} // closed to retire the stall watchdog
	drainOnce    sync.Once

	mu              sync.Mutex
	state           string                         // guarded by mu
	resumedFrom     string                         // guarded by mu
	residentSummary *RunSummary                    // guarded by mu
	residentErr     error                          // guarded by mu
	traces          map[string]*trace.Materialized // guarded by mu
	quarantined     int                            // guarded by mu
	runsLaunched    int                            // guarded by mu

	cQuarantined, cPanics *obs.Counter
}

// New builds and starts a Service: the resident simulation (if configured)
// begins ticking in its own goroutine, resuming from the newest verified
// checkpoint unless Options.Fresh. Synchronous errors cover only invalid
// configuration; resident-run failures surface through Status as
// StateDegraded, because a daemon that cannot resume must still come up and
// serve its API plane.
func New(opt Options) (*Service, error) {
	opt = opt.withDefaults()
	if opt.Resident != nil {
		if err := opt.Resident.Validate(); err != nil {
			return nil, fmt.Errorf("svc: resident config: %w", err)
		}
		if opt.Resident.Trace != "" {
			return nil, fmt.Errorf("svc: resident config cannot reference an ingested trace")
		}
	}
	s := &Service{
		opt:          opt,
		clock:        opt.Clock.withDefaults(),
		simSink:      obs.NewSink(opt.FlightCap),
		state:        StateStarting,
		traces:       map[string]*trace.Materialized{},
		residentDone: make(chan struct{}),
		watchdogStop: make(chan struct{}),
	}
	s.started = s.clock.Now()
	s.svcSink = &obs.Sink{Reg: s.simSink.Reg, Flight: obs.NewRecorder(opt.FlightCap)}
	s.pool = newPool(opt.Pool, s.clock, s.svcSink, s.elapsed)
	s.brk = newBreaker(opt.Breaker, s.clock, s.svcSink, s.elapsed)
	s.cQuarantined = s.svcSink.Counter("svc.quarantined")
	s.cPanics = s.svcSink.Counter("svc.panics")

	if opt.Resident == nil {
		s.setState(StateIdle)
		close(s.residentDone)
		return s, nil
	}
	spec, err := opt.Resident.Spec()
	if err != nil {
		return nil, fmt.Errorf("svc: resident config: %w", err)
	}
	spec.Obs = s.simSink
	if opt.CheckpointDir != "" {
		path := filepath.Join(opt.CheckpointDir, ResidentCheckpointFile)
		spec.Checkpoint = path
		spec.CheckpointEvery = opt.CheckpointEvery
		if !opt.Fresh && checkpointPresent(path) {
			spec.Resume = path
			s.setState(StateResuming)
			s.journal("svc/lifecycle", "resume-discovered", "path", path)
		}
	}
	spec.Interrupt = s.drainFlag.Load
	spec.HardStop = func(time.Duration) bool { return s.abortFlag.Load() }
	spec.StepHook = s.residentStepHook(spec.Step)
	go s.runResident(spec)
	if opt.WatchdogTTL > 0 {
		go s.stallWatchdog(opt.WatchdogTTL) //coordvet:detached process-lifetime watchdog; exits with the daemon
	}
	return s, nil
}

// checkpointPresent reports whether path or its previous generation exists —
// the auto-resume discovery probe. Verification happens at restore time,
// where ckpt.ReadFileFallback prefers the latest generation and falls back
// to the previous-good one.
func checkpointPresent(path string) bool {
	if _, err := os.Stat(path); err == nil {
		return true
	}
	_, err := os.Stat(ckpt.PrevPath(path))
	return err == nil
}

// elapsed is the service journal's timestamp: wall time since construction.
// Service events are wall-clock phenomena, so unlike the resident flight
// recorder these stamps are not reproducible — which is why they live in a
// separate recorder.
func (s *Service) elapsed() time.Duration { return s.clock.Now().Sub(s.started) }

// journal records one service-plane event.
func (s *Service) journal(comp, kind string, kv ...string) {
	if s.svcSink != nil {
		s.svcSink.Event(s.elapsed(), comp, kind, kv...)
	}
}

// setState transitions the lifecycle state (draining and stopped are sticky:
// a resident run finishing mid-drain must not flip the service back to idle).
func (s *Service) setState(state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateStopped || (s.state == StateDraining && state != StateStopped) {
		return
	}
	s.state = state
}

// State returns the lifecycle state.
func (s *Service) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// residentStepHook publishes tick progress (virtual time for status, wall
// time for the stall watchdog) and applies pacing.
func (s *Service) residentStepHook(step time.Duration) func(time.Duration) {
	var wait time.Duration
	if s.opt.Pace > 0 {
		if step == 0 {
			step = 3 * time.Second // RunCoordinated's default tick
		}
		wait = time.Duration(float64(step) / s.opt.Pace)
	}
	first := true
	return func(now time.Duration) {
		s.lastTickNS.Store(int64(now))
		s.lastBeatNS.Store(int64(s.elapsed()))
		if first {
			first = false
			s.setState(StateRunning)
		}
		if wait > 0 {
			s.clock.Sleep(wait)
		}
	}
}

// runResident hosts the resident simulation for its whole life.
func (s *Service) runResident(spec scenario.CoordSpec) {
	defer close(s.residentDone)
	s.journal("svc/lifecycle", "resident-start",
		"racks", fmt.Sprintf("%d", spec.NumP1+spec.NumP2+spec.NumP3),
		"resume", spec.Resume)
	res, err := scenario.RunCoordinated(spec)
	s.lastBeatNS.Store(int64(s.elapsed()))
	if err != nil {
		s.mu.Lock()
		s.residentErr = err
		s.mu.Unlock()
		kind := "resident-failed"
		if errors.Is(err, scenario.ErrAborted) {
			kind = "resident-aborted"
		} else if spec.Resume != "" {
			kind = "resident-resume-failed"
		}
		s.journal("svc/lifecycle", kind, "err", err.Error())
		s.setState(StateDegraded)
		return
	}
	if spec.Resume != "" {
		s.mu.Lock()
		s.resumedFrom = spec.Resume
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.residentSummary = Summarize(res)
	s.mu.Unlock()
	if res.Interrupted {
		s.journal("svc/lifecycle", "resident-checkpointed", "path", spec.Checkpoint)
		return // drain in progress; Shutdown owns the state transition
	}
	s.journal("svc/lifecycle", "resident-complete",
		"transition_s", fmt.Sprintf("%.0f", res.TransitionLength.Seconds()))
	s.setState(StateIdle)
}

// stallWatchdog aborts a resident run that stops completing ticks. A stall
// here means the simulation itself is wedged (or pacing is configured far
// slower than the TTL — an operator error worth surfacing the same way);
// aborting it frees the goroutine and marks the service degraded rather than
// letting a dead resident look healthy forever.
func (s *Service) stallWatchdog(ttl time.Duration) {
	for {
		s.clock.Sleep(ttl / 4)
		select {
		case <-s.watchdogStop:
			return
		case <-s.residentDone:
			return
		default:
		}
		if s.draining.Load() {
			return
		}
		last := time.Duration(s.lastBeatNS.Load())
		if last == 0 {
			// Still replaying toward a checkpoint boundary (StepHook is
			// suppressed during replay) or constructing; the first live tick
			// arms the heartbeat.
			continue
		}
		if s.elapsed()-last > ttl {
			s.journal("svc/watchdog", "resident-stalled",
				"last_beat_s", fmt.Sprintf("%.1f", last.Seconds()),
				"ttl_s", fmt.Sprintf("%.0f", ttl.Seconds()))
			s.abortFlag.Store(true)
			return
		}
	}
}

// Shutdown drains the service: new requests are rejected with 503, the
// resident run writes a final checkpoint at its next tick boundary, and the
// call returns when the resident goroutine has exited (hard-aborting it if
// ctx expires first). Idempotent; later calls re-wait on the same drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	s.state = StateDraining
	s.mu.Unlock()
	s.drainOnce.Do(func() {
		s.journal("svc/lifecycle", "drain-begin")
		close(s.watchdogStop)
	})
	s.drainFlag.Store(true)
	var err error
	select {
	case <-s.residentDone:
	case <-ctx.Done():
		// The graceful window closed: hard-abort the resident run. The last
		// cadence checkpoint (plus its previous generation) is still on
		// disk, so restart loses at most one cadence interval.
		s.abortFlag.Store(true)
		<-s.residentDone
		err = fmt.Errorf("svc: drain deadline expired; resident run hard-aborted: %w", ctx.Err())
	}
	s.mu.Lock()
	s.state = StateStopped
	s.mu.Unlock()
	s.journal("svc/lifecycle", "drain-complete")
	return err
}

// SimSink exposes the resident run's digest-bearing observability sink (the
// one obs.Handler serves at /metrics and /debug/flight).
func (s *Service) SimSink() *obs.Sink { return s.simSink }

// ServiceFlight exposes the service journal's recorder (served at
// /debug/service/flight).
func (s *Service) ServiceFlight() *obs.Recorder { return s.svcSink.Flight }

// Health supplies the /healthz payload.
func (s *Service) Health() map[string]any {
	state := s.State()
	running, queued, shed := s.pool.Depth()
	bState, trips := s.brk.State()
	return map[string]any{
		"state":           state,
		"resident_tick_s": time.Duration(s.lastTickNS.Load()).Seconds(),
		"pool_running":    running,
		"pool_queued":     queued,
		"pool_shed":       shed,
		"breaker":         bState.String(),
		"breaker_trips":   trips,
	}
}

// storeTrace admits one validated upload into the named-trace store.
func (s *Service) storeTrace(name string, m *trace.Materialized) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.traces[name]; !ok && len(s.traces) >= maxTraceNames {
		return fmt.Errorf("svc: trace store full (%d names)", maxTraceNames)
	}
	s.traces[name] = m
	return nil
}

// lookupTrace resolves a run request's named trace.
func (s *Service) lookupTrace(name string) (*trace.Materialized, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.traces[name]
	return m, ok
}

// quarantine counts and journals one rejected upload.
func (s *Service) quarantine(frames int, err error) {
	s.mu.Lock()
	s.quarantined++
	n := s.quarantined
	s.mu.Unlock()
	s.cQuarantined.Inc()
	s.journal("svc/ingest", "quarantine",
		"frames_read", fmt.Sprintf("%d", frames),
		"total", fmt.Sprintf("%d", n),
		"err", err.Error())
}

// baselinePopulation fills an advisor query's zero rack counts from the
// resident configuration, so "size my current fleet" is the zero-value
// query.
func (s *Service) baselinePopulation(q *AdvisorRequest) {
	if q.P1+q.P2+q.P3 > 0 || s.opt.Resident == nil {
		return
	}
	q.P1, q.P2, q.P3 = s.opt.Resident.P1, s.opt.Resident.P2, s.opt.Resident.P3
	if q.AvgDOD == 0 {
		q.AvgDOD = s.opt.Resident.AvgDOD
	}
}
