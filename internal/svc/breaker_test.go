package svc

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerTripCooldownProbe(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second}, fc.Clock(), nil, nil)

	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if _, err := b.Allow(); err != nil {
		t.Fatalf("below threshold: %v", err)
	}
	b.Failure() // third consecutive failure trips it
	if st, trips := b.State(); st != BreakerOpen || trips != 1 {
		t.Fatalf("state = %v trips = %d, want open/1", st, trips)
	}
	wait, err := b.Allow()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a request (err = %v)", err)
	}
	if wait <= 0 || wait > 10*time.Second {
		t.Fatalf("retry-after = %v, want within the cooldown", wait)
	}

	fc.Advance(11 * time.Second)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if st, _ := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}
	// Only one probe at a time.
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted (err = %v)", err)
	}
	b.Success()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
	if _, err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: 5 * time.Second}, fc.Clock(), nil, nil)
	b.Failure()
	fc.Advance(6 * time.Second)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Failure()
	if st, trips := b.State(); st != BreakerOpen || trips != 2 {
		t.Fatalf("state = %v trips = %d, want reopened/2", st, trips)
	}
	// The new cooldown starts from the re-trip.
	fc.Advance(4 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("reopened breaker admitted early (err = %v)", err)
	}
	fc.Advance(2 * time.Second)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

// TestBreakerSuccessResetsConsecutiveCount pins "consecutive": a success
// between failures restarts the count.
func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second}, fc.Clock(), nil, nil)
	b.Failure()
	b.Success()
	b.Failure()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed (count was reset)", st)
	}
	b.Failure()
	if st, _ := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
}
