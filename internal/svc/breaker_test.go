package svc

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerTripCooldownProbe(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second}, fc.Clock(), nil, nil)

	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if _, _, err := b.Allow(); err != nil {
		t.Fatalf("below threshold: %v", err)
	}
	b.Failure() // third consecutive failure trips it
	if st, trips := b.State(); st != BreakerOpen || trips != 1 {
		t.Fatalf("state = %v trips = %d, want open/1", st, trips)
	}
	wait, _, err := b.Allow()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a request (err = %v)", err)
	}
	if wait <= 0 || wait > 10*time.Second {
		t.Fatalf("retry-after = %v, want within the cooldown", wait)
	}

	fc.Advance(11 * time.Second)
	if _, _, err := b.Allow(); err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if st, _ := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}
	// Only one probe at a time.
	if _, _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted (err = %v)", err)
	}
	b.Success()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
	if _, _, err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: 5 * time.Second}, fc.Clock(), nil, nil)
	b.Failure()
	fc.Advance(6 * time.Second)
	if _, _, err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Failure()
	if st, trips := b.State(); st != BreakerOpen || trips != 2 {
		t.Fatalf("state = %v trips = %d, want reopened/2", st, trips)
	}
	// The new cooldown starts from the re-trip.
	fc.Advance(4 * time.Second)
	if _, _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("reopened breaker admitted early (err = %v)", err)
	}
	fc.Advance(2 * time.Second)
	if _, _, err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

// TestBreakerProbeReleaseUnwedges pins the no-verdict probe path: a probe
// request that exits before compute (wrong method, bad JSON, unknown trace)
// or is deadline-aborted must return its probe slot instead of wedging the
// breaker half-open forever.
func TestBreakerProbeReleaseUnwedges(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: 5 * time.Second}, fc.Clock(), nil, nil)
	b.Failure()
	fc.Advance(6 * time.Second)
	_, probe, err := b.Allow()
	if err != nil || probe == 0 {
		t.Fatalf("probe = %d, err = %v; want a probe token", probe, err)
	}
	// While the probe is pending every other request is rejected...
	if _, _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted (err = %v)", err)
	}
	// ...but a probe that ends without a verdict releases its slot, so the
	// next request is admitted as a fresh probe.
	b.releaseProbe(probe)
	_, probe2, err := b.Allow()
	if err != nil || probe2 == 0 {
		t.Fatalf("breaker wedged after verdict-less probe: probe = %d, err = %v", probe2, err)
	}
	b.Success()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

// TestBreakerStaleProbeReleaseIgnored: a release deferred past its own
// probe's verdict must not clear a newer probe admitted afterwards.
func TestBreakerStaleProbeReleaseIgnored(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: 5 * time.Second}, fc.Clock(), nil, nil)
	b.Failure()
	fc.Advance(6 * time.Second)
	_, probe1, err := b.Allow()
	if err != nil || probe1 == 0 {
		t.Fatalf("first probe: token = %d, err = %v", probe1, err)
	}
	b.Failure() // probe verdict: re-open
	fc.Advance(6 * time.Second)
	if _, probe2, err := b.Allow(); err != nil || probe2 == 0 {
		t.Fatalf("second probe: token = %d, err = %v", probe2, err)
	}
	b.releaseProbe(probe1) // stale deferred release from the first probe
	if _, _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("stale release cleared a live probe (err = %v)", err)
	}
}

// TestBreakerSuccessResetsConsecutiveCount pins "consecutive": a success
// between failures restarts the count.
func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	fc := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second}, fc.Clock(), nil, nil)
	b.Failure()
	b.Success()
	b.Failure()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed (count was reset)", st)
	}
	b.Failure()
	if st, _ := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
}
