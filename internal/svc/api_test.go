package svc

import (
	"strings"
	"testing"

	"coordcharge/internal/dynamo"
)

func TestDecodeAdvisorRequestStrict(t *testing.T) {
	for _, tc := range []struct {
		name, body string
		ok         bool
	}{
		{"valid", `{"p1":1,"p2":2,"p3":3,"avg_dod":0.5}`, true},
		{"unknown field", `{"p1":1,"bogus":true}`, false},
		{"trailing data", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5} {"again":1}`, false},
		{"not json", `p1=1`, false},
		{"negative racks", `{"p1":-1,"p2":1,"p3":1}`, false},
		{"too many racks", `{"p1":2000,"p2":0,"p3":0}`, false},
		{"dod over one", `{"p1":1,"p2":1,"p3":1,"avg_dod":1.5}`, false},
		{"huge dod literal", `{"p1":1,"p2":1,"p3":1,"avg_dod":1e400}`, false},
		{"bad mode", `{"p1":1,"p2":1,"p3":1,"mode":"warp"}`, false},
		{"bad policy", `{"p1":1,"p2":1,"p3":1,"policy":"yolo"}`, false},
		{"bad priority", `{"p1":1,"p2":1,"p3":1,"priority":7}`, false},
		{"resolution over", `{"p1":1,"p2":1,"p3":1,"resolution_kw":5000}`, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeAdvisorRequest(strings.NewReader(tc.body))
			if (err == nil) != tc.ok {
				t.Fatalf("err = %v, want ok=%t", err, tc.ok)
			}
		})
	}
}

func TestDecodeRunRequestStrict(t *testing.T) {
	for _, tc := range []struct {
		name, body string
		ok         bool
	}{
		{"valid", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.3,"limit_mw":0.2}`, true},
		{"outage only", `{"p1":1,"p2":1,"p3":1,"outage_s":60}`, true},
		{"no racks", `{"avg_dod":0.5}`, false},
		{"no dod or outage", `{"p1":1,"p2":1,"p3":1}`, false},
		{"negative outage", `{"p1":1,"p2":1,"p3":1,"outage_s":-5}`, false},
		{"outage over cap", `{"p1":1,"p2":1,"p3":1,"outage_s":1e6}`, false},
		{"limit over cap", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5,"limit_mw":5000}`, false},
		{"step over hour", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5,"step_s":7200}`, false},
		{"bad faults", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5,"faults":"nope=1"}`, false},
		{"good faults", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5,"faults":"default"}`, true},
		{"unknown field", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5,"zap":1}`, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRunRequest(strings.NewReader(tc.body))
			if (err == nil) != tc.ok {
				t.Fatalf("err = %v, want ok=%t", err, tc.ok)
			}
		})
	}
}

// TestRunRequestSpecLowering checks the spec builder mirrors coordsim -run:
// defaults, storm/guard arming, and degraded-mode machinery under faults.
func TestRunRequestSpecLowering(t *testing.T) {
	q, err := DecodeRunRequest(strings.NewReader(
		`{"p1":2,"p2":3,"p3":4,"avg_dod":0.4,"limit_mw":1.5,"admission":true,"guard":true,"faults":"default"}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := q.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != dynamo.ModePriorityAware {
		t.Errorf("default mode = %v, want priority-aware", spec.Mode)
	}
	if spec.Storm == nil || spec.Guard == nil {
		t.Errorf("storm/guard not armed: %v %v", spec.Storm, spec.Guard)
	}
	if !spec.Faults.Enabled() {
		t.Error("faults not enabled")
	}
	if spec.StaleAfter == 0 || spec.Retry.MaxAttempts == 0 {
		t.Error("degraded-mode machinery not armed alongside faults")
	}
	if spec.NumP1 != 2 || spec.NumP2 != 3 || spec.NumP3 != 4 {
		t.Errorf("population = %d/%d/%d", spec.NumP1, spec.NumP2, spec.NumP3)
	}
}

func TestAdvisorSpecLowering(t *testing.T) {
	q, err := DecodeAdvisorRequest(strings.NewReader(
		`{"p1":1,"p2":1,"p3":1,"avg_dod":0.7,"mode":"postpone","policy":"original","resolution_kw":50}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := q.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != dynamo.ModePostpone {
		t.Errorf("mode = %v, want postpone", spec.Mode)
	}
	if spec.LocalPolicy == nil || spec.LocalPolicy.Name() != "original" {
		t.Errorf("policy = %v, want original", spec.LocalPolicy)
	}
	if float64(spec.Resolution) != 50_000 {
		t.Errorf("resolution = %v W, want 50000", float64(spec.Resolution))
	}
}
