// Request decoding and validation. Everything arriving over the wire passes
// through this file before it can touch a simulation: decoders are strict
// (unknown fields rejected, single JSON value, bounded size — the HTTP layer
// additionally wraps bodies in MaxBytesReader), and validation is
// physics-aware — rack counts bounded, fractions in range, NaN/Inf rejected
// — so malformed or hostile input becomes a 4xx and a counter, never a panic
// or an absurd resident workload.
package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/config"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/grid"
	"coordcharge/internal/scenario"
	"coordcharge/internal/storm"
	"coordcharge/internal/units"
)

// Input-plane bounds. They cap what one request may ask of the service, not
// what the simulator could theoretically run.
const (
	// MaxRequestBytes bounds an advisor/run request body.
	MaxRequestBytes = 1 << 20
	// MaxIngestBytes bounds a streamed trace upload.
	MaxIngestBytes = 64 << 20
	// MaxRacks bounds the rack population a single API request may simulate.
	MaxRacks = 1024
	// MaxOutage bounds a requested grid-event length.
	MaxOutage = 24 * time.Hour
	// MaxHorizon bounds a requested post-restore charge horizon.
	MaxHorizon = 48 * time.Hour
	// MaxLimitMW bounds a requested MSB breaker limit.
	MaxLimitMW = 1000.0
)

// decodeStrict unmarshals exactly one JSON value from r into v, rejecting
// unknown fields and trailing garbage.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("svc: decode: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("svc: trailing data after request body")
	}
	return nil
}

// finite rejects the float specials JSON itself cannot express but a buggy
// or hostile encoder might smuggle through scientific notation overflow.
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("svc: %s is not finite", name)
	}
	return nil
}

// AdvisorRequest is a what-if capacity query: size the breaker for this
// population and strategy. Zero-valued fields take the resident baseline's
// population (when a resident sim is configured) or the documented defaults.
type AdvisorRequest struct {
	P1           int     `json:"p1"`
	P2           int     `json:"p2"`
	P3           int     `json:"p3"`
	AvgDOD       float64 `json:"avg_dod"`
	Mode         string  `json:"mode"`
	Policy       string  `json:"policy"`
	Seed         int64   `json:"seed"`
	ResolutionKW float64 `json:"resolution_kw"`
	// Priority mirrors the X-Priority admission header (1 highest .. 3
	// lowest). Admission happens before the body is decoded, so only the
	// header orders the wait queue; this field is validated so malformed
	// values fail fast, but it does not affect admission.
	Priority int `json:"priority"`
}

// DecodeAdvisorRequest strictly decodes and validates one advisor request.
func DecodeAdvisorRequest(r io.Reader) (*AdvisorRequest, error) {
	var q AdvisorRequest
	if err := decodeStrict(r, &q); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// Validate bounds- and physics-checks the request.
func (q *AdvisorRequest) Validate() error {
	if q.P1 < 0 || q.P2 < 0 || q.P3 < 0 {
		return fmt.Errorf("svc: negative rack count")
	}
	if n := q.P1 + q.P2 + q.P3; n > MaxRacks {
		return fmt.Errorf("svc: %d racks exceeds the per-request cap of %d", n, MaxRacks)
	}
	if err := finite("avg_dod", q.AvgDOD); err != nil {
		return err
	}
	if q.AvgDOD < 0 || q.AvgDOD > 1 {
		return fmt.Errorf("svc: avg_dod %g out of (0, 1]", q.AvgDOD)
	}
	if err := finite("resolution_kw", q.ResolutionKW); err != nil {
		return err
	}
	if q.ResolutionKW < 0 || q.ResolutionKW > 1000 {
		return fmt.Errorf("svc: resolution_kw %g out of (0, 1000]", q.ResolutionKW)
	}
	if q.Mode != "" {
		if _, err := config.ParseMode(q.Mode); err != nil {
			return err
		}
	}
	if q.Policy != "" {
		if _, err := charger.ByName(q.Policy); err != nil {
			return err
		}
	}
	if q.Priority < 0 || q.Priority > 3 {
		return fmt.Errorf("svc: priority %d out of [1, 3]", q.Priority)
	}
	return nil
}

// Spec lowers the validated request onto an AdvisorSpec. The caller fills
// population defaults (from the resident baseline) before lowering.
func (q *AdvisorRequest) Spec() (scenario.AdvisorSpec, error) {
	spec := scenario.AdvisorSpec{
		NumP1: q.P1, NumP2: q.P2, NumP3: q.P3,
		AvgDOD:     units.Fraction(q.AvgDOD),
		Seed:       q.Seed,
		Resolution: units.Power(q.ResolutionKW) * units.Kilowatt,
	}
	var err error
	if q.Mode != "" {
		if spec.Mode, err = config.ParseMode(q.Mode); err != nil {
			return spec, err
		}
	} else {
		spec.Mode = dynamo.ModePriorityAware
	}
	if q.Policy != "" {
		if spec.LocalPolicy, err = charger.ByName(q.Policy); err != nil {
			return spec, err
		}
	}
	return spec, nil
}

// RunRequest launches one coordinated run on demand. It mirrors coordsim
// -run, with every knob bounded.
type RunRequest struct {
	P1        int     `json:"p1"`
	P2        int     `json:"p2"`
	P3        int     `json:"p3"`
	Seed      int64   `json:"seed"`
	LimitMW   float64 `json:"limit_mw"`
	AvgDOD    float64 `json:"avg_dod"`
	Mode      string  `json:"mode"`
	Policy    string  `json:"policy"`
	OutageS   float64 `json:"outage_s"`
	Admission bool    `json:"admission"`
	Guard     bool    `json:"guard"`
	WatchdogS float64 `json:"watchdog_s"`
	// Faults is a faults.ParseSpec string ("", "off", "default", or k=v
	// overrides).
	Faults string `json:"faults"`
	// Grid is a grid.ParseSpec string arming the grid signal plane ("" or
	// "off" disables; "on", or semicolon key=value elements — cap/price/
	// carbon series, droop/dr/capshrink events, defer and shave thresholds).
	Grid string `json:"grid"`
	// Trace names a previously ingested trace to replay instead of the
	// synthetic generator; its rack count must equal p1+p2+p3.
	Trace      string  `json:"trace"`
	StepS      float64 `json:"step_s"`
	MaxChargeS float64 `json:"max_charge_s"`
	SampleS    float64 `json:"sample_s"`
	// Priority: see AdvisorRequest.Priority — validated, admission uses the
	// X-Priority header only.
	Priority int `json:"priority"`
}

// DecodeRunRequest strictly decodes and validates one run request.
func DecodeRunRequest(r io.Reader) (*RunRequest, error) {
	var q RunRequest
	if err := decodeStrict(r, &q); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// Validate bounds- and physics-checks the request.
func (q *RunRequest) Validate() error {
	if q.P1 < 0 || q.P2 < 0 || q.P3 < 0 {
		return fmt.Errorf("svc: negative rack count")
	}
	n := q.P1 + q.P2 + q.P3
	if n <= 0 {
		return fmt.Errorf("svc: no racks in run request")
	}
	if n > MaxRacks {
		return fmt.Errorf("svc: %d racks exceeds the per-request cap of %d", n, MaxRacks)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"limit_mw", q.LimitMW}, {"avg_dod", q.AvgDOD}, {"outage_s", q.OutageS},
		{"watchdog_s", q.WatchdogS}, {"step_s", q.StepS},
		{"max_charge_s", q.MaxChargeS}, {"sample_s", q.SampleS},
	} {
		if err := finite(f.name, f.v); err != nil {
			return err
		}
		if f.v < 0 {
			return fmt.Errorf("svc: negative %s", f.name)
		}
	}
	if q.LimitMW > MaxLimitMW {
		return fmt.Errorf("svc: limit_mw %g exceeds %g", q.LimitMW, MaxLimitMW)
	}
	if q.AvgDOD > 1 {
		return fmt.Errorf("svc: avg_dod %g out of (0, 1]", q.AvgDOD)
	}
	if q.OutageS == 0 && q.AvgDOD == 0 {
		return fmt.Errorf("svc: one of avg_dod or outage_s is required")
	}
	if d := time.Duration(q.OutageS * float64(time.Second)); d > MaxOutage {
		return fmt.Errorf("svc: outage_s %g exceeds %v", q.OutageS, MaxOutage)
	}
	if d := time.Duration(q.MaxChargeS * float64(time.Second)); d > MaxHorizon {
		return fmt.Errorf("svc: max_charge_s %g exceeds %v", q.MaxChargeS, MaxHorizon)
	}
	if q.StepS > 3600 {
		return fmt.Errorf("svc: step_s %g exceeds one hour", q.StepS)
	}
	if q.Mode != "" {
		if _, err := config.ParseMode(q.Mode); err != nil {
			return err
		}
	}
	if q.Policy != "" {
		if _, err := charger.ByName(q.Policy); err != nil {
			return err
		}
	}
	if q.Faults != "" {
		if _, err := faults.ParseSpec(q.Faults); err != nil {
			return err
		}
	}
	if q.Grid != "" {
		if _, err := grid.ParseSpec(q.Grid); err != nil {
			return err
		}
	}
	if q.Priority < 0 || q.Priority > 3 {
		return fmt.Errorf("svc: priority %d out of [1, 3]", q.Priority)
	}
	return nil
}

// Spec lowers the validated request onto a CoordSpec (trace resolution is
// the caller's: the named trace store lives on the Service).
func (q *RunRequest) Spec() (scenario.CoordSpec, error) {
	spec := scenario.CoordSpec{
		NumP1: q.P1, NumP2: q.P2, NumP3: q.P3,
		Seed:              q.Seed,
		MSBLimit:          units.Power(q.LimitMW) * units.Megawatt,
		AvgDOD:            units.Fraction(q.AvgDOD),
		OutageLen:         time.Duration(q.OutageS * float64(time.Second)),
		WatchdogTTL:       time.Duration(q.WatchdogS * float64(time.Second)),
		Step:              time.Duration(q.StepS * float64(time.Second)),
		MaxChargeDuration: time.Duration(q.MaxChargeS * float64(time.Second)),
		SampleEvery:       time.Duration(q.SampleS * float64(time.Second)),
	}
	var err error
	if q.Mode != "" {
		if spec.Mode, err = config.ParseMode(q.Mode); err != nil {
			return spec, err
		}
	} else {
		spec.Mode = dynamo.ModePriorityAware
	}
	if q.Policy != "" {
		if spec.LocalPolicy, err = charger.ByName(q.Policy); err != nil {
			return spec, err
		}
	}
	if q.Faults != "" {
		if spec.Faults, err = faults.ParseSpec(q.Faults); err != nil {
			return spec, err
		}
	}
	if q.Grid != "" {
		if spec.Grid, err = grid.ParseSpec(q.Grid); err != nil {
			return spec, err
		}
	}
	if q.Admission {
		c := storm.Default()
		spec.Storm = &c
	}
	if q.Guard {
		g := storm.DefaultGuardConfig()
		spec.Guard = &g
	}
	if spec.Faults.Enabled() || spec.WatchdogTTL > 0 {
		// A lossy control plane needs the degraded-mode machinery armed
		// (mirrors coordsim -run).
		spec.StaleAfter = 10 * time.Second
		spec.Retry = dynamo.DefaultRetryPolicy()
	}
	return spec, nil
}

// RunSummary condenses a CoordResult for the wire.
type RunSummary struct {
	TransitionS    float64        `json:"transition_s"`
	AvgDOD         float64        `json:"avg_dod"`
	PeakPowerW     float64        `json:"peak_power_w"`
	MaxCappingW    float64        `json:"max_capping_w"`
	SLAMet         map[string]int `json:"sla_met"`
	Racks          map[string]int `json:"racks"`
	LastChargeS    float64        `json:"last_charge_done_s"`
	Tripped        []string       `json:"tripped,omitempty"`
	UnservedWh     float64        `json:"unserved_wh"`
	StormAdmitted  int            `json:"storm_admitted,omitempty"`
	StormMaxQueue  int            `json:"storm_max_queue,omitempty"`
	GuardFires     int            `json:"guard_fires,omitempty"`
	FailSafeEvents int            `json:"fail_safe_events,omitempty"`
	// Grid-plane activity (zero-valued and omitted when the grid plane is
	// off).
	GridCapChanges int     `json:"grid_cap_changes,omitempty"`
	GridDeferTicks int     `json:"grid_defer_ticks,omitempty"`
	GridShavedWh   float64 `json:"grid_shaved_wh,omitempty"`
	GridViolations int     `json:"grid_violation_ticks,omitempty"`
	Interrupted    bool    `json:"interrupted,omitempty"`
}

// Summarize flattens a coordinated result into its wire form.
func Summarize(res *scenario.CoordResult) *RunSummary {
	s := &RunSummary{
		TransitionS: res.TransitionLength.Seconds(),
		AvgDOD:      float64(res.AvgDOD),
		PeakPowerW:  float64(res.PeakPower),
		MaxCappingW: float64(res.Metrics.MaxCapping),
		SLAMet:      map[string]int{},
		Racks:       map[string]int{},
		LastChargeS: res.LastChargeDone.Seconds(),
		Tripped:     res.Tripped,
		UnservedWh:  float64(res.UnservedEnergy) / 3600,
		Interrupted: res.Interrupted,
	}
	for p, c := range res.SLAMet {
		s.SLAMet[p.String()] = c
	}
	for p, c := range res.Racks {
		s.Racks[p.String()] = c
	}
	s.StormAdmitted = res.Storm.Admitted
	s.StormMaxQueue = res.Storm.MaxQueue
	s.GuardFires = res.Guard.Fires
	s.FailSafeEvents = res.FailSafeActivations
	s.GridCapChanges = res.Grid.CapChanges
	s.GridDeferTicks = res.Grid.DeferTicks
	s.GridShavedWh = float64(res.Grid.ShavedEnergy) / 3600
	s.GridViolations = res.Grid.ViolationTicks
	return s
}

// errorBody renders the uniform error payload.
func errorBody(status int, err error) []byte {
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(map[string]any{"error": err.Error(), "status": status})
	return buf.Bytes()
}
