package svc

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coordcharge/internal/obs"
	"coordcharge/internal/scenario"
)

// smallResident is a fleet small enough that a full run takes well under a
// second free-running.
func smallResident() *RunRequest {
	return &RunRequest{P1: 1, P2: 1, P3: 1, Seed: 3, AvgDOD: 0.3, LimitMW: 0.2}
}

// waitState polls until the service reaches the wanted lifecycle state.
func waitState(t *testing.T, s *Service, want string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if s.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("state = %q, never reached %q within %v", s.State(), want, within)
}

// controlDigest runs the resident spec uninterrupted through the scenario
// layer and returns its flight digest and summary — the ground truth any
// service-hosted (and resumed) run must reproduce byte-for-byte.
func controlDigest(t *testing.T, req *RunRequest) (digest, summary string) {
	t.Helper()
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Obs = obs.NewSink(0)
	res, err := scenario.RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec.Obs.Flight.Digest(), res.Summary()
}

func TestResidentRunsToIdle(t *testing.T) {
	s := newTestService(t, Options{Resident: smallResident()})
	waitState(t, s, StateIdle, 30*time.Second)
	w := do(s.Handler(), http.MethodGet, "/api/v1/status", "")
	var resp StatusResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Resident == nil || resp.Resident.Summary == nil {
		t.Fatalf("no resident summary in %s", w.Body)
	}
	if resp.Resident.Summary.Racks["P1"] != 1 {
		t.Errorf("summary = %+v", resp.Resident.Summary)
	}
	want, _ := controlDigest(t, smallResident())
	if got := s.SimSink().Flight.Digest(); got != want {
		t.Errorf("service-hosted digest %s != control %s", got, want)
	}
}

// drainMidRun boots a paced service, waits for some resident progress, and
// drains it so a final checkpoint lands in dir.
func drainMidRun(t *testing.T, dir string, fresh bool) {
	t.Helper()
	opt := Options{
		Resident:        smallResident(),
		CheckpointDir:   dir,
		CheckpointEvery: 2 * time.Minute, // virtual time: several cadence writes per run
		Fresh:           fresh,
		Pace:            1500, // 3 s ticks at 2 ms wall each
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Virtual time starts at the trace's transition offset, not zero: wait
	// for ten minutes of progress past the first observed tick so several
	// cadence checkpoints (and thus a rotated previous generation) exist.
	deadline := time.Now().Add(30 * time.Second)
	first := time.Duration(-1)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("resident never advanced 10m of virtual time (first %v, at %v)",
				first, time.Duration(s.lastTickNS.Load()))
		}
		if s.lastBeatNS.Load() != 0 {
			tick := time.Duration(s.lastTickNS.Load())
			if first < 0 {
				first = tick
			}
			if tick-first >= 10*time.Minute {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ResidentCheckpointFile)); err != nil {
		t.Fatalf("drain left no checkpoint: %v", err)
	}
}

// resumeToIdle boots a service over dir and lets the resumed resident run to
// completion, returning its flight digest and summary.
func resumeToIdle(t *testing.T, dir string) (digest string, summary *RunSummary) {
	t.Helper()
	s := newTestService(t, Options{Resident: smallResident(), CheckpointDir: dir})
	// Resume discovery is journaled synchronously in New, before the
	// resident goroutine can race the state machine forward.
	discovered := false
	for _, e := range s.ServiceFlight().Last(8) {
		if e.Kind == "resume-discovered" {
			discovered = true
		}
	}
	if !discovered {
		t.Fatal("checkpoint not discovered for auto-resume")
	}
	waitState(t, s, StateIdle, 30*time.Second)
	s.mu.Lock()
	summary = s.residentSummary
	s.mu.Unlock()
	return s.SimSink().Flight.Digest(), summary
}

// TestAutoResumeBitExact is the lifecycle acceptance: drain a paced resident
// run mid-flight, restart over the same checkpoint directory, and require
// the resumed run's flight digest to match an uninterrupted control run
// byte-for-byte.
func TestAutoResumeBitExact(t *testing.T) {
	dir := t.TempDir()
	wantDigest, _ := controlDigest(t, smallResident())
	drainMidRun(t, dir, true)
	gotDigest, summary := resumeToIdle(t, dir)
	if gotDigest != wantDigest {
		t.Errorf("resumed digest %s != control %s", gotDigest, wantDigest)
	}
	if summary == nil {
		t.Error("no resident summary after resume")
	}
}

// TestAutoResumeCorruptedLatestFallsBack corrupts the newest checkpoint
// generation after the drain; the restart must restore from the
// previous-good generation and still converge to the control digest.
func TestAutoResumeCorruptedLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	wantDigest, _ := controlDigest(t, smallResident())
	drainMidRun(t, dir, true)
	path := filepath.Join(dir, ResidentCheckpointFile)
	if _, err := os.Stat(path + ".prev"); err != nil {
		t.Fatalf("no previous generation on disk: %v", err)
	}
	corruptCheckpoint(t, path)
	gotDigest, _ := resumeToIdle(t, dir)
	if gotDigest != wantDigest {
		t.Errorf("fallback-resumed digest %s != control %s", gotDigest, wantDigest)
	}
}

// corruptCheckpoint flips one payload byte so envelope verification fails.
func corruptCheckpoint(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
}

// TestWatchdogAbortsStalledResident slows the resident's pacing far past the
// stall TTL; the watchdog must abort the run and mark the service degraded —
// and the API plane must keep serving.
func TestWatchdogAbortsStalledResident(t *testing.T) {
	s := newTestService(t, Options{
		Resident:    smallResident(),
		Pace:        6, // 3 s ticks at 500 ms wall each: a stall at TTL 50 ms
		WatchdogTTL: 50 * time.Millisecond,
	})
	waitState(t, s, StateDegraded, 30*time.Second)
	s.mu.Lock()
	err := s.residentErr
	s.mu.Unlock()
	if err == nil {
		t.Fatal("degraded without a resident error")
	}
	// Degraded, not dead: advisor queries still compute.
	w := do(s.Handler(), http.MethodPost, "/api/v1/advise", `{"p1":1,"p2":1,"p3":1,"avg_dod":0.5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("advise while degraded: %d %s", w.Code, w.Body)
	}
	found := false
	for _, e := range s.ServiceFlight().Last(32) {
		if e.Comp == "svc/watchdog" && e.Kind == "resident-stalled" {
			found = true
		}
	}
	if !found {
		t.Error("stall not journaled")
	}
}

// TestFreshIgnoresCheckpoint: -fresh must not enter the resuming state even
// with a checkpoint on disk.
func TestFreshIgnoresCheckpoint(t *testing.T) {
	dir := t.TempDir()
	drainMidRun(t, dir, true)
	s := newTestService(t, Options{Resident: smallResident(), CheckpointDir: dir, Fresh: true})
	if s.State() == StateResuming {
		t.Fatal("Fresh service entered resuming state")
	}
	waitState(t, s, StateIdle, 30*time.Second)
}
