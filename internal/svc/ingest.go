// Streamed trace ingestion. Clients POST an NDJSON stream — one header line
// naming the trace and declaring its rack count, then one frame line per
// sample step — and the service validates every frame against the physics of
// the plant before any of it can reach a simulation: timestamps must be
// strictly monotone on a uniform grid, powers must be finite, non-negative,
// and at or below a rack's rated IT load. A stream that fails any check is
// quarantined — counted, journaled, and discarded whole — so one malformed
// upload can neither poison the trace store nor crash the daemon.
package svc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"coordcharge/internal/rack"
	"coordcharge/internal/trace"
)

// Ingest stream bounds.
const (
	// MaxIngestRacks bounds the per-frame rack width.
	MaxIngestRacks = MaxRacks
	// MaxIngestFrames bounds the stream length (at the default 10 s step,
	// about two weeks of trace).
	MaxIngestFrames = 1 << 17
	// MaxIngestLineBytes bounds one NDJSON line.
	MaxIngestLineBytes = 1 << 20
	// maxTraceNames bounds the named-trace store; uploads beyond it are
	// rejected until the operator restarts (the store is in-memory only).
	maxTraceNames = 64
)

// IngestHeader is the first NDJSON line of a trace upload.
type IngestHeader struct {
	// Name keys the trace in the store; run requests reference it.
	Name string `json:"name"`
	// Racks declares the per-frame width; every frame must match.
	Racks int `json:"racks"`
	// StepS declares the uniform sample step in seconds.
	StepS float64 `json:"step_s"`
}

// TraceFrame is one sample step: a timestamp and one wattage per rack.
type TraceFrame struct {
	TS float64   `json:"t_s"`
	W  []float64 `json:"w"`
}

// IngestResult reports one accepted upload.
type IngestResult struct {
	Name   string  `json:"name"`
	Racks  int     `json:"racks"`
	Frames int     `json:"frames"`
	StepS  float64 `json:"step_s"`
	SpanS  float64 `json:"span_s"`
}

// ParseIngestHeader strictly decodes and validates the header line.
func ParseIngestHeader(line []byte) (*IngestHeader, error) {
	var h IngestHeader
	if err := decodeStrict(bytes.NewReader(line), &h); err != nil {
		return nil, err
	}
	if h.Name == "" || len(h.Name) > 128 {
		return nil, fmt.Errorf("svc: trace name empty or over 128 bytes")
	}
	for _, r := range h.Name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '-' || r == '_' || r == '.') {
			return nil, fmt.Errorf("svc: trace name contains %q; use [A-Za-z0-9._-]", r)
		}
	}
	if h.Racks <= 0 || h.Racks > MaxIngestRacks {
		return nil, fmt.Errorf("svc: header racks %d out of [1, %d]", h.Racks, MaxIngestRacks)
	}
	if err := finite("step_s", h.StepS); err != nil {
		return nil, err
	}
	if h.StepS <= 0 || h.StepS > 3600 {
		return nil, fmt.Errorf("svc: header step_s %g out of (0, 3600]", h.StepS)
	}
	return &h, nil
}

// ValidateFrame physics-checks one frame against the header and its
// predecessor's timestamp (prev < 0 marks the first frame). idx is the
// zero-based frame index, used only for error text.
func ValidateFrame(h *IngestHeader, f *TraceFrame, prev float64, idx int) error {
	if err := finite("t_s", f.TS); err != nil {
		return fmt.Errorf("svc: frame %d: %w", idx, err)
	}
	if f.TS < 0 {
		return fmt.Errorf("svc: frame %d: negative timestamp %g", idx, f.TS)
	}
	if prev >= 0 {
		// Strictly monotone on the declared uniform grid, with float slack.
		if f.TS <= prev {
			return fmt.Errorf("svc: frame %d: timestamp %g not after %g", idx, f.TS, prev)
		}
		if d := f.TS - prev; math.Abs(d-h.StepS) > 1e-6*h.StepS {
			return fmt.Errorf("svc: frame %d: step %g differs from declared %g", idx, d, h.StepS)
		}
	}
	if len(f.W) != h.Racks {
		return fmt.Errorf("svc: frame %d: %d powers, header declared %d racks", idx, len(f.W), h.Racks)
	}
	maxW := float64(rack.MaxITLoad)
	for r, w := range f.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("svc: frame %d rack %d: non-finite power", idx, r)
		}
		if w < 0 {
			return fmt.Errorf("svc: frame %d rack %d: negative power %g", idx, r, w)
		}
		if w > maxW {
			return fmt.Errorf("svc: frame %d rack %d: power %g W exceeds rated IT load %g W", idx, r, w, maxW)
		}
	}
	return nil
}

// ingestStream reads, validates, and materializes one NDJSON upload. Any
// failure discards the whole stream — partial traces never enter the store.
func ingestStream(r io.Reader) (*IngestHeader, *trace.Materialized, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxIngestLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, 0, fmt.Errorf("svc: read header: %w", err)
		}
		return nil, nil, 0, fmt.Errorf("svc: empty upload")
	}
	h, err := ParseIngestHeader(sc.Bytes())
	if err != nil {
		return nil, nil, 0, err
	}
	samples := make([][]float64, h.Racks)
	prev := -1.0
	frames := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if frames >= MaxIngestFrames {
			return h, nil, frames, fmt.Errorf("svc: stream exceeds %d frames", MaxIngestFrames)
		}
		var f TraceFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return h, nil, frames, fmt.Errorf("svc: frame %d: %w", frames, err)
		}
		if err := ValidateFrame(h, &f, prev, frames); err != nil {
			return h, nil, frames, err
		}
		prev = f.TS
		for r := 0; r < h.Racks; r++ {
			samples[r] = append(samples[r], f.W[r])
		}
		frames++
	}
	if err := sc.Err(); err != nil {
		return h, nil, frames, fmt.Errorf("svc: read stream: %w", err)
	}
	step := time.Duration(h.StepS * float64(time.Second))
	m, err := trace.FromSamples(0, step, samples)
	if err != nil {
		return h, nil, frames, err
	}
	return h, m, frames, nil
}
