package svc

import "time"

// Clock is the service plane's wall-clock dependency. The daemon runs on
// real time — request deadlines, queue aging, breaker cooldowns, and the
// resident-run watchdog are all wall-clock concepts — but every read goes
// through this struct so tests drive the supervision machinery with a fake
// clock and stay deterministic.
type Clock struct {
	// Now returns the current wall time.
	Now func() time.Time
	// Sleep blocks for d of wall time.
	Sleep func(d time.Duration)
}

// WallClock returns the real wall clock.
func WallClock() Clock { return Clock{Now: wallNow, Sleep: wallSleep} }

// withDefaults resolves nil fields to the real clock.
func (c Clock) withDefaults() Clock {
	if c.Now == nil {
		c.Now = wallNow
	}
	if c.Sleep == nil {
		c.Sleep = wallSleep
	}
	return c
}

// wallNow and wallSleep are internal/svc's only wall-clock taps, allowlisted
// by coordvet's determinism analyzer the same way obs.Serve is: the service
// plane is a deliberate wall-clock boundary, while the simulations it hosts
// stay entirely on virtual tick time. Any other direct time.Now/time.Sleep
// in this package is a lint finding.
func wallNow() time.Time { return time.Now() }

func wallSleep(d time.Duration) { time.Sleep(d) }
