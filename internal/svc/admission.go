package svc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"coordcharge/internal/obs"
)

// ErrSaturated rejects a request because both the worker pool and its wait
// queue are full: the service sheds load (HTTP 429 + Retry-After) instead of
// queueing without bound and eventually OOMing.
var ErrSaturated = errors.New("svc: worker pool and wait queue full")

// PoolConfig parameterises request admission.
type PoolConfig struct {
	// Workers is the number of requests computed concurrently. Zero or
	// negative selects the default (4) — a pool with no workers would shed
	// every compute request, which is never a useful configuration.
	Workers int
	// QueueCap bounds the wait queue; an arrival finding it full is shed
	// with ErrSaturated. Zero selects the default (4 × Workers); negative
	// disables queueing entirely (admit-or-shed).
	QueueCap int
	// AgeBoost is the queue wait that promotes a waiting request one
	// priority class toward P1 — the deficit-aging idiom of
	// internal/storm.Queue, applied to API requests so a burst of P1 work
	// cannot starve queued P3 queries. Zero selects the default (5 s);
	// negative disables aging.
	AgeBoost time.Duration
}

// withDefaults resolves zero fields.
func (c PoolConfig) withDefaults() PoolConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4 * c.Workers
	}
	if c.QueueCap < 0 {
		c.QueueCap = 0
	}
	if c.AgeBoost == 0 {
		c.AgeBoost = 5 * time.Second
	}
	return c
}

// poolWaiter is one queued request.
type poolWaiter struct {
	prio    int // nominal class, 1 (highest) .. 3
	seq     uint64
	since   time.Time
	ready   chan struct{}
	granted bool // guarded by mu (the owning pool's)
}

// pool is the admission layer: a bounded worker pool fronted by a bounded,
// deficit-aged wait queue. Admission order is effective priority (nominal
// class promoted one step per AgeBoost of wait, clamped at 1 — the
// internal/storm aging idiom), then nominal class, then arrival order. It is
// safe for concurrent use.
type pool struct {
	cfg   PoolConfig
	clock Clock
	sink  *obs.Sink
	now   func() time.Duration // service-journal timestamp (elapsed wall time)

	mu      sync.Mutex
	running int           // guarded by mu
	waiting []*poolWaiter // guarded by mu
	seq     uint64        // guarded by mu
	shed    int           // guarded by mu

	cAdmitted, cShed, cTimeouts *obs.Counter
	gBusy, gDepth               *obs.Gauge
	hWait                       *obs.Histogram
}

// newPool builds an idle pool. sink/now attach the service journal (both may
// be nil/zero for detached use).
func newPool(cfg PoolConfig, clock Clock, sink *obs.Sink, now func() time.Duration) *pool {
	p := &pool{cfg: cfg.withDefaults(), clock: clock.withDefaults(), sink: sink, now: now}
	p.cAdmitted = sink.Counter("svc.admitted")
	p.cShed = sink.Counter("svc.shed")
	p.cTimeouts = sink.Counter("svc.queue_timeouts")
	p.gBusy = sink.Gauge("svc.pool_busy")
	p.gDepth = sink.Gauge("svc.queue_depth")
	p.hWait = sink.Histogram("svc.queue_wait_ms", 0)
	return p
}

// Acquire admits one request of nominal priority class prio (1 highest, 3
// lowest; out-of-range values clamp). It returns nil with a worker slot
// held, ErrSaturated when the queue is full (shed), or the context's error
// when the caller's deadline expires or it disconnects while queued. Every
// nil return must be paired with Release.
func (p *pool) Acquire(ctx context.Context, prio int) error {
	if prio < 1 {
		prio = 1
	}
	if prio > 3 {
		prio = 3
	}
	p.mu.Lock()
	if p.running < p.cfg.Workers && len(p.waiting) == 0 {
		p.running++
		p.gBusy.Set(float64(p.running))
		p.cAdmitted.Inc()
		p.mu.Unlock()
		return nil
	}
	if len(p.waiting) >= p.cfg.QueueCap {
		p.shed++
		p.cShed.Inc()
		p.mu.Unlock()
		return ErrSaturated
	}
	w := &poolWaiter{prio: prio, seq: p.seq, since: p.clock.Now(), ready: make(chan struct{})}
	p.seq++
	p.waiting = append(p.waiting, w)
	p.gDepth.Set(float64(len(p.waiting)))
	p.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		if w.granted {
			// The grant raced the deadline and won: the slot is ours, so
			// hand it to the caller anyway — it will observe ctx itself.
			p.mu.Unlock()
			return nil
		}
		for i, q := range p.waiting {
			if q == w {
				p.waiting = append(p.waiting[:i], p.waiting[i+1:]...)
				break
			}
		}
		p.gDepth.Set(float64(len(p.waiting)))
		p.cTimeouts.Inc()
		p.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a worker slot and admits the best-placed waiter, if any.
func (p *pool) Release() {
	p.mu.Lock()
	p.running--
	p.admitNextLocked()
	p.gBusy.Set(float64(p.running))
	p.gDepth.Set(float64(len(p.waiting)))
	p.mu.Unlock()
}

// effectivePriority applies deficit aging: every AgeBoost of waiting
// promotes a request one class, clamped at 1 (see storm.Queue).
func (p *pool) effectivePriority(w *poolWaiter, now time.Time) int {
	prio := w.prio
	if p.cfg.AgeBoost > 0 {
		prio -= int(now.Sub(w.since) / p.cfg.AgeBoost)
	}
	if prio < 1 {
		prio = 1
	}
	return prio
}

// admitNextLocked grants a freed slot to the waiter with the best
// (effective, nominal, arrival) order; the caller holds mu.
func (p *pool) admitNextLocked() {
	if p.running >= p.cfg.Workers || len(p.waiting) == 0 {
		return
	}
	now := p.clock.Now()
	best := 0
	for i := 1; i < len(p.waiting); i++ {
		a, b := p.waiting[i], p.waiting[best]
		ea, eb := p.effectivePriority(a, now), p.effectivePriority(b, now)
		if ea != eb {
			if ea < eb {
				best = i
			}
			continue
		}
		if a.prio != b.prio {
			if a.prio < b.prio {
				best = i
			}
			continue
		}
		if a.seq < b.seq {
			best = i
		}
	}
	w := p.waiting[best]
	p.waiting = append(p.waiting[:best], p.waiting[best+1:]...)
	p.running++
	p.cAdmitted.Inc()
	w.granted = true
	p.hWait.Observe(float64(now.Sub(w.since).Milliseconds()))
	if p.sink != nil && p.now != nil {
		p.sink.Event(p.now(), "svc/pool", "admit",
			"priority", fmt.Sprintf("%d", w.prio),
			"effective", fmt.Sprintf("%d", p.effectivePriority(w, now)),
			"wait_ms", fmt.Sprintf("%d", now.Sub(w.since).Milliseconds()))
	}
	close(w.ready)
}

// Depth reports the pool's occupancy: running workers, queued waiters, and
// requests shed so far.
func (p *pool) Depth() (running, queued, shed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running, len(p.waiting), p.shed
}

// RetryAfter estimates how long a shed client should wait before retrying:
// one full queue drain at the configured worker parallelism, floored at one
// second.
func (p *pool) RetryAfter() time.Duration {
	p.mu.Lock()
	queued := len(p.waiting)
	p.mu.Unlock()
	est := time.Duration(queued/p.cfg.Workers+1) * time.Second
	if est > 30*time.Second {
		est = 30 * time.Second
	}
	return est
}
