package svc

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseIngestHeader(t *testing.T) {
	for _, tc := range []struct {
		name, line string
		ok         bool
	}{
		{"valid", `{"name":"prod-week","racks":4,"step_s":10}`, true},
		{"empty name", `{"name":"","racks":4,"step_s":10}`, false},
		{"bad rune in name", `{"name":"a/b","racks":4,"step_s":10}`, false},
		{"zero racks", `{"name":"t","racks":0,"step_s":10}`, false},
		{"too many racks", `{"name":"t","racks":9999,"step_s":10}`, false},
		{"zero step", `{"name":"t","racks":1,"step_s":0}`, false},
		{"step over hour", `{"name":"t","racks":1,"step_s":7200}`, false},
		{"unknown field", `{"name":"t","racks":1,"step_s":10,"x":1}`, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseIngestHeader([]byte(tc.line))
			if (err == nil) != tc.ok {
				t.Fatalf("err = %v, want ok=%t", err, tc.ok)
			}
		})
	}
}

func TestValidateFrame(t *testing.T) {
	h := &IngestHeader{Name: "t", Racks: 2, StepS: 10}
	for _, tc := range []struct {
		name string
		f    TraceFrame
		prev float64
		ok   bool
	}{
		{"first frame", TraceFrame{TS: 0, W: []float64{100, 200}}, -1, true},
		{"next on grid", TraceFrame{TS: 10, W: []float64{100, 200}}, 0, true},
		{"non-monotone", TraceFrame{TS: 10, W: []float64{1, 2}}, 10, false},
		{"backwards", TraceFrame{TS: 5, W: []float64{1, 2}}, 10, false},
		{"off grid", TraceFrame{TS: 17, W: []float64{1, 2}}, 0, false},
		{"width mismatch", TraceFrame{TS: 0, W: []float64{1}}, -1, false},
		{"negative power", TraceFrame{TS: 0, W: []float64{-1, 2}}, -1, false},
		{"over rated load", TraceFrame{TS: 0, W: []float64{1, 99999}}, -1, false},
		{"negative timestamp", TraceFrame{TS: -1, W: []float64{1, 2}}, -1, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateFrame(h, &tc.f, tc.prev, 1)
			if (err == nil) != tc.ok {
				t.Fatalf("err = %v, want ok=%t", err, tc.ok)
			}
		})
	}
}

func TestIngestStreamHappyPath(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"name":"t","racks":2,"step_s":10}` + "\n")
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, `{"t_s":%d,"w":[%d,%d]}`+"\n", i*10, 100+i, 200+i)
	}
	h, m, frames, err := ingestStream(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "t" || frames != 5 {
		t.Fatalf("header %+v frames %d", h, frames)
	}
	if m.NumRacks() != 2 || m.Samples() != 5 {
		t.Fatalf("materialized %d racks × %d samples", m.NumRacks(), m.Samples())
	}
	if got := float64(m.Rack(1, 0)); got != 200 {
		t.Fatalf("rack 1 tick 0 = %v, want 200", got)
	}
}

func TestIngestStreamRejectsWholeStream(t *testing.T) {
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", ""},
		{"header only", `{"name":"t","racks":2,"step_s":10}` + "\n"},
		{"bad frame json", "{\"name\":\"t\",\"racks\":2,\"step_s\":10}\n{\"t_s\":0,\"w\":[1,2]}\nnot-json\n"},
		{"physics violation mid-stream", "{\"name\":\"t\",\"racks\":2,\"step_s\":10}\n{\"t_s\":0,\"w\":[1,2]}\n{\"t_s\":10,\"w\":[1,-2]}\n{\"t_s\":20,\"w\":[1,2]}\n"},
		{"too few frames", "{\"name\":\"t\",\"racks\":2,\"step_s\":10}\n{\"t_s\":0,\"w\":[1,2]}\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := ingestStream(strings.NewReader(tc.body)); err == nil {
				t.Fatal("stream accepted, want rejection")
			}
		})
	}
}
