// The HTTP surface: API routes mounted over the obs observability plane,
// with the supervision middleware — panic recovery, per-request deadlines,
// drain rejection, admission control, and the compute-path circuit breaker —
// applied in one place.
package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"coordcharge/internal/obs"
	"coordcharge/internal/scenario"
)

// Handler returns the daemon's full HTTP surface:
//
//	/api/v1/advise          POST: what-if breaker sizing (AdvisorRequest)
//	/api/v1/run             POST: launch one coordinated run (RunRequest)
//	/api/v1/ingest          POST: NDJSON trace upload (header + frames)
//	/api/v1/status          GET: lifecycle, pool, breaker, traces
//	/debug/service/flight   service journal (admissions, sheds, trips, drains)
//	/metrics, /healthz, /debug/flight[,/digest], /debug/pprof/...
//	                        the obs plane over the resident run's sink
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(s.simSink, s.Health))
	mux.HandleFunc("/debug/service/flight", s.handleServiceFlight)
	mux.Handle("/api/v1/advise", s.supervised(true, s.handleAdvise))
	mux.Handle("/api/v1/run", s.supervised(true, s.handleRun))
	mux.Handle("/api/v1/ingest", s.supervised(false, s.handleIngest))
	mux.Handle("/api/v1/status", s.supervised(false, s.handleStatus))
	return mux
}

// apiError writes the uniform JSON error payload.
func apiError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(errorBody(status, err))
}

// writeJSON writes one 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// supervised wraps an API handler with the service's supervision stack, in
// order: panic recovery (500 + journal — the daemon must survive any handler
// bug), drain rejection (503), a per-request deadline on the context, and —
// for compute routes — pool admission (429 + Retry-After on shed) and the
// circuit breaker (503 + Retry-After while open).
func (s *Service) supervised(compute bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.cPanics.Inc()
				s.journal("svc/supervise", "panic",
					"route", r.URL.Path,
					"value", fmt.Sprintf("%v", v),
					"stack", string(debug.Stack()))
				apiError(w, http.StatusInternalServerError,
					fmt.Errorf("svc: internal error (recovered panic)"))
			}
		}()
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			apiError(w, http.StatusServiceUnavailable, errors.New("svc: draining"))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if !compute {
			h(w, r)
			return
		}
		prio := requestPriority(r)
		if err := s.pool.Acquire(ctx, prio); err != nil {
			if errors.Is(err, ErrSaturated) {
				w.Header().Set("Retry-After", retryAfterValue(s.pool.RetryAfter()))
				apiError(w, http.StatusTooManyRequests, err)
				return
			}
			apiError(w, http.StatusGatewayTimeout,
				fmt.Errorf("svc: deadline expired while queued: %w", err))
			return
		}
		defer s.pool.Release()
		wait, probe, err := s.brk.Allow()
		if err != nil {
			w.Header().Set("Retry-After", retryAfterValue(wait))
			apiError(w, http.StatusServiceUnavailable, err)
			return
		}
		// A half-open probe must resolve on every exit path: compute delivers
		// the verdict when it runs, and the deferred release returns the probe
		// slot when the handler exits without one (pre-compute validation
		// failure or a deadline abort) so the breaker cannot wedge half-open.
		defer s.brk.releaseProbe(probe)
		h(w, r)
	})
}

// requestPriority reads the request's admission class from the X-Priority
// header (1 highest .. 3 lowest; default 2). Admission happens before the
// body is read, so the header is the only signal the wait queue orders on;
// the JSON body's priority field is validated but does not affect admission.
func requestPriority(r *http.Request) int {
	if v := r.Header.Get("X-Priority"); v != "" {
		if p, err := strconv.Atoi(v); err == nil && p >= 1 && p <= 3 {
			return p
		}
	}
	return 2
}

// retryAfterValue renders a Retry-After header in whole seconds, floored at 1.
func retryAfterValue(d time.Duration) string {
	sec := int(d / time.Second)
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}

// compute runs fn under the circuit breaker's accounting: recovered panics
// and internal failures count toward the trip threshold, while deadline
// aborts (the client's doing, not the compute path's) do not. An aborted
// half-open probe is therefore inconclusive — it delivers no verdict, and
// supervised's deferred releaseProbe keeps the breaker half-open so the next
// request probes again.
func (s *Service) compute(fn func() (any, error)) (out any, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.cPanics.Inc()
			s.journal("svc/supervise", "compute-panic",
				"value", fmt.Sprintf("%v", v),
				"stack", string(debug.Stack()))
			err = fmt.Errorf("svc: compute panic: %v", v)
			s.brk.Failure()
		}
	}()
	out, err = fn()
	switch {
	case err == nil:
		s.brk.Success()
	case errors.Is(err, scenario.ErrAborted):
		// Watchdog/deadline abort: the compute path itself is healthy.
	default:
		s.brk.Failure()
	}
	return out, err
}

// finishCompute maps a compute outcome onto the wire.
func (s *Service) finishCompute(w http.ResponseWriter, out any, err error) {
	switch {
	case err == nil:
		writeJSON(w, out)
	case errors.Is(err, scenario.ErrAborted):
		apiError(w, http.StatusGatewayTimeout,
			fmt.Errorf("svc: aborted by run-watchdog (deadline %v): %w",
				s.opt.RequestTimeout, err))
	default:
		apiError(w, http.StatusInternalServerError, err)
	}
}

// handleAdvise serves what-if breaker-sizing queries against the resident
// population (or an explicit one).
func (s *Service) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, errors.New("svc: POST required"))
		return
	}
	q, err := DecodeAdvisorRequest(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, err)
		return
	}
	s.baselinePopulation(q)
	spec, err := q.Spec()
	if err != nil {
		apiError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	spec.HardStop = func() bool { return ctx.Err() != nil }
	out, err := s.compute(func() (any, error) {
		adv, err := scenario.Advise(spec)
		if err != nil {
			return nil, err
		}
		return adviceResponse(adv), nil
	})
	s.finishCompute(w, out, err)
}

// AdviceResponse is the wire form of a sizing result.
type AdviceResponse struct {
	Racks            int     `json:"racks"`
	PeakITLoadW      float64 `json:"peak_it_load_w"`
	StaticLimitW     float64 `json:"static_limit_w"`
	MinNoCapLimitW   float64 `json:"min_no_cap_limit_w"`
	MinFullSLALimitW float64 `json:"min_full_sla_limit_w"`
	SavedPowerW      float64 `json:"saved_power_w"`
	SavedCostLowUSD  float64 `json:"saved_cost_low_usd"`
	SavedCostHighUSD float64 `json:"saved_cost_high_usd"`
	OversubRatio     float64 `json:"oversub_ratio"`
}

// adviceResponse flattens an Advice.
func adviceResponse(adv *scenario.Advice) *AdviceResponse {
	return &AdviceResponse{
		Racks:            adv.Spec.NumP1 + adv.Spec.NumP2 + adv.Spec.NumP3,
		PeakITLoadW:      float64(adv.PeakITLoad),
		StaticLimitW:     float64(adv.StaticLimit),
		MinNoCapLimitW:   float64(adv.MinNoCapLimit),
		MinFullSLALimitW: float64(adv.MinFullSLALimit),
		SavedPowerW:      float64(adv.SavedPower),
		SavedCostLowUSD:  adv.SavedCostLowUSD,
		SavedCostHighUSD: adv.SavedCostHighUSD,
		OversubRatio:     adv.OversubRatio,
	}
}

// handleRun launches one coordinated run and returns its summary. The run is
// detached from the resident flight recorder (its events would differ run to
// run under concurrent load) and hard-stopped by the request deadline.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, errors.New("svc: POST required"))
		return
	}
	q, err := DecodeRunRequest(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		apiError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := q.Spec()
	if err != nil {
		apiError(w, http.StatusBadRequest, err)
		return
	}
	if q.Trace != "" {
		m, ok := s.lookupTrace(q.Trace)
		if !ok {
			apiError(w, http.StatusNotFound, fmt.Errorf("svc: no ingested trace %q", q.Trace))
			return
		}
		if m.NumRacks() != q.P1+q.P2+q.P3 {
			apiError(w, http.StatusBadRequest,
				fmt.Errorf("svc: trace %q has %d racks, request has %d",
					q.Trace, m.NumRacks(), q.P1+q.P2+q.P3))
			return
		}
		spec.Trace = m
	}
	ctx := r.Context()
	spec.HardStop = func(time.Duration) bool { return ctx.Err() != nil }
	s.mu.Lock()
	s.runsLaunched++
	s.mu.Unlock()
	out, err := s.compute(func() (any, error) {
		res, err := scenario.RunCoordinated(spec)
		if err != nil {
			return nil, err
		}
		return Summarize(res), nil
	})
	s.finishCompute(w, out, err)
}

// handleIngest accepts one NDJSON trace upload; failures quarantine the
// whole stream.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, errors.New("svc: POST required"))
		return
	}
	h, m, frames, err := ingestStream(http.MaxBytesReader(w, r.Body, MaxIngestBytes))
	if err != nil {
		s.quarantine(frames, err)
		apiError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.storeTrace(h.Name, m); err != nil {
		apiError(w, http.StatusInsufficientStorage, err)
		return
	}
	s.journal("svc/ingest", "accept",
		"name", h.Name,
		"racks", fmt.Sprintf("%d", h.Racks),
		"frames", fmt.Sprintf("%d", frames))
	writeJSON(w, &IngestResult{
		Name:   h.Name,
		Racks:  h.Racks,
		Frames: frames,
		StepS:  h.StepS,
		SpanS:  float64(frames) * h.StepS,
	})
}

// StatusResponse is the /api/v1/status payload.
type StatusResponse struct {
	State        string          `json:"state"`
	UptimeS      float64         `json:"uptime_s"`
	Resident     *ResidentStatus `json:"resident,omitempty"`
	PoolRunning  int             `json:"pool_running"`
	PoolQueued   int             `json:"pool_queued"`
	PoolShed     int             `json:"pool_shed"`
	Breaker      string          `json:"breaker"`
	BreakerTrips int             `json:"breaker_trips"`
	Traces       []TraceInfo     `json:"traces,omitempty"`
	Quarantined  int             `json:"quarantined"`
	RunsLaunched int             `json:"runs_launched"`
}

// ResidentStatus reports the hosted simulation.
type ResidentStatus struct {
	Racks       int         `json:"racks"`
	TickS       float64     `json:"tick_s"`
	ResumedFrom string      `json:"resumed_from,omitempty"`
	Summary     *RunSummary `json:"summary,omitempty"`
	Error       string      `json:"error,omitempty"`
}

// TraceInfo describes one stored trace.
type TraceInfo struct {
	Name    string  `json:"name"`
	Racks   int     `json:"racks"`
	Samples int     `json:"samples"`
	StepS   float64 `json:"step_s"`
}

// handleStatus reports the daemon's lifecycle and load state.
func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, errors.New("svc: GET required"))
		return
	}
	running, queued, shed := s.pool.Depth()
	bState, trips := s.brk.State()
	resp := &StatusResponse{
		UptimeS:      s.elapsed().Seconds(),
		PoolRunning:  running,
		PoolQueued:   queued,
		PoolShed:     shed,
		Breaker:      bState.String(),
		BreakerTrips: trips,
	}
	s.mu.Lock()
	resp.State = s.state
	resp.Quarantined = s.quarantined
	resp.RunsLaunched = s.runsLaunched
	if s.opt.Resident != nil {
		rs := &ResidentStatus{
			Racks:       s.opt.Resident.P1 + s.opt.Resident.P2 + s.opt.Resident.P3,
			TickS:       time.Duration(s.lastTickNS.Load()).Seconds(),
			ResumedFrom: s.resumedFrom,
			Summary:     s.residentSummary,
		}
		if s.residentErr != nil {
			rs.Error = s.residentErr.Error()
		}
		resp.Resident = rs
	}
	names := make([]string, 0, len(s.traces))
	for name := range s.traces {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := s.traces[name]
		resp.Traces = append(resp.Traces, TraceInfo{
			Name:    name,
			Racks:   m.NumRacks(),
			Samples: m.Samples(),
			StepS:   m.Step().Seconds(),
		})
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleServiceFlight serves the service journal as NDJSON (?n=, default
// 256), mirroring /debug/flight's shape for the resident recorder.
func (s *Service) handleServiceFlight(w http.ResponseWriter, r *http.Request) {
	n := 256
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			apiError(w, http.StatusBadRequest, fmt.Errorf("svc: bad n %q", q))
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range s.svcSink.Flight.Last(n) {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}
