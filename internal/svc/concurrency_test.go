package svc

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAdvisorQueriesMatchSerial pins the determinism boundary under
// contention: advisor queries served concurrently against one resident
// service must produce byte-identical responses to the same queries served
// one at a time, and the resident flight digest must be untouched by the API
// load. Run under -race this also exercises the pool, breaker, and shared
// trace-store locking.
func TestConcurrentAdvisorQueriesMatchSerial(t *testing.T) {
	// A queue deep enough to hold the whole burst: this test is about
	// determinism under contention, not shedding, so no request may 429.
	s := newTestService(t, Options{
		Resident: smallResident(),
		Pool:     PoolConfig{Workers: 4, QueueCap: 64},
	})
	waitState(t, s, StateIdle, 30*time.Second)
	residentDigest := s.SimSink().Flight.Digest()
	h := s.Handler()

	queries := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		queries = append(queries, fmt.Sprintf(
			`{"p1":%d,"p2":%d,"p3":%d,"avg_dod":0.%d,"seed":%d}`,
			1+i%3, 2+i%2, 1+i%4, 3+i%5, 1+i))
	}

	serial := make([]string, len(queries))
	for i, q := range queries {
		w := do(h, http.MethodPost, "/api/v1/advise", q)
		if w.Code != http.StatusOK {
			t.Fatalf("serial query %d: %d %s", i, w.Code, w.Body)
		}
		serial[i] = w.Body.String()
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				w := do(h, http.MethodPost, "/api/v1/advise", q)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("concurrent query %d: %d %s", i, w.Code, w.Body)
					return
				}
				if got := w.Body.String(); got != serial[i] {
					errs <- fmt.Errorf("query %d diverged under concurrency:\nserial     %s\nconcurrent %s", i, serial[i], got)
				}
			}(i, q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The resident recorder is a determinism artifact; API traffic must not
	// perturb its digest.
	if got := s.SimSink().Flight.Digest(); got != residentDigest {
		t.Errorf("resident digest changed under API load: %s -> %s", residentDigest, got)
	}
}
