package storm

import (
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// --- Admission queue ---

func TestAdmitPriorityOrder(t *testing.T) {
	q := NewQueue(Config{})
	q.Enqueue(0, Request{Name: "c", Priority: rack.P3, DOD: 0.5})
	q.Enqueue(0, Request{Name: "b", Priority: rack.P2, DOD: 0.5})
	q.Enqueue(0, Request{Name: "a", Priority: rack.P1, DOD: 0.5})

	grants := q.Admit(0, 1*units.Megawatt, core.DefaultConfig())
	if len(grants) != 3 {
		t.Fatalf("granted %d of 3", len(grants))
	}
	wantOrder := []string{"a", "b", "c"}
	for i, g := range grants {
		if g.Name != wantOrder[i] {
			t.Fatalf("grant %d = %s, want %s", i, g.Name, wantOrder[i])
		}
		min, max := core.DefaultConfig().Surface.MinCurrent(), core.DefaultConfig().Surface.MaxCurrent()
		if g.Current < min || g.Current > max {
			t.Fatalf("grant %s current %v outside [%v, %v]", g.Name, g.Current, min, max)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue still holds %d after full admission", q.Len())
	}
}

func TestAdmitTieBreaksOnDODThenName(t *testing.T) {
	q := NewQueue(Config{})
	q.Enqueue(0, Request{Name: "deep", Priority: rack.P2, DOD: 0.8})
	q.Enqueue(0, Request{Name: "zeta", Priority: rack.P2, DOD: 0.3})
	q.Enqueue(0, Request{Name: "acme", Priority: rack.P2, DOD: 0.3})

	grants := q.Admit(0, 1*units.Megawatt, core.DefaultConfig())
	wantOrder := []string{"acme", "zeta", "deep"} // shallow DOD first, then name
	if len(grants) != 3 {
		t.Fatalf("granted %d of 3", len(grants))
	}
	for i, g := range grants {
		if g.Name != wantOrder[i] {
			t.Fatalf("grant %d = %s, want %s", i, g.Name, wantOrder[i])
		}
	}
}

func TestAgingPromotesStarvedP3(t *testing.T) {
	q := NewQueue(Config{AgeBoost: 10 * time.Minute})
	// The P3 rack has waited 20 min (two promotion steps -> effective P1);
	// the fresh P2 arrived a minute ago and is still effective P2. The aged
	// P3 outranks it for the single admission slot.
	q.Enqueue(0, Request{Name: "old-p3", Priority: rack.P3, DOD: 0.5})
	q.Enqueue(19*time.Minute, Request{Name: "new-p2", Priority: rack.P2, DOD: 0.1})

	q.cfg.MaxWave = 1
	grants := q.Admit(20*time.Minute, 1*units.Megawatt, core.DefaultConfig())
	if len(grants) != 1 || grants[0].Name != "old-p3" {
		t.Fatalf("grants = %+v, want the aged P3 first", grants)
	}
	if q.Metrics().Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", q.Metrics().Promotions)
	}
}

func TestAgedP3DoesNotJumpCohortP2(t *testing.T) {
	q := NewQueue(Config{AgeBoost: 10 * time.Minute})
	// Both enqueued in the same storm, both aged to the effective-P1 clamp:
	// the nominal class still orders the wave, whatever the DODs and names.
	q.Enqueue(0, Request{Name: "a-p3", Priority: rack.P3, DOD: 0.1})
	q.Enqueue(0, Request{Name: "z-p2", Priority: rack.P2, DOD: 0.9})

	grants := q.Admit(40*time.Minute, 1*units.Megawatt, core.DefaultConfig())
	if len(grants) != 2 || grants[0].Name != "z-p2" {
		t.Fatalf("grants = %+v, want the nominal P2 first", grants)
	}
}

func TestAgingClampsAtP1(t *testing.T) {
	q := NewQueue(Config{AgeBoost: 10 * time.Minute})
	// 100 min of waiting is ten promotion steps — far past P1. If the clamp
	// were missing the P3 would sort ahead of a genuine P1; clamped, the tie
	// breaks on DOD and the P1 goes first.
	q.Enqueue(0, Request{Name: "ancient-p3", Priority: rack.P3, DOD: 0.5})
	q.Enqueue(100*time.Minute, Request{Name: "new-p1", Priority: rack.P1, DOD: 0.1})

	grants := q.Admit(100*time.Minute, 1*units.Megawatt, core.DefaultConfig())
	if len(grants) != 2 || grants[0].Name != "new-p1" {
		t.Fatalf("grants = %+v, want new-p1 first", grants)
	}
}

func TestAdmitFitsBudgetOnGrid(t *testing.T) {
	cfg := core.DefaultConfig()
	q := NewQueue(Config{})
	// A P1 at DOD 0.9 wants the maximum current (its SLA is infeasible, so
	// RequiredCurrent returns best-effort 5 A), but the budget only carries
	// 2.5 A worth — the grant must step down the 1 A grid to 2 A.
	q.Enqueue(0, Request{Name: "a", Priority: rack.P1, DOD: 0.9})
	budget := units.Power(2.5 * float64(cfg.WattsPerAmp))
	grants := q.Admit(0, budget, cfg)
	if len(grants) != 1 {
		t.Fatalf("granted %d of 1", len(grants))
	}
	if grants[0].Current != 2 {
		t.Fatalf("grant current = %v, want 2 A", grants[0].Current)
	}
}

func TestAdmitHeadOfLineBlocking(t *testing.T) {
	cfg := core.DefaultConfig()
	q := NewQueue(Config{})
	q.Enqueue(0, Request{Name: "front-p1", Priority: rack.P1, DOD: 0.9})
	q.Enqueue(0, Request{Name: "tiny-p3", Priority: rack.P3, DOD: 0.1})

	// Budget below even the minimum current: nothing may be admitted — the
	// small P3 cannot jump the blocked P1.
	minPower := float64(cfg.Surface.MinCurrent()) * cfg.WattsPerAmp
	if grants := q.Admit(0, units.Power(minPower-1), cfg); len(grants) != 0 {
		t.Fatalf("admitted %+v past a blocked head", grants)
	}
	if q.Len() != 2 {
		t.Fatalf("queue length = %d, want 2", q.Len())
	}

	// Budget for exactly one minimum-current grant: the P1 takes it and the
	// P3 still waits behind it.
	grants := q.Admit(0, units.Power(minPower), cfg)
	if len(grants) != 1 || grants[0].Name != "front-p1" || grants[0].Current != cfg.Surface.MinCurrent() {
		t.Fatalf("grants = %+v, want front-p1 at the minimum current", grants)
	}
	if !q.Contains("tiny-p3") {
		t.Fatal("blocked P3 left the queue without a grant")
	}
}

func TestMaxWaveCapsAdmissions(t *testing.T) {
	q := NewQueue(Config{MaxWave: 2})
	for _, n := range []string{"a", "b", "c"} {
		q.Enqueue(0, Request{Name: n, Priority: rack.P2, DOD: 0.5})
	}
	if got := len(q.Admit(0, 1*units.Megawatt, core.DefaultConfig())); got != 2 {
		t.Fatalf("wave 1 admitted %d, want 2", got)
	}
	if got := len(q.Admit(0, 1*units.Megawatt, core.DefaultConfig())); got != 1 {
		t.Fatalf("wave 2 admitted %d, want 1", got)
	}
	m := q.Metrics()
	if m.Waves != 2 || m.Admitted != 3 {
		t.Fatalf("metrics = %+v, want 2 waves / 3 admitted", m)
	}
}

func TestEnqueueDedupAndBookkeeping(t *testing.T) {
	q := NewQueue(Config{})
	q.Enqueue(0, Request{Name: "a", Priority: rack.P1, DOD: 0.5})
	q.Enqueue(0, Request{Name: "a", Priority: rack.P1, DOD: 0.5}) // duplicate
	q.Enqueue(0, Request{Name: "b", Priority: rack.P2, DOD: 0})   // nothing owed
	if q.Len() != 1 {
		t.Fatalf("queue length = %d, want 1", q.Len())
	}
	if m := q.Metrics(); m.Enqueued != 1 || m.MaxQueue != 1 {
		t.Fatalf("metrics = %+v, want Enqueued 1 / MaxQueue 1", m)
	}

	q.Enqueue(0, Request{Name: "c", Priority: rack.P3, DOD: 0.2})
	if m := q.Metrics(); m.MaxQueue != 2 {
		t.Fatalf("MaxQueue = %d, want 2", m.MaxQueue)
	}
	if !q.Remove("a") || q.Remove("a") {
		t.Fatal("Remove did not report membership correctly")
	}
	if q.Contains("a") || !q.Contains("c") {
		t.Fatal("membership wrong after Remove")
	}

	// A crash-time Reset empties the queue but keeps the counters: metrics
	// survive the controller restart the queue itself does not.
	q.Reset()
	if q.Len() != 0 || q.Contains("c") {
		t.Fatal("Reset left waiters behind")
	}
	if m := q.Metrics(); m.Enqueued != 2 || m.MaxQueue != 2 {
		t.Fatalf("Reset clobbered metrics: %+v", m)
	}
}

// --- Breaker guard ---

// chargingRack builds a rack charging at the maximum current with a deep
// enough discharge that the charger runs constant-current (full recharge
// draw), attached to nothing yet.
func chargingRack(t *testing.T, name string, p rack.Priority, demand units.Power) *rack.Rack {
	t.Helper()
	r := rack.New(name, p, charger.Variable{}, battery.Fig5Surface())
	r.SetDemand(demand)
	r.LoseInput(0)
	r.Step(2*time.Minute, 2*time.Minute)
	r.RestoreInput(2 * time.Minute)
	if !r.Charging() {
		t.Fatalf("setup: rack %s not charging after restore", name)
	}
	r.OverrideCurrent(5 * units.Ampere)
	return r
}

// guardRig wires racks under one RPP node with a guard.
func guardRig(t *testing.T, cfg GuardConfig, racks ...*rack.Rack) (*power.Node, *Guard) {
	t.Helper()
	n := power.NewNode("rpp", power.LevelRPP, power.DefaultRPPLimit)
	for _, r := range racks {
		n.AttachLoad(r)
	}
	return n, NewGuard(n, racks, core.DefaultConfig(), cfg)
}

func TestGuardDemotesBeforePausing(t *testing.T) {
	r1 := chargingRack(t, "p1", rack.P1, 6300*units.Watt)
	r2 := chargingRack(t, "p2", rack.P2, 6300*units.Watt)
	r3 := chargingRack(t, "p3a", rack.P3, 6300*units.Watt)
	r4 := chargingRack(t, "p3b", rack.P3, 6300*units.Watt)
	n, g := guardRig(t, GuardConfig{}, r1, r2, r3, r4)

	// A sliver of overdraw: demoting the first P3 rack must already contain
	// it, leaving every other setpoint — and all IT load — untouched.
	n.SetLimit(n.Power() - 1*units.Watt)
	start := 3 * time.Minute
	g.Tick(start)
	if g.Metrics().Fires != 0 {
		t.Fatal("guard fired before the sustain window opened")
	}
	g.Tick(start + g.fireAfter())

	m := g.Metrics()
	if m.Fires != 1 || m.Demoted != 1 || m.Paused != 0 || m.ITCapped != 0 {
		t.Fatalf("metrics = %+v, want exactly one demote", m)
	}
	if n.Power() > n.Limit() {
		t.Fatalf("draw %v still over limit %v after shed", n.Power(), n.Limit())
	}
	if r3.Pack().Setpoint() != core.DefaultConfig().SafeCurrent() {
		t.Fatalf("p3a setpoint = %v, want the safe current", r3.Pack().Setpoint())
	}
	for _, r := range []*rack.Rack{r1, r2, r4} {
		if r.Pack().Setpoint() != 5 {
			t.Fatalf("%s setpoint = %v, want untouched 5 A", r.Name(), r.Pack().Setpoint())
		}
	}
}

func TestGuardEscalatesToPauseIntoQueue(t *testing.T) {
	r1 := chargingRack(t, "p1", rack.P1, 6300*units.Watt)
	r2 := chargingRack(t, "p2", rack.P2, 6300*units.Watt)
	r3 := chargingRack(t, "p3a", rack.P3, 6300*units.Watt)
	r4 := chargingRack(t, "p3b", rack.P3, 6300*units.Watt)
	n, g := guardRig(t, GuardConfig{}, r1, r2, r3, r4)
	q := NewQueue(Config{})
	g.AttachQueue(q)

	// Even the whole fleet at the safe current overdraws: after demoting all
	// four, the guard must pause reverse-priority until the draw fits. The
	// limit leaves room for IT plus 1.5 safe-current charges, so exactly
	// three pauses (both P3s and the P2) are needed and the P1 keeps charging.
	it := r1.ITLoad() + r2.ITLoad() + r3.ITLoad() + r4.ITLoad()
	safePower := units.Power(float64(core.DefaultConfig().SafeCurrent()) * core.DefaultConfig().WattsPerAmp)
	n.SetLimit(it + units.Power(1.5*float64(safePower)))
	start := 3 * time.Minute
	g.Tick(start)
	g.Tick(start + g.fireAfter())

	m := g.Metrics()
	if m.Demoted != 4 || m.Paused != 3 || m.ITCapped != 0 {
		t.Fatalf("metrics = %+v, want 4 demoted / 3 paused / 0 IT capped", m)
	}
	if n.Power() > n.Limit() {
		t.Fatalf("draw %v still over limit %v", n.Power(), n.Limit())
	}
	if !r1.Charging() {
		t.Fatal("the P1 charge was paused before lower priorities covered the shed")
	}
	for _, r := range []*rack.Rack{r2, r3, r4} {
		if r.Charging() || r.PendingDOD() <= 0 || !q.Contains(r.Name()) {
			t.Fatalf("%s: charging=%v pending=%v queued=%v, want paused into the queue",
				r.Name(), r.Charging(), r.PendingDOD(), q.Contains(r.Name()))
		}
	}
}

func TestGuardSelfResumesAfterQuiet(t *testing.T) {
	r1 := chargingRack(t, "p1", rack.P1, 6300*units.Watt)
	r2 := chargingRack(t, "p3a", rack.P3, 6300*units.Watt)
	r3 := chargingRack(t, "p3b", rack.P3, 6300*units.Watt)
	n, g := guardRig(t, GuardConfig{}, r1, r2, r3)

	it := r1.ITLoad() + r2.ITLoad() + r3.ITLoad()
	n.SetLimit(it + 400*units.Watt) // one safe-current charge fits
	start := 3 * time.Minute
	g.Tick(start)
	shedAt := start + g.fireAfter()
	g.Tick(shedAt)
	if m := g.Metrics(); m.Paused != 2 {
		t.Fatalf("paused %d, want 2 (no queue attached -> self-managed)", m.Paused)
	}

	// Relax the limit and stay quiet for the resume window: the guard must
	// resume its paused charges one per tick at the safe current.
	n.SetLimit(power.DefaultRPPLimit)
	g.Tick(shedAt + time.Second)
	quiet := shedAt + time.Second + g.resumeAfter()
	g.Tick(quiet)
	if m := g.Metrics(); m.Resumed != 1 {
		t.Fatalf("Resumed = %d after first quiet release, want 1 (MaxResumePerTick)", m.Resumed)
	}
	g.Tick(quiet + time.Second)
	if m := g.Metrics(); m.Resumed != 2 {
		t.Fatalf("Resumed = %d after second release, want 2", m.Resumed)
	}
	for _, r := range []*rack.Rack{r2, r3} {
		if !r.Charging() || r.Pack().Setpoint() != core.DefaultConfig().SafeCurrent() {
			t.Fatalf("%s not resumed at the safe current", r.Name())
		}
	}
}

func TestGuardCapsITOnlyBeyondTripThreshold(t *testing.T) {
	mk := func(name string, p rack.Priority) *rack.Rack {
		r := rack.New(name, p, charger.Variable{}, battery.Fig5Surface())
		r.SetDemand(12 * units.Kilowatt)
		return r
	}
	r1, r2, r3 := mk("p1", rack.P1), mk("p2", rack.P2), mk("p3", rack.P3)
	n, g := guardRig(t, GuardConfig{}, r1, r2, r3)
	n.SetLimit(20 * units.Kilowatt) // 36 kW of pure IT load, threshold 26 kW

	start := time.Duration(0)
	g.Tick(start)
	g.Tick(start + g.fireAfter())

	m := g.Metrics()
	if m.ITCapped != 2 || m.Demoted != 0 || m.Paused != 0 {
		t.Fatalf("metrics = %+v, want exactly the two lowest priorities capped", m)
	}
	if m.MaxITCut != 16*units.Kilowatt {
		t.Fatalf("MaxITCut = %v, want 16 kW", m.MaxITCut)
	}
	if n.Power() != n.Limit() {
		t.Fatalf("draw %v after capping, want exactly the limit %v", n.Power(), n.Limit())
	}
	if r1.ITLoad() != 12*units.Kilowatt {
		t.Fatalf("P1 IT load cut to %v; the final resort must walk reverse priority", r1.ITLoad())
	}
	if r3.ITLoad() != 0 || r2.ITLoad() != 8*units.Kilowatt {
		t.Fatalf("cap split = P3 %v / P2 %v, want 0 / 8 kW", r3.ITLoad(), r2.ITLoad())
	}

	// Quiet release restores the caps (availability first).
	capAt := start + g.fireAfter()
	g.Tick(capAt + time.Second)
	g.Tick(capAt + time.Second + g.resumeAfter())
	if r3.ITLoad() != 12*units.Kilowatt || r2.ITLoad() != 12*units.Kilowatt {
		t.Fatalf("caps not lifted on release: P3 %v P2 %v", r3.ITLoad(), r2.ITLoad())
	}
}

func TestGuardIgnoresBriefSpikes(t *testing.T) {
	r1 := chargingRack(t, "p1", rack.P1, 6300*units.Watt)
	n, g := guardRig(t, GuardConfig{}, r1)
	n.SetLimit(n.Power() - 1*units.Watt)
	start := 3 * time.Minute
	g.Tick(start)
	// The draw dips back under the limit before the fire window closes.
	n.SetLimit(power.DefaultRPPLimit)
	g.Tick(start + g.fireAfter()/2)
	n.SetLimit(n.Power() - 1*units.Watt)
	g.Tick(start + g.fireAfter())
	if m := g.Metrics(); m.Fires != 0 {
		t.Fatalf("guard fired on a non-sustained spike: %+v", m)
	}
}
