package storm

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/rack"
)

// WaiterState is one queued admission request plus when it enqueued.
type WaiterState struct {
	Request
	Since time.Duration `json:"since"`
}

// QueueState is the admission queue's serializable state: the waiting
// requests in queue order plus the accumulated counters. The membership set
// is derived (rebuilt from the waiting list on restore).
type QueueState struct {
	Waiting []WaiterState `json:"waiting,omitempty"`
	Metrics Metrics       `json:"metrics"`
}

// ExportState captures the queue's waiting list (in order) and counters.
func (q *Queue) ExportState() QueueState {
	st := QueueState{Metrics: q.metrics}
	for _, w := range q.waiting {
		st.Waiting = append(st.Waiting, WaiterState{Request: w.Request, Since: w.since})
	}
	return st
}

// RestoreState overwrites the queue's waiting list and counters from a
// checkpoint. The queue keeps its constructed configuration and
// observability wiring; the depth gauge is resynchronised.
func (q *Queue) RestoreState(st QueueState) {
	q.waiting = q.waiting[:0]
	q.member = make(map[string]bool, len(st.Waiting))
	for _, w := range st.Waiting {
		q.waiting = append(q.waiting, waiter{Request: w.Request, since: w.Since})
		q.member[w.Name] = true
	}
	q.metrics = st.Metrics
	q.gDepth.Set(float64(len(q.waiting)))
}

// GuardState is a breaker guard's serializable state: the overdraw/quiet
// latches, the shed sets (paused charges in FIFO order, capped racks by
// name), and the counters. Configuration and the rack/node/queue wiring are
// construction-time and rebuilt from the spec.
type GuardState struct {
	Node       string        `json:"node"`
	Over       bool          `json:"over"`
	OverSince  time.Duration `json:"over_since"`
	Fired      bool          `json:"fired"`
	QuietSince time.Duration `json:"quiet_since"`
	Quiet      bool          `json:"quiet"`
	Paused     []string      `json:"paused,omitempty"`
	Capped     []string      `json:"capped,omitempty"`
	Metrics    GuardMetrics  `json:"metrics"`
}

// ExportState captures the guard's latches, shed sets, and counters. Paused
// racks keep their FIFO order; capped racks are sorted by name (the cap
// release is order-independent).
func (g *Guard) ExportState() GuardState {
	st := GuardState{
		Node:       g.node.Name(),
		Over:       g.over,
		OverSince:  g.overSince,
		Fired:      g.fired,
		QuietSince: g.quietSince,
		Quiet:      g.quiet,
		Metrics:    g.metrics,
	}
	for _, r := range g.paused {
		st.Paused = append(st.Paused, r.Name())
	}
	for r := range g.capped {
		st.Capped = append(st.Capped, r.Name())
	}
	sort.Strings(st.Capped)
	return st
}

// RestoreState overwrites the guard's latches, shed sets, and counters from
// a checkpoint, resolving rack names against the guard's constructed rack
// set.
func (g *Guard) RestoreState(st GuardState) error {
	if st.Node != g.node.Name() {
		return fmt.Errorf("storm: guard state for node %q restored into %q", st.Node, g.node.Name())
	}
	byName := make(map[string]*rack.Rack, len(g.racks))
	for _, r := range g.racks {
		byName[r.Name()] = r
	}
	paused := make([]*rack.Rack, 0, len(st.Paused))
	for _, name := range st.Paused {
		r, ok := byName[name]
		if !ok {
			return fmt.Errorf("storm: guard state names unknown paused rack %q", name)
		}
		paused = append(paused, r)
	}
	capped := make(map[*rack.Rack]bool, len(st.Capped))
	for _, name := range st.Capped {
		r, ok := byName[name]
		if !ok {
			return fmt.Errorf("storm: guard state names unknown capped rack %q", name)
		}
		capped[r] = true
	}
	g.over = st.Over
	g.overSince = st.OverSince
	g.fired = st.Fired
	g.quietSince = st.QuietSince
	g.quiet = st.Quiet
	g.paused = paused
	g.capped = capped
	g.metrics = st.Metrics
	return nil
}
