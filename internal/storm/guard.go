package storm

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// GuardConfig parameterises the last-line breaker guard.
type GuardConfig struct {
	// FireFraction is the fraction of the breaker TripRule's sustain window
	// after which sustained overdraw makes the guard act. Zero selects the
	// default (0.5): the guard fires halfway into the window the breaker
	// would need to trip, leaving the other half as margin for its shedding
	// to take effect.
	FireFraction float64
	// ResumeAfter is how long draw must stay below the limit before the
	// guard releases its actions (restores IT caps, resumes paused charges).
	// Zero selects the breaker's own sustain window.
	ResumeAfter time.Duration
	// MaxResumePerTick bounds the paused charges the guard itself resumes
	// per quiet tick, so a release cannot recreate the storm it shed. Zero
	// selects 1. Ignored for charges handed to an admission queue.
	MaxResumePerTick int
}

// DefaultGuardConfig returns the default guard parameters.
func DefaultGuardConfig() GuardConfig {
	return GuardConfig{FireFraction: 0.5, MaxResumePerTick: 1}
}

// GuardMetrics counts guard activity. ITCapped and MaxITCut are the
// acceptance signals: a healthy storm run keeps both at zero (charge
// shedding alone contains the overdraw).
type GuardMetrics struct {
	// Fires counts overdraw episodes in which the guard shed anything.
	Fires int
	// Demoted counts charging racks demoted to the safe current.
	Demoted int
	// Paused counts charges the guard paused outright.
	Paused int
	// ITCapped counts racks whose servers the guard capped (final resort).
	ITCapped int
	// MaxITCut is the largest total server power the guard capped away at
	// any instant.
	MaxITCut units.Power
	// Resumed counts paused charges the guard itself resumed after quiet.
	Resumed int
}

// Guard is the per-breaker last line of defence against recharge storms the
// planner failed to contain (a planner bug, a stale-telemetry storm, or a
// crashed controller). It watches the breaker's draw directly and sheds
// charging current first — demote to the safe current, then pause, walking
// reverse priority and deepest discharge first — escalating to server power
// capping only when charge shedding alone cannot clear the trip threshold.
//
// Like Dynamo's capping path, the guard acts over the server-management
// plane: it holds direct rack handles and its actions are not subject to the
// charger-override command channel's latency or faults. That is what makes
// it a credible last line when the coordination plane is degraded.
type Guard struct {
	node     *power.Node
	racks    []*rack.Rack
	ccfg     core.Config
	cfg      GuardConfig
	queue    *Queue                          // optional: paused charges handed to storm admission //coordvet:transient wiring: AttachQueue re-attaches before resume
	capacity func(time.Duration) units.Power // optional: external feed capacity (interconnection cap) //coordvet:transient wiring: SetCapacity re-attaches the feed before resume

	over       bool
	overSince  time.Duration
	fired      bool
	quietSince time.Duration
	quiet      bool

	paused []*rack.Rack // self-managed paused charges (no queue attached)
	capped map[*rack.Rack]bool

	metrics GuardMetrics

	// Observability (nil when detached).
	sink                                         *obs.Sink    //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cFires, cDemoted, cPaused, cCapped, cResumed *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	gProximity                                   *obs.Gauge   //coordvet:transient telemetry: re-attached by SetObs, not simulation state
}

// NewGuard builds a guard for node, shedding among the given racks (the
// racks fed by node). ccfg supplies the safe current and override grid.
func NewGuard(node *power.Node, racks []*rack.Rack, ccfg core.Config, cfg GuardConfig) *Guard {
	if cfg.FireFraction <= 0 {
		cfg.FireFraction = 0.5
	}
	if cfg.MaxResumePerTick <= 0 {
		cfg.MaxResumePerTick = 1
	}
	rs := make([]*rack.Rack, len(racks))
	copy(rs, racks)
	return &Guard{
		node:   node,
		racks:  rs,
		ccfg:   ccfg,
		cfg:    cfg,
		capped: make(map[*rack.Rack]bool),
	}
}

// AttachQueue hands the guard's paused charges to a storm admission queue
// instead of the guard's own quiet-time resume.
func (g *Guard) AttachQueue(q *Queue) { g.queue = q }

// SetCapacity clamps the draw level the guard defends with charge shedding
// (demote and pause) to an externally supplied feed capacity — the
// interconnection cap from the grid signal plane. The escalation to server
// power capping keeps its breaker-based trip threshold: IT capping defends
// trip physics, not grid compliance. A nil fn, or a capacity at or above
// the breaker limit, leaves the breaker limit in force.
func (g *Guard) SetCapacity(fn func(now time.Duration) units.Power) { g.capacity = fn }

// limitAt is the draw level the guard defends at time now: the breaker
// limit, clamped down by the attached capacity hook when one is set.
func (g *Guard) limitAt(now time.Duration) units.Power {
	limit := g.node.Limit()
	if g.capacity != nil {
		if c := g.capacity(now); c > 0 && c < limit {
			return c
		}
	}
	return limit
}

// SetObs attaches an observability sink: shed/release activity is counted
// under guard.* metrics, a per-node trip-proximity gauge tracks how far into
// the breaker's sustain window the current overdraw episode has run, and
// every escalation rung is journaled to the flight recorder.
func (g *Guard) SetObs(s *obs.Sink) {
	g.sink = s
	g.cFires = s.Counter("guard.fires")
	g.cDemoted = s.Counter("guard.demoted")
	g.cPaused = s.Counter("guard.paused")
	g.cCapped = s.Counter("guard.it_capped")
	g.cResumed = s.Counter("guard.resumed")
	g.gProximity = s.Gauge("guard.trip_proximity." + g.node.Name())
}

// comp is the guard's flight-recorder component label.
func (g *Guard) comp() string { return "guard/" + g.node.Name() }

// Node returns the breaker this guard watches.
func (g *Guard) Node() *power.Node { return g.node }

// Metrics returns the accumulated guard counters.
func (g *Guard) Metrics() GuardMetrics { return g.metrics }

// fireAfter is the sustained-overdraw duration that makes the guard shed.
func (g *Guard) fireAfter() time.Duration {
	sustain := g.node.Rule().Sustain
	if sustain <= 0 {
		sustain = 30 * time.Second
	}
	return time.Duration(g.cfg.FireFraction * float64(sustain))
}

// proximity is how far the current overdraw episode has run into the
// breaker's sustain window: 0 at breach, 1 at the window the TripRule needs
// to trip. It can exceed 1 when overdraw persists past the window without
// crossing the trip threshold fraction.
func (g *Guard) proximity(now time.Duration) float64 {
	sustain := g.node.Rule().Sustain
	if sustain <= 0 {
		sustain = 30 * time.Second
	}
	return float64(now-g.overSince) / float64(sustain)
}

// resumeAfter is the quiet time before the guard releases its actions.
func (g *Guard) resumeAfter() time.Duration {
	if g.cfg.ResumeAfter > 0 {
		return g.cfg.ResumeAfter
	}
	if s := g.node.Rule().Sustain; s > 0 {
		return s
	}
	return 30 * time.Second
}

// Tick advances the guard at virtual time now. Call once per simulation
// tick, after loads and controllers have updated; the guard re-measures the
// breaker directly and acts within the tick.
func (g *Guard) Tick(now time.Duration) {
	if !g.node.Energized() {
		// No draw while de-energized; clear the episode.
		g.over, g.fired, g.quiet = false, false, false
		g.gProximity.Set(0)
		return
	}
	p := g.node.Power()
	limit := g.limitAt(now)
	if p > limit {
		g.quiet = false
		if !g.over {
			g.over, g.overSince = true, now
			if g.sink != nil {
				g.sink.Event(now, g.comp(), "breach",
					"power_w", fmt.Sprintf("%.0f", float64(p)),
					"limit_w", fmt.Sprintf("%.0f", float64(limit)))
			}
		}
		g.gProximity.Set(g.proximity(now))
		if now-g.overSince >= g.fireAfter() {
			g.shed(now)
		}
		return
	}
	// Below the limit: the episode (if any) is contained.
	g.over, g.fired = false, false
	g.gProximity.Set(0)
	if !g.hasActions() {
		g.quiet = false
		return
	}
	if !g.quiet {
		g.quiet, g.quietSince = true, now
	}
	if now-g.quietSince >= g.resumeAfter() {
		g.release(now)
	}
}

// hasActions reports whether the guard holds any shed state to release.
func (g *Guard) hasActions() bool {
	return len(g.paused) > 0 || len(g.capped) > 0
}

// Idle reports whether the guard holds no episode state at all: no open
// breach, nothing shed, no quiet timer running. An idle guard's Tick below
// the limit is a pure no-op (modulo gauges), which is what lets the event
// kernel skip it.
func (g *Guard) Idle() bool {
	return !g.over && !g.fired && !g.quiet && !g.hasActions()
}

// shedOrder returns the candidate racks in shedding order: reverse priority
// (P3 first), deepest discharge first, then name — the same reverse order
// the planner's emergency throttle uses.
func (g *Guard) shedOrder() []*rack.Rack {
	order := make([]*rack.Rack, len(g.racks))
	copy(order, g.racks)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Priority() != b.Priority() {
			return a.Priority() > b.Priority()
		}
		if a.BatteryDOD() != b.BatteryDOD() {
			return a.BatteryDOD() > b.BatteryDOD()
		}
		return a.Name() < b.Name()
	})
	return order
}

// shed walks the escalation ladder within one tick, re-measuring the breaker
// after every action: (1) demote charging racks to the safe current until
// draw fits the limit; (2) pause remaining charges; (3) only if draw still
// exceeds the trip threshold — a storm charge shedding alone cannot contain
// — cap server power down to the limit, reverse priority.
func (g *Guard) shed(now time.Duration) {
	if !g.fired {
		g.fired = true
		g.metrics.Fires++
		g.cFires.Inc()
		if g.sink != nil {
			g.sink.Event(now, g.comp(), "guard-fire",
				"power_w", fmt.Sprintf("%.0f", float64(g.node.Power())),
				"limit_w", fmt.Sprintf("%.0f", float64(g.limitAt(now))))
		}
	}
	limit := g.limitAt(now)
	safe := g.ccfg.SafeCurrent()
	order := g.shedOrder()

	// Rung 1: demote charging setpoints to the safe current.
	for _, r := range order {
		if g.node.Power() <= limit {
			return
		}
		if !r.InputUp() || !r.Charging() || r.Pack().Setpoint() <= safe {
			continue
		}
		r.OverrideCurrent(safe)
		g.metrics.Demoted++
		g.cDemoted.Inc()
		if g.sink != nil {
			g.sink.Event(now, g.comp(), "demote",
				"rack", r.Name(), "amps", fmt.Sprintf("%d", int(safe)))
		}
	}
	// Rung 2: pause charges outright.
	for _, r := range order {
		if g.node.Power() <= limit {
			return
		}
		if !r.InputUp() || !r.Charging() {
			continue
		}
		r.Postpone()
		g.metrics.Paused++
		g.cPaused.Inc()
		if g.sink != nil {
			g.sink.Event(now, g.comp(), "guard-pause", "rack", r.Name())
		}
		if g.queue != nil {
			g.queue.Enqueue(now, Request{Name: r.Name(), Priority: r.Priority(), DOD: r.PendingDOD(), Since: r.ChargeStart()})
		} else {
			g.paused = append(g.paused, r)
		}
	}
	// Rung 3 (final resort): charge shedding was not enough. Cap servers
	// only when the draw still sits beyond the trip threshold. Both the
	// threshold and the cut target are the breaker's own limit, never an
	// interconnection cap: servers are capped to keep the breaker up, not
	// to honour a grid signal (availability over compliance).
	breaker := g.node.Limit()
	rule := g.node.Rule()
	threshold := units.Power(float64(breaker) * (1 + float64(rule.Fraction)))
	if g.node.Power() <= threshold {
		return
	}
	var cut units.Power
	for _, r := range order {
		over := g.node.Power() - breaker
		if over <= 0 {
			break
		}
		if !r.InputUp() || r.ITLoad() <= 0 {
			continue
		}
		c := r.ITLoad()
		if c > over {
			c = over
		}
		r.Cap(g.capSource(), r.ITLoad()-c)
		if !g.capped[r] {
			g.metrics.ITCapped++
			g.cCapped.Inc()
		}
		g.capped[r] = true
		if g.sink != nil {
			g.sink.Event(now, g.comp(), "it-cap",
				"rack", r.Name(), "cut_w", fmt.Sprintf("%.0f", float64(c)))
		}
		cut += c
	}
	if cut > g.metrics.MaxITCut {
		g.metrics.MaxITCut = cut
	}
}

// release unwinds the guard's actions after sustained quiet: server caps
// lift first (availability before charge time), then — when no admission
// queue owns them — paused charges resume at the safe current, at most
// MaxResumePerTick per tick so the release cannot recreate the storm.
func (g *Guard) release(now time.Duration) {
	if (len(g.capped) > 0 || len(g.paused) > 0) && g.sink != nil {
		g.sink.Event(now, g.comp(), "guard-release",
			"capped", fmt.Sprintf("%d", len(g.capped)),
			"paused", fmt.Sprintf("%d", len(g.paused)))
	}
	for r := range g.capped {
		r.Uncap(g.capSource())
		delete(g.capped, r)
	}
	resumed := 0
	for len(g.paused) > 0 && resumed < g.cfg.MaxResumePerTick {
		r := g.paused[0]
		g.paused = g.paused[1:]
		if r.PendingDOD() <= 0 {
			continue
		}
		r.ResumeCharge(g.ccfg.SafeCurrent())
		g.metrics.Resumed++
		g.cResumed.Inc()
		if g.sink != nil {
			g.sink.Event(now, g.comp(), "guard-resume", "rack", r.Name())
		}
		resumed++
	}
	if !g.hasActions() {
		g.quiet = false
	}
}

// capSource is the cap-registry key this guard caps racks under.
func (g *Guard) capSource() string { return "guard/" + g.node.Name() }

// TotalGuardMetrics aggregates counters across guards; MaxITCut takes the
// guard-wide maximum.
func TotalGuardMetrics(gs []*Guard) GuardMetrics {
	var m GuardMetrics
	for _, g := range gs {
		gm := g.Metrics()
		m.Fires += gm.Fires
		m.Demoted += gm.Demoted
		m.Paused += gm.Paused
		m.ITCapped += gm.ITCapped
		m.Resumed += gm.Resumed
		if gm.MaxITCut > m.MaxITCut {
			m.MaxITCut = gm.MaxITCut
		}
	}
	return m
}
