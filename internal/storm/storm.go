// Package storm implements recharge-storm survival for the coordinated
// charging control plane: the paper's motivating hazard is the *correlated*
// grid event (§I, Fig 2) in which one outage drains every BBU under a
// breaker and the synchronized recharge that follows overloads it.
//
// Two layers live here:
//
//   - Admission control (Queue): after a correlated discharge event the
//     planner pauses the fleet's simultaneous CC starts and re-admits them
//     in priority-aware waves sized to the breaker's measured headroom.
//     Waiting ages a request toward higher effective priority so P3 racks
//     cannot starve behind a long P1/P2 backlog.
//
//   - Last-line breaker guard (Guard): a per-node watchdog that sheds
//     charging current — demote, then pause, by reverse priority — when
//     sustained overdraw approaches the breaker's TripRule window,
//     escalating to IT power capping only as a final resort. A planner bug
//     or stale-telemetry storm then degrades charge time, not availability.
package storm

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/obs"
	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

// Config parameterises storm admission control.
type Config struct {
	// MinRacks is the correlated-start threshold: a planning cycle that
	// sees at least this many racks begin charging at once is treated as a
	// recharge storm and routed through the admission queue. Zero selects
	// the default (4).
	MinRacks int
	// Reserve is the fraction of the breaker limit withheld from admission
	// grants as a safety margin against load growth between planning cycles.
	// Zero selects the default (0.05); negative disables the reserve.
	Reserve units.Fraction
	// AgeBoost is the queue wait that promotes a request by one priority
	// class when ordering admissions (deficit aging, so P3 cannot starve).
	// Zero selects the default (10 min); negative disables aging.
	AgeBoost time.Duration
	// MaxWave caps the racks admitted per planning cycle. Zero means
	// headroom-limited only.
	MaxWave int
}

// Default returns the default storm admission parameters.
func Default() Config {
	return Config{MinRacks: 4, Reserve: 0.05, AgeBoost: 10 * time.Minute}
}

// withDefaults resolves zero fields to their defaults.
func (c Config) withDefaults() Config {
	d := Default()
	if c.MinRacks == 0 {
		c.MinRacks = d.MinRacks
	}
	if c.Reserve == 0 {
		c.Reserve = d.Reserve
	}
	if c.AgeBoost == 0 {
		c.AgeBoost = d.AgeBoost
	}
	return c
}

// Margin returns the admission reserve in watts for a breaker limit.
func (c Config) Margin(limit units.Power) units.Power {
	r := c.withDefaults().Reserve
	if r < 0 {
		return 0
	}
	return units.Power(float64(r) * float64(limit))
}

// Request is a paused recharge waiting for admission.
type Request struct {
	Name     string
	Priority rack.Priority
	DOD      units.Fraction
	// Since is the virtual time the rack's charge episode began — the SLA
	// clock admission grants are sized against. A charge paused mid-flight
	// and re-enqueued keeps its original clock this way; zero means the
	// episode begins at enqueue time.
	Since time.Duration
}

// Grant is an admitted recharge and the charging current it may start at.
type Grant struct {
	Request
	Current units.Current
}

// Metrics counts admission-control activity.
type Metrics struct {
	// Storms is the number of correlated-start events detected.
	Storms int
	// Enqueued is the number of recharges paused into the queue.
	Enqueued int
	// Admitted is the number of recharges granted a start.
	Admitted int
	// Waves is the number of planning cycles that admitted at least one rack.
	Waves int
	// MaxQueue is the high-water mark of the queue length.
	MaxQueue int
	// Promotions counts admissions that were age-promoted above their
	// nominal priority class.
	Promotions int
}

type waiter struct {
	Request
	since time.Duration
}

// Queue is the storm admission queue. It is owned by the planning controller
// (one per coordination domain) and is not safe for concurrent use — the
// simulator's control planes are single-threaded per tick.
type Queue struct {
	cfg     Config
	waiting []waiter
	member  map[string]bool //coordvet:transient derived: RestoreState rebuilds it from waiting
	metrics Metrics

	// Observability (nil when detached).
	sink                                               *obs.Sink      //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cStorms, cEnqueued, cAdmitted, cWaves, cPromotions *obs.Counter   //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	gDepth                                             *obs.Gauge     //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	hWait                                              *obs.Histogram //coordvet:transient telemetry: re-attached by SetObs, not simulation state
}

// NewQueue returns an empty admission queue.
func NewQueue(cfg Config) *Queue {
	return &Queue{cfg: cfg.withDefaults(), member: make(map[string]bool)}
}

// SetObs attaches an observability sink: admission activity is counted under
// storm.* metrics (queue depth gauge, queue-wait histogram) and every
// pause/admission decision is journaled to the flight recorder.
func (q *Queue) SetObs(s *obs.Sink) {
	q.sink = s
	q.cStorms = s.Counter("storm.storms")
	q.cEnqueued = s.Counter("storm.enqueued")
	q.cAdmitted = s.Counter("storm.admitted")
	q.cWaves = s.Counter("storm.waves")
	q.cPromotions = s.Counter("storm.promotions")
	q.gDepth = s.Gauge("storm.queue_depth")
	q.hWait = s.Histogram("storm.queue_wait_s", 0)
}

// Config returns the queue's resolved parameters.
func (q *Queue) Config() Config { return q.cfg }

// Metrics returns the accumulated admission counters.
func (q *Queue) Metrics() Metrics { return q.metrics }

// Len returns the number of requests waiting.
func (q *Queue) Len() int { return len(q.waiting) }

// Contains reports whether the named rack is waiting for admission.
func (q *Queue) Contains(name string) bool { return q.member[name] }

// NoteStorm records a detected correlated-start event at virtual time now.
func (q *Queue) NoteStorm(now time.Duration) {
	q.metrics.Storms++
	q.cStorms.Inc()
	q.sink.Event(now, "storm/queue", "storm-detected")
}

// Enqueue pauses a recharge into the queue at virtual time now. Requests
// with nothing owed or already queued are ignored.
func (q *Queue) Enqueue(now time.Duration, r Request) {
	if r.DOD <= 0 || q.member[r.Name] {
		return
	}
	q.waiting = append(q.waiting, waiter{Request: r, since: now})
	q.member[r.Name] = true
	q.metrics.Enqueued++
	if len(q.waiting) > q.metrics.MaxQueue {
		q.metrics.MaxQueue = len(q.waiting)
	}
	q.cEnqueued.Inc()
	q.gDepth.Set(float64(len(q.waiting)))
	if q.sink != nil {
		q.sink.Event(now, "storm/queue", "enqueue",
			"rack", r.Name,
			"priority", fmt.Sprintf("%d", r.Priority),
			"dod", fmt.Sprintf("%.3f", float64(r.DOD)))
	}
}

// Remove drops the named rack from the queue (it lost input again, or a
// locally restarted charge superseded the queued one). It reports whether
// the rack was queued.
func (q *Queue) Remove(name string) bool {
	if !q.member[name] {
		return false
	}
	delete(q.member, name)
	for i, w := range q.waiting {
		if w.Name == name {
			q.waiting = append(q.waiting[:i], q.waiting[i+1:]...)
			break
		}
	}
	q.gDepth.Set(float64(len(q.waiting)))
	return true
}

// Reset clears the queue without touching the counters: a crashed controller
// loses its in-memory queue and reconstructs it from agent reads (racks keep
// their pending DOD locally).
func (q *Queue) Reset() {
	q.waiting = nil
	q.member = make(map[string]bool)
	q.gDepth.Set(0)
}

// effectivePriority is the admission-ordering priority after deficit aging:
// every AgeBoost of waiting promotes a request one class, clamped at P1.
func (q *Queue) effectivePriority(w waiter, now time.Duration) rack.Priority {
	p := w.Priority
	if q.cfg.AgeBoost <= 0 {
		return p
	}
	steps := int((now - w.since) / q.cfg.AgeBoost)
	p -= rack.Priority(steps)
	if p < rack.P1 {
		p = rack.P1
	}
	return p
}

// Admit grants the next wave of recharges under the power budget (the
// breaker's measured headroom net of the reserve). Ordering is effective
// priority first (aged), then nominal priority, then shallower DOD (faster
// to clear), then name for determinism. Admission is head-of-line: once the front request cannot fit
// even the minimum charging current, nothing behind it is admitted — that is
// what preserves strict P1 < P2 < P3 wave ordering. The front request is
// granted its SLA current when the budget allows, or the largest feasible
// current on the override grid otherwise. Granted racks leave the queue.
func (q *Queue) Admit(now time.Duration, budget units.Power, cfg core.Config) []Grant {
	if len(q.waiting) == 0 || budget <= 0 {
		return nil
	}
	order := make([]waiter, len(q.waiting))
	copy(order, q.waiting)
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := q.effectivePriority(order[i], now), q.effectivePriority(order[j], now)
		if pi != pj {
			return pi < pj
		}
		// At equal effective priority the nominal class still orders the
		// wave: requests that enqueued together age together, so a promoted
		// P3 outranks later arrivals without ever jumping a P1 (or P2) it
		// has merely caught up with.
		if order[i].Priority != order[j].Priority {
			return order[i].Priority < order[j].Priority
		}
		if order[i].DOD != order[j].DOD {
			return order[i].DOD < order[j].DOD
		}
		return order[i].Name < order[j].Name
	})

	min := cfg.Surface.MinCurrent()
	res := cfg.Resolution
	if res <= 0 {
		res = 1
	}
	var grants []Grant
	left := float64(budget)
	for _, w := range order {
		if q.cfg.MaxWave > 0 && len(grants) >= q.cfg.MaxWave {
			break
		}
		// The rack's SLA clock has been running since its charge episode
		// began — before it enqueued, for a charge paused mid-flight — so
		// size the grant against the deadline budget it has left, not the
		// full one.
		start := w.since
		if w.Since > 0 && w.Since < start {
			start = w.Since
		}
		want, _ := cfg.SLACurrentWithin(w.Priority, w.DOD, cfg.Deadlines[w.Priority]-(now-start))
		if want < min {
			want = min
		}
		grant := units.Current(0)
		for i := want; i >= min; i -= res {
			if float64(i)*cfg.WattsPerAmp <= left {
				grant = i
				break
			}
		}
		if grant <= 0 {
			break // head-of-line: keep the wave priority-ordered
		}
		left -= float64(grant) * cfg.WattsPerAmp
		grants = append(grants, Grant{Request: w.Request, Current: grant})
		if q.effectivePriority(w, now) < w.Priority {
			q.metrics.Promotions++
			q.cPromotions.Inc()
		}
		wait := (now - w.since).Seconds()
		q.hWait.Observe(wait)
		if q.sink != nil {
			q.sink.Event(now, "storm/queue", "admit",
				"rack", w.Name,
				"amps", fmt.Sprintf("%d", int(grant)),
				"wait_s", fmt.Sprintf("%.0f", wait))
		}
	}
	for _, g := range grants {
		q.Remove(g.Name)
	}
	q.metrics.Admitted += len(grants)
	q.cAdmitted.Add(int64(len(grants)))
	if len(grants) > 0 {
		q.metrics.Waves++
		q.cWaves.Inc()
		if q.sink != nil {
			q.sink.Event(now, "storm/queue", "admission-wave",
				"granted", fmt.Sprintf("%d", len(grants)),
				"budget_w", fmt.Sprintf("%.0f", float64(budget)))
		}
	}
	return grants
}
