package scenario

import (
	"fmt"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/rack"
	"coordcharge/internal/report"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// Fig12Chart reproduces Fig 12: the aggregate power of the evaluation MSB
// over one week (the synthetic production trace).
func Fig12Chart(seed int64) (*report.Chart, error) {
	gen, err := trace.NewGenerator(trace.Spec{NumRacks: 316, Seed: seed})
	if err != nil {
		return nil, err
	}
	c := report.NewChart("Fig 12: aggregate power of MSB used for evaluation (one week)", "hours", "MW")
	s := c.AddSeries("aggregate")
	for t := time.Duration(0); t <= 7*24*time.Hour; t += 20 * time.Minute {
		s.Append(t.Hours(), trace.Aggregate(gen, t).MW())
	}
	return c, nil
}

// Fig13Algorithms are the three charging strategies Fig 13 compares.
func Fig13Algorithms() []struct {
	Name   string
	Mode   dynamo.Mode
	Policy charger.Policy
} {
	return []struct {
		Name   string
		Mode   dynamo.Mode
		Policy charger.Policy
	}{
		{"original charger", dynamo.ModeNone, charger.Original{}},
		{"variable charger", dynamo.ModeNone, charger.Variable{}},
		{"priority-aware", dynamo.ModePriorityAware, charger.Variable{}},
	}
}

// Fig13Case identifies one of the six Fig 13 / Table III cases.
type Fig13Case struct {
	Label  string
	Limit  units.Power
	AvgDOD units.Fraction
}

// Fig13Cases returns the six (a)–(f) cases: {low, medium, high} battery
// discharge crossed with the 2.5 MW actual and 2.3 MW low power limits.
func Fig13Cases() []Fig13Case {
	return []Fig13Case{
		{"(a) low discharge, 2.5 MW", 2.5 * units.Megawatt, 0.3},
		{"(b) low discharge, 2.3 MW", 2.3 * units.Megawatt, 0.3},
		{"(c) medium discharge, 2.5 MW", 2.5 * units.Megawatt, 0.5},
		{"(d) medium discharge, 2.3 MW", 2.3 * units.Megawatt, 0.5},
		{"(e) high discharge, 2.5 MW", 2.5 * units.Megawatt, 0.7},
		{"(f) high discharge, 2.3 MW", 2.3 * units.Megawatt, 0.7},
	}
}

// Fig13Result bundles the Fig 13 charts with the Table III capping data
// derived from the same runs.
type Fig13Result struct {
	Charts   []*report.Chart
	TableIII *report.Table
}

// RunFig13 executes the six cases under the three algorithms (18 runs of the
// 316-rack MSB, executed by the parallel experiment runner) and renders
// Fig 13 plus Table III.
func RunFig13(seed int64) (*Fig13Result, error) {
	p1, p2, p3 := ProductionDistribution()
	cases := Fig13Cases()
	algs := Fig13Algorithms()
	specs := make([]CoordSpec, 0, len(cases)*len(algs))
	for _, cs := range cases {
		for _, alg := range algs {
			specs = append(specs, CoordSpec{
				NumP1: p1, NumP2: p2, NumP3: p3, Seed: seed,
				MSBLimit: cs.Limit, Mode: alg.Mode, LocalPolicy: alg.Policy, AvgDOD: cs.AvgDOD,
			})
		}
	}
	runs, err := runCoordinatedBatch(specs)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{
		TableIII: report.NewTable("Table III: maximum server power capping required",
			"Case", "Original charger", "Variable charger", "Priority-aware"),
	}
	for ci, cs := range cases {
		chart := report.NewChart("Fig 13 "+cs.Label+": MSB power use", "minutes from transition", "MW")
		limit := chart.AddSeries("power limit")
		row := []string{cs.Label}
		for ai, alg := range algs {
			run := runs[ci*len(algs)+ai]
			s := chart.AddSeries(alg.Name)
			for _, sm := range run.Samples {
				// Fig 13 plots the uncapped would-be draw for the breaker:
				// capped server power is added back so the overload the
				// algorithm avoided is visible, as in the paper's plots.
				s.Append(sm.T.Minutes(), (sm.Total + sm.Capped).MW())
			}
			m := run.Metrics
			row = append(row, fmt.Sprintf("%.0f kW (%.0f%%)", m.MaxCapping.KW(), float64(m.MaxCappingFraction)*100))
		}
		if len(chart.Series) > 1 {
			pts := chart.Series[1].Points
			if len(pts) > 0 {
				limit.Append(pts[0].X, cs.Limit.MW())
				limit.Append(pts[len(pts)-1].X, cs.Limit.MW())
			}
		}
		res.Charts = append(res.Charts, chart)
		res.TableIII.Add(row...)
	}
	return res, nil
}

// SweepSpec parameterises the Fig 14/15 power-limit sweeps.
type SweepSpec struct {
	// Label names the sweep in chart titles.
	Label string
	// NumP1, NumP2, NumP3 give the rack priority distribution.
	NumP1, NumP2, NumP3 int
	// AvgDOD is the discharge level.
	AvgDOD units.Fraction
	// Mode is the coordination policy to evaluate.
	Mode dynamo.Mode
	// Limits are the MSB power limits to sweep (default 2.6 down to 2.2 MW).
	Limits []units.Power
	// Seed drives trace synthesis.
	Seed int64
}

func defaultSweepLimits() []units.Power {
	var out []units.Power
	for mw := 2.6; mw >= 2.1999; mw -= 0.05 {
		out = append(out, units.Power(mw)*units.Megawatt)
	}
	return out
}

// sweepSpecs expands one sweep into its per-limit run specs, in limit order.
func sweepSpecs(spec SweepSpec) []CoordSpec {
	specs := make([]CoordSpec, len(spec.Limits))
	for k, limit := range spec.Limits {
		specs[k] = CoordSpec{
			NumP1: spec.NumP1, NumP2: spec.NumP2, NumP3: spec.NumP3, Seed: spec.Seed,
			MSBLimit: limit, Mode: spec.Mode, AvgDOD: spec.AvgDOD,
		}
	}
	return specs
}

// assembleSweep renders one sweep's chart from its per-limit runs (index
// aligned with sweepSpecs).
func assembleSweep(spec SweepSpec, runs []*CoordResult) *report.Chart {
	chart := report.NewChart(
		fmt.Sprintf("%s (%s): racks meeting charging-time SLA vs power limit", spec.Label, spec.Mode),
		"power limit (MW)", "racks meeting SLA")
	series := map[rack.Priority]*report.Series{
		rack.P1: chart.AddSeries("P1"),
		rack.P2: chart.AddSeries("P2"),
		rack.P3: chart.AddSeries("P3"),
	}
	total := chart.AddSeries("total")
	for k, limit := range spec.Limits {
		run := runs[k]
		sum := 0
		for p, s := range series {
			s.Append(limit.MW(), float64(run.SLAMet[p]))
			sum += run.SLAMet[p]
		}
		total.Append(limit.MW(), float64(sum))
	}
	return chart
}

// RunSweep evaluates racks-meeting-SLA (disaggregated by priority) across a
// power-limit sweep: one subplot of Fig 14 or Fig 15. The limits are
// independent experiments, so they run through the parallel experiment
// runner; output ordering stays deterministic.
func RunSweep(spec SweepSpec) (*report.Chart, error) {
	if len(spec.Limits) == 0 {
		spec.Limits = defaultSweepLimits()
	}
	runs, err := runCoordinatedBatch(sweepSpecs(spec))
	if err != nil {
		return nil, err
	}
	return assembleSweep(spec, runs), nil
}

// runSweeps executes several sweeps as one flat batch — parallel across
// subplots and limits alike — and renders one chart per sweep, in order.
func runSweeps(subplots []SweepSpec) ([]*report.Chart, error) {
	offsets := make([]int, len(subplots)+1)
	var specs []CoordSpec
	for i := range subplots {
		if len(subplots[i].Limits) == 0 {
			subplots[i].Limits = defaultSweepLimits()
		}
		specs = append(specs, sweepSpecs(subplots[i])...)
		offsets[i+1] = len(specs)
	}
	runs, err := runCoordinatedBatch(specs)
	if err != nil {
		return nil, err
	}
	out := make([]*report.Chart, len(subplots))
	for i := range subplots {
		out[i] = assembleSweep(subplots[i], runs[offsets[i]:offsets[i+1]])
	}
	return out, nil
}

// RunFig14 reproduces Fig 14: priority-aware versus global charging across
// the power-limit sweep, at medium and high battery discharge, with the
// production priority distribution.
func RunFig14(seed int64) ([]*report.Chart, error) {
	p1, p2, p3 := ProductionDistribution()
	subplots := []SweepSpec{
		{Label: "Fig 14(a) medium discharge", AvgDOD: 0.5, Mode: dynamo.ModePriorityAware},
		{Label: "Fig 14(b) medium discharge", AvgDOD: 0.5, Mode: dynamo.ModeGlobal},
		{Label: "Fig 14(c) high discharge", AvgDOD: 0.7, Mode: dynamo.ModePriorityAware},
		{Label: "Fig 14(d) high discharge", AvgDOD: 0.7, Mode: dynamo.ModeGlobal},
	}
	for i := range subplots {
		subplots[i].NumP1, subplots[i].NumP2, subplots[i].NumP3 = p1, p2, p3
		subplots[i].Seed = seed
	}
	return runSweeps(subplots)
}

// RunFig15 reproduces Fig 15: the same sweep at medium discharge for two
// alternative priority distributions — evenly distributed thirds and all
// racks P1.
func RunFig15(seed int64) ([]*report.Chart, error) {
	subplots := []SweepSpec{
		{Label: "Fig 15(a) even distribution", NumP1: 105, NumP2: 106, NumP3: 105, Mode: dynamo.ModePriorityAware},
		{Label: "Fig 15(b) even distribution", NumP1: 105, NumP2: 106, NumP3: 105, Mode: dynamo.ModeGlobal},
		{Label: "Fig 15(c) all P1", NumP1: 316, Mode: dynamo.ModePriorityAware},
		{Label: "Fig 15(d) all P1", NumP1: 316, Mode: dynamo.ModeGlobal},
	}
	for i := range subplots {
		subplots[i].AvgDOD = 0.5
		subplots[i].Seed = seed
	}
	return runSweeps(subplots)
}
