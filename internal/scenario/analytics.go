package scenario

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/core"
	"coordcharge/internal/rack"
	"coordcharge/internal/report"
	"coordcharge/internal/stats"
)

// ChargeDurationTable summarises the realized charge durations of a
// coordinated run per priority against the Table II deadlines: the
// operator's view of how much SLA margin a charging event left.
func ChargeDurationTable(res *CoordResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Realized charge durations (%s mode, %v limit, avg DOD %v)",
			res.Spec.Mode, res.Spec.MSBLimit, res.AvgDOD),
		"Priority", "Racks", "Mean", "P50", "P90", "P99", "Max", "Deadline", "Met")
	deadlines := core.DefaultDeadlines()
	fmtMin := func(m float64) string { return fmt.Sprintf("%.1f min", m) }
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		ds := res.ChargeDurations[p]
		if len(ds) == 0 {
			continue
		}
		s := stats.Summarize(durationsOf(ds))
		t.Add(p.String(),
			fmt.Sprintf("%d", s.Count),
			fmtMin(s.Mean), fmtMin(s.P50), fmtMin(s.P90), fmtMin(s.P99), fmtMin(s.Max),
			fmt.Sprintf("%.0f min", deadlines[p].Minutes()),
			fmt.Sprintf("%d/%d", res.SLAMet[p], res.Racks[p]))
	}
	return t
}

// ChargeDurationCDF renders the per-priority cumulative distribution of
// realized charge durations — the continuous view behind the SLA counts.
func ChargeDurationCDF(res *CoordResult) *report.Chart {
	c := report.NewChart(
		fmt.Sprintf("Charge-duration CDF (%s mode, %v limit)", res.Spec.Mode, res.Spec.MSBLimit),
		"minutes", "fraction of racks charged")
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		ds := res.ChargeDurations[p]
		if len(ds) == 0 {
			continue
		}
		mins := durationsOf(ds)
		sort.Float64s(mins)
		s := c.AddSeries(p.String())
		for i, m := range mins {
			s.Append(m, float64(i+1)/float64(len(mins)))
		}
	}
	return c
}

// DODHistogramTable buckets the realized depths of discharge of a run — a
// sanity check that the injected transition produced the intended spread.
func DODHistogramTable(res *CoordResult, bins int) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Depth-of-discharge distribution (target avg %v, realized %v)",
			res.Spec.AvgDOD, res.AvgDOD),
		"DOD range", "Racks")
	for _, b := range stats.Histogram(res.DODs, bins) {
		t.Add(fmt.Sprintf("%.0f%% - %.0f%%", b.Lo*100, b.Hi*100), fmt.Sprintf("%d", b.Count))
	}
	return t
}

// durationsOf converts a duration slice to minutes.
func durationsOf(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Minutes()
	}
	return out
}
