package scenario

import (
	"strings"
	"testing"
)

// Case II (§II-D): every MSB jumps by more than 20 % and, building-wide,
// thousands of servers are capped (the paper reports more than ten thousand
// across the full building).
func TestCaseIIShape(t *testing.T) {
	res, err := RunCaseII(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxIncrease < 0.20 {
		t.Errorf("max per-MSB increase = %v, want >20%%", res.MaxIncrease)
	}
	if res.MaxIncrease > 0.40 {
		t.Errorf("max per-MSB increase = %v, implausibly high", res.MaxIncrease)
	}
	// ~900+ servers per MSB at the observed ~180 kW capping.
	if res.ServersCapped < 3*500 {
		t.Errorf("servers capped = %d, want ≥1500 for 3 MSBs", res.ServersCapped)
	}
	if len(res.Table.Rows) != 4 { // 3 MSBs + TOTAL
		t.Errorf("table rows = %d, want 4", len(res.Table.Rows))
	}
	var sb strings.Builder
	if err := res.Table.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TOTAL") {
		t.Error("table missing TOTAL row")
	}
}

func TestCaseIIDefaultBuildingSize(t *testing.T) {
	// numMSB ≤ 0 selects the full 12-MSB building. Just validate the
	// default is applied through a tiny run (1 MSB requested explicitly
	// elsewhere; here check argument handling via the row count).
	res, err := RunCaseII(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Table.Rows))
	}
}
