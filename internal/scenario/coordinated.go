// Package scenario builds and runs the paper's experiments: the MSB-level
// coordinated-charging simulation (§V-B, Figs 12–15 and Table III), the
// production case studies and prototype replays (Figs 2, 7, 10, 11), and the
// charger- and reliability-level figure generators (Figs 3–6, 9, Tables I
// and II). Each experiment returns report tables/charts so cmd/ binaries and
// benchmarks share one implementation.
package scenario

import (
	"errors"
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/grid"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/storm"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// CoordSpec parameterises one MSB-level coordinated-charging run: the
// paper's §V-B1 setup of a production rack-power trace replayed at 3-second
// granularity with an open transition injected at the first trace peak.
type CoordSpec struct {
	// NumP1, NumP2, NumP3 give the rack priority distribution. The paper's
	// evaluation MSB has 89 P1, 142 P2, and 85 P3 racks.
	NumP1, NumP2, NumP3 int
	// Seed drives trace synthesis (and nothing else: the control plane is
	// deterministic).
	Seed int64
	// MSBLimit is the MSB breaker limit; the evaluation sweeps it (actual:
	// 2.5 MW).
	MSBLimit units.Power
	// Mode is the coordination policy.
	Mode dynamo.Mode
	// LocalPolicy is the rack-local charger (defaults to the variable
	// charger; the original-charger baseline uses charger.Original).
	LocalPolicy charger.Policy
	// AvgDOD is the target average depth of discharge; the open-transition
	// length is derived from it (low 0.3, medium 0.5, high 0.7 in §V-B1).
	AvgDOD units.Fraction
	// Step is the simulation tick (default 3 s, the trace granularity).
	Step time.Duration
	// Kernel selects the tick-loop implementation: KernelDense (the default,
	// also "") runs every tick; KernelEvent advances analytically between
	// state-change events, bit-identical to dense. Specs the event kernel
	// cannot prove bounds for silently run dense (see kernelEligible). The
	// choice never affects results, so it is excluded from the checkpoint
	// fingerprint — either kernel resumes the other's checkpoints.
	Kernel string
	// PreRoll is how long before the transition the run starts (default 2 min).
	PreRoll time.Duration
	// MaxChargeDuration caps the post-restore horizon (default 4 h).
	MaxChargeDuration time.Duration
	// SampleEvery is the output series sampling interval (default 30 s).
	SampleEvery time.Duration
	// CommandLatency delays override application (default 0; the prototype
	// measured ~20 s, Fig 11).
	CommandLatency time.Duration
	// RelaxLowerLevels lifts SB/RPP limits out of the way, matching the
	// paper's assumption that "all lower-level circuit breakers have enough
	// available power to charge the batteries". Default true.
	RelaxLowerLevels *bool
	// Trace overrides the synthetic generator with an external per-rack
	// power trace (e.g. a production trace imported through trace.ReadCSV).
	// Its rack count must equal NumP1+NumP2+NumP3.
	Trace trace.Source
	// Distributed runs the experiment on the message-passing control plane
	// (agents, leaf controllers, and an MSB controller exchanging messages
	// over a simulated network with NetworkLatency one-way delay) instead of
	// the synchronous controllers. CommandLatency becomes the agents'
	// command-settling time.
	Distributed bool
	// NetworkLatency is the distributed plane's one-way message delay
	// (default 10 ms).
	NetworkLatency time.Duration
	// Faults configures control-plane fault injection (lossy telemetry and
	// commands, crashing agents and controllers); the zero value disables it.
	// On the distributed plane the injector additionally perturbs the message
	// bus itself.
	Faults faults.Config
	// StaleAfter is the controllers' telemetry freshness bound; snapshots
	// older than this are handled conservatively (worst-case recharge). Zero
	// means telemetry never goes stale.
	StaleAfter time.Duration
	// Retry is the controllers' override retransmission policy; the zero
	// value disables retries.
	Retry dynamo.RetryPolicy
	// WatchdogTTL, when positive, arms every rack's local fail-safe watchdog
	// and has controllers emit heartbeats to feed it.
	WatchdogTTL time.Duration
	// OutageLen fixes the grid event's duration directly (a site-wide outage
	// of this length) instead of deriving the open-transition length from
	// AvgDOD. Racks ride through it on their batteries either way; OutageLen
	// is how storm experiments say "90 seconds of utility loss at peak".
	OutageLen time.Duration
	// Storm arms recharge-storm admission control at the planning controller:
	// a correlated burst of charging starts is paused into a queue and
	// re-admitted in priority-aware waves under measured breaker headroom.
	Storm *storm.Config
	// Guard arms a last-line breaker guard on every node: sustained overdraw
	// approaching the TripRule window sheds charging current (demote → pause,
	// reverse priority), capping servers only as a final resort. Guards act
	// through the server-management plane and keep running while controllers
	// are crashed.
	Guard *storm.GuardConfig
	// TripRule overrides every breaker's protection curve (default: the
	// power package's 30%-over-for-30s rule). Storm experiments tighten it
	// to make the trip hazard reachable at realistic rack loads.
	TripRule *power.TripRule
	// Grid attaches the grid signal plane: an interconnection-cap /
	// price / carbon schedule with droop, demand-response, and cap-shrink
	// events. The planning controller budgets against the effective feed
	// limit (min of breaker limit and cap), charge admission defers into
	// the storm queue while price/carbon is over threshold, and eligible
	// racks discharge deliberately to shave grid peaks. Arming Grid
	// auto-arms Storm with defaults when Storm is nil — grid deferral
	// needs the admission queue.
	Grid *grid.Spec
	// Obs attaches an observability sink to the whole run: controllers,
	// guards, admission queue, rack watchdogs, and the fault injector count
	// into its registry and journal to its flight recorder, and the run
	// updates fleet gauges (msb.*, charge.*) every tick. Nil disables
	// instrumentation.
	Obs *obs.Sink
	// StepHook, when non-nil, is called at the end of every simulation tick
	// with the current virtual time — after controllers, guards, and gauge
	// updates. coordsim's -serve mode uses it for wall-clock pacing; tests
	// use it to scrape the HTTP surface mid-run. It is suppressed while a
	// resume is replaying ticks it already ran.
	StepHook func(now time.Duration)
	// Checkpoint, when non-empty, writes a crash-safe checkpoint of the run
	// to this path (atomically: temp file + fsync + rename) every
	// CheckpointEvery of virtual time, so a killed process can resume
	// bit-exactly with Resume.
	Checkpoint string
	// CheckpointEvery is the virtual-time interval between checkpoint
	// writes. Defaults to 5 minutes when Checkpoint is set.
	CheckpointEvery time.Duration
	// Resume, when non-empty, restores the run from this checkpoint file
	// instead of starting fresh. The spec must describe the same experiment
	// the checkpoint was written from (verified by fingerprint); to get a
	// byte-identical flight digest the caller must supply a fresh Obs sink.
	Resume string
	// Interrupt, when non-nil, is polled before every tick; returning true
	// stops the run gracefully — a final checkpoint is written (when
	// Checkpoint is set) and the partial result returns with Interrupted
	// set. coordsim wires SIGTERM to this.
	Interrupt func() bool
	// HardStop, when non-nil, is polled before every tick; returning true
	// aborts the run abruptly — no final checkpoint, ErrAborted returned —
	// simulating a SIGKILL for the kill-and-resume chaos harness.
	HardStop func(now time.Duration) bool
}

func (s *CoordSpec) fillDefaults() error {
	if s.NumP1+s.NumP2+s.NumP3 <= 0 {
		return fmt.Errorf("scenario: no racks in spec")
	}
	if s.NumP1 < 0 || s.NumP2 < 0 || s.NumP3 < 0 {
		return fmt.Errorf("scenario: negative rack count")
	}
	if s.MSBLimit == 0 {
		s.MSBLimit = power.DefaultMSBLimit
	}
	if s.MSBLimit < 0 {
		return fmt.Errorf("scenario: negative MSB limit")
	}
	if s.LocalPolicy == nil {
		s.LocalPolicy = charger.Variable{}
	}
	if s.OutageLen < 0 {
		return fmt.Errorf("scenario: negative OutageLen")
	}
	if s.OutageLen == 0 && (s.AvgDOD <= 0 || s.AvgDOD > 1) {
		return fmt.Errorf("scenario: AvgDOD %v out of (0, 1]", s.AvgDOD)
	}
	if s.AvgDOD < 0 || s.AvgDOD > 1 {
		return fmt.Errorf("scenario: AvgDOD %v out of [0, 1]", s.AvgDOD)
	}
	if s.Step == 0 {
		s.Step = 3 * time.Second
	}
	if s.Step <= 0 {
		return fmt.Errorf("scenario: non-positive step")
	}
	switch s.Kernel {
	case "", KernelDense, KernelEvent:
	default:
		return fmt.Errorf("scenario: unknown kernel %q (want %q or %q)", s.Kernel, KernelDense, KernelEvent)
	}
	if s.PreRoll == 0 {
		s.PreRoll = 2 * time.Minute
	}
	if s.MaxChargeDuration == 0 {
		s.MaxChargeDuration = 4 * time.Hour
	}
	if s.SampleEvery == 0 {
		s.SampleEvery = 30 * time.Second
	}
	if s.RelaxLowerLevels == nil {
		t := true
		s.RelaxLowerLevels = &t
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	if s.StaleAfter < 0 || s.WatchdogTTL < 0 {
		return fmt.Errorf("scenario: negative StaleAfter or WatchdogTTL")
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("scenario: negative CheckpointEvery")
	}
	if s.CheckpointEvery > 0 && s.Checkpoint == "" {
		return fmt.Errorf("scenario: CheckpointEvery set without Checkpoint")
	}
	if s.Checkpoint != "" && s.CheckpointEvery == 0 {
		s.CheckpointEvery = 5 * time.Minute
	}
	if s.Grid != nil {
		if err := s.Grid.Validate(); err != nil {
			return err
		}
		if s.Storm == nil {
			// Grid deferral and shave-recovery pacing route through storm
			// admission; arm it with defaults when the caller didn't.
			def := storm.Default()
			s.Storm = &def
		}
	}
	return nil
}

// Sample is one point of the run's power time series.
type Sample struct {
	// T is the time relative to the open transition (negative = before).
	T time.Duration
	// Total is the MSB draw; IT and Recharge are its components.
	Total, IT, Recharge units.Power
	// Capped is the server power being capped away at this instant.
	Capped units.Power
	// Shaved is IT load being served from batteries instead of the grid by
	// the grid policy's peak shaving (zero unless Grid is armed).
	Shaved units.Power
	// GridCap is the interconnection cap in force at this instant (zero
	// when Grid is off or the spec sets no cap).
	GridCap units.Power
}

// CoordResult is the outcome of one coordinated run.
type CoordResult struct {
	Spec CoordSpec
	// TransitionLength is the injected open-transition duration.
	TransitionLength time.Duration
	// Samples is the MSB power time series (the Fig 13 data).
	Samples []Sample
	// PeakPower is the maximum MSB draw after the transition.
	PeakPower units.Power
	// Metrics aggregates control-plane actions; MaxCapping is Table III.
	Metrics dynamo.Metrics
	// SLAMet counts racks whose measured charge completed within their
	// priority's deadline; Racks counts the population (Figs 14/15).
	SLAMet, Racks map[rack.Priority]int
	// AvgDOD is the realised average depth of discharge.
	AvgDOD units.Fraction
	// ChargeDurations collects the realized charge duration of every rack
	// that completed, grouped by priority (analytics input).
	ChargeDurations map[rack.Priority][]time.Duration
	// DODs collects every rack's realized depth of discharge (fractions).
	DODs []float64
	// LastChargeDone is when the final rack finished, relative to the
	// transition; zero if charges were still running at the horizon.
	LastChargeDone time.Duration
	// Tripped lists breakers that tripped (empty in every paper scenario —
	// Dynamo protects them).
	Tripped []string
	// FaultCounters reports what the fault injector did (zero when fault
	// injection is disabled).
	FaultCounters faults.Counters
	// FailSafeActivations counts rack watchdog firings across the run.
	FailSafeActivations int
	// UnservedEnergy is IT energy the batteries could not carry during the
	// grid event (nonzero only when a pack ran to full depth of discharge).
	UnservedEnergy units.Energy
	// LoadDropEvents counts racks that dropped their IT load mid-outage.
	LoadDropEvents int
	// Storm reports admission-control activity (zero unless Spec.Storm).
	Storm storm.Metrics
	// Guard reports breaker-guard activity (zero unless Spec.Guard).
	Guard storm.GuardMetrics
	// Grid reports grid-policy activity and the run's grid-facing
	// integrals — energy drawn, cost, carbon, shave accounting, and the
	// interconnection-cap violation score (zero unless Spec.Grid).
	Grid grid.Metrics
	// Interrupted marks a run stopped early by Spec.Interrupt: the fields
	// above are partial, and a final checkpoint (when configured) holds the
	// state to resume from.
	Interrupted bool
	// KernelTicksExecuted and KernelTicksSkipped report the event kernel's
	// tick accounting: how many grid ticks ran the full dense body and how
	// many were skipped under the analytic bounds. Both are zero on the
	// dense kernel (and on event-kernel specs that fell back to dense).
	KernelTicksExecuted, KernelTicksSkipped uint64
}

// ErrAborted is returned by RunCoordinated when Spec.HardStop fires: the run
// stopped mid-tick-loop without writing a final checkpoint, exactly as a
// killed process would.
var ErrAborted = errors.New("scenario: run aborted")

// RunCoordinated executes one MSB-level experiment. With Spec.Resume set it
// restores a checkpointed run and continues it bit-exactly instead of
// starting fresh.
func RunCoordinated(spec CoordSpec) (*CoordResult, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	cr, err := newCoordRun(spec)
	if err != nil {
		return nil, err
	}
	if spec.Resume != "" {
		if err := cr.restore(spec.Resume); err != nil {
			return nil, err
		}
	}
	return cr.run()
}

// coordRun is one coordinated run's full live state: the fleet and control
// plane built from the spec, the schedule, the tick loop's working buffers,
// and the in-progress result. Splitting construction (newCoordRun), the tick
// body (tick), and the result tail (finish) out of one function is what lets
// a checkpoint restore drop into the middle of the run — either by restoring
// state directly (engine-free runs) or by deterministically replaying ticks
// up to the checkpoint (engine-backed runs, whose event closures cannot be
// serialized).
type coordRun struct {
	spec CoordSpec
	n    int
	gen  trace.Source

	racks  []*rack.Rack
	msb    *power.Node
	engine *sim.Engine
	inj    *faults.Injector
	cfg    core.Config

	hier        *dynamo.Hierarchy
	asyncLeaves []*dynamo.AsyncLeaf
	asyncUpper  *dynamo.AsyncUpper
	guards      []*storm.Guard // async plane only; the Hierarchy owns its own
	gridPol     *grid.Policy   // nil unless Spec.Grid

	transLen                          time.Duration
	start, loseAt, restoreAt, horizon time.Duration
	deadlines                         map[rack.Priority]time.Duration

	res    *CoordResult
	gauges *runGauges

	nodes          []*power.Node
	trippedSeen    []bool
	outstanding    []bool
	numOutstanding int

	demand               []units.Power
	blockStart, blockEnd time.Duration
	lastSample           time.Duration

	outageFired, restoreFired bool

	// cursor is the virtual time of the next tick to execute; a restore
	// moves it to the checkpoint's resume point. nextCkpt is the next
	// checkpoint-write time; replaying suppresses StepHook, the run hooks,
	// and checkpoint writes while a resume re-executes ticks it already ran.
	cursor    time.Duration
	nextCkpt  time.Duration
	replaying bool

	// kern is the event-driven kernel, non-nil only when the spec selects
	// it and is eligible; run() dispatches to it instead of the dense loop.
	kern *eventKernel
}

// traceSource builds the run's per-rack demand source: the spec's external
// trace when one is set, otherwise the scaled synthetic generator.
func traceSource(spec *CoordSpec, n int) (trace.Source, error) {
	if spec.Trace != nil {
		if spec.Trace.NumRacks() != n {
			return nil, fmt.Errorf("scenario: trace has %d racks, spec needs %d", spec.Trace.NumRacks(), n)
		}
		return spec.Trace, nil
	}
	// The Fig 12 envelope (1.9-2.1 MW) describes the 316-rack production
	// MSB; smaller test populations scale it proportionally so per-rack
	// loads stay realistic.
	scale := float64(n) / 316
	g, err := trace.NewGenerator(trace.Spec{
		NumRacks:    n,
		Seed:        spec.Seed,
		TroughPower: units.Power(1.9e6 * scale),
		PeakPower:   units.Power(2.1e6 * scale),
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// newCoordRun builds the fleet, power hierarchy, and control plane from the
// spec (which must have defaults filled) and computes the event schedule.
func newCoordRun(spec CoordSpec) (*coordRun, error) {
	n := spec.NumP1 + spec.NumP2 + spec.NumP3
	gen, err := traceSource(&spec, n)
	if err != nil {
		return nil, err
	}
	surface := battery.Fig5Surface()
	racks := make([]*rack.Rack, n)
	loads := make([]power.Load, n)
	prio := func(i int) rack.Priority {
		switch {
		case i < spec.NumP1:
			return rack.P1
		case i < spec.NumP1+spec.NumP2:
			return rack.P2
		default:
			return rack.P3
		}
	}
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("rack%03d", i), prio(i), spec.LocalPolicy, surface)
		loads[i] = racks[i]
	}
	msb, err := power.Build(power.Spec{Name: "msb", MSBLimit: spec.MSBLimit}, loads)
	if err != nil {
		return nil, err
	}
	if *spec.RelaxLowerLevels {
		msb.Walk(func(nd *power.Node) {
			if nd != msb {
				nd.SetLimit(100 * units.Megawatt)
			}
		})
	}
	if spec.TripRule != nil {
		msb.Walk(func(nd *power.Node) { nd.SetTripRule(*spec.TripRule) })
	}
	var engine *sim.Engine
	if spec.CommandLatency > 0 || spec.Distributed {
		engine = sim.NewEngine()
	}
	var inj *faults.Injector
	if spec.Faults.Enabled() {
		inj = faults.New(spec.Faults)
		if spec.Obs != nil {
			inj.SetObs(spec.Obs)
		}
	}
	cfg := core.DefaultConfig()
	var gridPol *grid.Policy
	if spec.Grid != nil {
		gridPol, err = grid.NewPolicy(spec.Grid)
		if err != nil {
			return nil, err
		}
		if spec.Obs != nil {
			gridPol.SetObs(spec.Obs)
		}
	}
	var hier *dynamo.Hierarchy
	var asyncLeaves []*dynamo.AsyncLeaf
	var asyncUpper *dynamo.AsyncUpper
	var guards []*storm.Guard // async plane only; the Hierarchy owns its own
	if spec.Distributed {
		netLatency := spec.NetworkLatency
		if netLatency == 0 {
			netLatency = 10 * time.Millisecond
		}
		fabric := bus.New(engine, bus.ConstantLatency(netLatency))
		if inj != nil {
			dynamo.WireBusFaults(fabric, inj)
		}
		for _, r := range racks {
			a := dynamo.NewAsyncAgent(fabric, engine, r, spec.CommandLatency)
			if inj != nil {
				a.SetFaults(inj)
			}
			if spec.WatchdogTTL > 0 {
				r.SetWatchdog(spec.WatchdogTTL, cfg.SafeCurrent())
			}
			if spec.Obs != nil {
				r.SetObs(spec.Obs)
			}
		}
		opts := dynamo.AsyncOptions{
			Injector:   inj,
			StaleAfter: spec.StaleAfter,
			Retry:      spec.Retry,
			Heartbeat:  spec.WatchdogTTL > 0,
			Storm:      spec.Storm,
			Obs:        spec.Obs,
			Grid:       gridPol,
		}
		msb.Walk(func(nd *power.Node) {
			if nd.Level() != power.LevelRPP {
				return
			}
			var leafRacks []*rack.Rack
			for _, l := range nd.Loads() {
				leafRacks = append(leafRacks, l.(*rack.Rack))
			}
			// Leaves monitor and execute; the MSB controller plans.
			asyncLeaves = append(asyncLeaves,
				dynamo.NewAsyncLeafOpts(fabric, engine, nd, leafRacks, spec.Mode, cfg, false, spec.Step, opts))
		})
		asyncUpper = dynamo.NewAsyncUpperOpts(fabric, engine, msb, asyncLeaves, spec.Mode, cfg, spec.Step, opts)
		if spec.Guard != nil {
			// The async plane has no Hierarchy to own guards; build them
			// directly. They act over rack handles (the server-management
			// plane), so they need no bus endpoints.
			queue := asyncUpper.StormQueue()
			msb.Walk(func(nd *power.Node) {
				var rs []*rack.Rack
				for _, l := range nd.RackLoads() {
					rs = append(rs, l.(*rack.Rack))
				}
				g := storm.NewGuard(nd, rs, cfg, *spec.Guard)
				if queue != nil {
					g.AttachQueue(queue)
				}
				if gridPol != nil && nd == msb {
					// The interconnection cap constrains the site feed:
					// only the MSB guard sheds against it.
					g.SetCapacity(gridPol.CapAt)
				}
				if spec.Obs != nil {
					g.SetObs(spec.Obs)
				}
				guards = append(guards, g)
			})
		}
	} else {
		hier, err = dynamo.BuildHierarchyOpts(msb, spec.Mode, cfg, dynamo.HierarchyOptions{
			Engine:      engine,
			Latency:     spec.CommandLatency,
			Injector:    inj,
			StaleAfter:  spec.StaleAfter,
			Retry:       spec.Retry,
			WatchdogTTL: spec.WatchdogTTL,
			Storm:       spec.Storm,
			Guard:       spec.Guard,
			Obs:         spec.Obs,
			Grid:        gridPol,
		})
		if err != nil {
			return nil, err
		}
	}
	if gridPol != nil {
		var queue *storm.Queue
		if hier != nil {
			queue = hier.StormQueue()
		} else {
			queue = asyncUpper.StormQueue()
		}
		if err := gridPol.Bind(msb, racks, queue, cfg); err != nil {
			return nil, err
		}
	}

	// The grid event hits at the first trace peak, where available power is
	// most constrained (§V-B1). Its length is the specified outage duration,
	// or is derived from the target DOD at the aggregate load of that moment.
	peakT := trace.FirstPeak(gen, 24*time.Hour, time.Minute)
	transLen := spec.OutageLen
	if transLen == 0 {
		avgLoad := float64(trace.Aggregate(gen, peakT)) / float64(n)
		transLen = time.Duration(float64(spec.AvgDOD) * battery.RackFullEnergy / avgLoad * float64(time.Second))
	}
	transLen = transLen.Round(spec.Step)
	if transLen < spec.Step {
		transLen = spec.Step
	}

	res := &CoordResult{
		Spec:             spec,
		TransitionLength: transLen,
		SLAMet:           map[rack.Priority]int{},
		Racks:            map[rack.Priority]int{},
		ChargeDurations:  map[rack.Priority][]time.Duration{},
	}
	for _, r := range racks {
		res.Racks[r.Priority()]++
	}

	start := peakT - spec.PreRoll
	if engine != nil && start > 0 {
		// Pre-advance the engine clock to the window start.
		engine.ScheduleAt(start, "start", func(time.Duration) {})
		engine.Run(start)
	}

	cr := &coordRun{
		spec:        spec,
		n:           n,
		gen:         gen,
		racks:       racks,
		msb:         msb,
		engine:      engine,
		inj:         inj,
		cfg:         cfg,
		hier:        hier,
		asyncLeaves: asyncLeaves,
		asyncUpper:  asyncUpper,
		guards:      guards,
		gridPol:     gridPol,
		transLen:    transLen,
		start:       start,
		loseAt:      peakT,
		restoreAt:   peakT + transLen,
		horizon:     peakT + transLen + spec.MaxChargeDuration,
		deadlines:   core.DefaultDeadlines(),
		res:         res,
	}
	if spec.Obs != nil {
		cr.gauges = newRunGauges(spec.Obs)
	}
	// Steady-state buffers, sized once: the output series gets its full
	// capacity up front, the per-rack DOD sink is reused on (re)fill, and the
	// trip scan walks a prebuilt node slice instead of re-walking the tree
	// (and allocating a closure plus a seen-map) every tick.
	res.Samples = make([]Sample, 0, trace.NumFrames(start, cr.horizon, spec.SampleEvery)+1)
	res.DODs = make([]float64, 0, n)
	msb.Walk(func(nd *power.Node) { cr.nodes = append(cr.nodes, nd) })
	cr.trippedSeen = make([]bool, len(cr.nodes))
	// Outstanding-charge tracking for the end-of-run check: a per-rack bit
	// plus a running count, updated on observed state transitions instead of
	// re-scanning the fleet from scratch. A postponed or storm-queued charge
	// (pending DOD) is still outstanding work: the run must not end while
	// the admission queue drains.
	cr.outstanding = make([]bool, n)
	// Demand frames are precomputed in blocks: each refill amortises the
	// trace's per-tick work (time decomposition, diurnal/swing terms) across
	// the whole rack population, and the slab is reused block over block.
	cr.blockStart, cr.blockEnd = start, start-spec.Step // before start: refill on first tick
	cr.lastSample = time.Duration(-1 << 62)
	cr.cursor = start
	cr.nextCkpt = start + spec.CheckpointEvery
	if spec.Kernel == KernelEvent && kernelEligible(&spec) {
		// The kernel's demand envelope needs the synthetic generator's
		// analytic rate bound; any other trace source runs dense.
		if g, ok := gen.(*trace.Generator); ok {
			cr.kern = newEventKernel(cr, g)
		}
	}
	return cr, nil
}

// tick executes one simulation step at virtual time now and reports whether
// the run's early-exit condition was reached. It is the loop body of both a
// live run and a resume's deterministic replay.
func (cr *coordRun) tick(now time.Duration) (done bool) {
	spec, res := &cr.spec, cr.res
	if now > cr.blockEnd {
		const demandBlock = 256
		to := now + (demandBlock-1)*spec.Step
		if to > cr.horizon {
			to = cr.horizon
		}
		cr.demand = trace.Frames(cr.gen, cr.demand, now, to, spec.Step)
		cr.blockStart, cr.blockEnd = now, to
	}
	frame := cr.demand[int((now-cr.blockStart)/spec.Step)*cr.n:]
	for i, r := range cr.racks {
		r.SetDemand(frame[i])
	}
	// The transition fires on the first tick at or past its scheduled
	// time (latched, not ==): a Step that does not divide PreRoll walks
	// right past the exact loseAt instant. transLen is Step-aligned, so
	// the restore keeps the full outage length on the same grid.
	if !cr.outageFired && now >= cr.loseAt {
		cr.outageFired = true
		// An MSB-level open transition: the breaker leaves the critical
		// power path and every rack beneath falls back to batteries.
		cr.msb.Deenergize(now)
		if spec.Obs != nil {
			spec.Obs.Event(now, "scenario", "outage")
		}
	}
	if cr.outageFired && !cr.restoreFired && now >= cr.restoreAt {
		cr.restoreFired = true
		cr.msb.Reenergize(now)
		var sum float64
		res.DODs = res.DODs[:0]
		for _, r := range cr.racks {
			sum += float64(r.LastDOD())
			res.DODs = append(res.DODs, float64(r.LastDOD()))
		}
		res.AvgDOD = units.Fraction(sum / float64(cr.n))
		if spec.Obs != nil {
			spec.Obs.Event(now, "scenario", "restore",
				"avg_dod", fmt.Sprintf("%.3f", float64(res.AvgDOD)))
		}
	}
	for _, r := range cr.racks {
		r.Step(now, spec.Step)
	}
	if cr.engine != nil {
		cr.engine.Run(now)
	}
	// The grid policy ticks after the engine (so it re-measures draw the
	// async plane's just-landed commands produced, and its cap enforcement
	// acts within the tick) and before the sync hierarchy (whose planning
	// budgets already derive from the effective limit).
	if cr.gridPol != nil {
		cr.gridPol.Tick(now)
	}
	if cr.hier != nil {
		cr.hier.Tick(now)
	}
	for _, g := range cr.guards {
		g.Tick(now)
	}
	if cr.gridPol != nil {
		// Score and integrate after every actor has moved: violation ticks
		// mean no control loop kept the feed under the cap this tick.
		cr.gridPol.Account(now, spec.Step)
	}
	for i, nd := range cr.nodes {
		if nd.Tripped() && !cr.trippedSeen[i] {
			cr.trippedSeen[i] = true
			res.Tripped = append(res.Tripped, nd.Name())
			if spec.Obs != nil {
				spec.Obs.Event(now, "scenario", "trip", "node", nd.Name())
			}
		}
	}
	// One bookkeeping pass over the fleet: maintain the outstanding set
	// by transition, and accumulate the sample sums only on sample ticks.
	sampling := now-cr.lastSample >= spec.SampleEvery
	var it, rech, capped units.Power
	for i, r := range cr.racks {
		if out := r.Charging() || r.PendingDOD() > 0; out != cr.outstanding[i] {
			cr.outstanding[i] = out
			if out {
				cr.numOutstanding++
			} else {
				cr.numOutstanding--
			}
		}
		if sampling {
			if r.InputUp() {
				it += r.ITLoad()
				rech += r.RechargePower()
			}
			capped += r.CappedPower()
		}
	}
	if cr.gauges != nil {
		cr.gauges.update(now, cr.msb, cr.racks)
	}
	if sampling {
		cr.lastSample = now
		s := Sample{
			T: now - cr.loseAt, Total: it + rech, IT: it, Recharge: rech, Capped: capped,
		}
		if cr.gridPol != nil {
			s.Shaved = cr.gridPol.ShavedPower()
			s.GridCap = cr.gridPol.CapAt(now)
		}
		res.Samples = append(res.Samples, s)
	}
	if now > cr.restoreAt {
		if p := cr.msb.Power(); p > res.PeakPower {
			res.PeakPower = p
		}
	}
	if spec.StepHook != nil && !cr.replaying {
		spec.StepHook(now)
	}

	if now > cr.restoreAt {
		if cr.numOutstanding == 0 {
			// Latch the completion time as soon as the fleet drains; a
			// still-pending grid schedule (an unfired event, an open shave
			// window) only delays *termination*, so a recharge that drains
			// before a later cap-restore edge reports its true finish, not
			// the edge.
			if res.LastChargeDone == 0 {
				res.LastChargeDone = now - cr.loseAt
			}
			if (cr.gridPol == nil || !cr.gridPol.Busy(now)) &&
				now >= cr.restoreAt+5*time.Minute && now-cr.loseAt >= res.LastChargeDone+2*time.Minute {
				return true
			}
		} else {
			res.LastChargeDone = 0
		}
	}
	return false
}

// run drives the tick loop from the cursor to completion, servicing the
// Interrupt/HardStop hooks and the checkpoint cadence between ticks, then
// computes the result tail.
func (cr *coordRun) run() (*CoordResult, error) {
	if cr.kern != nil {
		return cr.kern.run()
	}
	spec := &cr.spec
	for now := cr.cursor; now <= cr.horizon; now += spec.Step {
		if spec.HardStop != nil && spec.HardStop(now) {
			return nil, ErrAborted
		}
		if spec.Interrupt != nil && spec.Interrupt() {
			if spec.Checkpoint != "" {
				// The tick at now has not run yet; the resume re-enters the
				// loop exactly here.
				if err := cr.writeCheckpoint(now); err != nil {
					return nil, err
				}
			}
			cr.res.Interrupted = true
			return cr.res, nil
		}
		done := cr.tick(now)
		if done {
			break
		}
		if spec.Checkpoint != "" && now >= cr.nextCkpt {
			if err := cr.writeCheckpoint(now + spec.Step); err != nil {
				return nil, err
			}
			cr.nextCkpt = now + spec.CheckpointEvery
		}
	}
	cr.finish()
	return cr.res, nil
}

// finish aggregates the control-plane metrics and per-rack SLA accounting
// into the result.
func (cr *coordRun) finish() {
	res := cr.res
	if cr.hier != nil {
		res.Metrics = cr.hier.TotalMetrics()
		if q := cr.hier.StormQueue(); q != nil {
			res.Storm = q.Metrics()
		}
		res.Guard = cr.hier.TotalGuardMetrics()
	} else {
		m := cr.asyncUpper.Metrics()
		for _, l := range cr.asyncLeaves {
			lm := l.Metrics()
			if lm.MaxCapping > m.MaxCapping {
				m.MaxCapping = lm.MaxCapping
			}
			m.OverridesIssued += lm.OverridesIssued
			m.ThrottleEvents += lm.ThrottleEvents
			m.PlansComputed += lm.PlansComputed
			m.Retries += lm.Retries
			m.AbandonedOverrides += lm.AbandonedOverrides
			m.StaleTelemetry += lm.StaleTelemetry
			m.Crashes += lm.Crashes
			m.Restarts += lm.Restarts
		}
		res.Metrics = m
		if q := cr.asyncUpper.StormQueue(); q != nil {
			res.Storm = q.Metrics()
		}
		res.Guard = storm.TotalGuardMetrics(cr.guards)
	}
	if cr.gridPol != nil {
		res.Grid = cr.gridPol.Metrics()
	}
	if cr.inj != nil {
		res.FaultCounters = cr.inj.Counters()
	}
	for _, r := range cr.racks {
		res.FailSafeActivations += r.FailSafeActivations()
		res.UnservedEnergy += r.UnservedEnergy()
		res.LoadDropEvents += r.LoadDropEvents()
	}
	endNow := cr.horizon
	for _, r := range cr.racks {
		d, done := r.ChargeDuration(endNow)
		met := false
		if r.LastDOD() <= 0 {
			met = true // nothing to charge
		} else if done && d <= cr.deadlines[r.Priority()] {
			met = true
		}
		if done {
			res.ChargeDurations[r.Priority()] = append(res.ChargeDurations[r.Priority()], d)
		}
		if met {
			res.SLAMet[r.Priority()]++
		}
	}
}

// ProductionDistribution returns the paper's evaluation MSB rack counts.
func ProductionDistribution() (p1, p2, p3 int) { return 89, 142, 85 }
