// Package scenario builds and runs the paper's experiments: the MSB-level
// coordinated-charging simulation (§V-B, Figs 12–15 and Table III), the
// production case studies and prototype replays (Figs 2, 7, 10, 11), and the
// charger- and reliability-level figure generators (Figs 3–6, 9, Tables I
// and II). Each experiment returns report tables/charts so cmd/ binaries and
// benchmarks share one implementation.
package scenario

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/bus"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/storm"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// CoordSpec parameterises one MSB-level coordinated-charging run: the
// paper's §V-B1 setup of a production rack-power trace replayed at 3-second
// granularity with an open transition injected at the first trace peak.
type CoordSpec struct {
	// NumP1, NumP2, NumP3 give the rack priority distribution. The paper's
	// evaluation MSB has 89 P1, 142 P2, and 85 P3 racks.
	NumP1, NumP2, NumP3 int
	// Seed drives trace synthesis (and nothing else: the control plane is
	// deterministic).
	Seed int64
	// MSBLimit is the MSB breaker limit; the evaluation sweeps it (actual:
	// 2.5 MW).
	MSBLimit units.Power
	// Mode is the coordination policy.
	Mode dynamo.Mode
	// LocalPolicy is the rack-local charger (defaults to the variable
	// charger; the original-charger baseline uses charger.Original).
	LocalPolicy charger.Policy
	// AvgDOD is the target average depth of discharge; the open-transition
	// length is derived from it (low 0.3, medium 0.5, high 0.7 in §V-B1).
	AvgDOD units.Fraction
	// Step is the simulation tick (default 3 s, the trace granularity).
	Step time.Duration
	// PreRoll is how long before the transition the run starts (default 2 min).
	PreRoll time.Duration
	// MaxChargeDuration caps the post-restore horizon (default 4 h).
	MaxChargeDuration time.Duration
	// SampleEvery is the output series sampling interval (default 30 s).
	SampleEvery time.Duration
	// CommandLatency delays override application (default 0; the prototype
	// measured ~20 s, Fig 11).
	CommandLatency time.Duration
	// RelaxLowerLevels lifts SB/RPP limits out of the way, matching the
	// paper's assumption that "all lower-level circuit breakers have enough
	// available power to charge the batteries". Default true.
	RelaxLowerLevels *bool
	// Trace overrides the synthetic generator with an external per-rack
	// power trace (e.g. a production trace imported through trace.ReadCSV).
	// Its rack count must equal NumP1+NumP2+NumP3.
	Trace trace.Source
	// Distributed runs the experiment on the message-passing control plane
	// (agents, leaf controllers, and an MSB controller exchanging messages
	// over a simulated network with NetworkLatency one-way delay) instead of
	// the synchronous controllers. CommandLatency becomes the agents'
	// command-settling time.
	Distributed bool
	// NetworkLatency is the distributed plane's one-way message delay
	// (default 10 ms).
	NetworkLatency time.Duration
	// Faults configures control-plane fault injection (lossy telemetry and
	// commands, crashing agents and controllers); the zero value disables it.
	// On the distributed plane the injector additionally perturbs the message
	// bus itself.
	Faults faults.Config
	// StaleAfter is the controllers' telemetry freshness bound; snapshots
	// older than this are handled conservatively (worst-case recharge). Zero
	// means telemetry never goes stale.
	StaleAfter time.Duration
	// Retry is the controllers' override retransmission policy; the zero
	// value disables retries.
	Retry dynamo.RetryPolicy
	// WatchdogTTL, when positive, arms every rack's local fail-safe watchdog
	// and has controllers emit heartbeats to feed it.
	WatchdogTTL time.Duration
	// OutageLen fixes the grid event's duration directly (a site-wide outage
	// of this length) instead of deriving the open-transition length from
	// AvgDOD. Racks ride through it on their batteries either way; OutageLen
	// is how storm experiments say "90 seconds of utility loss at peak".
	OutageLen time.Duration
	// Storm arms recharge-storm admission control at the planning controller:
	// a correlated burst of charging starts is paused into a queue and
	// re-admitted in priority-aware waves under measured breaker headroom.
	Storm *storm.Config
	// Guard arms a last-line breaker guard on every node: sustained overdraw
	// approaching the TripRule window sheds charging current (demote → pause,
	// reverse priority), capping servers only as a final resort. Guards act
	// through the server-management plane and keep running while controllers
	// are crashed.
	Guard *storm.GuardConfig
	// TripRule overrides every breaker's protection curve (default: the
	// power package's 30%-over-for-30s rule). Storm experiments tighten it
	// to make the trip hazard reachable at realistic rack loads.
	TripRule *power.TripRule
	// Obs attaches an observability sink to the whole run: controllers,
	// guards, admission queue, rack watchdogs, and the fault injector count
	// into its registry and journal to its flight recorder, and the run
	// updates fleet gauges (msb.*, charge.*) every tick. Nil disables
	// instrumentation.
	Obs *obs.Sink
	// StepHook, when non-nil, is called at the end of every simulation tick
	// with the current virtual time — after controllers, guards, and gauge
	// updates. coordsim's -serve mode uses it for wall-clock pacing; tests
	// use it to scrape the HTTP surface mid-run.
	StepHook func(now time.Duration)
}

func (s *CoordSpec) fillDefaults() error {
	if s.NumP1+s.NumP2+s.NumP3 <= 0 {
		return fmt.Errorf("scenario: no racks in spec")
	}
	if s.NumP1 < 0 || s.NumP2 < 0 || s.NumP3 < 0 {
		return fmt.Errorf("scenario: negative rack count")
	}
	if s.MSBLimit == 0 {
		s.MSBLimit = power.DefaultMSBLimit
	}
	if s.MSBLimit < 0 {
		return fmt.Errorf("scenario: negative MSB limit")
	}
	if s.LocalPolicy == nil {
		s.LocalPolicy = charger.Variable{}
	}
	if s.OutageLen < 0 {
		return fmt.Errorf("scenario: negative OutageLen")
	}
	if s.OutageLen == 0 && (s.AvgDOD <= 0 || s.AvgDOD > 1) {
		return fmt.Errorf("scenario: AvgDOD %v out of (0, 1]", s.AvgDOD)
	}
	if s.AvgDOD < 0 || s.AvgDOD > 1 {
		return fmt.Errorf("scenario: AvgDOD %v out of [0, 1]", s.AvgDOD)
	}
	if s.Step == 0 {
		s.Step = 3 * time.Second
	}
	if s.Step <= 0 {
		return fmt.Errorf("scenario: non-positive step")
	}
	if s.PreRoll == 0 {
		s.PreRoll = 2 * time.Minute
	}
	if s.MaxChargeDuration == 0 {
		s.MaxChargeDuration = 4 * time.Hour
	}
	if s.SampleEvery == 0 {
		s.SampleEvery = 30 * time.Second
	}
	if s.RelaxLowerLevels == nil {
		t := true
		s.RelaxLowerLevels = &t
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	if s.StaleAfter < 0 || s.WatchdogTTL < 0 {
		return fmt.Errorf("scenario: negative StaleAfter or WatchdogTTL")
	}
	return nil
}

// Sample is one point of the run's power time series.
type Sample struct {
	// T is the time relative to the open transition (negative = before).
	T time.Duration
	// Total is the MSB draw; IT and Recharge are its components.
	Total, IT, Recharge units.Power
	// Capped is the server power being capped away at this instant.
	Capped units.Power
}

// CoordResult is the outcome of one coordinated run.
type CoordResult struct {
	Spec CoordSpec
	// TransitionLength is the injected open-transition duration.
	TransitionLength time.Duration
	// Samples is the MSB power time series (the Fig 13 data).
	Samples []Sample
	// PeakPower is the maximum MSB draw after the transition.
	PeakPower units.Power
	// Metrics aggregates control-plane actions; MaxCapping is Table III.
	Metrics dynamo.Metrics
	// SLAMet counts racks whose measured charge completed within their
	// priority's deadline; Racks counts the population (Figs 14/15).
	SLAMet, Racks map[rack.Priority]int
	// AvgDOD is the realised average depth of discharge.
	AvgDOD units.Fraction
	// ChargeDurations collects the realized charge duration of every rack
	// that completed, grouped by priority (analytics input).
	ChargeDurations map[rack.Priority][]time.Duration
	// DODs collects every rack's realized depth of discharge (fractions).
	DODs []float64
	// LastChargeDone is when the final rack finished, relative to the
	// transition; zero if charges were still running at the horizon.
	LastChargeDone time.Duration
	// Tripped lists breakers that tripped (empty in every paper scenario —
	// Dynamo protects them).
	Tripped []string
	// FaultCounters reports what the fault injector did (zero when fault
	// injection is disabled).
	FaultCounters faults.Counters
	// FailSafeActivations counts rack watchdog firings across the run.
	FailSafeActivations int
	// UnservedEnergy is IT energy the batteries could not carry during the
	// grid event (nonzero only when a pack ran to full depth of discharge).
	UnservedEnergy units.Energy
	// LoadDropEvents counts racks that dropped their IT load mid-outage.
	LoadDropEvents int
	// Storm reports admission-control activity (zero unless Spec.Storm).
	Storm storm.Metrics
	// Guard reports breaker-guard activity (zero unless Spec.Guard).
	Guard storm.GuardMetrics
}

// RunCoordinated executes one MSB-level experiment.
func RunCoordinated(spec CoordSpec) (*CoordResult, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	n := spec.NumP1 + spec.NumP2 + spec.NumP3
	var gen trace.Source
	if spec.Trace != nil {
		if spec.Trace.NumRacks() != n {
			return nil, fmt.Errorf("scenario: trace has %d racks, spec needs %d", spec.Trace.NumRacks(), n)
		}
		gen = spec.Trace
	} else {
		// The Fig 12 envelope (1.9-2.1 MW) describes the 316-rack production
		// MSB; smaller test populations scale it proportionally so per-rack
		// loads stay realistic.
		scale := float64(n) / 316
		g, err := trace.NewGenerator(trace.Spec{
			NumRacks:    n,
			Seed:        spec.Seed,
			TroughPower: units.Power(1.9e6 * scale),
			PeakPower:   units.Power(2.1e6 * scale),
		})
		if err != nil {
			return nil, err
		}
		gen = g
	}
	surface := battery.Fig5Surface()
	racks := make([]*rack.Rack, n)
	loads := make([]power.Load, n)
	prio := func(i int) rack.Priority {
		switch {
		case i < spec.NumP1:
			return rack.P1
		case i < spec.NumP1+spec.NumP2:
			return rack.P2
		default:
			return rack.P3
		}
	}
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("rack%03d", i), prio(i), spec.LocalPolicy, surface)
		loads[i] = racks[i]
	}
	msb, err := power.Build(power.Spec{Name: "msb", MSBLimit: spec.MSBLimit}, loads)
	if err != nil {
		return nil, err
	}
	if *spec.RelaxLowerLevels {
		msb.Walk(func(nd *power.Node) {
			if nd != msb {
				nd.SetLimit(100 * units.Megawatt)
			}
		})
	}
	if spec.TripRule != nil {
		msb.Walk(func(nd *power.Node) { nd.SetTripRule(*spec.TripRule) })
	}
	var engine *sim.Engine
	if spec.CommandLatency > 0 || spec.Distributed {
		engine = sim.NewEngine()
	}
	var inj *faults.Injector
	if spec.Faults.Enabled() {
		inj = faults.New(spec.Faults)
		if spec.Obs != nil {
			inj.SetObs(spec.Obs)
		}
	}
	cfg := core.DefaultConfig()
	var hier *dynamo.Hierarchy
	var asyncLeaves []*dynamo.AsyncLeaf
	var asyncUpper *dynamo.AsyncUpper
	var guards []*storm.Guard // async plane only; the Hierarchy owns its own
	if spec.Distributed {
		netLatency := spec.NetworkLatency
		if netLatency == 0 {
			netLatency = 10 * time.Millisecond
		}
		fabric := bus.New(engine, bus.ConstantLatency(netLatency))
		if inj != nil {
			dynamo.WireBusFaults(fabric, inj)
		}
		for _, r := range racks {
			a := dynamo.NewAsyncAgent(fabric, engine, r, spec.CommandLatency)
			if inj != nil {
				a.SetFaults(inj)
			}
			if spec.WatchdogTTL > 0 {
				r.SetWatchdog(spec.WatchdogTTL, cfg.SafeCurrent())
			}
			if spec.Obs != nil {
				r.SetObs(spec.Obs)
			}
		}
		opts := dynamo.AsyncOptions{
			Injector:   inj,
			StaleAfter: spec.StaleAfter,
			Retry:      spec.Retry,
			Heartbeat:  spec.WatchdogTTL > 0,
			Storm:      spec.Storm,
			Obs:        spec.Obs,
		}
		msb.Walk(func(nd *power.Node) {
			if nd.Level() != power.LevelRPP {
				return
			}
			var leafRacks []*rack.Rack
			for _, l := range nd.Loads() {
				leafRacks = append(leafRacks, l.(*rack.Rack))
			}
			// Leaves monitor and execute; the MSB controller plans.
			asyncLeaves = append(asyncLeaves,
				dynamo.NewAsyncLeafOpts(fabric, engine, nd, leafRacks, spec.Mode, cfg, false, spec.Step, opts))
		})
		asyncUpper = dynamo.NewAsyncUpperOpts(fabric, engine, msb, asyncLeaves, spec.Mode, cfg, spec.Step, opts)
		if spec.Guard != nil {
			// The async plane has no Hierarchy to own guards; build them
			// directly. They act over rack handles (the server-management
			// plane), so they need no bus endpoints.
			queue := asyncUpper.StormQueue()
			msb.Walk(func(nd *power.Node) {
				var rs []*rack.Rack
				for _, l := range nd.RackLoads() {
					rs = append(rs, l.(*rack.Rack))
				}
				g := storm.NewGuard(nd, rs, cfg, *spec.Guard)
				if queue != nil {
					g.AttachQueue(queue)
				}
				if spec.Obs != nil {
					g.SetObs(spec.Obs)
				}
				guards = append(guards, g)
			})
		}
	} else {
		hier, err = dynamo.BuildHierarchyOpts(msb, spec.Mode, cfg, dynamo.HierarchyOptions{
			Engine:      engine,
			Latency:     spec.CommandLatency,
			Injector:    inj,
			StaleAfter:  spec.StaleAfter,
			Retry:       spec.Retry,
			WatchdogTTL: spec.WatchdogTTL,
			Storm:       spec.Storm,
			Guard:       spec.Guard,
			Obs:         spec.Obs,
		})
		if err != nil {
			return nil, err
		}
	}

	// The grid event hits at the first trace peak, where available power is
	// most constrained (§V-B1). Its length is the specified outage duration,
	// or is derived from the target DOD at the aggregate load of that moment.
	peakT := trace.FirstPeak(gen, 24*time.Hour, time.Minute)
	transLen := spec.OutageLen
	if transLen == 0 {
		avgLoad := float64(trace.Aggregate(gen, peakT)) / float64(n)
		transLen = time.Duration(float64(spec.AvgDOD) * battery.RackFullEnergy / avgLoad * float64(time.Second))
	}
	transLen = transLen.Round(spec.Step)
	if transLen < spec.Step {
		transLen = spec.Step
	}

	res := &CoordResult{
		Spec:             spec,
		TransitionLength: transLen,
		SLAMet:           map[rack.Priority]int{},
		Racks:            map[rack.Priority]int{},
		ChargeDurations:  map[rack.Priority][]time.Duration{},
	}
	for _, r := range racks {
		res.Racks[r.Priority()]++
	}

	start := peakT - spec.PreRoll
	loseAt := peakT
	restoreAt := peakT + transLen
	horizon := restoreAt + spec.MaxChargeDuration
	deadlines := core.DefaultDeadlines()
	if engine != nil && start > 0 {
		// Pre-advance the engine clock to the window start.
		engine.ScheduleAt(start, "start", func(time.Duration) {})
		engine.Run(start)
	}

	var gauges *runGauges
	if spec.Obs != nil {
		gauges = newRunGauges(spec.Obs)
	}
	// Steady-state buffers, sized once: the output series gets its full
	// capacity up front, the per-rack DOD sink is reused on (re)fill, and the
	// trip scan walks a prebuilt node slice instead of re-walking the tree
	// (and allocating a closure plus a seen-map) every tick.
	res.Samples = make([]Sample, 0, trace.NumFrames(start, horizon, spec.SampleEvery)+1)
	res.DODs = make([]float64, 0, n)
	var nodes []*power.Node
	msb.Walk(func(nd *power.Node) { nodes = append(nodes, nd) })
	trippedSeen := make([]bool, len(nodes))
	// Outstanding-charge tracking for the end-of-run check: a per-rack bit
	// plus a running count, updated on observed state transitions instead of
	// re-scanning the fleet from scratch. A postponed or storm-queued charge
	// (pending DOD) is still outstanding work: the run must not end while
	// the admission queue drains.
	outstanding := make([]bool, n)
	numOutstanding := 0
	// Demand frames are precomputed in blocks: each refill amortises the
	// trace's per-tick work (time decomposition, diurnal/swing terms) across
	// the whole rack population, and the slab is reused block over block.
	const demandBlock = 256
	var demand []units.Power
	blockStart, blockEnd := start, start-spec.Step // before start: refill on first tick
	lastSample := time.Duration(-1 << 62)
	outageFired, restoreFired := false, false
	for now := start; now <= horizon; now += spec.Step {
		if now > blockEnd {
			to := now + (demandBlock-1)*spec.Step
			if to > horizon {
				to = horizon
			}
			demand = trace.Frames(gen, demand, now, to, spec.Step)
			blockStart, blockEnd = now, to
		}
		frame := demand[int((now-blockStart)/spec.Step)*n:]
		for i, r := range racks {
			r.SetDemand(frame[i])
		}
		// The transition fires on the first tick at or past its scheduled
		// time (latched, not ==): a Step that does not divide PreRoll walks
		// right past the exact loseAt instant. transLen is Step-aligned, so
		// the restore keeps the full outage length on the same grid.
		if !outageFired && now >= loseAt {
			outageFired = true
			// An MSB-level open transition: the breaker leaves the critical
			// power path and every rack beneath falls back to batteries.
			msb.Deenergize(now)
			if spec.Obs != nil {
				spec.Obs.Event(now, "scenario", "outage")
			}
		}
		if outageFired && !restoreFired && now >= restoreAt {
			restoreFired = true
			msb.Reenergize(now)
			var sum float64
			res.DODs = res.DODs[:0]
			for _, r := range racks {
				sum += float64(r.LastDOD())
				res.DODs = append(res.DODs, float64(r.LastDOD()))
			}
			res.AvgDOD = units.Fraction(sum / float64(n))
			if spec.Obs != nil {
				spec.Obs.Event(now, "scenario", "restore",
					"avg_dod", fmt.Sprintf("%.3f", float64(res.AvgDOD)))
			}
		}
		for _, r := range racks {
			r.Step(now, spec.Step)
		}
		if engine != nil {
			engine.Run(now)
		}
		if hier != nil {
			hier.Tick(now)
		}
		for _, g := range guards {
			g.Tick(now)
		}
		for i, nd := range nodes {
			if nd.Tripped() && !trippedSeen[i] {
				trippedSeen[i] = true
				res.Tripped = append(res.Tripped, nd.Name())
				if spec.Obs != nil {
					spec.Obs.Event(now, "scenario", "trip", "node", nd.Name())
				}
			}
		}
		// One bookkeeping pass over the fleet: maintain the outstanding set
		// by transition, and accumulate the sample sums only on sample ticks.
		sampling := now-lastSample >= spec.SampleEvery
		var it, rech, capped units.Power
		for i, r := range racks {
			if out := r.Charging() || r.PendingDOD() > 0; out != outstanding[i] {
				outstanding[i] = out
				if out {
					numOutstanding++
				} else {
					numOutstanding--
				}
			}
			if sampling {
				if r.InputUp() {
					it += r.ITLoad()
					rech += r.RechargePower()
				}
				capped += r.CappedPower()
			}
		}
		if gauges != nil {
			gauges.update(now, msb, racks)
		}
		if sampling {
			lastSample = now
			res.Samples = append(res.Samples, Sample{
				T: now - loseAt, Total: it + rech, IT: it, Recharge: rech, Capped: capped,
			})
		}
		if now > restoreAt {
			if p := msb.Power(); p > res.PeakPower {
				res.PeakPower = p
			}
		}
		if spec.StepHook != nil {
			spec.StepHook(now)
		}

		if now > restoreAt {
			if numOutstanding == 0 {
				if res.LastChargeDone == 0 {
					res.LastChargeDone = now - loseAt
				}
				if now >= restoreAt+5*time.Minute && now-loseAt >= res.LastChargeDone+2*time.Minute {
					break
				}
			} else {
				res.LastChargeDone = 0
			}
		}
	}

	if hier != nil {
		res.Metrics = hier.TotalMetrics()
		if q := hier.StormQueue(); q != nil {
			res.Storm = q.Metrics()
		}
		res.Guard = hier.TotalGuardMetrics()
	} else {
		m := asyncUpper.Metrics()
		for _, l := range asyncLeaves {
			lm := l.Metrics()
			if lm.MaxCapping > m.MaxCapping {
				m.MaxCapping = lm.MaxCapping
			}
			m.OverridesIssued += lm.OverridesIssued
			m.ThrottleEvents += lm.ThrottleEvents
			m.PlansComputed += lm.PlansComputed
			m.Retries += lm.Retries
			m.AbandonedOverrides += lm.AbandonedOverrides
			m.StaleTelemetry += lm.StaleTelemetry
			m.Crashes += lm.Crashes
			m.Restarts += lm.Restarts
		}
		res.Metrics = m
		if q := asyncUpper.StormQueue(); q != nil {
			res.Storm = q.Metrics()
		}
		res.Guard = storm.TotalGuardMetrics(guards)
	}
	if inj != nil {
		res.FaultCounters = inj.Counters()
	}
	for _, r := range racks {
		res.FailSafeActivations += r.FailSafeActivations()
		res.UnservedEnergy += r.UnservedEnergy()
		res.LoadDropEvents += r.LoadDropEvents()
	}
	endNow := horizon
	for _, r := range racks {
		d, done := r.ChargeDuration(endNow)
		met := false
		if r.LastDOD() <= 0 {
			met = true // nothing to charge
		} else if done && d <= deadlines[r.Priority()] {
			met = true
		}
		if done {
			res.ChargeDurations[r.Priority()] = append(res.ChargeDurations[r.Priority()], d)
		}
		if met {
			res.SLAMet[r.Priority()]++
		}
	}
	return res, nil
}

// ProductionDistribution returns the paper's evaluation MSB rack counts.
func ProductionDistribution() (p1, p2, p3 int) { return 89, 142, 85 }
