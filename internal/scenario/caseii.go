package scenario

import (
	"fmt"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/rack"
	"coordcharge/internal/report"
	"coordcharge/internal/server"
	"coordcharge/internal/units"
)

// ServersPerRack is the nominal web-tier machine count per rack used by the
// Case II server ledger.
const ServersPerRack = 30

// CaseIIResult summarises the Case II replay (§II-D): a tripped utility feed
// sends every MSB of a data-center building to its diesel generator; the
// battery recharge after the open transition lifts each MSB by more than
// 20 %, and Dynamo must cap thousands of servers.
type CaseIIResult struct {
	Table *report.Table
	// TotalCapped is the building-wide peak server power capping.
	TotalCapped units.Power
	// ServersCapped counts the servers Dynamo had to cap, from a per-server
	// ledger (ServersPerRack machines per rack, lowest service priority
	// first, 50 % per-server floor). The paper reports more than ten
	// thousand across the building.
	ServersCapped int
	// MaxIncrease is the largest per-MSB relative power increase.
	MaxIncrease units.Fraction
}

// RunCaseII replays the Case II event across numMSB 316-rack MSBs (a
// building; the paper's buildings carry on the order of a dozen MSBs worth
// of IT load) with the original charger — the hardware deployed when the
// event occurred. Each MSB experiences a short open transition as it
// switches to its generator, then the simultaneous recharge.
func RunCaseII(numMSB int, seed int64) (*CaseIIResult, error) {
	if numMSB <= 0 {
		numMSB = 12
	}
	res := &CaseIIResult{
		Table: report.NewTable("Case II: building-wide open transition to diesel generators (original charger)",
			"MSB", "Load before", "Peak would-be draw", "Increase", "Max capping"),
	}
	p1, p2, p3 := ProductionDistribution()
	for i := 0; i < numMSB; i++ {
		run, err := RunCoordinated(CoordSpec{
			NumP1: p1, NumP2: p2, NumP3: p3,
			Seed:        seed + int64(i), // each MSB hosts different services
			MSBLimit:    2.5 * units.Megawatt,
			Mode:        dynamo.ModeNone,
			LocalPolicy: charger.Original{},
			AvgDOD:      0.1, // a ~15 s generator transfer at typical load
			// The transfer happens when it happens, not at the trace peak;
			// keep the default peak injection as the conservative case.
			MaxChargeDuration: 90 * time.Minute,
		})
		if err != nil {
			return nil, err
		}
		// Load just before the transition: the last pre-transition sample.
		var before units.Power
		for _, s := range run.Samples {
			if s.T < 0 {
				before = s.Total
			}
		}
		var peak units.Power
		for _, s := range run.Samples {
			if s.T > 0 && s.Total+s.Capped > peak {
				peak = s.Total + s.Capped
			}
		}
		inc := units.Fraction(0)
		if before > 0 {
			inc = units.Fraction(float64(peak-before) / float64(before))
		}
		if inc > res.MaxIncrease {
			res.MaxIncrease = inc
		}
		res.TotalCapped += run.Metrics.MaxCapping
		// Per-server accounting: spread the MSB's capping across its server
		// ledger exactly as Dynamo does — lowest service priority first.
		res.ServersCapped += cappedServers(run, before)
		res.Table.Add(
			fmt.Sprintf("msb%02d", i),
			before.String(),
			peak.String(),
			fmt.Sprintf("+%.0f%%", float64(inc)*100),
			run.Metrics.MaxCapping.String(),
		)
	}
	res.Table.Add("TOTAL", "", "", "", res.TotalCapped.String())
	return res, nil
}

// cappedServers builds the MSB's per-server ledger and sheds the observed
// peak capping through it, returning how many machines took a cap.
func cappedServers(run *CoordResult, msbLoad units.Power) int {
	nRacks := run.Racks[rack.P1] + run.Racks[rack.P2] + run.Racks[rack.P3]
	if nRacks == 0 || run.Metrics.MaxCapping <= 0 {
		return 0
	}
	perServer := units.Power(float64(msbLoad) / float64(nRacks*ServersPerRack))
	var servers []server.Server
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		for i := 0; i < run.Racks[p]*ServersPerRack; i++ {
			servers = append(servers, server.Server{
				Name:     fmt.Sprintf("%v-%06d", p, i),
				Priority: p,
				Demand:   perServer,
			})
		}
	}
	pool, err := server.NewPool(servers)
	if err != nil {
		panic(err) // generated ledger; unreachable
	}
	pool.Shed(run.Metrics.MaxCapping, 0.5)
	return pool.CappedCount()
}
