package scenario

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/report"
	"coordcharge/internal/sim"
	"coordcharge/internal/units"
)

// rowSpec describes a fixed-load row replay: the shape of the paper's
// production case studies and prototype experiments.
type rowSpec struct {
	prios      []rack.Priority
	load       units.Power // per-rack IT load (constant)
	policy     charger.Policy
	mode       dynamo.Mode
	limit      units.Power // breaker limit over the row
	transition time.Duration
	latency    time.Duration
	step       time.Duration
	horizon    time.Duration
}

// rowSample is one tick of a row replay.
type rowSample struct {
	t        time.Duration // relative to transition start
	total    units.Power
	recharge units.Power
	// perPriority is the mean recharge power per rack of each priority.
	perPriority map[rack.Priority]units.Power
}

// runRow replays an open transition on a row of racks behind one breaker
// and returns the sampled series.
func runRow(spec rowSpec) ([]rowSample, *dynamo.Controller) {
	if spec.step == 0 {
		spec.step = time.Second
	}
	if spec.horizon == 0 {
		spec.horizon = 90 * time.Minute
	}
	node := power.NewNode("row", power.LevelRPP, spec.limit)
	racks := make([]*rack.Rack, len(spec.prios))
	agents := make([]*dynamo.Agent, len(spec.prios))
	var engine *sim.Engine
	if spec.latency > 0 {
		engine = sim.NewEngine()
	}
	for i, p := range spec.prios {
		racks[i] = rack.New(fmt.Sprintf("rack%02d", i), p, spec.policy, battery.Fig5Surface())
		racks[i].SetDemand(spec.load)
		node.AttachLoad(racks[i])
		agents[i] = dynamo.NewAgent(racks[i], engine, spec.latency)
	}
	ctl := dynamo.NewController(node, agents, spec.mode, core.DefaultConfig(), true)

	// Align the transition to the tick grid: a sub-step transition rounds up
	// to one tick (the replay granularity bounds how short an outage can be).
	loseTicks := int64((30*time.Second + spec.step - 1) / spec.step)
	transTicks := int64((spec.transition + spec.step - 1) / spec.step)
	if transTicks < 1 {
		transTicks = 1
	}
	loseAt := time.Duration(loseTicks) * spec.step
	restoreAt := time.Duration(loseTicks+transTicks) * spec.step
	var samples []rowSample
	for now := time.Duration(0); now <= loseAt+spec.horizon; now += spec.step {
		if now == loseAt {
			node.Deenergize(now)
		}
		if now == restoreAt {
			node.Reenergize(now)
		}
		for _, r := range racks {
			r.Step(now, spec.step)
		}
		if engine != nil {
			engine.Run(now)
		}
		ctl.Tick(now)

		smp := rowSample{t: now - loseAt, perPriority: map[rack.Priority]units.Power{}}
		counts := map[rack.Priority]int{}
		for _, r := range racks {
			smp.total += r.Power()
			smp.recharge += r.RechargePower()
			smp.perPriority[r.Priority()] += r.RechargePower()
			counts[r.Priority()]++
		}
		for p, n := range counts {
			smp.perPriority[p] = units.Power(float64(smp.perPriority[p]) / float64(n))
		}
		samples = append(samples, smp)
		if now > restoreAt+time.Minute && smp.recharge == 0 {
			break
		}
	}
	return samples, ctl
}

// Fig2Chart reproduces the Case I study (Fig 2): a sub-second regional
// utility sag discharges every rack battery slightly; the original chargers
// then recharge at full rate, spiking the region by ~9.3 MW over a 61.6 MW
// base (a 15 % jump: 1.9 kW of recharge on 12.6 kW racks).
//
// The region is modelled as its power-equivalent rack population at the
// observed load: 61.6 MW over fully loaded racks. The replay is scaled down
// by sampleFactor (simulating every rack individually changes nothing — the
// racks are identical in this event) and the series rescaled, keeping the
// regeneration fast; pass 1 for the full population.
func Fig2Chart(sampleFactor int) *report.Chart {
	if sampleFactor < 1 {
		sampleFactor = 1
	}
	regionW := 61.6e6
	totalRacks := int(regionW / 12600) // ≈ 4889 fully loaded racks
	n := totalRacks / sampleFactor
	if n < 1 {
		n = 1
	}
	scale := float64(totalRacks) / float64(n)
	prios := make([]rack.Priority, n)
	for i := range prios {
		prios[i] = rack.Priority(1 + i%3)
	}
	samples, _ := runRow(rowSpec{
		prios:      prios,
		load:       12600 * units.Watt,
		policy:     charger.Original{},
		mode:       dynamo.ModeNone,
		limit:      100 * units.Megawatt, // the region is not a breaker
		transition: time.Second,          // the <1 s voltage sag
		step:       5 * time.Second,
		horizon:    40 * time.Minute,
	})
	c := report.NewChart("Fig 2: regional IT load during a brief utility outage (original charger)", "minutes", "MW")
	s := c.AddSeries("region power")
	for _, smp := range samples {
		s.Append(smp.t.Minutes(), float64(smp.total)*scale/1e6)
	}
	return c
}

// Fig7Chart reproduces Fig 7: the production validation of the variable
// charger. An RPP feeding a 14-rack row is opened for 60 seconds (~20 % DOD);
// the variable charger recharges at 2 A (+~10 kW) where the original charger
// would have spiked by more than 26 kW. Both chargers are replayed.
func Fig7Chart() *report.Chart {
	prios := make([]rack.Priority, 14)
	for i := range prios {
		prios[i] = rack.P2
	}
	// 20 % DOD from a 60 s transition needs 0.2·1134 kJ/60 s = 3.78 kW.
	const load = 3780 * units.Watt
	c := report.NewChart("Fig 7: RPP power during the variable-charger production test", "minutes", "kW")
	for _, pol := range []charger.Policy{charger.Variable{}, charger.Original{}} {
		samples, _ := runRow(rowSpec{
			prios:      prios,
			load:       load,
			policy:     pol,
			mode:       dynamo.ModeNone,
			limit:      power.DefaultRPPLimit,
			transition: time.Minute,
			step:       2 * time.Second,
			horizon:    time.Hour,
		})
		s := c.AddSeries(pol.Name() + " charger")
		for _, smp := range samples {
			s.Append(smp.t.Minutes(), smp.total.KW())
		}
	}
	return c
}

// Fig10Chart reproduces Fig 10: the prototype leaf controller coordinating a
// 17-rack row (9 P1, 5 P2, 3 P3) after a ~5 s open transition at <5 % DOD.
// P1 racks charge at 2 A (~700 W each, done in ~30 min); P2 and P3 racks are
// overridden to 1 A (~350 W, done within the hour).
func Fig10Chart() *report.Chart {
	prios := make([]rack.Priority, 0, 17)
	for i := 0; i < 9; i++ {
		prios = append(prios, rack.P1)
	}
	for i := 0; i < 5; i++ {
		prios = append(prios, rack.P2)
	}
	for i := 0; i < 3; i++ {
		prios = append(prios, rack.P3)
	}
	samples, _ := runRow(rowSpec{
		prios:      prios,
		load:       9000 * units.Watt, // ~4 % DOD over a 5 s transition
		policy:     charger.Variable{},
		mode:       dynamo.ModePriorityAware,
		limit:      power.DefaultRPPLimit,
		transition: 5 * time.Second,
		step:       2 * time.Second,
		horizon:    80 * time.Minute,
	})
	c := report.NewChart("Fig 10: per-rack battery recharge power in the prototype row", "minutes", "W")
	series := map[rack.Priority]*report.Series{
		rack.P1: c.AddSeries("P1 racks (per rack)"),
		rack.P2: c.AddSeries("P2 racks (per rack)"),
		rack.P3: c.AddSeries("P3 racks (per rack)"),
	}
	for _, smp := range samples {
		for p, s := range series {
			s.Append(smp.t.Minutes(), float64(smp.perPriority[p]))
		}
	}
	return c
}

// Fig11Chart reproduces Fig 11: fine-grained recharge power of one rack
// whose charging current the leaf controller overrides to 1 A; the command
// settles about 20 seconds after being issued.
func Fig11Chart() *report.Chart {
	samples, _ := runRow(rowSpec{
		prios:      []rack.Priority{rack.P3},
		load:       9000 * units.Watt,
		policy:     charger.Variable{},
		mode:       dynamo.ModePriorityAware,
		limit:      power.DefaultRPPLimit,
		transition: 5 * time.Second,
		latency:    20 * time.Second,
		step:       time.Second,
		horizon:    3 * time.Minute,
	})
	c := report.NewChart("Fig 11: rack recharge power during a charging-current override (20 s settling)", "seconds", "W")
	s := c.AddSeries("recharge power")
	for _, smp := range samples {
		if smp.t < -10*time.Second || smp.t > 2*time.Minute {
			continue
		}
		s.Append(smp.t.Seconds(), float64(smp.recharge))
	}
	return c
}
