package scenario

import (
	"testing"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/rack"
)

// The distributed (message-passing) control plane reproduces the synchronous
// plane's outcomes on the same experiment: same SLA counts within the slack
// that polling latency introduces, and the same zero-capping protection.
func TestDistributedPlaneMatchesSynchronous(t *testing.T) {
	if testing.Short() {
		t.Skip("full charging-period simulation")
	}
	base := smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 225, 0.5)
	sync, err := RunCoordinated(base)
	if err != nil {
		t.Fatal(err)
	}
	dist := base
	dist.Distributed = true
	async, err := RunCoordinated(dist)
	if err != nil {
		t.Fatal(err)
	}
	if async.Metrics.MaxCapping != 0 || sync.Metrics.MaxCapping != 0 {
		t.Errorf("capping: sync %v, distributed %v, want both 0",
			sync.Metrics.MaxCapping, async.Metrics.MaxCapping)
	}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		d := sync.SLAMet[p] - async.SLAMet[p]
		if d < -1 || d > 1 {
			t.Errorf("%v SLAs: sync %d vs distributed %d", p, sync.SLAMet[p], async.SLAMet[p])
		}
	}
	if async.Metrics.PlansComputed != 1 {
		t.Errorf("distributed plans = %d, want 1", async.Metrics.PlansComputed)
	}
	if len(async.Tripped) != 0 {
		t.Errorf("distributed plane tripped breakers: %v", async.Tripped)
	}
}

// Command settling on the distributed plane delays override effect without
// breaking protection.
func TestDistributedWithSettleLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("full charging-period simulation")
	}
	spec := smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 100000, 0.4)
	spec.Distributed = true
	spec.CommandLatency = 20 * time.Second
	spec.NetworkLatency = 50 * time.Millisecond
	res, err := RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxCapping != 0 {
		t.Errorf("capping = %v with unconstrained power", res.Metrics.MaxCapping)
	}
	total := 0
	for _, n := range res.SLAMet {
		total += n
	}
	if total < 20 {
		t.Errorf("SLAs met = %d/30", total)
	}
}
