package scenario

import (
	"encoding/json"
	"testing"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/obs"
	"coordcharge/internal/units"
)

// TestOutageFiresWithOffGridStep regresses the exact-equality outage latch:
// with a 7 s step the tick grid never lands on loseAt (PreRoll is 120 s, not
// a multiple of 7), so a `now == loseAt` comparison would skip the grid
// event entirely and the run would see no discharge at all.
func TestOutageFiresWithOffGridStep(t *testing.T) {
	spec := smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 100000, 0.5)
	spec.Step = 7 * time.Second
	res, err := RunCoordinated(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDOD < 0.1 {
		t.Fatalf("realised DOD %v: outage did not fire on the off-grid step", res.AvgDOD)
	}
	if res.LastChargeDone <= 0 {
		t.Fatal("no recharge completed after the off-grid outage")
	}
}

// chartJSON canonicalises experiment output for byte comparison.
func chartJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunnerDeterminismFig13 asserts the runner's contract end to end: the
// 18-run Fig 13 batch renders byte-identical charts and Table III whether
// the runs execute serially or on four workers.
func TestRunnerDeterminismFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale determinism comparison")
	}
	defer SetExperimentWorkers(SetExperimentWorkers(1))
	serial, err := RunFig13(1)
	if err != nil {
		t.Fatal(err)
	}
	SetExperimentWorkers(4)
	parallel, err := RunFig13(1)
	if err != nil {
		t.Fatal(err)
	}
	if chartJSON(t, serial.Charts) != chartJSON(t, parallel.Charts) {
		t.Fatal("Fig 13 charts differ between serial and parallel runs")
	}
	if chartJSON(t, serial.TableIII) != chartJSON(t, parallel.TableIII) {
		t.Fatal("Table III differs between serial and parallel runs")
	}
}

// TestRunnerDeterminismSweep asserts the flattened multi-sweep path (the
// RunFig14/RunFig15 shape: parallel across subplots and limits at once)
// merges deterministically. Reduced populations and a short limit list keep
// it fast; the batch shape is identical to the full figures.
func TestRunnerDeterminismSweep(t *testing.T) {
	subplots := func() []SweepSpec {
		mk := func(label string, mode dynamo.Mode) SweepSpec {
			sp := SweepSpec{Label: label, NumP1: 9, NumP2: 14, NumP3: 7, AvgDOD: 0.5, Mode: mode, Seed: 1}
			for kw := 240.0; kw >= 200.0; kw -= 20 {
				sp.Limits = append(sp.Limits, units.Power(kw)*units.Kilowatt)
			}
			return sp
		}
		return []SweepSpec{
			mk("subplot A", dynamo.ModePriorityAware),
			mk("subplot B", dynamo.ModeGlobal),
		}
	}
	defer SetExperimentWorkers(SetExperimentWorkers(1))
	serial, err := runSweeps(subplots())
	if err != nil {
		t.Fatal(err)
	}
	SetExperimentWorkers(4)
	parallel, err := runSweeps(subplots())
	if err != nil {
		t.Fatal(err)
	}
	if chartJSON(t, serial) != chartJSON(t, parallel) {
		t.Fatal("sweep charts differ between serial and parallel runs")
	}
}

// TestRunnerDeterminismFlightDigests is the strongest equivalence check: the
// flight-recorder digest hashes every control-plane decision in order, so a
// matching digest means the parallel batch made exactly the decisions the
// serial batch did, seed by seed.
func TestRunnerDeterminismFlightDigests(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	digests := func(workers int) []string {
		defer SetExperimentWorkers(SetExperimentWorkers(workers))
		specs := make([]CoordSpec, len(seeds))
		sinks := make([]*obs.Sink, len(seeds))
		for i, seed := range seeds {
			sinks[i] = obs.NewSink(0)
			specs[i] = smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 220, 0.5)
			specs[i].Seed = seed
			specs[i].Obs = sinks[i]
		}
		if _, err := runCoordinatedBatch(specs); err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(seeds))
		for i := range sinks {
			out[i] = sinks[i].Flight.Digest()
		}
		return out
	}
	serial := digests(1)
	parallel := digests(4)
	for i, seed := range seeds {
		if serial[i] == "" {
			t.Fatalf("seed %d: empty flight digest", seed)
		}
		if serial[i] != parallel[i] {
			t.Fatalf("seed %d: serial digest %s != parallel digest %s", seed, serial[i], parallel[i])
		}
	}
}
