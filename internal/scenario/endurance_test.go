package scenario

import (
	"strings"
	"testing"
	"time"

	"coordcharge/internal/dynamo"
	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

func TestEnduranceSpecValidation(t *testing.T) {
	bad := []EnduranceSpec{
		{Years: -1},
		{Years: 400},
		{NumP1: -1, NumP2: 1},
		{MSBLimit: -1},
		{Step: -time.Second},
	}
	for i, s := range bad {
		if _, err := RunEndurance(s); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestEnduranceUnconstrainedMeetsTableIITargets(t *testing.T) {
	res, err := RunEndurance(EnduranceSpec{Years: 20, Seed: 1, Mode: dynamo.ModePriorityAware})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 50 {
		t.Fatalf("only %d events in 20 years, want ~95", res.Events)
	}
	// With ample power, coordinated charging at SLA currents beats the
	// idealised Table II targets (which assume the full SLA is used up).
	targets := map[rack.Priority]float64{rack.P1: 0.9990, rack.P2: 0.9985, rack.P3: 0.9980}
	for p, want := range targets {
		if got := float64(res.AOR[p]); got < want {
			t.Errorf("%v realized AOR = %.4f, want ≥ %.4f", p, got, want)
		}
		if res.AOR[p] > 1 {
			t.Errorf("%v AOR above 1: %v", p, res.AOR[p])
		}
	}
	// Priority ordering: stricter SLAs yield better realized AOR.
	if res.AOR[rack.P1] < res.AOR[rack.P2] || res.AOR[rack.P2] < res.AOR[rack.P3] {
		t.Errorf("AOR not ordered by priority: %v", res.AOR)
	}
	if res.Metrics.MaxCapping != 0 {
		t.Errorf("capping %v with unconstrained power", res.Metrics.MaxCapping)
	}
}

// The quantified trade-off: under a tight limit, priority-aware charging
// preserves P1's redundancy premium; the global baseline spends it.
func TestEnduranceCoordinationPreservesP1Redundancy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year endurance runs")
	}
	pa, err := RunEndurance(EnduranceSpec{
		Years: 20, Seed: 1, MSBLimit: 205 * units.Kilowatt, Mode: dynamo.ModePriorityAware,
	})
	if err != nil {
		t.Fatal(err)
	}
	gl, err := RunEndurance(EnduranceSpec{
		Years: 20, Seed: 1, MSBLimit: 205 * units.Kilowatt, Mode: dynamo.ModeGlobal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pa.AOR[rack.P1] <= gl.AOR[rack.P1] {
		t.Errorf("P1 realized AOR: priority-aware %v not above global %v",
			pa.AOR[rack.P1], gl.AOR[rack.P1])
	}
	// Constraint costs some redundancy relative to unconstrained operation.
	free, err := RunEndurance(EnduranceSpec{Years: 20, Seed: 1, Mode: dynamo.ModePriorityAware})
	if err != nil {
		t.Fatal(err)
	}
	if pa.AOR[rack.P3] > free.AOR[rack.P3] {
		t.Errorf("tight-limit P3 AOR %v above unconstrained %v", pa.AOR[rack.P3], free.AOR[rack.P3])
	}
}

func TestEnduranceTableRendering(t *testing.T) {
	res, err := RunEndurance(EnduranceSpec{Years: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := EnduranceTable(res)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"P1", "99.94%", "Realized AOR"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestEnduranceDeterministic(t *testing.T) {
	a, err := RunEndurance(EnduranceSpec{Years: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEndurance(EnduranceSpec{Years: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.AOR[rack.P1] != b.AOR[rack.P1] || a.AOR[rack.P3] != b.AOR[rack.P3] {
		t.Errorf("endurance not deterministic: %+v vs %+v", a.AOR, b.AOR)
	}
}
