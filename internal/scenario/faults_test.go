package scenario

import (
	"testing"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
)

// faultySpec arms the degraded-mode machinery on top of smallSpec: default
// injector rates, staleness detection, retransmission, and rack watchdogs.
func faultySpec(distributed bool) CoordSpec {
	s := smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 100000, 0.5)
	s.Distributed = distributed
	s.Faults = faults.Default()
	s.Faults.Seed = 7
	s.StaleAfter = 10 * time.Second
	s.Retry = dynamo.DefaultRetryPolicy()
	s.WatchdogTTL = 30 * time.Second
	return s
}

// With the injector at its default rates, both control planes must still
// complete every charge without tripping a breaker, and the result must
// report what was injected.
func TestRunCoordinatedWithFaults(t *testing.T) {
	for _, tc := range []struct {
		name        string
		distributed bool
	}{
		{"sync", false},
		{"distributed", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunCoordinated(faultySpec(tc.distributed))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tripped) != 0 {
				t.Errorf("breakers tripped: %v", res.Tripped)
			}
			if res.LastChargeDone == 0 {
				t.Error("charges never completed")
			}
			c := res.FaultCounters
			if c.ReadsDropped == 0 || c.CommandsDropped == 0 {
				t.Errorf("injector idle: counters %+v", c)
			}
			if res.Metrics.PlansComputed == 0 {
				t.Error("no plan computed")
			}
		})
	}
}

// Fault injection is deterministic: the same spec twice gives byte-identical
// injection counts and outcomes.
func TestRunCoordinatedFaultsDeterministic(t *testing.T) {
	a, err := RunCoordinated(faultySpec(false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCoordinated(faultySpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultCounters != b.FaultCounters {
		t.Errorf("fault counters diverged:\n  %+v\n  %+v", a.FaultCounters, b.FaultCounters)
	}
	if a.Metrics.OverridesIssued != b.Metrics.OverridesIssued ||
		a.Metrics.Retries != b.Metrics.Retries ||
		a.FailSafeActivations != b.FailSafeActivations ||
		a.LastChargeDone != b.LastChargeDone {
		t.Errorf("outcomes diverged: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

// A spec with an invalid fault config is rejected up front.
func TestCoordSpecRejectsInvalidFaults(t *testing.T) {
	s := smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 100000, 0.5)
	s.Faults.TelemetryLoss = 1.5
	if _, err := RunCoordinated(s); err == nil {
		t.Error("invalid fault config accepted")
	}
	s = smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 100000, 0.5)
	s.WatchdogTTL = -time.Second
	if _, err := RunCoordinated(s); err == nil {
		t.Error("negative watchdog TTL accepted")
	}
}
