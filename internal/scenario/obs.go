package scenario

import (
	"time"

	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
)

// runGauges caches the fleet-level gauge handles RunCoordinated refreshes
// every tick: the MSB power balance (msb.*) and the per-priority charging
// state (charge.*). Controllers, guards, and the admission queue own their
// metrics themselves; these are the run-level aggregates a scraper needs to
// follow a storm without reading the flight recorder.
type runGauges struct {
	power, limit, headroom       *obs.Gauge
	it, recharge, capped         *obs.Gauge
	now                          *obs.Gauge
	current, charging, completed [3]*obs.Gauge // indexed rack.P1-1 .. rack.P3-1
}

func newRunGauges(s *obs.Sink) *runGauges {
	g := &runGauges{
		power:    s.Gauge("msb.power_w"),
		limit:    s.Gauge("msb.limit_w"),
		headroom: s.Gauge("msb.headroom_w"),
		it:       s.Gauge("msb.it_w"),
		recharge: s.Gauge("msb.recharge_w"),
		capped:   s.Gauge("msb.capped_w"),
		now:      s.Gauge("sim.now_s"),
	}
	for i, p := range []string{"p1", "p2", "p3"} {
		g.current[i] = s.Gauge("charge.current_a." + p)
		g.charging[i] = s.Gauge("charge.charging." + p)
		g.completed[i] = s.Gauge("charge.completed." + p)
	}
	return g
}

// update refreshes every gauge from live rack and breaker state at virtual
// time now. Completed counts match CoordResult.ChargeDurations semantics: a
// rack counts once its most recent charge has finished.
func (g *runGauges) update(now time.Duration, msb *power.Node, racks []*rack.Rack) {
	var it, recharge, capped float64
	var current, charging, completed [3]float64
	for _, r := range racks {
		if r.InputUp() {
			it += float64(r.ITLoad())
			recharge += float64(r.RechargePower())
		}
		capped += float64(r.CappedPower())
		i := int(r.Priority()) - 1
		if i < 0 || i > 2 {
			continue
		}
		if r.Charging() {
			charging[i]++
			current[i] += float64(r.Pack().Setpoint())
		}
		if _, done := r.ChargeDuration(now); done {
			completed[i]++
		}
	}
	g.power.Set(float64(msb.Power()))
	g.limit.Set(float64(msb.Limit()))
	g.headroom.Set(float64(msb.Headroom()))
	g.it.Set(it)
	g.recharge.Set(recharge)
	g.capped.Set(capped)
	g.now.Set(now.Seconds())
	for i := range current {
		g.current[i].Set(current[i])
		g.charging[i].Set(charging[i])
		g.completed[i].Set(completed[i])
	}
}
