package scenario

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/oversub"
	"coordcharge/internal/par"
	"coordcharge/internal/rack"
	"coordcharge/internal/report"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// AdvisorSpec asks the capacity question behind the paper's introduction:
// how much breaker capacity does this rack population actually need? The
// naive answer reserves the worst-case recharge spike on top of peak IT load
// ("expensive and wasteful ... 25 % of the data center power budget ...
// stranded most of the time", §I); the advisor finds the minimum limit at
// which a charging strategy protects the breaker (zero capping) and, with
// more headroom, satisfies every feasible charging-time SLA.
type AdvisorSpec struct {
	// NumP1, NumP2, NumP3 give the rack distribution.
	NumP1, NumP2, NumP3 int
	// AvgDOD is the discharge level to provision for (default 0.7, the
	// paper's high-discharge case).
	AvgDOD units.Fraction
	// Mode and LocalPolicy select the charging strategy being sized.
	Mode        dynamo.Mode
	LocalPolicy charger.Policy
	// Seed drives trace synthesis.
	Seed int64
	// Resolution is the limit-search grid (default 10 kW).
	Resolution units.Power
	// HardStop, when non-nil, is polled before every tick of every probe
	// simulation; returning true aborts the sizing with ErrAborted. The
	// service layer wires a request deadline here as the advisor
	// run-watchdog, so an abandoned or stuck query stops consuming CPU at
	// the next tick boundary instead of bisecting to completion.
	HardStop func() bool
}

func (s *AdvisorSpec) fillDefaults() error {
	if s.NumP1+s.NumP2+s.NumP3 <= 0 {
		return fmt.Errorf("scenario: no racks in advisor spec")
	}
	if s.NumP1 < 0 || s.NumP2 < 0 || s.NumP3 < 0 {
		return fmt.Errorf("scenario: negative rack count")
	}
	if s.AvgDOD == 0 {
		s.AvgDOD = 0.7
	}
	if s.AvgDOD < 0 || s.AvgDOD > 1 {
		return fmt.Errorf("scenario: AvgDOD %v out of (0, 1]", s.AvgDOD)
	}
	if s.LocalPolicy == nil {
		s.LocalPolicy = charger.Variable{}
	}
	if s.Resolution == 0 {
		s.Resolution = 10 * units.Kilowatt
	}
	if s.Resolution <= 0 {
		return fmt.Errorf("scenario: non-positive resolution")
	}
	return nil
}

// Advice is the advisor's sizing result.
type Advice struct {
	Spec AdvisorSpec
	// PeakITLoad is the trace's aggregate peak (the floor of any limit).
	PeakITLoad units.Power
	// StaticLimit is the naive provisioning: peak IT plus the worst-case
	// simultaneous recharge (1.9 kW per rack).
	StaticLimit units.Power
	// MinNoCapLimit is the smallest limit at which the strategy needs no
	// server power capping for the specified discharge event.
	MinNoCapLimit units.Power
	// MinFullSLALimit is the smallest limit at which every rack whose SLA is
	// physically feasible meets it (≥ MinNoCapLimit).
	MinFullSLALimit units.Power
	// FeasibleSLAs counts, per priority, the racks whose SLA is achievable
	// with unconstrained power (high-DOD P1 racks may be hardware-limited).
	FeasibleSLAs map[rack.Priority]int
	// SavedPower is StaticLimit − MinFullSLALimit: capacity the coordinated
	// strategy un-strands.
	SavedPower units.Power
	// SavedCostLowUSD/HighUSD price the saving at the paper's $10–$20 per
	// watt of data-center power infrastructure.
	SavedCostLowUSD, SavedCostHighUSD float64
	// Nameplate is the population's aggregate rack rating; OversubRatio is
	// Nameplate over the advised limit (the §II-B deployment metric — the
	// fleet averaged 1.47).
	Nameplate    units.Power
	OversubRatio float64
}

// advisorProbe runs one experiment at a candidate limit.
func advisorProbe(spec AdvisorSpec, limit units.Power) (*CoordResult, error) {
	cs := CoordSpec{
		NumP1: spec.NumP1, NumP2: spec.NumP2, NumP3: spec.NumP3,
		Seed:        spec.Seed,
		MSBLimit:    limit,
		Mode:        spec.Mode,
		LocalPolicy: spec.LocalPolicy,
		AvgDOD:      spec.AvgDOD,
	}
	if spec.HardStop != nil {
		cs.HardStop = func(time.Duration) bool { return spec.HardStop() }
	}
	return RunCoordinated(cs)
}

// Advise sizes the breaker for the population and strategy. It bisects the
// power limit between the trace's IT peak and the static worst case; both
// "no capping" and "all feasible SLAs met" are monotone in the limit, so
// seven or eight probes per criterion suffice.
func Advise(spec AdvisorSpec) (*Advice, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	n := spec.NumP1 + spec.NumP2 + spec.NumP3
	scale := float64(n) / 316
	gen, err := trace.NewGenerator(trace.Spec{
		NumRacks:    n,
		Seed:        spec.Seed,
		TroughPower: units.Power(1.9e6 * scale),
		PeakPower:   units.Power(2.1e6 * scale),
	})
	if err != nil {
		return nil, err
	}
	peakT := trace.FirstPeak(gen, 24*time.Hour, time.Minute)
	adv := &Advice{Spec: spec, FeasibleSLAs: map[rack.Priority]int{}}
	adv.PeakITLoad = trace.Aggregate(gen, peakT)
	worstRecharge := units.Power(float64(n) * float64(battery.RackWattsPerAmp) * 5)
	adv.StaticLimit = adv.PeakITLoad + worstRecharge

	grid := func(p units.Power) units.Power {
		steps := (p + spec.Resolution - 1) / spec.Resolution
		return units.Power(int64(steps)) * spec.Resolution
	}

	// The reference run (unconstrained power: the feasible SLA ceiling) and
	// the static-limit probe both bisections open with are independent, so
	// they run as one parallel batch — the shared hi-probe is evaluated once
	// instead of once per criterion.
	probes, err := par.MapErr(2, runnerWorkers(), func(i int) (*CoordResult, error) {
		if i == 0 {
			return advisorProbe(spec, adv.StaticLimit*2)
		}
		return advisorProbe(spec, grid(adv.StaticLimit))
	})
	if err != nil {
		return nil, err
	}
	ref, hiRes := probes[0], probes[1]
	for p, c := range ref.SLAMet {
		adv.FeasibleSLAs[p] = c
	}

	bisect := func(ok func(*CoordResult) bool) (units.Power, error) {
		lo, hi := grid(adv.PeakITLoad), grid(adv.StaticLimit)
		if !ok(hiRes) {
			// Even static provisioning fails the criterion (should not
			// happen); report the static limit.
			return hi, nil
		}
		for hi-lo > spec.Resolution {
			mid := grid(lo + (hi-lo)/2)
			res, err := advisorProbe(spec, mid)
			if err != nil {
				return 0, err
			}
			if ok(res) {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi, nil
	}

	// The two criteria bisect independently (each probe depends only on its
	// own bisection's history), so they run as parallel jobs with a
	// deterministic merge.
	criteria := []func(*CoordResult) bool{
		func(r *CoordResult) bool {
			return r.Metrics.MaxCapping == 0
		},
		func(r *CoordResult) bool {
			if r.Metrics.MaxCapping != 0 {
				return false
			}
			for p, want := range adv.FeasibleSLAs {
				if r.SLAMet[p] < want {
					return false
				}
			}
			return true
		},
	}
	limits, err := par.MapErr(len(criteria), runnerWorkers(), func(i int) (units.Power, error) {
		return bisect(criteria[i])
	})
	if err != nil {
		return nil, err
	}
	adv.MinNoCapLimit, adv.MinFullSLALimit = limits[0], limits[1]
	if adv.MinFullSLALimit < adv.MinNoCapLimit {
		adv.MinFullSLALimit = adv.MinNoCapLimit
	}
	adv.SavedPower = adv.StaticLimit - adv.MinFullSLALimit
	adv.SavedCostLowUSD = float64(adv.SavedPower) * 10
	adv.SavedCostHighUSD = float64(adv.SavedPower) * 20
	adv.Nameplate = units.Power(n) * rack.MaxITLoad
	adv.OversubRatio = oversub.Ratio(adv.Nameplate, adv.MinFullSLALimit)
	return adv, nil
}

// AdviceTable renders the sizing result.
func AdviceTable(a *Advice) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Capacity advice: %d racks, %s mode, %s charger, %.0f%% avg DOD",
			a.Spec.NumP1+a.Spec.NumP2+a.Spec.NumP3, a.Spec.Mode, a.Spec.LocalPolicy.Name(),
			float64(a.Spec.AvgDOD)*100),
		"Quantity", "Value")
	t.Add("peak IT load", a.PeakITLoad.String())
	t.Add("static provisioning (worst-case recharge)", a.StaticLimit.String())
	t.Add("min limit, breaker protected (no capping)", a.MinNoCapLimit.String())
	t.Add("min limit, all feasible SLAs met", a.MinFullSLALimit.String())
	t.Add("capacity un-stranded", a.SavedPower.String())
	t.Add("capital saving at $10-20/W", fmt.Sprintf("$%.1fM - $%.1fM",
		a.SavedCostLowUSD/1e6, a.SavedCostHighUSD/1e6))
	t.Add("oversubscription at advised limit", fmt.Sprintf("%.2fx nameplate (%v)",
		a.OversubRatio, a.Nameplate))
	return t
}
