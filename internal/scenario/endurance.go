package scenario

import (
	"fmt"
	"hash/fnv"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/ckpt"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/reliability"
	"coordcharge/internal/report"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// EnduranceSpec parameterises a multi-year endurance run: Table I failure
// events replayed at their true hierarchy levels against a live MSB with the
// real coordinated control plane, measuring each rack's *realized*
// availability of redundancy. This quantifies the trade-off the paper states
// qualitatively ("our solution would slow down the battery charging process
// and compromise the redundancy"): coordination that throttles charging
// under a tight power limit shows up here as AOR loss, concentrated on the
// priorities the algorithm deprioritises.
type EnduranceSpec struct {
	// Years is the simulated horizon (default 50; capped at 250 to keep the
	// virtual clock within time.Duration).
	Years float64
	// Seed drives both the failure stream and the trace.
	Seed int64
	// NumP1, NumP2, NumP3 give the rack distribution (default 10/10/10; the
	// trace envelope scales with the population as in CoordSpec).
	NumP1, NumP2, NumP3 int
	// MSBLimit is the breaker limit (default: the population-scaled 2.5 MW
	// equivalent).
	MSBLimit units.Power
	// Mode is the coordination policy.
	Mode dynamo.Mode
	// LocalPolicy is the rack-local charger (default variable).
	LocalPolicy charger.Policy
	// Step is the fine-simulation tick (default 3 s).
	Step time.Duration
	// Checkpoint, when non-empty, writes a crash-safe checkpoint to this
	// path at failure-event boundaries, at least CheckpointEvery of virtual
	// time apart. Event processing is the endurance run's natural atom —
	// between events every battery is full and the clock just jumps — so
	// checkpoints land there rather than mid-transition.
	Checkpoint string
	// CheckpointEvery is the minimum virtual time between checkpoint writes
	// (default 30 days when Checkpoint is set).
	CheckpointEvery time.Duration
	// Resume, when non-empty, restores the run from this checkpoint instead
	// of starting from year zero. The spec must describe the same
	// experiment (verified by fingerprint).
	Resume string
	// Interrupt, when non-nil, is polled at every event boundary; returning
	// true stops the run gracefully — a final checkpoint is written (when
	// Checkpoint is set) and the partial result returns with Interrupted.
	Interrupt func() bool
	// HardStop, when non-nil, is polled at every event boundary with the
	// virtual clock; returning true aborts the run with ErrAborted and no
	// final checkpoint, simulating a SIGKILL for the chaos harness.
	HardStop func(now time.Duration) bool
}

func (s *EnduranceSpec) fillDefaults() error {
	if s.Years == 0 {
		s.Years = 50
	}
	if s.Years < 0 || s.Years > 250 {
		return fmt.Errorf("scenario: endurance years %v out of (0, 250]", s.Years)
	}
	if s.NumP1 == 0 && s.NumP2 == 0 && s.NumP3 == 0 {
		s.NumP1, s.NumP2, s.NumP3 = 10, 10, 10
	}
	if s.NumP1 < 0 || s.NumP2 < 0 || s.NumP3 < 0 {
		return fmt.Errorf("scenario: negative rack count")
	}
	n := s.NumP1 + s.NumP2 + s.NumP3
	if s.MSBLimit == 0 {
		s.MSBLimit = units.Power(2.5e6 * float64(n) / 316)
	}
	if s.MSBLimit < 0 {
		return fmt.Errorf("scenario: negative MSB limit")
	}
	if s.LocalPolicy == nil {
		s.LocalPolicy = charger.Variable{}
	}
	if s.Step == 0 {
		s.Step = 3 * time.Second
	}
	if s.Step <= 0 {
		return fmt.Errorf("scenario: non-positive step")
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("scenario: negative CheckpointEvery")
	}
	if s.CheckpointEvery > 0 && s.Checkpoint == "" {
		return fmt.Errorf("scenario: CheckpointEvery set without Checkpoint")
	}
	if s.Checkpoint != "" && s.CheckpointEvery == 0 {
		s.CheckpointEvery = 30 * 24 * time.Hour
	}
	return nil
}

// EnduranceResult is the outcome of an endurance run.
type EnduranceResult struct {
	Spec EnduranceSpec
	// Events and Outages count the replayed failure events.
	Events, Outages int
	// AOR is the realized availability of redundancy per priority: the
	// fraction of rack-time spent with input power up and batteries full.
	AOR map[rack.Priority]units.Fraction
	// LossHoursPerYear is the per-priority mean loss of redundancy.
	LossHoursPerYear map[rack.Priority]float64
	// Metrics aggregates the control plane's protective actions over the
	// whole horizon.
	Metrics dynamo.Metrics
	// UnservedEnergy is IT energy the batteries could not carry across all
	// replayed outages (packs that ran to full depth of discharge).
	UnservedEnergy units.Energy
	// LoadDropEvents counts rack load drops from battery exhaustion.
	LoadDropEvents int
	// Tripped lists breakers that ended the run tripped (always empty when
	// the control plane does its job).
	Tripped []string
	// Interrupted marks a run stopped early by Spec.Interrupt; the result
	// fields are partial and the checkpoint holds the state to resume from.
	Interrupted bool
}

// enduranceState bundles the run's mutable simulation state plus the fixed
// plumbing the event loop needs. Everything under "mutable" round-trips
// through the checkpoint; the rest is rebuilt from the spec.
type enduranceState struct {
	spec   EnduranceSpec
	racks  []*rack.Rack
	gen    trace.Source
	hier   *dynamo.Hierarchy
	msb    *power.Node
	nodes  []*power.Node // msb walk order, for state export
	sbs    []*power.Node
	rpps   []*power.Node
	events []reliability.Event
	res    *EnduranceResult
	week   time.Duration

	// mutable
	clock         time.Duration
	unavail       []time.Duration // per rack, index-aligned with racks
	sbIdx, rppIdx int
	eventIdx      int
	nextCkpt      time.Duration
}

func (st *enduranceState) setDemands() {
	t := st.clock % st.week
	for i, r := range st.racks {
		r.SetDemand(st.gen.Rack(i, t))
	}
}

// tick advances one fine step: demands, rack dynamics, control plane, and
// redundancy accounting.
func (st *enduranceState) tick() {
	st.clock += st.spec.Step
	st.setDemands()
	for _, r := range st.racks {
		r.Step(st.clock, st.spec.Step)
	}
	st.hier.Tick(st.clock)
	for i, r := range st.racks {
		if !r.InputUp() || r.Charging() {
			st.unavail[i] += st.spec.Step
		}
	}
}

// settle fine-simulates until every rack has input power and no battery is
// charging, bounded by a safety horizon.
func (st *enduranceState) settle(maxDur time.Duration) {
	deadline := st.clock + maxDur
	for st.clock < deadline {
		st.tick()
		quiet := true
		for _, r := range st.racks {
			if !r.InputUp() || r.Charging() {
				quiet = false
				break
			}
		}
		if quiet {
			return
		}
	}
}

// jumpTo advances the clock without dynamics (used between events when every
// battery is full).
func (st *enduranceState) jumpTo(t time.Duration) {
	if t > st.clock {
		st.clock = t
	}
}

// scopeFor rotates SB- and RPP-level events across the breakers of that
// level; everything at or above the MSB hits the whole tree. The rotation
// counters are run state: a resume must target the same breakers the
// uninterrupted run would have.
func (st *enduranceState) scopeFor(c reliability.Component) *power.Node {
	switch c.Name {
	case "SB":
		st.sbIdx++
		return st.sbs[st.sbIdx%len(st.sbs)]
	case "RPP":
		st.rppIdx++
		return st.rpps[st.rppIdx%len(st.rpps)]
	default: // Utility, Sub/MSG, MSB
		return st.msb
	}
}

// processEvent replays one Table I failure event against the live fleet.
func (st *enduranceState) processEvent(ev reliability.Event) {
	spec, res := &st.spec, st.res
	hours := func(h float64) time.Duration {
		return time.Duration(h * float64(time.Hour))
	}
	minTrans := func(h float64) time.Duration {
		d := hours(h).Round(spec.Step)
		if d < spec.Step {
			d = spec.Step
		}
		return d
	}
	res.Events++
	scope := st.scopeFor(ev.Component)
	// Overlapping events start no earlier than the clock (rare; the
	// previous event's recovery is still in progress).
	st.jumpTo(hours(ev.StartHours))
	const settleLimit = 6 * time.Hour
	if ev.IsOutage() {
		res.Outages++
		outage := hours(ev.RepairHours)
		if outage < spec.Step {
			outage = spec.Step
		}
		scope.Deenergize(st.clock)
		// No control-plane dynamics while input is out: one bulk step
		// drains the batteries against the IT load (packs that run dry
		// record unserved energy and a load drop), and redundancy is lost
		// for the whole outage on the affected racks.
		st.clock += outage
		st.setDemands()
		for i, r := range st.racks {
			r.Step(st.clock, outage)
			if !r.InputUp() {
				st.unavail[i] += outage
			}
		}
		scope.Reenergize(st.clock)
		st.settle(settleLimit)
		return
	}
	// Failure/maintenance: an open transition now, another at restore.
	for leg := 0; leg < 2; leg++ {
		ot := minTrans(ev.OT1Hours)
		if leg == 1 {
			st.jumpTo(hours(ev.StartHours + ev.RepairHours))
			ot = minTrans(ev.OT2Hours)
		}
		scope.Deenergize(st.clock)
		end := st.clock + ot
		for st.clock < end {
			st.tick()
		}
		scope.Reenergize(st.clock)
		st.settle(settleLimit)
	}
}

// finish aggregates the redundancy accounting into the result.
func (st *enduranceState) finish() {
	spec, res := &st.spec, st.res
	horizon := time.Duration(spec.Years * float64(time.Hour) * 8766)
	counts := map[rack.Priority]int{}
	sums := map[rack.Priority]time.Duration{}
	for i, r := range st.racks {
		counts[r.Priority()]++
		sums[r.Priority()] += st.unavail[i]
	}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if counts[p] == 0 {
			continue
		}
		mean := float64(sums[p]) / float64(counts[p])
		frac := mean / float64(horizon)
		res.AOR[p] = units.Fraction(1 - frac)
		res.LossHoursPerYear[p] = frac * 8766
	}
	res.Metrics = st.hier.TotalMetrics()
	for _, r := range st.racks {
		res.UnservedEnergy += r.UnservedEnergy()
		res.LoadDropEvents += r.LoadDropEvents()
	}
	for _, nd := range st.nodes {
		if nd.Tripped() {
			res.Tripped = append(res.Tripped, nd.Name())
		}
	}
}

// newEnduranceState builds the fleet, hierarchy, and failure stream from a
// spec with defaults filled.
func newEnduranceState(spec EnduranceSpec) (*enduranceState, error) {
	n := spec.NumP1 + spec.NumP2 + spec.NumP3
	scale := float64(n) / 316
	gen, err := trace.NewGenerator(trace.Spec{
		NumRacks:    n,
		Seed:        spec.Seed,
		TroughPower: units.Power(1.9e6 * scale),
		PeakPower:   units.Power(2.1e6 * scale),
	})
	if err != nil {
		return nil, err
	}
	surface := battery.Fig5Surface()
	prio := func(i int) rack.Priority {
		switch {
		case i < spec.NumP1:
			return rack.P1
		case i < spec.NumP1+spec.NumP2:
			return rack.P2
		default:
			return rack.P3
		}
	}
	racks := make([]*rack.Rack, n)
	loads := make([]power.Load, n)
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("rack%03d", i), prio(i), spec.LocalPolicy, surface)
		loads[i] = racks[i]
	}
	msb, err := power.Build(power.Spec{Name: "msb", MSBLimit: spec.MSBLimit}, loads)
	if err != nil {
		return nil, err
	}
	msb.Walk(func(nd *power.Node) {
		if nd != msb {
			nd.SetLimit(100 * units.Megawatt)
		}
	})
	hier, err := dynamo.BuildHierarchy(msb, spec.Mode, core.DefaultConfig(), nil, 0)
	if err != nil {
		return nil, err
	}
	relSim, err := reliability.NewSimulator(reliability.TableI(), spec.Seed)
	if err != nil {
		return nil, err
	}
	st := &enduranceState{
		spec:    spec,
		racks:   racks,
		gen:     gen,
		hier:    hier,
		msb:     msb,
		events:  relSim.Events(spec.Years),
		unavail: make([]time.Duration, n),
		week:    7 * 24 * time.Hour,
		res: &EnduranceResult{
			Spec:             spec,
			AOR:              map[rack.Priority]units.Fraction{},
			LossHoursPerYear: map[rack.Priority]float64{},
		},
	}
	msb.Walk(func(nd *power.Node) {
		st.nodes = append(st.nodes, nd)
		switch nd.Level() {
		case power.LevelSB:
			st.sbs = append(st.sbs, nd)
		case power.LevelRPP:
			st.rpps = append(st.rpps, nd)
		}
	})
	st.nextCkpt = spec.CheckpointEvery
	return st, nil
}

// RunEndurance executes the endurance simulation. With Spec.Resume set it
// restores a checkpointed run and continues it from the next failure event.
func RunEndurance(spec EnduranceSpec) (*EnduranceResult, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	st, err := newEnduranceState(spec)
	if err != nil {
		return nil, err
	}
	if spec.Resume != "" {
		if err := st.restore(spec.Resume); err != nil {
			return nil, err
		}
	}
	for st.eventIdx < len(st.events) {
		if spec.HardStop != nil && spec.HardStop(st.clock) {
			return nil, ErrAborted
		}
		if spec.Interrupt != nil && spec.Interrupt() {
			if spec.Checkpoint != "" {
				if err := st.writeCheckpoint(); err != nil {
					return nil, err
				}
			}
			st.res.Interrupted = true
			return st.res, nil
		}
		st.processEvent(st.events[st.eventIdx])
		st.eventIdx++
		if spec.Checkpoint != "" && st.clock >= st.nextCkpt {
			if err := st.writeCheckpoint(); err != nil {
				return nil, err
			}
			st.nextCkpt = st.clock + spec.CheckpointEvery
		}
	}
	st.finish()
	return st.res, nil
}

// enduranceKind tags endurance checkpoints (see coordKind).
const enduranceKind = "endurance"

// enduranceCheckpoint is the payload inside the ckpt envelope for an
// endurance run: the resume event index plus every piece of mutable state.
// The failure stream itself is regenerated from the seed.
type enduranceCheckpoint struct {
	Kind        string `json:"kind"`
	Fingerprint uint64 `json:"fingerprint"`
	Seed        int64  `json:"seed"`

	EventIdx int             `json:"event_idx"`
	SBIdx    int             `json:"sb_idx"`
	RPPIdx   int             `json:"rpp_idx"`
	Clock    time.Duration   `json:"clock"`
	Unavail  []time.Duration `json:"unavail"`

	Racks []rack.State          `json:"racks"`
	Nodes []power.NodeState     `json:"nodes"`
	Hier  dynamo.HierarchyState `json:"hier"`

	Events  int `json:"events"`
	Outages int `json:"outages"`
}

// enduranceFingerprint hashes the spec fields that shape the simulation plus
// the trace, so a checkpoint refuses to resume a different experiment.
func enduranceFingerprint(spec *EnduranceSpec, gen trace.Source) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "years=%g|seed=%d|p1=%d|p2=%d|p3=%d|limit=%g|mode=%d|policy=%s|step=%d",
		spec.Years, spec.Seed, spec.NumP1, spec.NumP2, spec.NumP3,
		float64(spec.MSBLimit), spec.Mode, spec.LocalPolicy.Name(), spec.Step)
	fmt.Fprintf(h, "|trace=%016x", trace.Fingerprint(gen))
	return h.Sum64()
}

// writeCheckpoint atomically writes the run's checkpoint for a resume at the
// current event boundary.
func (st *enduranceState) writeCheckpoint() error {
	ck := &enduranceCheckpoint{
		Kind:        enduranceKind,
		Fingerprint: enduranceFingerprint(&st.spec, st.gen),
		Seed:        st.spec.Seed,
		EventIdx:    st.eventIdx,
		SBIdx:       st.sbIdx,
		RPPIdx:      st.rppIdx,
		Clock:       st.clock,
		Unavail:     st.unavail,
		Events:      st.res.Events,
		Outages:     st.res.Outages,
	}
	for _, r := range st.racks {
		ck.Racks = append(ck.Racks, r.ExportState())
	}
	for _, nd := range st.nodes {
		ck.Nodes = append(ck.Nodes, nd.ExportState())
	}
	hs, err := st.hier.ExportState()
	if err != nil {
		return fmt.Errorf("scenario: endurance checkpoint export: %w", err)
	}
	ck.Hier = hs
	if err := ckpt.WriteFileRotated(st.spec.Checkpoint, ck); err != nil {
		return fmt.Errorf("scenario: endurance checkpoint write: %w", err)
	}
	return nil
}

// restore loads an endurance checkpoint into a freshly built run.
func (st *enduranceState) restore(path string) error {
	var ck enduranceCheckpoint
	// Fall back to the previous-good cadence write when the latest fails
	// envelope verification; path reports what was actually restored.
	path, err := ckpt.ReadFileFallback(path, &ck)
	if err != nil {
		return err
	}
	if ck.Kind != enduranceKind {
		return fmt.Errorf("scenario: %s is a %q checkpoint, not an endurance checkpoint", path, ck.Kind)
	}
	if ck.Seed != st.spec.Seed {
		return fmt.Errorf("scenario: checkpoint %s was written with seed %d, this run uses seed %d", path, ck.Seed, st.spec.Seed)
	}
	if fp := enduranceFingerprint(&st.spec, st.gen); ck.Fingerprint != fp {
		return fmt.Errorf("scenario: checkpoint %s describes a different experiment (fingerprint %016x, spec is %016x)", path, ck.Fingerprint, fp)
	}
	if ck.EventIdx < 0 || ck.EventIdx > len(st.events) {
		return fmt.Errorf("scenario: checkpoint event index %d outside stream of %d events", ck.EventIdx, len(st.events))
	}
	if len(ck.Racks) != len(st.racks) || len(ck.Unavail) != len(st.racks) {
		return fmt.Errorf("scenario: checkpoint has %d racks (%d accounted), run has %d", len(ck.Racks), len(ck.Unavail), len(st.racks))
	}
	if len(ck.Nodes) != len(st.nodes) {
		return fmt.Errorf("scenario: checkpoint has %d breaker nodes, run has %d", len(ck.Nodes), len(st.nodes))
	}
	for i, s := range ck.Racks {
		if err := st.racks[i].RestoreState(s); err != nil {
			return err
		}
	}
	for i, s := range ck.Nodes {
		if err := st.nodes[i].RestoreState(s); err != nil {
			return err
		}
	}
	if err := st.hier.RestoreState(ck.Hier); err != nil {
		return err
	}
	st.eventIdx = ck.EventIdx
	st.sbIdx = ck.SBIdx
	st.rppIdx = ck.RPPIdx
	st.clock = ck.Clock
	copy(st.unavail, ck.Unavail)
	st.res.Events = ck.Events
	st.res.Outages = ck.Outages
	st.nextCkpt = st.clock + st.spec.CheckpointEvery
	return nil
}

// EnduranceTable renders an endurance result against the paper's Table II
// targets: realized AOR through the coordinated control plane versus the
// idealised per-priority goals.
func EnduranceTable(res *EnduranceResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Realized AOR over %.0f simulated years (%s mode, %v limit, %d events)",
			res.Spec.Years, res.Spec.Mode, res.Spec.MSBLimit, res.Events),
		"Priority", "Realized AOR", "Loss (hr/year)", "Table II target")
	targets := map[rack.Priority]string{rack.P1: "99.94%", rack.P2: "99.90%", rack.P3: "99.85%"}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if _, ok := res.AOR[p]; !ok {
			continue
		}
		t.Add(p.String(),
			fmt.Sprintf("%.3f%%", float64(res.AOR[p])*100),
			fmt.Sprintf("%.2f", res.LossHoursPerYear[p]),
			targets[p])
	}
	return t
}
