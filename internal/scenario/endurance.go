package scenario

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/reliability"
	"coordcharge/internal/report"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// EnduranceSpec parameterises a multi-year endurance run: Table I failure
// events replayed at their true hierarchy levels against a live MSB with the
// real coordinated control plane, measuring each rack's *realized*
// availability of redundancy. This quantifies the trade-off the paper states
// qualitatively ("our solution would slow down the battery charging process
// and compromise the redundancy"): coordination that throttles charging
// under a tight power limit shows up here as AOR loss, concentrated on the
// priorities the algorithm deprioritises.
type EnduranceSpec struct {
	// Years is the simulated horizon (default 50; capped at 250 to keep the
	// virtual clock within time.Duration).
	Years float64
	// Seed drives both the failure stream and the trace.
	Seed int64
	// NumP1, NumP2, NumP3 give the rack distribution (default 10/10/10; the
	// trace envelope scales with the population as in CoordSpec).
	NumP1, NumP2, NumP3 int
	// MSBLimit is the breaker limit (default: the population-scaled 2.5 MW
	// equivalent).
	MSBLimit units.Power
	// Mode is the coordination policy.
	Mode dynamo.Mode
	// LocalPolicy is the rack-local charger (default variable).
	LocalPolicy charger.Policy
	// Step is the fine-simulation tick (default 3 s).
	Step time.Duration
}

func (s *EnduranceSpec) fillDefaults() error {
	if s.Years == 0 {
		s.Years = 50
	}
	if s.Years < 0 || s.Years > 250 {
		return fmt.Errorf("scenario: endurance years %v out of (0, 250]", s.Years)
	}
	if s.NumP1 == 0 && s.NumP2 == 0 && s.NumP3 == 0 {
		s.NumP1, s.NumP2, s.NumP3 = 10, 10, 10
	}
	if s.NumP1 < 0 || s.NumP2 < 0 || s.NumP3 < 0 {
		return fmt.Errorf("scenario: negative rack count")
	}
	n := s.NumP1 + s.NumP2 + s.NumP3
	if s.MSBLimit == 0 {
		s.MSBLimit = units.Power(2.5e6 * float64(n) / 316)
	}
	if s.MSBLimit < 0 {
		return fmt.Errorf("scenario: negative MSB limit")
	}
	if s.LocalPolicy == nil {
		s.LocalPolicy = charger.Variable{}
	}
	if s.Step == 0 {
		s.Step = 3 * time.Second
	}
	if s.Step <= 0 {
		return fmt.Errorf("scenario: non-positive step")
	}
	return nil
}

// EnduranceResult is the outcome of an endurance run.
type EnduranceResult struct {
	Spec EnduranceSpec
	// Events and Outages count the replayed failure events.
	Events, Outages int
	// AOR is the realized availability of redundancy per priority: the
	// fraction of rack-time spent with input power up and batteries full.
	AOR map[rack.Priority]units.Fraction
	// LossHoursPerYear is the per-priority mean loss of redundancy.
	LossHoursPerYear map[rack.Priority]float64
	// Metrics aggregates the control plane's protective actions over the
	// whole horizon.
	Metrics dynamo.Metrics
	// UnservedEnergy is IT energy the batteries could not carry across all
	// replayed outages (packs that ran to full depth of discharge).
	UnservedEnergy units.Energy
	// LoadDropEvents counts rack load drops from battery exhaustion.
	LoadDropEvents int
}

// enduranceState bundles the mutable simulation state.
type enduranceState struct {
	spec    EnduranceSpec
	racks   []*rack.Rack
	gen     trace.Source
	hier    *dynamo.Hierarchy
	msb     *power.Node
	clock   time.Duration
	unavail map[*rack.Rack]time.Duration
	week    time.Duration
}

func (st *enduranceState) setDemands() {
	t := st.clock % st.week
	for i, r := range st.racks {
		r.SetDemand(st.gen.Rack(i, t))
	}
}

// tick advances one fine step: demands, rack dynamics, control plane, and
// redundancy accounting.
func (st *enduranceState) tick() {
	st.clock += st.spec.Step
	st.setDemands()
	for _, r := range st.racks {
		r.Step(st.clock, st.spec.Step)
	}
	st.hier.Tick(st.clock)
	for _, r := range st.racks {
		if !r.InputUp() || r.Charging() {
			st.unavail[r] += st.spec.Step
		}
	}
}

// settle fine-simulates until every rack has input power and no battery is
// charging, bounded by a safety horizon.
func (st *enduranceState) settle(maxDur time.Duration) {
	deadline := st.clock + maxDur
	for st.clock < deadline {
		st.tick()
		quiet := true
		for _, r := range st.racks {
			if !r.InputUp() || r.Charging() {
				quiet = false
				break
			}
		}
		if quiet {
			return
		}
	}
}

// jumpTo advances the clock without dynamics (used between events when every
// battery is full).
func (st *enduranceState) jumpTo(t time.Duration) {
	if t > st.clock {
		st.clock = t
	}
}

// RunEndurance executes the endurance simulation.
func RunEndurance(spec EnduranceSpec) (*EnduranceResult, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	n := spec.NumP1 + spec.NumP2 + spec.NumP3
	scale := float64(n) / 316
	gen, err := trace.NewGenerator(trace.Spec{
		NumRacks:    n,
		Seed:        spec.Seed,
		TroughPower: units.Power(1.9e6 * scale),
		PeakPower:   units.Power(2.1e6 * scale),
	})
	if err != nil {
		return nil, err
	}
	surface := battery.Fig5Surface()
	prio := func(i int) rack.Priority {
		switch {
		case i < spec.NumP1:
			return rack.P1
		case i < spec.NumP1+spec.NumP2:
			return rack.P2
		default:
			return rack.P3
		}
	}
	racks := make([]*rack.Rack, n)
	loads := make([]power.Load, n)
	for i := range racks {
		racks[i] = rack.New(fmt.Sprintf("rack%03d", i), prio(i), spec.LocalPolicy, surface)
		loads[i] = racks[i]
	}
	msb, err := power.Build(power.Spec{Name: "msb", MSBLimit: spec.MSBLimit}, loads)
	if err != nil {
		return nil, err
	}
	msb.Walk(func(nd *power.Node) {
		if nd != msb {
			nd.SetLimit(100 * units.Megawatt)
		}
	})
	hier, err := dynamo.BuildHierarchy(msb, spec.Mode, core.DefaultConfig(), nil, 0)
	if err != nil {
		return nil, err
	}

	// Scope targets: SB- and RPP-level events rotate across the breakers of
	// that level; everything at or above the MSB hits the whole tree.
	var sbs, rpps []*power.Node
	msb.Walk(func(nd *power.Node) {
		switch nd.Level() {
		case power.LevelSB:
			sbs = append(sbs, nd)
		case power.LevelRPP:
			rpps = append(rpps, nd)
		}
	})
	var sbIdx, rppIdx int
	scopeFor := func(c reliability.Component) *power.Node {
		switch c.Name {
		case "SB":
			sbIdx++
			return sbs[sbIdx%len(sbs)]
		case "RPP":
			rppIdx++
			return rpps[rppIdx%len(rpps)]
		default: // Utility, Sub/MSG, MSB
			return msb
		}
	}

	relSim, err := reliability.NewSimulator(reliability.TableI(), spec.Seed)
	if err != nil {
		return nil, err
	}
	events := relSim.Events(spec.Years)

	st := &enduranceState{
		spec:    spec,
		racks:   racks,
		gen:     gen,
		hier:    hier,
		msb:     msb,
		unavail: make(map[*rack.Rack]time.Duration, n),
		week:    7 * 24 * time.Hour,
	}
	const settleLimit = 6 * time.Hour
	res := &EnduranceResult{
		Spec:             spec,
		AOR:              map[rack.Priority]units.Fraction{},
		LossHoursPerYear: map[rack.Priority]float64{},
	}

	hours := func(h float64) time.Duration {
		return time.Duration(h * float64(time.Hour))
	}
	minTrans := func(h float64) time.Duration {
		d := hours(h).Round(spec.Step)
		if d < spec.Step {
			d = spec.Step
		}
		return d
	}
	for _, ev := range events {
		res.Events++
		scope := scopeFor(ev.Component)
		// Overlapping events start no earlier than the clock (rare; the
		// previous event's recovery is still in progress).
		st.jumpTo(hours(ev.StartHours))
		if ev.IsOutage() {
			res.Outages++
			outage := hours(ev.RepairHours)
			if outage < spec.Step {
				outage = spec.Step
			}
			scope.Deenergize(st.clock)
			// No control-plane dynamics while input is out: one bulk step
			// drains the batteries against the IT load (packs that run dry
			// record unserved energy and a load drop), and redundancy is lost
			// for the whole outage on the affected racks.
			st.clock += outage
			st.setDemands()
			for _, r := range st.racks {
				r.Step(st.clock, outage)
				if !r.InputUp() {
					st.unavail[r] += outage
				}
			}
			scope.Reenergize(st.clock)
			st.settle(settleLimit)
			continue
		}
		// Failure/maintenance: an open transition now, another at restore.
		for leg := 0; leg < 2; leg++ {
			ot := minTrans(ev.OT1Hours)
			if leg == 1 {
				st.jumpTo(hours(ev.StartHours + ev.RepairHours))
				ot = minTrans(ev.OT2Hours)
			}
			scope.Deenergize(st.clock)
			end := st.clock + ot
			for st.clock < end {
				st.tick()
			}
			scope.Reenergize(st.clock)
			st.settle(settleLimit)
		}
	}

	horizon := time.Duration(spec.Years * float64(time.Hour) * 8766)
	counts := map[rack.Priority]int{}
	sums := map[rack.Priority]time.Duration{}
	for _, r := range racks {
		counts[r.Priority()]++
		sums[r.Priority()] += st.unavail[r]
	}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if counts[p] == 0 {
			continue
		}
		mean := float64(sums[p]) / float64(counts[p])
		frac := mean / float64(horizon)
		res.AOR[p] = units.Fraction(1 - frac)
		res.LossHoursPerYear[p] = frac * 8766
	}
	res.Metrics = hier.TotalMetrics()
	for _, r := range racks {
		res.UnservedEnergy += r.UnservedEnergy()
		res.LoadDropEvents += r.LoadDropEvents()
	}
	return res, nil
}

// EnduranceTable renders an endurance result against the paper's Table II
// targets: realized AOR through the coordinated control plane versus the
// idealised per-priority goals.
func EnduranceTable(res *EnduranceResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Realized AOR over %.0f simulated years (%s mode, %v limit, %d events)",
			res.Spec.Years, res.Spec.Mode, res.Spec.MSBLimit, res.Events),
		"Priority", "Realized AOR", "Loss (hr/year)", "Table II target")
	targets := map[rack.Priority]string{rack.P1: "99.94%", rack.P2: "99.90%", rack.P3: "99.85%"}
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		if _, ok := res.AOR[p]; !ok {
			continue
		}
		t.Add(p.String(),
			fmt.Sprintf("%.3f%%", float64(res.AOR[p])*100),
			fmt.Sprintf("%.2f", res.LossHoursPerYear[p]),
			targets[p])
	}
	return t
}
