package scenario

import (
	"strings"
	"testing"
)

// RunFig13 executes all 18 production-scale runs (~2 s); the Table III
// shape it must reproduce: priority-aware never caps, the original charger
// always caps at the low limit, capping grows with discharge for the
// variable charger.
func TestRunFig13TableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("18 production-scale runs")
	}
	res, err := RunFig13(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Charts) != 6 {
		t.Fatalf("Fig 13 charts = %d, want 6", len(res.Charts))
	}
	for _, c := range res.Charts {
		if len(c.Series) != 4 { // limit + 3 algorithms
			t.Errorf("chart %q series = %d, want 4", c.Title, len(c.Series))
		}
	}
	rows := res.TableIII.Rows
	if len(rows) != 6 {
		t.Fatalf("Table III rows = %d", len(rows))
	}
	for i, row := range rows {
		if !strings.HasPrefix(row[3], "0 kW") {
			t.Errorf("case %s priority-aware capping = %q, want 0 kW", row[0], row[3])
		}
		if i%2 == 1 { // the 2.3 MW cases
			if strings.HasPrefix(row[1], "0 kW") {
				t.Errorf("case %s original charger capping = %q, want nonzero", row[0], row[1])
			}
		}
	}
	// Variable charger capping is monotone in discharge at the low limit:
	// rows (b), (d), (f).
	kw := func(cell string) string { return strings.SplitN(cell, " ", 2)[0] }
	if kw(rows[1][2]) > kw(rows[3][2]) || kw(rows[3][2]) > kw(rows[5][2]) {
		// String comparison suffices only same-width; just require (f) > (b) numerically.
		t.Logf("variable cells: %q %q %q", rows[1][2], rows[3][2], rows[5][2])
	}
}

// RunFig14's headline: under every shared limit, priority-aware meets at
// least as many P1 SLAs as global.
func TestRunFig14PriorityDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("power-limit sweeps at production scale")
	}
	charts, err := RunFig14(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 4 {
		t.Fatalf("Fig 14 charts = %d", len(charts))
	}
	// charts[0]=PA medium, charts[1]=global medium; series[0] is P1.
	for pair := 0; pair < 2; pair++ {
		pa, gl := charts[pair*2], charts[pair*2+1]
		for k := range pa.Series[0].Points {
			paP1 := pa.Series[0].Points[k].Y
			glP1 := gl.Series[0].Points[k].Y
			if paP1 < glP1 {
				t.Errorf("pair %d limit %v: PA P1 %v < global P1 %v",
					pair, pa.Series[0].Points[k].X, paP1, glP1)
			}
		}
	}
	// Counts are monotone nonincreasing as the limit decreases (the sweep
	// goes high→low).
	for _, c := range charts {
		for _, s := range c.Series {
			for k := 1; k < len(s.Points); k++ {
				if s.Points[k].Y > s.Points[k-1].Y+1e-9 {
					t.Errorf("%s %s: SLA count increased as limit decreased", c.Title, s.Name)
				}
			}
		}
	}
}

// RunFig15's headline: with all racks P1, priority-aware beats global by a
// large factor on average (the paper reports ~3×).
func TestRunFig15AllP1Advantage(t *testing.T) {
	if testing.Short() {
		t.Skip("power-limit sweeps at production scale")
	}
	charts, err := RunFig15(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 4 {
		t.Fatalf("Fig 15 charts = %d", len(charts))
	}
	avg := func(cIdx int) float64 {
		pts := charts[cIdx].Series[0].Points // P1
		var sum float64
		for _, p := range pts {
			sum += p.Y
		}
		return sum / float64(len(pts))
	}
	paAvg, glAvg := avg(2), avg(3)
	if glAvg <= 0 {
		t.Fatalf("global all-P1 average = %v", glAvg)
	}
	if ratio := paAvg / glAvg; ratio < 1.8 {
		t.Errorf("all-P1 priority-aware/global = %.2f, want ≥1.8 (paper ~3)", ratio)
	}
}
