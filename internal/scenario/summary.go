package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"coordcharge/internal/rack"
)

// Summary renders the result as a deterministic multi-line string: every
// aggregate the acceptance tests care about, map fields walked in fixed
// priority order, and the full time series folded into a digest. Two runs of
// the same experiment — including a run interrupted and resumed from a
// checkpoint — must produce byte-identical summaries; the kill-and-resume
// chaos harness compares them with ==.
func (r *CoordResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transition=%v peak=%.3f avg_dod=%.6f last_charge_done=%v interrupted=%t\n",
		r.TransitionLength, float64(r.PeakPower), float64(r.AvgDOD), r.LastChargeDone, r.Interrupted)
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		durs := r.ChargeDurations[p]
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		var mean time.Duration
		if len(durs) > 0 {
			mean = sum / time.Duration(len(durs))
		}
		fmt.Fprintf(&b, "%s: racks=%d sla_met=%d completed=%d mean_charge=%v\n",
			p, r.Racks[p], r.SLAMet[p], len(durs), mean)
	}
	fmt.Fprintf(&b, "metrics=%+v\n", r.Metrics)
	fmt.Fprintf(&b, "storm=%+v\n", r.Storm)
	fmt.Fprintf(&b, "guard=%+v\n", r.Guard)
	fmt.Fprintf(&b, "faults=%+v\n", r.FaultCounters)
	fmt.Fprintf(&b, "failsafe=%d unserved=%.3f load_drops=%d tripped=%v\n",
		r.FailSafeActivations, float64(r.UnservedEnergy), r.LoadDropEvents, r.Tripped)
	fmt.Fprintf(&b, "samples=%d dods=%d series=%016x\n", len(r.Samples), len(r.DODs), r.seriesHash())
	return b.String()
}

// seriesHash folds the sample series and per-rack DOD list into one value so
// the summary covers every data point without printing thousands of lines.
func (r *CoordResult) seriesHash() uint64 {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	_ = enc.Encode(r.Samples) // hash.Hash.Write never fails
	_ = enc.Encode(r.DODs)    // hash.Hash.Write never fails
	return h.Sum64()
}
