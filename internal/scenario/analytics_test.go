package scenario

import (
	"strconv"
	"strings"
	"testing"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/rack"
)

func analyticsRun(t *testing.T) *CoordResult {
	t.Helper()
	res, err := RunCoordinated(smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 100000, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChargeDurationsCollected(t *testing.T) {
	res := analyticsRun(t)
	total := 0
	for _, ds := range res.ChargeDurations {
		total += len(ds)
	}
	if total != 30 {
		t.Errorf("collected %d charge durations, want 30", total)
	}
	// P1 racks (SLA currents) finish faster than P3 racks on average.
	avg := func(p rack.Priority) float64 {
		ds := res.ChargeDurations[p]
		var sum float64
		for _, d := range ds {
			sum += d.Minutes()
		}
		return sum / float64(len(ds))
	}
	if avg(rack.P1) >= avg(rack.P3) {
		t.Errorf("P1 mean duration %.1f not below P3 %.1f", avg(rack.P1), avg(rack.P3))
	}
}

func TestChargeDurationTable(t *testing.T) {
	res := analyticsRun(t)
	tb := ChargeDurationTable(res)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"P1", "P2", "P3", "30 min", "90 min", "Deadline"} {
		if !strings.Contains(out, want) {
			t.Errorf("duration table missing %q", want)
		}
	}
}

func TestChargeDurationCDF(t *testing.T) {
	res := analyticsRun(t)
	c := ChargeDurationCDF(res)
	if len(c.Series) != 3 {
		t.Fatalf("CDF series = %d", len(c.Series))
	}
	for _, s := range c.Series {
		pts := s.Points
		if len(pts) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		// CDF properties: x nondecreasing, y strictly rising to 1.
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].Y <= pts[i-1].Y {
				t.Errorf("series %s not a CDF at %d", s.Name, i)
			}
		}
		if last := pts[len(pts)-1].Y; last != 1 {
			t.Errorf("series %s CDF ends at %v", s.Name, last)
		}
	}
}

func TestDODHistogramTable(t *testing.T) {
	res := analyticsRun(t)
	tb := DODHistogramTable(res, 5)
	if len(tb.Rows) == 0 {
		t.Fatal("no histogram rows")
	}
	total := 0
	for _, row := range tb.Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad count cell %q", row[1])
		}
		total += n
	}
	if total != 30 {
		t.Errorf("histogram racks = %d, want 30", total)
	}
}
