package scenario

import (
	"math"
	"strings"
	"testing"
	"time"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/rack"
	"coordcharge/internal/report"
	"coordcharge/internal/units"
)

// smallSpec is a reduced-population coordinated run for fast tests: 30 racks
// at a proportional power limit.
func smallSpec(mode dynamo.Mode, pol charger.Policy, limitKW float64, dod units.Fraction) CoordSpec {
	return CoordSpec{
		NumP1: 9, NumP2: 14, NumP3: 7, Seed: 1,
		MSBLimit:    units.Power(limitKW) * units.Kilowatt,
		Mode:        mode,
		LocalPolicy: pol,
		AvgDOD:      dod,
	}
}

func TestCoordSpecValidation(t *testing.T) {
	bad := []CoordSpec{
		{},
		{NumP1: -1, NumP2: 5, AvgDOD: 0.5},
		{NumP1: 5, AvgDOD: 0},
		{NumP1: 5, AvgDOD: 1.5},
		{NumP1: 5, AvgDOD: 0.5, Step: -time.Second},
	}
	for i, s := range bad {
		if _, err := RunCoordinated(s); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestRunCoordinatedRealisesTargetDOD(t *testing.T) {
	for _, dod := range []units.Fraction{0.3, 0.5, 0.7} {
		res, err := RunCoordinated(smallSpec(dynamo.ModeNone, charger.Variable{}, 100000, dod))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(res.AvgDOD-dod)) > 0.08 {
			t.Errorf("target DOD %v realised %v", dod, res.AvgDOD)
		}
	}
}

// The trace generator scales: a 30-rack population draws ~30/316 of the MSB
// envelope, so an unconstrained run never caps.
func TestRunCoordinatedUnconstrainedNoCapping(t *testing.T) {
	res, err := RunCoordinated(smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 100000, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxCapping != 0 {
		t.Errorf("capping %v with unconstrained limit", res.Metrics.MaxCapping)
	}
	if len(res.Tripped) != 0 {
		t.Errorf("breakers tripped: %v", res.Tripped)
	}
	total := 0
	for _, n := range res.SLAMet {
		total += n
	}
	if total < 20 {
		t.Errorf("only %d/30 racks met SLA with unconstrained power", total)
	}
	if res.LastChargeDone == 0 {
		t.Error("charges never completed")
	}
}

// The headline contrast (Table III): at a constrained limit the original
// charger needs heavy capping, the variable charger needs less, and the
// priority-aware algorithm none.
func TestTableIIIOrdering(t *testing.T) {
	// 30 racks on the default envelope draw ~190-200 kW at peak.
	const limit = 215 // kW: tight
	orig, err := RunCoordinated(smallSpec(dynamo.ModeNone, charger.Original{}, limit, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	vari, err := RunCoordinated(smallSpec(dynamo.ModeNone, charger.Variable{}, limit, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	prio, err := RunCoordinated(smallSpec(dynamo.ModePriorityAware, charger.Variable{}, limit, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if orig.Metrics.MaxCapping <= vari.Metrics.MaxCapping {
		t.Errorf("original capping (%v) not worse than variable (%v)", orig.Metrics.MaxCapping, vari.Metrics.MaxCapping)
	}
	if prio.Metrics.MaxCapping != 0 {
		t.Errorf("priority-aware capping = %v, want 0", prio.Metrics.MaxCapping)
	}
	// The original charger's spike is the largest.
	if orig.PeakPower <= prio.PeakPower {
		t.Errorf("original peak (%v) not above priority-aware (%v)", orig.PeakPower, prio.PeakPower)
	}
}

// Priority-aware protects P1 SLAs under constraint better than global.
func TestFig14Contrast(t *testing.T) {
	const limit = 215
	pa, err := RunCoordinated(smallSpec(dynamo.ModePriorityAware, charger.Variable{}, limit, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	gl, err := RunCoordinated(smallSpec(dynamo.ModeGlobal, charger.Variable{}, limit, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if pa.SLAMet[rack.P1] <= gl.SLAMet[rack.P1] {
		t.Errorf("P1 SLAs: priority-aware %d not above global %d", pa.SLAMet[rack.P1], gl.SLAMet[rack.P1])
	}
}

func TestRunCoordinatedDeterministic(t *testing.T) {
	a, err := RunCoordinated(smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 220, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCoordinated(smallSpec(dynamo.ModePriorityAware, charger.Variable{}, 220, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("samples diverge at %d", i)
		}
	}
	if a.Metrics != b.Metrics {
		t.Errorf("metrics differ: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestRunCoordinatedSeriesShape(t *testing.T) {
	res, err := RunCoordinated(smallSpec(dynamo.ModeNone, charger.Original{}, 100000, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 10 {
		t.Fatalf("too few samples: %d", len(res.Samples))
	}
	// Pre-transition: no recharge. Post-restore: a recharge spike appears,
	// then decays to zero.
	first := res.Samples[0]
	if first.T >= 0 || first.Recharge != 0 {
		t.Errorf("first sample %+v, want pre-transition with no recharge", first)
	}
	var maxRecharge units.Power
	for _, s := range res.Samples {
		if s.Recharge > maxRecharge {
			maxRecharge = s.Recharge
		}
	}
	// 30 racks at the original charger's 1.9 kW each.
	if maxRecharge < 50*units.Kilowatt {
		t.Errorf("recharge spike = %v, want ~57 kW", maxRecharge)
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Recharge != 0 {
		t.Errorf("recharge did not decay to zero: %v", last.Recharge)
	}
}

func TestFigureChartsNonEmpty(t *testing.T) {
	charts := Fig3Charts()
	if len(charts) != 3 {
		t.Fatalf("Fig3Charts = %d charts", len(charts))
	}
	for _, c := range append(charts, Fig4Chart(), Fig5Chart(), Fig6bChart(), Fig9bChart()) {
		if len(c.Series) == 0 {
			t.Errorf("chart %q has no series", c.Title)
		}
		for _, s := range c.Series {
			if len(s.Points) == 0 {
				t.Errorf("chart %q series %q empty", c.Title, s.Name)
			}
		}
	}
}

func TestFig4ChartSpikeIndependentOfDOD(t *testing.T) {
	c := Fig4Chart()
	if len(c.Series) != 4 {
		t.Fatalf("Fig 4 series = %d, want 4", len(c.Series))
	}
	// The initial power is ~the same for every DOD (the original charger
	// always starts in CC at 5 A) while durations differ.
	var first []float64
	var last []float64
	for _, s := range c.Series {
		first = append(first, s.Points[0].Y)
		last = append(last, s.Points[len(s.Points)-1].X)
	}
	for i := 1; i < len(first); i++ {
		if math.Abs(first[i]-first[0]) > 25 {
			t.Errorf("initial power differs across DOD: %v", first)
		}
		if last[i] <= last[i-1] {
			t.Errorf("charge duration not increasing with DOD: %v", last)
		}
	}
}

func TestFig9aChart(t *testing.T) {
	c, err := Fig9aChart(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Series[0].Points
	if len(pts) != 12 {
		t.Fatalf("Fig 9a points = %d, want 12", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y >= pts[i-1].Y {
			t.Errorf("AOR not decreasing with charge time at %v", pts[i].X)
		}
	}
}

func TestFig9bChartStaircase(t *testing.T) {
	c := Fig9bChart()
	if len(c.Series) != 3 {
		t.Fatalf("Fig 9b series = %d", len(c.Series))
	}
	// P1 starts at 2 A, P2/P3 at 1 A; all currents are nondecreasing in DOD.
	starts := map[string]float64{"P1": 2, "P2": 1, "P3": 1}
	for _, s := range c.Series {
		if s.Points[0].Y != starts[s.Name] {
			t.Errorf("%s starts at %v A, want %v", s.Name, s.Points[0].Y, starts[s.Name])
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y {
				t.Errorf("%s SLA current decreases at DOD %v", s.Name, s.Points[i].X)
			}
		}
	}
}

func TestTableITableShape(t *testing.T) {
	tb := TableITable()
	if len(tb.Rows) != 11 {
		t.Errorf("Table I rows = %d, want 11", len(tb.Rows))
	}
}

func TestTableIITableShape(t *testing.T) {
	tb, err := TableIITable(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Table II rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][3], "30 minutes") {
		t.Errorf("P1 SLA cell = %q", tb.Rows[0][3])
	}
}

func TestFig12Chart(t *testing.T) {
	c, err := Fig12Chart(1)
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Series[0].Points
	if len(pts) < 100 {
		t.Fatalf("Fig 12 points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Y < 1.8 || p.Y > 2.2 {
			t.Errorf("aggregate %v MW at %v h outside the diurnal envelope", p.Y, p.X)
		}
	}
}

// Fig 2 case study: a ~15% regional spike from the sub-second sag.
func TestFig2Shape(t *testing.T) {
	c := Fig2Chart(50) // ~98 racks scaled up
	pts := c.Series[0].Points
	if len(pts) < 20 {
		t.Fatalf("Fig 2 points = %d", len(pts))
	}
	base := pts[0].Y
	if math.Abs(base-61.6) > 1 {
		t.Errorf("pre-outage region power = %v MW, want ~61.6", base)
	}
	var peak float64
	for _, p := range pts {
		if p.Y > peak {
			peak = p.Y
		}
	}
	spike := peak - base
	if spike < 7 || spike > 11 {
		t.Errorf("recharge spike = %.1f MW, want ~9.3", spike)
	}
	end := pts[len(pts)-1].Y
	if math.Abs(end-base) > 1 {
		t.Errorf("power did not return to base: %v MW", end)
	}
}

// Fig 7: variable charger spikes ~10 kW where the original would spike >26 kW.
func TestFig7Shape(t *testing.T) {
	c := Fig7Chart()
	if len(c.Series) != 2 {
		t.Fatalf("Fig 7 series = %d", len(c.Series))
	}
	spike := func(s *report.Series) float64 {
		base := s.Points[0].Y
		var peak float64
		for _, p := range s.Points {
			if p.Y > peak {
				peak = p.Y
			}
		}
		return peak - base
	}
	vSpike := spike(c.Series[0])
	oSpike := spike(c.Series[1])
	if vSpike < 9 || vSpike > 12 {
		t.Errorf("variable charger spike = %.1f kW, want ~10.6", vSpike)
	}
	if oSpike < 24 || oSpike > 28 {
		t.Errorf("original charger spike = %.1f kW, want ~26.6", oSpike)
	}
	// The headline: a ~60% reduction in recharge power.
	if red := 1 - vSpike/oSpike; red < 0.5 || red > 0.7 {
		t.Errorf("recharge power reduction = %.0f%%, want ~60%%", red*100)
	}
}

// Fig 10: P1 racks at ~760 W finish in ~30 min; P2/P3 at ~380 W within the
// hour.
func TestFig10Shape(t *testing.T) {
	c := Fig10Chart()
	bySeries := map[string]*report.Series{}
	for _, s := range c.Series {
		bySeries[s.Name] = s
	}
	peakOf := func(s *report.Series) float64 {
		var m float64
		for _, p := range s.Points {
			if p.Y > m {
				m = p.Y
			}
		}
		return m
	}
	doneAt := func(s *report.Series) float64 {
		last := 0.0
		for _, p := range s.Points {
			if p.Y > 1 {
				last = p.X
			}
		}
		return last
	}
	p1 := bySeries["P1 racks (per rack)"]
	p2 := bySeries["P2 racks (per rack)"]
	if got := peakOf(p1); math.Abs(got-760) > 20 {
		t.Errorf("P1 recharge power = %.0f W, want ~760 (paper: about 700)", got)
	}
	if got := peakOf(p2); math.Abs(got-380) > 20 {
		t.Errorf("P2 recharge power = %.0f W, want ~380 (paper: about 350)", got)
	}
	if got := doneAt(p1); got < 20 || got > 35 {
		t.Errorf("P1 charge completes at %.0f min, want ~30", got)
	}
	if got := doneAt(p2); got < 40 || got > 65 {
		t.Errorf("P2 charge completes at %.0f min, want within the hour", got)
	}
}

// Fig 11: the override lands ~20 s after the charge begins; power steps from
// the 2 A default down to the 1 A override.
func TestFig11Shape(t *testing.T) {
	c := Fig11Chart()
	pts := c.Series[0].Points
	sawDefault := false
	sawOverride := false
	var overrideAt float64
	for _, p := range pts {
		if math.Abs(p.Y-760) < 5 {
			sawDefault = true
		}
		if sawDefault && !sawOverride && math.Abs(p.Y-380) < 5 {
			sawOverride = true
			overrideAt = p.X
		}
	}
	if !sawDefault {
		t.Error("never saw the 2 A default recharge power")
	}
	if !sawOverride {
		t.Fatal("never saw the 1 A override take effect")
	}
	if overrideAt < 15 || overrideAt > 40 {
		t.Errorf("override landed at %.0f s after transition, want ~20-30", overrideAt)
	}
}

func TestRunSweepChartShape(t *testing.T) {
	c, err := RunSweep(SweepSpec{
		Label: "test", NumP1: 6, NumP2: 6, NumP3: 6, AvgDOD: 0.5,
		Mode: dynamo.ModePriorityAware, Seed: 1,
		Limits: []units.Power{150 * units.Kilowatt, 130 * units.Kilowatt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 4 { // P1, P2, P3, total
		t.Fatalf("sweep series = %d", len(c.Series))
	}
	for _, s := range c.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Name, len(s.Points))
		}
	}
}
