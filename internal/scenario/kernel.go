package scenario

// The event-driven coordinated kernel: a fused tick loop that visits every
// grid tick but does O(1) work on ticks where nothing can change, advancing
// charging batteries analytically (bit-exactly, via battery.AdvanceTicks)
// only when state must be observed. The dense loop in coordRun.run is the
// reference semantics; this kernel is an optimisation that must reproduce it
// bit for bit — flight digests, samples, and result fields all byte-identical.
//
// A tick executes densely (the verbatim coordRun.tick) when any of:
//
//   - a scheduled wake is due: the run start, the outage and restore edges,
//     the LastChargeDone latch tick, and the done tick all come from the
//     internal sim.Engine wake queue;
//   - the control plane is not quiescent: a controller mutated state last
//     tick, holds unconfirmed overrides, or is down; a guard is mid-action;
//     a breaker is tripped or overdrawn; a rack is capped;
//   - the outage is in progress (racks must step to discharge);
//   - an analytic bound says the control plane *could* act: the fleet draw
//     could approach the MSB limit (headroom bound), or measured headroom
//     could fund a storm-queue admission or a postponed-charge restart.
//
// Every other tick is skipped: demand is never synthesized or pushed to the
// racks, packs are not stepped, controllers and guards do not run. The
// bounds hold a Lipschitz demand envelope (trace.AggregateRate) anchored at
// the last exactly-evaluated tick, so a skipped tick costs O(1) — no trace
// sinusoids; the envelope re-anchors exactly (one frame, two sins per rack)
// only when a loose bound cannot prove the skip. Output samples on skipped
// ticks are synthesized from an exact single-frame aggregate and the
// materialized recharge state, reproducing the dense accumulation order
// bit for bit. See DESIGN.md §15 for the wakeup taxonomy and the proof
// obligations behind each bound.

import (
	"fmt"
	"time"

	"coordcharge/internal/dynamo"
	"coordcharge/internal/obs"
	"coordcharge/internal/rack"
	"coordcharge/internal/sim"
	"coordcharge/internal/storm"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// Kernel selectors for CoordSpec.Kernel.
const (
	// KernelDense is the reference per-tick loop (the default).
	KernelDense = "dense"
	// KernelEvent is the event-driven kernel. Specs the kernel cannot prove
	// bounds for (fault injection, the grid plane, the distributed plane,
	// command latency, watchdogs, stale telemetry, per-tick hooks) silently
	// fall back to the dense loop, so the switch is always safe to set.
	KernelEvent = "event"
)

// kernelEligible reports whether the event kernel's quiescence and wake
// bounds are sound for this spec. Each excluded feature injects per-tick
// state changes the bounds cannot see: faults flip controllers and telemetry
// at arbitrary ticks; the grid plane varies the effective limit and defers
// admission on price signals; command latency and the distributed plane
// queue work in the run's own engine; watchdogs and heartbeats age per tick;
// StaleAfter makes telemetry freshness a function of wall-clock distance;
// StepHook observes every tick by contract; un-relaxed lower levels would
// need a headroom bound per breaker, not just at the MSB.
func kernelEligible(spec *CoordSpec) bool {
	return spec.CommandLatency == 0 &&
		!spec.Distributed &&
		!spec.Faults.Enabled() &&
		spec.Grid == nil &&
		spec.WatchdogTTL == 0 &&
		spec.StaleAfter <= 0 &&
		spec.StepHook == nil &&
		*spec.RelaxLowerLevels
}

// Bound paddings, in watts. boundSlackW pads the cached recharge bounds
// against float summation-order drift when they are folded with the demand
// aggregates; tickSlackW is the per-tick comparison margin against the dense
// plane's own accumulation order (breaker tree sums vs flat sums). Both are
// ~7 orders of magnitude above the worst-case float64 reordering error of a
// megawatt-scale 316-term sum, and ~2 orders below any real decision margin
// (the smallest grant is ~380 W), so they can neither mask a real crossing
// nor trip spuriously.
const (
	boundSlackW = units.Power(2)
	tickSlackW  = units.Power(8)
)

// KernelState is the event kernel's contribution to a coordinated-run
// checkpoint: the wake queue as serializable views plus the tick accounting.
// Everything else the kernel holds is a cache rebuilt from the restored run
// state; the stored queue exists so the rebuild can be *verified* — a
// restore that drops a state field rebuilds a different wake schedule and
// must fail loudly instead of silently diverging.
type KernelState struct {
	Queue          []sim.EventView `json:"queue,omitempty"`
	TicksExecuted  uint64          `json:"ticks_executed"`
	TicksSkipped   uint64          `json:"ticks_skipped"`
	EventsExecuted uint64          `json:"events_executed"`
}

// eventKernel is the live kernel state for one run.
type eventKernel struct {
	cr  *coordRun
	gen *trace.Generator

	// wakes is the kernel's private discrete-event queue: state-change
	// deadlines (outage, restore, latch, done, checkpoint cadence) live here
	// so the loop's only per-skipped-tick event work is one NextAt peek.
	// It is distinct from coordRun.engine, which stays nil for eligible
	// specs (the checkpoint strategy must remain "direct").
	wakes *sim.Engine

	// The demand envelope: aggAt is the exact clamped demand aggregate at
	// tick aggT — bit-identical to the dense plane's SetDemand-then-sum of
	// that frame in rack index order — and aggRate bounds how fast the
	// aggregate can move (W/s), so at any later tick of the same swing
	// regime the aggregate lies within aggAt ± aggRate·(t−aggT).
	aggAt   units.Power   //coordvet:transient envelope anchor: RestoreState re-anchors exactly at the resume tick
	aggT    time.Duration //coordvet:transient envelope anchor: RestoreState re-anchors exactly at the resume tick
	aggRate float64
	aggBuf  []units.Power //coordvet:transient single-frame scratch for FrameAggregates

	// rUB/rLB bound the fleet recharge power over the current skip span:
	// rUB is an upper bound valid until the next charging-set mutation
	// (recharge is nonincreasing inside a quiescent span), rLB a lower
	// bound valid for maxWindow past matAt (battery.PowerLowerBound).
	rUB, rLB units.Power //coordvet:transient cache: RestoreState recomputes both from restored pack state

	// matAt is the tick time the battery fleet is materialized through:
	// every pack's state equals the dense plane's after executing the tick
	// at matAt. maxWindow caps how far bounds may age before the fleet is
	// re-materialized.
	matAt     time.Duration //coordvet:transient derived: the checkpoint cursor fixes it (materialize runs before every write)
	maxWindow time.Duration

	quiet       bool //coordvet:transient conservative: RestoreState clears it, forcing the first resumed tick dense; control plane proven inert since the last executed tick
	force       bool //coordvet:transient per-tick latch, never live across a write: a wake fired, this tick must execute densely
	ckptDue     bool //coordvet:transient per-tick latch, never live across a write: the checkpoint-cadence wake fired
	prevSkipped bool //coordvet:transient conservative: RestoreState sets it, re-syncing controller clocks on the first resumed tick

	// postponedN mirrors the controllers' postponed-charge population for
	// the restart bound; minGrantW is the smallest wattage any admission or
	// restart can grant (below it both are proven no-ops).
	postponedN int //coordvet:transient cache: recomputeQuiet re-mirrors it from restored controller state before any skip decision
	minGrantW  units.Power

	// lastCompletion is the grid tick of the latest charge completion
	// discovered by materialize; doneT is the computed early-exit tick
	// (-1 until the fleet drains).
	lastCompletion time.Duration //coordvet:transient derived: RestoreState rebuilds it from the restored LastChargeDone, and the wake-queue verification proves the rebuild
	doneT          time.Duration //coordvet:transient derived: noteDrained reconstructs the done schedule on restore, verified against the stored queue

	controllers []*dynamo.Controller
	guards      []*storm.Guard
	stormQ      *storm.Queue

	ticksExecuted, ticksSkipped uint64
	eventsBase                  uint64 // wake executions carried over a resume

	gEvents, gSkipped *obs.Gauge
}

// newEventKernel wires the kernel to a freshly built run and schedules the
// static wakes. Call only when kernelEligible holds (the hierarchy exists
// and coordRun.engine is nil) and the demand source is the synthetic
// generator (the envelope needs its analytic rate bound).
func newEventKernel(cr *coordRun, gen *trace.Generator) *eventKernel {
	k := &eventKernel{
		cr:          cr,
		gen:         gen,
		aggRate:     gen.AggregateRate(),
		wakes:       sim.NewEngine(),
		matAt:       cr.start - cr.spec.Step,
		maxWindow:   time.Minute,
		doneT:       -1,
		controllers: cr.hier.Controllers(),
		guards:      cr.hier.Guards(),
		stormQ:      cr.hier.StormQueue(),
		minGrantW:   units.Power(float64(cr.cfg.Surface.MinCurrent()) * cr.cfg.WattsPerAmp),
	}
	if k.maxWindow < cr.spec.Step {
		k.maxWindow = cr.spec.Step
	}
	if cr.spec.Obs != nil {
		k.gEvents = cr.spec.Obs.Gauge("sim.events_executed")
		k.gSkipped = cr.spec.Obs.Gauge("sim.ticks_skipped")
	}
	k.wakes.ScheduleAt(cr.start, "start", k.onForce)
	k.wakes.ScheduleAt(k.ceilTick(cr.loseAt), "outage", k.onForce)
	k.wakes.ScheduleAt(k.ceilTick(cr.restoreAt), "restore", k.onForce)
	if cr.spec.Checkpoint != "" {
		k.scheduleCkptWake()
	}
	k.refreshRechargeBounds()
	k.refreshAgg(cr.start)
	return k
}

// frame returns the demand frame for tick now, generating it at most once —
// dense ticks, sample synthesis, and peak probes within a tick share it. The
// coordRun block variables carry it so cr.tick reads the exact same slice a
// dense run would (single-frame blocks instead of 256-frame slabs: the
// generator's per-frame terms are shared only within a frame, so per-frame
// cost is identical and nothing is synthesized for skipped spans).
func (k *eventKernel) frame(now time.Duration) []units.Power {
	cr := k.cr
	if cr.blockStart != now || cr.blockEnd != now {
		cr.demand = trace.Frames(cr.gen, cr.demand, now, now, cr.spec.Step)
		cr.blockStart, cr.blockEnd = now, now
	}
	return cr.demand
}

// refreshAgg re-anchors the demand envelope at tick now with the exact
// clamped aggregate of that frame (bit-identical to the dense plane's
// SetDemand-then-ITLoad sum, per FrameAggregates' contract).
func (k *eventKernel) refreshAgg(now time.Duration) units.Power {
	k.aggBuf = trace.FrameAggregates(k.frame(now), k.cr.n, rack.MaxITLoad, k.aggBuf)
	k.aggAt, k.aggT = k.aggBuf[0], now
	return k.aggAt
}

// aggDrift returns the envelope half-width at tick now: how far the
// aggregate may have moved since the anchor. A weekend-damping regime switch
// invalidates the Lipschitz bound, so the envelope re-anchors there (exact,
// width zero).
func (k *eventKernel) aggDrift(now time.Duration) units.Power {
	if now == k.aggT {
		return 0
	}
	if k.gen.SwingRegime(now) != k.gen.SwingRegime(k.aggT) {
		k.refreshAgg(now)
		return 0
	}
	return units.Power(k.aggRate * (now - k.aggT).Seconds())
}

func (k *eventKernel) onForce(time.Duration) { k.force = true }

// ceilTick returns the first grid tick at or after t; firstTickAfter the
// first strictly after t. The tick grid is start + j*Step — PreRoll need not
// divide Step, so loseAt/restoreAt are not necessarily on it.
func (k *eventKernel) ceilTick(t time.Duration) time.Duration {
	step := k.cr.spec.Step
	at := k.cr.start + (t-k.cr.start)/step*step
	if at < t {
		at += step
	}
	return at
}

func (k *eventKernel) firstTickAfter(t time.Duration) time.Duration {
	at := k.ceilTick(t)
	if at == t {
		at += k.cr.spec.Step
	}
	return at
}

func (k *eventKernel) scheduleCkptWake() {
	k.wakes.ScheduleAt(k.ceilTick(k.cr.nextCkpt), "checkpoint",
		func(time.Duration) { k.ckptDue = true })
}

// run is the kernel's replacement for coordRun.run: the same cursor-to-
// horizon walk with the same hook order, executing coordRun.tick verbatim on
// non-skippable ticks and O(1) bookkeeping otherwise.
func (k *eventKernel) run() (*CoordResult, error) {
	cr := k.cr
	spec, res := &cr.spec, cr.res
	last := cr.cursor - spec.Step
	for now := cr.cursor; now <= cr.horizon; now += spec.Step {
		if spec.HardStop != nil && spec.HardStop(now) {
			return nil, ErrAborted
		}
		if spec.Interrupt != nil && spec.Interrupt() {
			if spec.Checkpoint != "" {
				// Ticks before now have (logically) executed: materialize
				// the fleet through now-Step and stamp the controllers'
				// clocks there, so the exported state matches what the
				// dense loop would have written at this cursor.
				k.materialize(now - spec.Step)
				if k.prevSkipped {
					k.syncClocks(now - spec.Step)
				}
				if err := cr.writeCheckpoint(now); err != nil {
					return nil, err
				}
			}
			res.Interrupted = true
			k.finishCounters()
			return res, nil
		}
		k.force = false
		if at, ok := k.wakes.NextAt(); ok && at <= now {
			k.wakes.Run(now)
		}
		// Re-materialize before the bounds age past their validity window.
		if cr.numOutstanding > 0 && now-k.matAt >= k.maxWindow {
			k.materialize(now - spec.Step)
		}
		if k.force || !k.quiet || (cr.outageFired && !cr.restoreFired) || k.boundsTrip(now) {
			k.materialize(now - spec.Step)
			if k.prevSkipped {
				// Skipped ticks never ran the controllers; move their
				// clocks to the previous tick so dt inside Tick is one
				// Step, exactly as on the dense plane.
				k.syncClocks(now - spec.Step)
			}
			k.frame(now) // single-frame block; cr.tick reads it verbatim
			done := cr.tick(now)
			k.prevSkipped = false
			k.afterExec(now)
			if done {
				k.finishCounters()
				cr.finish()
				return res, nil
			}
		} else {
			k.ticksSkipped++
			k.prevSkipped = true
			k.skip(now)
		}
		last = now
		if k.ckptDue {
			k.ckptDue = false
			if spec.Checkpoint != "" {
				k.materialize(now)
				if k.prevSkipped {
					k.syncClocks(now)
				}
				if err := cr.writeCheckpoint(now + spec.Step); err != nil {
					return nil, err
				}
				cr.nextCkpt = now + spec.CheckpointEvery
				k.scheduleCkptWake()
			}
		}
	}
	// The horizon ended the run with charges possibly still in flight:
	// finish() reads live pack state (DODs, charge durations), so bring the
	// fleet current through the last processed tick first.
	k.materialize(last)
	k.finishCounters()
	cr.finish()
	return res, nil
}

// skip is the O(1) tick body: synthesize the output sample on sample ticks
// and keep the post-restore peak tracker exact, both against materialized
// state. Everything else is proven unchanged by quiescence plus the bounds.
func (k *eventKernel) skip(now time.Duration) {
	cr := k.cr
	spec, res := &cr.spec, cr.res
	if now-cr.lastSample >= spec.SampleEvery {
		k.materialize(now)
		// Reproduce the dense accumulation bit for bit: IT is the clamped
		// frame sum in rack index order (FrameAggregates' contract), the
		// recharge term the same per-rack fold over live pack state. Capped
		// is identically zero on a skippable tick (a capped rack blocks
		// quiescence), as are Shaved/GridCap (no grid plane when eligible).
		it := k.refreshAgg(now)
		var rech units.Power
		for _, r := range cr.racks {
			if r.InputUp() {
				rech += r.RechargePower()
			}
		}
		cr.lastSample = now
		res.Samples = append(res.Samples, Sample{
			T: now - cr.loseAt, Total: it + rech, IT: it, Recharge: rech,
		})
	}
	if now > cr.restoreAt {
		drift := k.aggDrift(now)
		if k.aggAt+drift+k.rUB > res.PeakPower-tickSlackW {
			if drift != 0 {
				k.refreshAgg(now)
			}
			if k.aggAt+k.rUB > res.PeakPower-tickSlackW {
				// The running peak could advance this tick: take the exact
				// dense measurement (demand pushed, packs current, breaker
				// tree sum) without executing a control-plane tick.
				k.materialize(now)
				frame := k.frame(now)
				for i, r := range cr.racks {
					r.SetDemand(frame[i])
				}
				if p := cr.msb.Power(); p > res.PeakPower {
					res.PeakPower = p
				}
			}
		}
	}
}

// boundsTrip reports whether the control plane could act at tick now.
// Soundness directions: the fleet draw at the tick is at most demand+rUB
// (headroom, guard, and trip checks compare draw *upward* against limits)
// and at least demand+rLB (admission and restart budgets are limit *minus*
// draw, so a draw floor caps the budget). Demand enters through the
// envelope: first the O(1) drift-widened bounds; only if those cannot prove
// the skip, the exact aggregate (two sins per rack — ~100x cheaper than a
// dense tick), so the final decision matches what the dense plane would
// measure.
func (k *eventKernel) boundsTrip(now time.Duration) bool {
	cr := k.cr
	limit := cr.msb.Limit()
	drift := k.aggDrift(now)
	if !k.boundsTripAt(limit, k.aggAt-drift, k.aggAt+drift) {
		return false
	}
	if drift == 0 {
		return true
	}
	d := k.refreshAgg(now)
	return k.boundsTripAt(limit, d, d)
}

func (k *eventKernel) boundsTripAt(limit, dLo, dHi units.Power) bool {
	// Headroom: protect/guard/Observe act only when draw approaches the MSB
	// limit (lower levels are relaxed to 100 MW by eligibility).
	if dHi+k.rUB > limit-tickSlackW {
		return true
	}
	// Storm admission: a waiting queue is only granted power when measured
	// budget (limit - draw - margin) can fund the minimum grant.
	if k.stormQ != nil && k.stormQ.Len() > 0 {
		if limit-k.stormQ.Config().Margin(limit)-dLo-k.rLB >= k.minGrantW-tickSlackW {
			return true
		}
	}
	// Postponed restarts: restartPostponed stops at headroom < the minimum
	// grant; until headroom can reach it, the waiting set cannot move.
	if k.postponedN > 0 {
		if limit-dLo-k.rLB >= k.minGrantW-tickSlackW {
			return true
		}
	}
	return false
}

// materialize advances every charging pack analytically through the tick at
// `to`, running the single completing tick of each charge through the real
// rack step so chargeEnd, the outstanding set, and the completion time latch
// exactly as on the dense plane.
func (k *eventKernel) materialize(to time.Duration) {
	cr := k.cr
	if to <= k.matAt {
		return
	}
	step := cr.spec.Step
	ticks := int((to - k.matAt) / step)
	for i, r := range cr.racks {
		if !r.Charging() {
			continue
		}
		pk := r.Pack()
		left, t := ticks, k.matAt
		for left > 0 && r.Charging() {
			adv := pk.AdvanceTicks(step, left)
			t += time.Duration(adv) * step
			left -= adv
			if left > 0 {
				// AdvanceTicks withholds the completing tick; execute it
				// for real. The remaining ticks of this span are pure
				// no-ops on an idle, input-up rack.
				t += step
				left--
				r.Step(t, step)
			}
		}
		if cr.outstanding[i] && !r.Charging() && r.PendingDOD() <= 0 {
			cr.outstanding[i] = false
			cr.numOutstanding--
			if t > k.lastCompletion {
				k.lastCompletion = t
			}
		}
	}
	k.matAt = to
	k.refreshRechargeBounds()
	if cr.restoreFired && cr.numOutstanding == 0 {
		k.noteDrained()
	}
}

// refreshRechargeBounds recomputes rUB/rLB from live pack state. Inside a
// quiescent span no charge can start (starts require a controller mutation,
// which forces density), CC-phase recharge is constant and CV-phase recharge
// decays, so the flat sum now upper-bounds the sum at any later tick of the
// span; PowerLowerBound floors each pack's draw over the next maxWindow.
func (k *eventKernel) refreshRechargeBounds() {
	var ub, lb units.Power
	for _, r := range k.cr.racks {
		if !r.Charging() {
			continue
		}
		ub += r.RechargePower()
		lb += r.Pack().PowerLowerBound(k.maxWindow)
	}
	k.rUB = ub + boundSlackW
	k.rLB = lb - boundSlackW
}

// afterExec runs after every densely executed tick: refresh the caches the
// skip decision reads, and recheck the drain latch (the tick may have
// completed the last charge itself).
func (k *eventKernel) afterExec(now time.Duration) {
	cr := k.cr
	k.ticksExecuted++
	k.matAt = now
	// The dense tick's frame is still cached, so re-anchoring the envelope
	// here costs one clamped sum — no sinusoids — and keeps drift small.
	k.refreshAgg(now)
	k.refreshRechargeBounds()
	k.recomputeQuiet()
	if cr.restoreFired && cr.numOutstanding == 0 {
		k.noteDrained()
	}
	if k.gEvents != nil {
		k.gEvents.Set(float64(k.eventsBase + k.wakes.Executed()))
		k.gSkipped.Set(float64(k.ticksSkipped))
	}
}

// recomputeQuiet re-derives the quiescence flag from control-plane state.
// Quiet means a dense tick would be a proven no-op modulo the wake bounds:
// no controller is down, mutated, or holding unconfirmed overrides; every
// guard is idle; no breaker is tripped or inside its trip window; no rack is
// capped. A waiting storm queue or postponed set is compatible with quiet —
// their re-admission is governed by the headroom bounds, not by density.
func (k *eventKernel) recomputeQuiet() {
	cr := k.cr
	k.postponedN = 0
	quiet := true
	for _, c := range k.controllers {
		k.postponedN += c.PostponedCount()
		if c.Down() || c.Mutated() || c.PendingCount() > 0 {
			quiet = false
		}
	}
	if quiet {
		for _, g := range k.guards {
			if !g.Idle() {
				quiet = false
				break
			}
		}
	}
	if quiet {
		for _, nd := range cr.nodes {
			if nd.Tripped() || nd.Overdrawn() {
				quiet = false
				break
			}
		}
	}
	if quiet {
		for _, r := range cr.racks {
			if r.Capped() {
				quiet = false
				break
			}
		}
	}
	k.quiet = quiet
}

// noteDrained runs once, when the post-restore fleet first has no
// outstanding charges, and reconstructs the dense plane's termination
// schedule: the tick that latches LastChargeDone and the tick whose
// early-exit check succeeds. Charges cannot restart after the drain (starts
// happen only at the restore edge or from the queues, which are empty when
// numOutstanding is zero), so neither needs cancelling.
func (k *eventKernel) noteDrained() {
	cr := k.cr
	if k.doneT >= 0 {
		return
	}
	// lt is the latch tick: the first tick strictly after restoreAt with no
	// outstanding charges — the completion tick itself when it came later.
	lt := k.firstTickAfter(cr.restoreAt)
	switch {
	case cr.res.LastChargeDone != 0:
		lt = cr.loseAt + cr.res.LastChargeDone // a dense tick already latched
	case k.lastCompletion > lt:
		lt = k.lastCompletion
	}
	if cr.res.LastChargeDone == 0 {
		if lt <= k.matAt {
			// The latch tick was inside a skipped span; apply the latch the
			// dense plane would have taken there. (The drain is discovered
			// at most maxWindow after the completion, and the done tick is
			// at least 2 minutes after the latch, so the schedule below is
			// always still in the future.)
			cr.res.LastChargeDone = lt - cr.loseAt
		} else {
			k.wakes.ScheduleAt(lt, "latch", k.onForce)
		}
	}
	k.doneT = k.ceilTick(cr.restoreAt + 5*time.Minute)
	if d := k.ceilTick(lt + 2*time.Minute); d > k.doneT {
		k.doneT = d
	}
	k.wakes.ScheduleAt(k.doneT, "done", k.onForce)
}

func (k *eventKernel) syncClocks(now time.Duration) {
	for _, c := range k.controllers {
		c.SyncClock(now)
	}
}

func (k *eventKernel) finishCounters() {
	res := k.cr.res
	res.KernelTicksExecuted = k.ticksExecuted
	res.KernelTicksSkipped = k.ticksSkipped
	if k.gEvents != nil {
		k.gEvents.Set(float64(k.eventsBase + k.wakes.Executed()))
		k.gSkipped.Set(float64(k.ticksSkipped))
	}
}

// ExportState captures the kernel's checkpoint contribution.
func (k *eventKernel) ExportState() KernelState {
	return KernelState{
		Queue:          k.wakes.Snapshot(),
		TicksExecuted:  k.ticksExecuted,
		TicksSkipped:   k.ticksSkipped,
		EventsExecuted: k.eventsBase + k.wakes.Executed(),
	}
}

// RestoreState re-derives the kernel's caches from the already-restored run
// state, rebuilds the wake queue, and — when the checkpoint was written by
// an event-kernel run — verifies the rebuilt schedule against the stored
// queue views. A restore that dropped a state field (an unfired outage flag,
// a lost LastChargeDone) rebuilds a different schedule and fails here
// instead of silently forking the timeline. Dense-written checkpoints carry
// no kernel block; they rebuild without verification.
func (k *eventKernel) RestoreState(ck *coordCheckpoint) error {
	cr := k.cr
	// Construction scheduled the fresh-run wakes; restart the queue from
	// the restored state instead. No "start" wake: quiet=false already
	// forces the first resumed tick dense.
	k.wakes = sim.NewEngine()
	k.matAt = ck.Now - cr.spec.Step
	k.quiet = false // the first resumed tick executes densely
	k.prevSkipped = true
	k.force = false
	k.ckptDue = false
	k.doneT = -1
	k.lastCompletion = 0
	if cr.res.LastChargeDone != 0 {
		k.lastCompletion = cr.loseAt + cr.res.LastChargeDone
	}
	if !cr.outageFired {
		k.wakes.ScheduleAt(k.ceilTick(cr.loseAt), "outage", k.onForce)
	}
	if !cr.restoreFired {
		k.wakes.ScheduleAt(k.ceilTick(cr.restoreAt), "restore", k.onForce)
	}
	if cr.spec.Checkpoint != "" {
		k.scheduleCkptWake()
	}
	if cr.restoreFired && cr.numOutstanding == 0 {
		k.noteDrained()
	}
	k.refreshRechargeBounds()
	k.refreshAgg(ck.Now)
	if ck.Kernel == nil {
		return nil
	}
	k.ticksExecuted = ck.Kernel.TicksExecuted
	k.ticksSkipped = ck.Kernel.TicksSkipped
	k.eventsBase = ck.Kernel.EventsExecuted
	// Cadence wakes are excluded from the comparison: a resumed run's
	// checkpoint cadence is re-anchored at the resume cursor (matching the
	// dense plane's restore), so its wake legitimately differs from the
	// original's.
	got := filterCadence(k.wakes.Snapshot())
	want := filterCadence(ck.Kernel.Queue)
	if len(got) != len(want) {
		return fmt.Errorf("scenario: kernel wake queue rebuilt with %d wakes, checkpoint stored %d (a restore dropped state the schedule derives from)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("scenario: kernel wake %d rebuilt as %s@%v, checkpoint stored %s@%v (a restore dropped state the schedule derives from)",
				i, got[i].Label, got[i].At, want[i].Label, want[i].At)
		}
	}
	return nil
}

func filterCadence(views []sim.EventView) []sim.EventView {
	out := views[:0:0]
	for _, v := range views {
		if v.Label != "checkpoint" {
			out = append(out, v)
		}
	}
	return out
}
