package scenario

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/core"
	"coordcharge/internal/rack"
	"coordcharge/internal/reliability"
	"coordcharge/internal/report"
	"coordcharge/internal/units"
)

// Fig3Charts reproduces Fig 3: the CC-CV charging sequence of one BBU after
// a full 90-second discharge with the original 5 A charger. Three charts
// share the time axis: charge power, charging current, battery voltage.
func Fig3Charts() []*report.Chart {
	p := battery.DefaultParams()
	pts := battery.Profile(p, 5, 1, 10*time.Second)
	powerC := report.NewChart("Fig 3: BBU charge power after full discharge (5 A)", "minutes", "W")
	currentC := report.NewChart("Fig 3: BBU charging current", "minutes", "A")
	voltageC := report.NewChart("Fig 3: BBU voltage", "minutes", "V")
	ps := powerC.AddSeries("power")
	cs := currentC.AddSeries("current")
	vs := voltageC.AddSeries("voltage")
	for _, pt := range pts {
		min := pt.T.Minutes()
		ps.Append(min, float64(pt.Power))
		cs.Append(min, float64(pt.Current))
		vs.Append(min, float64(pt.Voltage))
	}
	return []*report.Chart{powerC, currentC, voltageC}
}

// Fig4Chart reproduces Fig 4: recharge power versus time for different
// depths of discharge of the BBU (original 5 A charger).
func Fig4Chart() *report.Chart {
	p := battery.DefaultParams()
	c := report.NewChart("Fig 4: BBU recharge power vs time by depth of discharge (5 A)", "minutes", "W")
	for _, dod := range []float64{0.25, 0.50, 0.75, 1.00} {
		s := c.AddSeries(fmt.Sprintf("%.0f%% DOD", dod*100))
		for _, pt := range battery.Profile(p, 5, units.Fraction(dod), 15*time.Second) {
			s.Append(pt.T.Minutes(), float64(pt.Power))
		}
	}
	return c
}

// Fig5Chart reproduces Fig 5: BBU charging time versus depth of discharge
// for charging currents from 1 A to 5 A (the empirical surface).
func Fig5Chart() *report.Chart {
	s := battery.Fig5Surface()
	c := report.NewChart("Fig 5: BBU charging time vs depth of discharge by charging current", "DOD %", "minutes")
	for i := 1; i <= 5; i++ {
		se := c.AddSeries(fmt.Sprintf("%d A", i))
		for dod := 0.0; dod <= 1.0001; dod += 0.05 {
			se.Append(dod*100, s.ChargeTime(units.Current(i), units.Fraction(dod)).Minutes())
		}
	}
	return c
}

// Fig6bChart reproduces Fig 6(b): the variable charger's CC current
// selection versus depth of discharge (Eq 1).
func Fig6bChart() *report.Chart {
	c := report.NewChart("Fig 6(b): variable charger CC current vs depth of discharge (Eq 1)", "DOD %", "A")
	s := c.AddSeries("Ic")
	for dod := 0.0; dod <= 1.0001; dod += 0.02 {
		s.Append(dod*100, float64(charger.Eq1(units.Fraction(dod))))
	}
	return c
}

// Fig9aChart reproduces Fig 9(a): availability of redundancy of rack power
// versus battery charging time, via the Table I Monte Carlo.
func Fig9aChart(horizonYears float64, seed int64) (*report.Chart, error) {
	s, err := reliability.NewSimulator(reliability.TableI(), seed)
	if err != nil {
		return nil, err
	}
	var cts []time.Duration
	for m := 10; m <= 120; m += 10 {
		cts = append(cts, time.Duration(m)*time.Minute)
	}
	c := report.NewChart(fmt.Sprintf("Fig 9(a): AOR vs battery charging time (%.0f simulated years)", horizonYears), "charge time (min)", "AOR %")
	se := c.AddSeries("AOR")
	for _, p := range s.Sweep(horizonYears, cts) {
		se.Append(p.ChargeTime.Minutes(), float64(p.AOR)*100)
	}
	return c, nil
}

// Fig9bChart reproduces Fig 9(b): the charging current required to satisfy
// each priority's charging-time SLA, by depth of discharge.
func Fig9bChart() *report.Chart {
	cfg := core.DefaultConfig()
	c := report.NewChart("Fig 9(b): SLA charging current vs depth of discharge by rack priority", "DOD %", "A")
	for _, p := range []rack.Priority{rack.P1, rack.P2, rack.P3} {
		se := c.AddSeries(p.String())
		for dod := 0.0; dod <= 1.0001; dod += 0.02 {
			i, _ := cfg.SLACurrent(p, units.Fraction(dod))
			se.Append(dod*100, float64(i))
		}
	}
	return c
}

// TableITable renders the paper's Table I input data.
func TableITable() *report.Table {
	t := report.NewTable("Table I: component failure and repair times",
		"Failure type", "Component", "MTBF (hours)", "MTTR (hours)")
	for _, c := range reliability.TableI() {
		t.Add(c.Type.String(), c.Name, fmt.Sprintf("%.3g", c.MTBFHours), fmt.Sprintf("%.1f", c.MTTRHours))
	}
	return t
}

// BreakdownTable attributes loss of redundancy to each Table I component
// class at a given charging-time SLA — an analysis extension of Table II.
func BreakdownTable(horizonYears float64, seed int64, chargeTime time.Duration) (*report.Table, error) {
	s, err := reliability.NewSimulator(reliability.TableI(), seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Loss-of-redundancy breakdown at a %.0f-minute charge time", chargeTime.Minutes()),
		"Failure type", "Component", "Events/year", "Loss (hr/year)")
	var total float64
	for _, row := range s.Breakdown(horizonYears, chargeTime) {
		total += row.LossHoursPerYear
		t.Add(row.Component.Type.String(), row.Component.Name,
			fmt.Sprintf("%.3f", row.EventsPerYear),
			fmt.Sprintf("%.3f", row.LossHoursPerYear))
	}
	t.Add("TOTAL", "", "", fmt.Sprintf("%.2f", total))
	return t, nil
}

// TableIITable reproduces Table II: the AOR and loss-of-redundancy achieved
// by each priority's charging-time SLA under the Table I failure model.
func TableIITable(horizonYears float64, seed int64) (*report.Table, error) {
	s, err := reliability.NewSimulator(reliability.TableI(), seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table II: charging time SLA for different rack priority",
		"Rack priority", "AOR", "Loss of redundancy (hr/year)", "Charging time SLA")
	for _, row := range s.TableII(horizonYears) {
		t.Add(row.Priority,
			fmt.Sprintf("%.2f%%", float64(row.AOR)*100),
			fmt.Sprintf("%.2f", row.LossHoursPerYear),
			fmt.Sprintf("%.0f minutes", row.ChargeTimeSLA.Minutes()))
	}
	return t, nil
}
