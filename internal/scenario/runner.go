package scenario

import (
	"sync"

	"coordcharge/internal/par"
)

// The experiment runner executes independent simulation runs concurrently.
//
// Determinism contract: every run is a pure function of its CoordSpec (the
// control plane draws no randomness beyond the spec's seed, and runs share
// no mutable state — each builds its own generator, hierarchy, and
// recorder), results merge in spec order, and the first error by index
// wins. A batch therefore produces byte-identical charts, metrics, and
// per-run flight-recorder digests whether it runs on one worker or many;
// TestRunnerDeterminism asserts exactly that.
//
// Specs that share an Observability sink would break the contract (their
// event streams would interleave nondeterministically), so batch callers
// leave Obs unset or give each spec its own sink.

var (
	workersMu         sync.Mutex
	experimentWorkers int // 0 = GOMAXPROCS
)

// SetExperimentWorkers bounds the experiment runner's concurrency: n <= 0
// restores the default (GOMAXPROCS), n == 1 forces serial execution, and
// larger values force that many workers even on a single-CPU host — which is
// how the determinism tests exercise the concurrent path. It returns the
// previous value.
func SetExperimentWorkers(n int) int {
	workersMu.Lock()
	defer workersMu.Unlock()
	prev := experimentWorkers
	if n < 0 {
		n = 0
	}
	experimentWorkers = n
	return prev
}

func runnerWorkers() int {
	workersMu.Lock()
	defer workersMu.Unlock()
	return experimentWorkers
}

// runCoordinatedBatch runs one coordinated experiment per spec and returns
// the results in spec order (see the determinism contract above).
func runCoordinatedBatch(specs []CoordSpec) ([]*CoordResult, error) {
	return par.MapErr(len(specs), runnerWorkers(), func(i int) (*CoordResult, error) {
		return RunCoordinated(specs[i])
	})
}
