package scenario

// Grid signal plane experiments: the connect-and-manage cap-shrink figure
// (storm survival and SLA attainment while the interconnection cap shrinks
// mid-recharge) and the peak-shave figure (grid draw held below a
// demand-response target by deliberate battery discharge, with the recharge
// SLAs still met). Both build on the storm acceptance scenario's 30-rack
// MSB with a hair-trigger protection curve.

import (
	"fmt"
	"time"

	"coordcharge/internal/dynamo"
	"coordcharge/internal/grid"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/report"
	"coordcharge/internal/storm"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// FirstPeakOf reports when the coordinated run described by spec schedules
// its grid event: the first peak of the trace the spec would build. Grid
// experiments use it to align cap-shrink and demand-response windows with
// the outage and the recharge that follows.
func FirstPeakOf(spec CoordSpec) (time.Duration, error) {
	if err := spec.fillDefaults(); err != nil {
		return 0, err
	}
	gen, err := traceSource(&spec, spec.NumP1+spec.NumP2+spec.NumP3)
	if err != nil {
		return 0, err
	}
	return trace.FirstPeak(gen, 24*time.Hour, time.Minute), nil
}

// gridStormBase is the shared grid-experiment fleet: the storm acceptance
// scenario's 30 racks under a 5 %/30 s protection curve with a 340 kW MSB
// limit. The IT trace peaks near 200 kW and the fleet's unconstrained
// recharge draw adds up to ~37 kW on top, so an interconnection cap only
// binds once it dips below ~237 kW — shrinks through 30 % (238 kW) ride
// free, 35 % (221 kW) squeezes the recharge into a feasible trickle
// through which the admission queue can still express priority, and ~38 %
// starves it past the point where priority ordering survives. The
// cap-shrink experiments probe exactly that knee.
func gridStormBase(seed int64) CoordSpec {
	spec := CoordSpec{
		NumP1: 10, NumP2: 10, NumP3: 10,
		Seed:              seed,
		MSBLimit:          340 * units.Kilowatt,
		Mode:              dynamo.ModePriorityAware,
		OutageLen:         90 * time.Second,
		TripRule:          &power.TripRule{Fraction: 0.05, Sustain: 30 * time.Second},
		MaxChargeDuration: 6 * time.Hour,
	}
	sc := storm.Default()
	sc.Reserve = 0.01
	spec.Storm = &sc
	g := storm.DefaultGuardConfig()
	spec.Guard = &g
	return spec
}

// GridStormSpec builds the canonical cap-shrink storm experiment: a 90 s
// site outage at the first trace peak drains every BBU, and shrink (a
// fraction in [0, 1)) of the interconnection cap is withdrawn five minutes
// into the recharge — mid-storm — for two hours. Admission headroom must
// re-derive from the shrunk effective cap each wave.
func GridStormSpec(seed int64, shrink float64) (CoordSpec, error) {
	spec := gridStormBase(seed)
	peak, err := FirstPeakOf(spec)
	if err != nil {
		return CoordSpec{}, err
	}
	gs := &grid.Spec{Cap: grid.StepSeries(time.Duration(0), spec.MSBLimit)}
	if shrink > 0 {
		gs.Events = []grid.Event{{
			Kind: grid.CapShrink,
			At:   peak + 5*time.Minute,
			Dur:  2 * time.Hour,
			Frac: shrink,
		}}
	}
	spec.Grid = gs
	return spec, nil
}

// GridShaveSpec builds the canonical peak-shave experiment: the same fleet
// rides through the outage, recovers (the storm drain takes ~1.5 h), and
// then a 10-minute demand-response window opens two hours after the peak
// with a 190 kW grid-draw target — below the fleet's ~198 kW IT load, so
// holding it requires discharging batteries on purpose. P2/P3 racks rotate
// through the discharge under a 50 % depth budget (each pack carries its
// rack for ~90 s, so the rotation cycles through most of the eligible
// fleet) and their recharges re-enter the normal admission path once the
// window closes, so the SLA accounting covers the shave exactly as it
// covers the outage. The outage is 60 s here, not the shrink experiments'
// 90 s: the shave must prove that deliberate discharge costs no SLA, and
// the deepest rack's 90 s-outage recharge already overruns its deadline at
// the battery's maximum charge current — with no grid plane at all.
func GridShaveSpec(seed int64) (CoordSpec, error) {
	spec := gridStormBase(seed)
	spec.OutageLen = 60 * time.Second
	peak, err := FirstPeakOf(spec)
	if err != nil {
		return CoordSpec{}, err
	}
	spec.Grid = &grid.Spec{
		Cap: grid.StepSeries(time.Duration(0), spec.MSBLimit),
		Events: []grid.Event{{
			Kind: grid.DemandResponse,
			At:   peak + 2*time.Hour,
			Dur:  10 * time.Minute,
		}},
		Policy: grid.PolicyConfig{
			ShaveTarget: 190 * units.Kilowatt,
			MaxShaveDOD: 0.5,
		},
	}
	return spec, nil
}

// GridShrinkFigure bundles the cap-shrink sweep's chart with its summary
// table.
type GridShrinkFigure struct {
	// Chart plots mean recharge completion time per priority against the
	// cap shrink fraction: the squeeze slows everyone, in priority order.
	Chart *report.Chart
	// Table summarises each run: SLA attainment, trips, cap violations,
	// the admission queue's wave count, and how many running charges the
	// policy had to demote to hold the shrunk cap — the direct measure of
	// where the cap starts to bind.
	Table *report.Table
}

// RunGridShrink sweeps the mid-recharge interconnection-cap shrink across
// the binding knee (see gridStormBase): completion times hold flat while
// the shrunk cap still clears the fleet's draw, then stretch — in priority
// order, P1 least — once the cap bites, while trips and cap violations
// stay at zero throughout.
func RunGridShrink(seed int64) (*GridShrinkFigure, error) {
	shrinks := []float64{0, 0.2, 0.33, 0.35}
	specs := make([]CoordSpec, len(shrinks))
	for i, f := range shrinks {
		spec, err := GridStormSpec(seed, f)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	runs, err := runCoordinatedBatch(specs)
	if err != nil {
		return nil, err
	}
	fig := &GridShrinkFigure{
		Chart: report.NewChart("Storm recovery under a shrinking connect-and-manage cap",
			"cap shrink (%)", "mean recharge completion (min)"),
		Table: report.NewTable("Cap-shrink storm survival",
			"Shrink", "SLA met", "Trips", "Violation ticks", "Waves", "Cap demotions"),
	}
	series := map[rack.Priority]*report.Series{
		rack.P1: fig.Chart.AddSeries("P1"),
		rack.P2: fig.Chart.AddSeries("P2"),
		rack.P3: fig.Chart.AddSeries("P3"),
	}
	for i, run := range runs {
		for p, s := range series {
			s.Append(shrinks[i]*100, meanOf(run.ChargeDurations[p]).Minutes())
		}
		sla := run.SLAMet[rack.P1] + run.SLAMet[rack.P2] + run.SLAMet[rack.P3]
		fig.Table.Add(
			fmt.Sprintf("%.0f%%", shrinks[i]*100),
			fmt.Sprintf("%d/%d", sla, run.Racks[rack.P1]+run.Racks[rack.P2]+run.Racks[rack.P3]),
			fmt.Sprintf("%d", len(run.Tripped)),
			fmt.Sprintf("%d", run.Grid.ViolationTicks),
			fmt.Sprintf("%d", run.Storm.Waves),
			fmt.Sprintf("%d", run.Grid.CapDemotions),
		)
	}
	return fig, nil
}

// GridShaveFigure bundles the peak-shave run's chart with its outcome.
type GridShaveFigure struct {
	// Chart plots measured grid draw against the would-be unshaved draw
	// (measured plus the IT load batteries carried) across the run, with
	// the demand-response target overlaid — the gap is the shave.
	Chart *report.Chart
	// Run is the underlying result, for SLA and energy accounting.
	Run *CoordResult
}

// RunGridShave executes the peak-shave experiment and renders the shave:
// during the demand-response window the measured draw must sit at the
// target while the would-be draw sits above it, and every recharge —
// including the shaving racks' own — must still meet its SLA deadline.
func RunGridShave(seed int64) (*GridShaveFigure, error) {
	spec, err := GridShaveSpec(seed)
	if err != nil {
		return nil, err
	}
	run, err := RunCoordinated(spec)
	if err != nil {
		return nil, err
	}
	chart := report.NewChart("Peak shaving: BBU fleet as a virtual power plant",
		"minutes from transition", "kW")
	measured := chart.AddSeries("grid draw")
	unshaved := chart.AddSeries("unshaved (would-be)")
	target := chart.AddSeries("shave target")
	tgt := spec.Grid.Policy.ShaveTarget
	for _, sm := range run.Samples {
		measured.Append(sm.T.Minutes(), sm.Total.KW())
		unshaved.Append(sm.T.Minutes(), (sm.Total + sm.Shaved).KW())
		target.Append(sm.T.Minutes(), tgt.KW())
	}
	return &GridShaveFigure{Chart: chart, Run: run}, nil
}

// meanOf averages a duration slice; zero when empty.
func meanOf(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
