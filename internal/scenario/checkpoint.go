package scenario

// Checkpoint/restore for coordinated runs. Two strategies, chosen by how the
// run is built:
//
//   - direct: engine-free runs (no command latency, synchronous plane) are
//     plain data — the checkpoint carries the full live state (racks, nodes,
//     control plane, injector streams, flight journal, result progress) and
//     restore copies it back in place.
//
//   - replay: engine-backed runs hold in-flight work as event closures in
//     the engine queue, which cannot be serialized. The checkpoint carries
//     only a verification block (engine progress counters, fleet state hash,
//     flight digest); restore rebuilds the run from the spec and re-executes
//     every tick up to the checkpoint cursor — the simulation is
//     deterministic, so this reconstructs the identical state — then checks
//     the recomputed values against the stored block so any nondeterminism
//     fails loudly instead of silently forking the timeline.
//
// Either way the spec fingerprint and seed are checked first: a checkpoint
// only resumes the experiment it was written from.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"coordcharge/internal/ckpt"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/faults"
	"coordcharge/internal/grid"
	"coordcharge/internal/obs"
	"coordcharge/internal/power"
	"coordcharge/internal/rack"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// coordKind tags coordinated-run checkpoints so an endurance checkpoint (or
// anything else in a ckpt envelope) cannot be restored into the wrong runner.
const coordKind = "coordinated"

// checkpoint strategies.
const (
	strategyDirect = "direct"
	strategyReplay = "replay"
)

// coordCheckpoint is the payload inside the ckpt envelope for one
// coordinated run.
type coordCheckpoint struct {
	Kind        string `json:"kind"`
	Fingerprint uint64 `json:"fingerprint"`
	Seed        int64  `json:"seed"`
	Strategy    string `json:"strategy"`
	// Now is the resume cursor: the virtual time of the next tick to run.
	Now time.Duration `json:"now"`

	// Verification block, present for both strategies: replay proves itself
	// against these, direct restore sanity-checks its round trip.
	StateHash      uint64        `json:"state_hash"`
	FlightDigest   string        `json:"flight_digest,omitempty"`
	FlightTotal    uint64        `json:"flight_total,omitempty"`
	EngineNow      time.Duration `json:"engine_now,omitempty"`
	EngineSeq      uint64        `json:"engine_seq,omitempty"`
	EngineExecuted uint64        `json:"engine_executed,omitempty"`

	// Kernel carries the event kernel's wake queue and tick accounting,
	// present only when the run was driven by the event kernel (direct
	// strategy by construction: the kernel requires an engine-free plane).
	// A dense run resuming this checkpoint ignores it; an event-kernel run
	// resuming a dense checkpoint rebuilds its schedule unverified.
	Kernel *KernelState `json:"kernel,omitempty"`

	// Full state, direct strategy only.
	Racks    []rack.State           `json:"racks,omitempty"`
	Nodes    []power.NodeState      `json:"nodes,omitempty"`
	Hier     *dynamo.HierarchyState `json:"hier,omitempty"`
	Injector *faults.InjectorState  `json:"injector,omitempty"`
	Flight   *obs.RecorderState     `json:"flight,omitempty"`
	Grid     *grid.PolicyState      `json:"grid,omitempty"`

	// Result progress, direct strategy only (replay recomputes it). The
	// scalars carry no omitempty: LastSample's fresh-run value is a large
	// negative sentinel and zero is meaningful for the others.
	Samples        []Sample       `json:"samples,omitempty"`
	PeakPower      units.Power    `json:"peak_power"`
	AvgDOD         units.Fraction `json:"avg_dod"`
	DODs           []float64      `json:"dods,omitempty"`
	LastChargeDone time.Duration  `json:"last_charge_done"`
	Tripped        []string       `json:"tripped,omitempty"`
	LastSample     time.Duration  `json:"last_sample"`
	OutageFired    bool           `json:"outage_fired"`
	RestoreFired   bool           `json:"restore_fired"`
}

// specFingerprint hashes every spec field that shapes the simulation, plus a
// sampled fingerprint of the trace, so a checkpoint refuses to resume under
// a different experiment. Hooks, observability wiring, and the checkpoint
// fields themselves are excluded: they do not affect simulated state. The
// seed is hashed here too but also stored separately, so a seed mismatch can
// say so specifically.
func specFingerprint(spec *CoordSpec, gen trace.Source) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "p1=%d|p2=%d|p3=%d|seed=%d|limit=%g|mode=%d|policy=%s|dod=%g|step=%d|preroll=%d|maxcharge=%d|sample=%d|cmdlat=%d|relax=%t|dist=%t|netlat=%d|stale=%d|wdttl=%d|outage=%d",
		spec.NumP1, spec.NumP2, spec.NumP3, spec.Seed, float64(spec.MSBLimit),
		spec.Mode, spec.LocalPolicy.Name(), float64(spec.AvgDOD), spec.Step,
		spec.PreRoll, spec.MaxChargeDuration, spec.SampleEvery,
		spec.CommandLatency, *spec.RelaxLowerLevels, spec.Distributed,
		spec.NetworkLatency, spec.StaleAfter, spec.WatchdogTTL, spec.OutageLen)
	fmt.Fprintf(h, "|faults=%+v|retry=%+v", spec.Faults, spec.Retry)
	if spec.Storm != nil {
		fmt.Fprintf(h, "|storm=%+v", *spec.Storm)
	}
	if spec.Guard != nil {
		fmt.Fprintf(h, "|guard=%+v", *spec.Guard)
	}
	if spec.TripRule != nil {
		fmt.Fprintf(h, "|trip=%+v", *spec.TripRule)
	}
	if spec.Grid != nil {
		fmt.Fprintf(h, "|grid=%016x", spec.Grid.Fingerprint())
	}
	fmt.Fprintf(h, "|trace=%016x", trace.Fingerprint(gen))
	return h.Sum64()
}

// stateHash digests the whole fleet — every rack (including its battery
// pack) and every breaker node — as the checkpoint's nondeterminism
// tripwire. JSON encoding is deterministic here: the structs are plain and
// encoding/json sorts map keys.
func (cr *coordRun) stateHash() (uint64, error) {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for _, r := range cr.racks {
		if err := enc.Encode(r.ExportState()); err != nil {
			return 0, err
		}
	}
	for _, nd := range cr.nodes {
		if err := enc.Encode(nd.ExportState()); err != nil {
			return 0, err
		}
	}
	if cr.gridPol != nil {
		// The grid cursor (event position, defer/shave state, integrals)
		// shapes future evolution: fold it into the tripwire so a restore
		// that forks it fails loudly.
		if err := enc.Encode(cr.gridPol.ExportState()); err != nil {
			return 0, err
		}
	}
	return h.Sum64(), nil
}

// exportCheckpoint captures the run's state as of resumeAt: every tick
// before resumeAt has executed, none at or after it. Checkpoint export emits
// no flight-recorder events — recording the act of checkpointing would make
// the resumed digest diverge from an uninterrupted run's.
func (cr *coordRun) exportCheckpoint(resumeAt time.Duration) (*coordCheckpoint, error) {
	ck := &coordCheckpoint{
		Kind:        coordKind,
		Fingerprint: specFingerprint(&cr.spec, cr.gen),
		Seed:        cr.spec.Seed,
		Now:         resumeAt,
	}
	sh, err := cr.stateHash()
	if err != nil {
		return nil, err
	}
	ck.StateHash = sh
	if cr.spec.Obs != nil && cr.spec.Obs.Flight != nil {
		ck.FlightDigest = cr.spec.Obs.Flight.Digest()
		ck.FlightTotal = cr.spec.Obs.Flight.Total()
	}
	if cr.engine != nil {
		ck.Strategy = strategyReplay
		ck.EngineNow = cr.engine.Now()
		ck.EngineSeq = cr.engine.Seq()
		ck.EngineExecuted = cr.engine.Executed()
		return ck, nil
	}
	ck.Strategy = strategyDirect
	if cr.kern != nil {
		ks := cr.kern.ExportState()
		ck.Kernel = &ks
	}
	ck.Racks = make([]rack.State, 0, cr.n)
	for _, r := range cr.racks {
		ck.Racks = append(ck.Racks, r.ExportState())
	}
	ck.Nodes = make([]power.NodeState, 0, len(cr.nodes))
	for _, nd := range cr.nodes {
		ck.Nodes = append(ck.Nodes, nd.ExportState())
	}
	if cr.hier != nil {
		hs, err := cr.hier.ExportState()
		if err != nil {
			return nil, err
		}
		ck.Hier = &hs
	}
	if cr.inj != nil {
		is := cr.inj.ExportState()
		ck.Injector = &is
	}
	if cr.gridPol != nil {
		gs := cr.gridPol.ExportState()
		ck.Grid = &gs
	}
	if cr.spec.Obs != nil && cr.spec.Obs.Flight != nil {
		fs := cr.spec.Obs.Flight.ExportState()
		ck.Flight = &fs
	}
	res := cr.res
	ck.Samples = res.Samples
	ck.PeakPower = res.PeakPower
	ck.AvgDOD = res.AvgDOD
	ck.DODs = res.DODs
	ck.LastChargeDone = res.LastChargeDone
	ck.Tripped = res.Tripped
	ck.LastSample = cr.lastSample
	ck.OutageFired = cr.outageFired
	ck.RestoreFired = cr.restoreFired
	return ck, nil
}

// writeCheckpoint atomically writes the run's checkpoint file for a resume
// at resumeAt, rotating the previous cadence write to its ".prev" sibling so
// a corrupted latest generation still has a verified fallback.
func (cr *coordRun) writeCheckpoint(resumeAt time.Duration) error {
	ck, err := cr.exportCheckpoint(resumeAt)
	if err != nil {
		return fmt.Errorf("scenario: checkpoint export: %w", err)
	}
	if err := ckpt.WriteFileRotated(cr.spec.Checkpoint, ck); err != nil {
		return fmt.Errorf("scenario: checkpoint write: %w", err)
	}
	return nil
}

// restore loads a checkpoint into a freshly built run and positions the
// cursor at its resume point, by direct state restore or verified replay
// depending on how the run is built.
func (cr *coordRun) restore(path string) error {
	var ck coordCheckpoint
	// A latest generation that fails envelope verification falls back to the
	// previous-good cadence write; path reports what was actually restored.
	path, err := ckpt.ReadFileFallback(path, &ck)
	if err != nil {
		return err
	}
	if ck.Kind != coordKind {
		return fmt.Errorf("scenario: %s is a %q checkpoint, not a coordinated-run checkpoint", path, ck.Kind)
	}
	if ck.Seed != cr.spec.Seed {
		return fmt.Errorf("scenario: checkpoint %s was written with seed %d, this run uses seed %d", path, ck.Seed, cr.spec.Seed)
	}
	if fp := specFingerprint(&cr.spec, cr.gen); ck.Fingerprint != fp {
		return fmt.Errorf("scenario: checkpoint %s describes a different experiment (fingerprint %016x, spec is %016x)", path, ck.Fingerprint, fp)
	}
	if ck.Now < cr.start || ck.Now > cr.horizon+cr.spec.Step {
		return fmt.Errorf("scenario: checkpoint cursor %v outside run window [%v, %v]", ck.Now, cr.start, cr.horizon)
	}
	want := strategyDirect
	if cr.engine != nil {
		want = strategyReplay
	}
	if ck.Strategy != want {
		return fmt.Errorf("scenario: checkpoint %s uses strategy %q, this run needs %q", path, ck.Strategy, want)
	}
	if cr.engine == nil {
		err = cr.restoreDirect(&ck)
	} else {
		err = cr.restoreReplay(&ck)
	}
	if err != nil {
		return err
	}
	cr.cursor = ck.Now
	cr.nextCkpt = ck.Now + cr.spec.CheckpointEvery
	// Force a demand-block refill on the first resumed tick.
	cr.blockStart, cr.blockEnd = ck.Now, ck.Now-cr.spec.Step
	if cr.kern != nil {
		// The run state is in place; rebuild the kernel's wake schedule
		// from it (and verify against the stored queue when present).
		if err := cr.kern.RestoreState(&ck); err != nil {
			return err
		}
	}
	return nil
}

// restoreDirect copies the checkpoint's full state back into the freshly
// built run, then recomputes the derived caches (outstanding set, trip scan
// latches) and verifies the fleet hash round-tripped.
func (cr *coordRun) restoreDirect(ck *coordCheckpoint) error {
	if len(ck.Racks) != cr.n {
		return fmt.Errorf("scenario: checkpoint has %d racks, run has %d", len(ck.Racks), cr.n)
	}
	if len(ck.Nodes) != len(cr.nodes) {
		return fmt.Errorf("scenario: checkpoint has %d breaker nodes, run has %d", len(ck.Nodes), len(cr.nodes))
	}
	for i, st := range ck.Racks {
		if err := cr.racks[i].RestoreState(st); err != nil {
			return err
		}
	}
	for i, st := range ck.Nodes {
		if err := cr.nodes[i].RestoreState(st); err != nil {
			return err
		}
	}
	if ck.Hier != nil {
		if cr.hier == nil {
			return fmt.Errorf("scenario: checkpoint carries control-plane state but the run has no hierarchy")
		}
		if err := cr.hier.RestoreState(*ck.Hier); err != nil {
			return err
		}
	}
	if ck.Injector != nil {
		if cr.inj == nil {
			return fmt.Errorf("scenario: checkpoint carries fault-injector state but the run has no injector")
		}
		cr.inj.RestoreState(*ck.Injector)
	}
	if ck.Grid != nil {
		if cr.gridPol == nil {
			return fmt.Errorf("scenario: checkpoint carries grid-policy state but the run has no grid plane")
		}
		if err := cr.gridPol.RestoreState(*ck.Grid); err != nil {
			return err
		}
	}
	if ck.Flight != nil {
		if cr.spec.Obs == nil || cr.spec.Obs.Flight == nil {
			return fmt.Errorf("scenario: checkpoint carries a flight journal but the run has no recorder; attach a fresh Obs sink to resume")
		}
		cr.spec.Obs.Flight.RestoreState(*ck.Flight)
	}

	res := cr.res
	res.Samples = append(res.Samples[:0], ck.Samples...)
	res.PeakPower = ck.PeakPower
	res.AvgDOD = ck.AvgDOD
	res.DODs = append(res.DODs[:0], ck.DODs...)
	res.LastChargeDone = ck.LastChargeDone
	res.Tripped = append([]string(nil), ck.Tripped...)
	cr.lastSample = ck.LastSample
	cr.outageFired = ck.OutageFired
	cr.restoreFired = ck.RestoreFired

	// Derived caches rebuild from the restored state: the outstanding set
	// from observable rack state, the trip-scan latches from the recorded
	// trip list (not Tripped() — a breaker reset after recording must not
	// be recorded again).
	cr.numOutstanding = 0
	for i, r := range cr.racks {
		out := r.Charging() || r.PendingDOD() > 0
		cr.outstanding[i] = out
		if out {
			cr.numOutstanding++
		}
	}
	tripped := make(map[string]bool, len(ck.Tripped))
	for _, name := range ck.Tripped {
		tripped[name] = true
	}
	for i, nd := range cr.nodes {
		cr.trippedSeen[i] = tripped[nd.Name()]
	}

	sh, err := cr.stateHash()
	if err != nil {
		return err
	}
	if sh != ck.StateHash {
		return fmt.Errorf("scenario: restored fleet hash %016x does not match checkpoint %016x (restore bug or corrupt state)", sh, ck.StateHash)
	}
	return nil
}

// restoreReplay re-executes every tick from the run start up to (excluding)
// the checkpoint cursor with the hooks suppressed, then verifies the
// reconstruction against the checkpoint's engine counters, fleet hash, and
// flight digest. Observability events are deliberately re-recorded during
// replay: that is what rebuilds the digest chain the verification (and the
// resumed run's continuing journal) depends on.
func (cr *coordRun) restoreReplay(ck *coordCheckpoint) error {
	cr.replaying = true
	for now := cr.start; now < ck.Now; now += cr.spec.Step {
		if done := cr.tick(now); done {
			cr.replaying = false
			return fmt.Errorf("scenario: replay finished early at %v, before checkpoint cursor %v — the run is not deterministic or the checkpoint is stale", now, ck.Now)
		}
	}
	cr.replaying = false

	if cr.engine.Now() != ck.EngineNow || cr.engine.Seq() != ck.EngineSeq || cr.engine.Executed() != ck.EngineExecuted {
		return fmt.Errorf("scenario: replay diverged: engine at now=%v seq=%d executed=%d, checkpoint recorded now=%v seq=%d executed=%d",
			cr.engine.Now(), cr.engine.Seq(), cr.engine.Executed(),
			ck.EngineNow, ck.EngineSeq, ck.EngineExecuted)
	}
	sh, err := cr.stateHash()
	if err != nil {
		return err
	}
	if sh != ck.StateHash {
		return fmt.Errorf("scenario: replay diverged: fleet hash %016x, checkpoint recorded %016x", sh, ck.StateHash)
	}
	if ck.FlightDigest != "" && cr.spec.Obs != nil && cr.spec.Obs.Flight != nil {
		if d := cr.spec.Obs.Flight.Digest(); d != ck.FlightDigest {
			return fmt.Errorf("scenario: replay diverged: flight digest %s, checkpoint recorded %s", d, ck.FlightDigest)
		}
		if n := cr.spec.Obs.Flight.Total(); n != ck.FlightTotal {
			return fmt.Errorf("scenario: replay diverged: %d flight events, checkpoint recorded %d", n, ck.FlightTotal)
		}
	}
	return nil
}
