package scenario

import (
	"strings"
	"testing"

	"coordcharge/internal/charger"
	"coordcharge/internal/dynamo"
	"coordcharge/internal/units"
)

func TestAdvisorSpecValidation(t *testing.T) {
	bad := []AdvisorSpec{
		{},
		{NumP1: -1, NumP2: 2},
		{NumP1: 2, AvgDOD: 1.5},
		{NumP1: 2, Resolution: -1},
	}
	for i, s := range bad {
		if _, err := Advise(s); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestAdvisorSizing(t *testing.T) {
	adv, err := Advise(AdvisorSpec{
		NumP1: 10, NumP2: 10, NumP3: 10,
		AvgDOD: 0.5, Mode: dynamo.ModePriorityAware, Seed: 1,
		Resolution: 5 * units.Kilowatt,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ordering invariants.
	if adv.MinNoCapLimit < adv.PeakITLoad {
		t.Errorf("no-cap limit %v below IT peak %v", adv.MinNoCapLimit, adv.PeakITLoad)
	}
	if adv.MinFullSLALimit < adv.MinNoCapLimit {
		t.Errorf("full-SLA limit %v below no-cap limit %v", adv.MinFullSLALimit, adv.MinNoCapLimit)
	}
	if adv.StaticLimit <= adv.MinFullSLALimit {
		t.Errorf("static limit %v not above advised %v: no saving found", adv.StaticLimit, adv.MinFullSLALimit)
	}
	// Static provisioning reserves 5 A × 380 W per rack.
	wantStatic := adv.PeakITLoad + 30*1900*units.Watt
	if adv.StaticLimit != wantStatic {
		t.Errorf("static limit = %v, want %v", adv.StaticLimit, wantStatic)
	}
	// The saving is substantial: coordinated charging strands far less than
	// the 57 kW worst-case reserve.
	if adv.SavedPower < 20*units.Kilowatt {
		t.Errorf("saved power = %v, want ≥20 kW of the 57 kW reserve", adv.SavedPower)
	}
	if adv.SavedCostLowUSD >= adv.SavedCostHighUSD {
		t.Errorf("cost range inverted: %v vs %v", adv.SavedCostLowUSD, adv.SavedCostHighUSD)
	}
	// The advised limits actually satisfy their criteria.
	res, err := advisorProbe(adv.Spec, adv.MinNoCapLimit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxCapping != 0 {
		t.Errorf("advised no-cap limit still caps %v", res.Metrics.MaxCapping)
	}
	res, err = advisorProbe(adv.Spec, adv.MinFullSLALimit)
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range adv.FeasibleSLAs {
		if res.SLAMet[p] < want {
			t.Errorf("advised full-SLA limit meets %d %v SLAs, want %d", res.SLAMet[p], p, want)
		}
	}
}

// The advisor quantifies the coordination dividend: priority-aware charging
// needs less capacity than the uncoordinated original charger for the same
// protection.
func TestAdvisorCoordinationDividend(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple bisection probes")
	}
	prio, err := Advise(AdvisorSpec{
		NumP1: 10, NumP2: 10, NumP3: 10, AvgDOD: 0.5,
		Mode: dynamo.ModePriorityAware, Seed: 1, Resolution: 5 * units.Kilowatt,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Advise(AdvisorSpec{
		NumP1: 10, NumP2: 10, NumP3: 10, AvgDOD: 0.5,
		Mode: dynamo.ModeNone, LocalPolicy: charger.Original{}, Seed: 1,
		Resolution: 5 * units.Kilowatt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prio.MinNoCapLimit >= orig.MinNoCapLimit {
		t.Errorf("priority-aware no-cap limit %v not below original charger's %v",
			prio.MinNoCapLimit, orig.MinNoCapLimit)
	}
}

func TestAdviceTableRendering(t *testing.T) {
	adv, err := Advise(AdvisorSpec{
		NumP1: 5, NumP2: 5, NumP3: 5, AvgDOD: 0.5,
		Mode: dynamo.ModePriorityAware, Seed: 2, Resolution: 10 * units.Kilowatt,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := AdviceTable(adv).Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"peak IT load", "static provisioning", "un-stranded", "$"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("advice table missing %q", want)
		}
	}
}
