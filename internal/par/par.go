// Package par provides a small deterministic fork/join helper for running
// independent jobs concurrently.
//
// Determinism contract: results are returned in index order regardless of
// completion order, and the reported error is the lowest-index failure — so
// a caller observes byte-identical output whether jobs ran on one worker or
// many. Jobs must be independent: they may not share mutable state and must
// draw any randomness from sources derived before the fork (e.g. rand.Split
// per job), never from a source shared across jobs.
package par

import (
	"runtime"
	"sync"
)

// MapErr runs fn(0..n-1) concurrently on at most workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns the results in index order.
// All jobs run to completion even after a failure; the returned error is
// the one from the lowest failing index, so error reporting is independent
// of scheduling.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Do(n, workers, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Map is MapErr for jobs that cannot fail.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Do runs fn(0..n-1) concurrently on at most workers goroutines
// (workers <= 0 means GOMAXPROCS) and blocks until all calls return.
// Indexes are handed out in order, so with workers == 1 the jobs run
// strictly sequentially — the serial reference a determinism test compares
// a parallel run against.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
