package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// seriesColors is a color-blind-friendly palette for SVG series.
var seriesColors = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7",
	"#e69f00", "#56b4e9", "#f0e442", "#000000",
}

// RenderSVG draws the chart as a standalone SVG document: axes with tick
// labels, one polyline per series, and a legend. Width and height are the
// outer pixel dimensions (minimums enforced).
func (c *Chart) RenderSVG(w io.Writer, width, height int) error {
	if width < 320 {
		width = 320
	}
	if height < 200 {
		height = 200
	}
	const (
		marginL = 64
		marginR = 16
		marginT = 48
		marginB = 44
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	var any bool
	for _, s := range c.Series {
		for _, p := range s.Points {
			any = true
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d"><text x="10" y="20">%s (no data)</text></svg>`,
			width, height, xmlEscape(c.Title))
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="13" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#999"/>`+"\n",
		marginL, marginT, plotW, plotH)
	// Ticks: five per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			px(fx), marginT+plotH, px(fx), marginT+plotH+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px(fx), marginT+plotH+16, fmtTick(fx))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			float64(marginL)-4, py(fy), marginL, py(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-7, py(fy)+4, fmtTick(fy))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#333">%s</text>`+"\n",
		marginL+plotW/2, height-8, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)" fill="#333">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(c.YLabel))

	// Series polylines and legend.
	legendX := marginL
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		if len(s.Points) > 0 {
			var pts strings.Builder
			for _, p := range s.Points {
				fmt.Fprintf(&pts, "%.1f,%.1f ", px(p.X), py(p.Y))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.TrimSpace(pts.String()), color)
		}
		fmt.Fprintf(&b, `<rect x="%d" y="28" width="10" height="3" fill="%s"/>`+"\n", legendX, color)
		fmt.Fprintf(&b, `<text x="%d" y="34" fill="#333">%s</text>`+"\n", legendX+14, xmlEscape(s.Name))
		legendX += 14 + 7*len(s.Name) + 16
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtTick formats an axis tick value compactly.
func fmtTick(v float64) string {
	switch {
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.1e", v)
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.3g", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
