// Package report renders experiment outputs: aligned text tables, CSV, and
// ASCII line charts for time series and parameter sweeps. Every table and
// figure reproduced from the paper is ultimately emitted through this
// package, so cmd/ binaries and benchmarks share one look.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. Short rows are padded with empty cells; long rows are
// an error surfaced at render time, so Add panics instead to fail fast.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted cells: each argument is rendered with %v.
func (t *Table) Addf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprintf("%v", c)
	}
	t.Add(s...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no quoting: cells are numeric or plain
// identifiers by construction; commas in cells are replaced).
func (t *Table) RenderCSV(w io.Writer) error {
	san := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(san(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(san(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table (used
// when pasting results into issues or the EXPERIMENTS log).
func (t *Table) RenderMarkdown(w io.Writer) error {
	san := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", san(t.Title))
	}
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + san(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, cell := range row {
			b.WriteString(" " + san(cell) + " |")
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point to the series.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{x, y})
}

// Chart is a titled collection of series sharing axes — one paper figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewChart creates a chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a named series and returns it for appending points.
func (c *Chart) AddSeries(name string) *Series {
	s := &Series{Name: name}
	c.Series = append(c.Series, s)
	return s
}

// seriesGlyphs mark points of successive series in ASCII renderings.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII draws the chart as an ASCII plot of the given interior width
// and height (minimums are enforced). Series overlap resolution: the
// later-added series wins the cell.
func (c *Chart) RenderASCII(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	var any bool
	for _, s := range c.Series {
		for _, p := range s.Points {
			any = true
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			x := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			y := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-y][x] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	for i, s := range c.Series {
		fmt.Fprintf(&b, "  [%c] %s\n", seriesGlyphs[i%len(seriesGlyphs)], s.Name)
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", maxY, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-10.4g%s%10.4g\n", c.YLabel, minX, centerPad(c.XLabel, width-20), maxX)
	_, err := io.WriteString(w, b.String())
	return err
}

func centerPad(s string, width int) string {
	if width < len(s) {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}

// RenderCSV writes the chart as long-form CSV: series,x,y.
func (c *Chart) RenderCSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", strings.ReplaceAll(c.XLabel, ",", ";"), strings.ReplaceAll(c.YLabel, ",", ";"))
	for _, s := range c.Series {
		name := strings.ReplaceAll(s.Name, ",", ";")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", name, p.X, p.Y)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
