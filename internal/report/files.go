package report

import (
	"path/filepath"
	"strings"

	"coordcharge/internal/ckpt"
)

// SaveChart writes a chart to dir as an ASCII rendering (name.txt), a
// long-form CSV (name.csv), and a standalone SVG (name.svg).
func SaveChart(dir, name string, c *Chart) error {
	var ascii strings.Builder
	if err := c.RenderASCII(&ascii, 100, 24); err != nil {
		return err
	}
	if err := ckpt.WriteAtomic(filepath.Join(dir, name+".txt"), []byte(ascii.String())); err != nil {
		return err
	}
	var csv strings.Builder
	if err := c.RenderCSV(&csv); err != nil {
		return err
	}
	if err := ckpt.WriteAtomic(filepath.Join(dir, name+".csv"), []byte(csv.String())); err != nil {
		return err
	}
	var svg strings.Builder
	if err := c.RenderSVG(&svg, 720, 420); err != nil {
		return err
	}
	return ckpt.WriteAtomic(filepath.Join(dir, name+".svg"), []byte(svg.String()))
}

// SaveTable writes a table to dir as aligned text (name.txt) and CSV
// (name.csv).
func SaveTable(dir, name string, t *Table) error {
	var txt strings.Builder
	if err := t.Render(&txt); err != nil {
		return err
	}
	if err := ckpt.WriteAtomic(filepath.Join(dir, name+".txt"), []byte(txt.String())); err != nil {
		return err
	}
	var csv strings.Builder
	if err := t.RenderCSV(&csv); err != nil {
		return err
	}
	return ckpt.WriteAtomic(filepath.Join(dir, name+".csv"), []byte(csv.String()))
}
