package report

import (
	"os"
	"path/filepath"
	"strings"
)

// SaveChart writes a chart to dir as an ASCII rendering (name.txt), a
// long-form CSV (name.csv), and a standalone SVG (name.svg).
func SaveChart(dir, name string, c *Chart) error {
	var ascii strings.Builder
	if err := c.RenderASCII(&ascii, 100, 24); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(ascii.String()), 0o644); err != nil {
		return err
	}
	var csv strings.Builder
	if err := c.RenderCSV(&csv); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(csv.String()), 0o644); err != nil {
		return err
	}
	var svg strings.Builder
	if err := c.RenderSVG(&svg, 720, 420); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".svg"), []byte(svg.String()), 0o644)
}

// SaveTable writes a table to dir as aligned text (name.txt) and CSV
// (name.csv).
func SaveTable(dir, name string, t *Table) error {
	var txt strings.Builder
	if err := t.Render(&txt); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(txt.String()), 0o644); err != nil {
		return err
	}
	var csv strings.Builder
	if err := t.RenderCSV(&csv); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(csv.String()), 0o644)
}
