package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("Demo", "Case", "Value")
	tb.Add("(a)", "149 kW")
	tb.Add("(bb)", "0")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Case") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// All rows align: the Value column starts at the same offset.
	off := strings.Index(lines[1], "Value")
	if !strings.HasPrefix(lines[3][off:], "149 kW") || !strings.HasPrefix(lines[4][off:], "0") {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestTableAddPadsShortRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.Add("x")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}

func TestTableAddPanicsOnLongRow(t *testing.T) {
	tb := NewTable("", "A")
	defer func() {
		if recover() == nil {
			t.Error("no panic for over-long row")
		}
	}()
	tb.Add("x", "y")
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "N", "F")
	tb.Addf(42, 1.5)
	if tb.Rows[0][0] != "42" || tb.Rows[0][1] != "1.5" {
		t.Errorf("Addf row = %v", tb.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "a,x", "b")
	tb.Add("1,5", "2")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a;x,b\n1;5,2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Cap|ping", "Case", "kW")
	tb.Add("a|b", "149")
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"**Cap\\|ping**",
		"| Case | kW |",
		"|---|---|",
		"| a\\|b | 149 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdownNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.Add("1")
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "**") {
		t.Error("empty title rendered")
	}
}

func TestChartASCIIBasics(t *testing.T) {
	c := NewChart("Fig X", "time", "power")
	s := c.AddSeries("original")
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	var sb strings.Builder
	if err := c.RenderASCII(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "[*] original") {
		t.Errorf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs plotted")
	}
	if !strings.Contains(out, "81") {
		t.Errorf("max Y label missing:\n%s", out)
	}
}

func TestChartASCIIEmpty(t *testing.T) {
	c := NewChart("Empty", "x", "y")
	var sb strings.Builder
	if err := c.RenderASCII(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no data)") {
		t.Errorf("empty chart output = %q", sb.String())
	}
}

func TestChartASCIIConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x or y) must not divide by zero.
	c := NewChart("Const", "x", "y")
	s := c.AddSeries("flat")
	s.Append(1, 5)
	s.Append(1, 5)
	var sb strings.Builder
	if err := c.RenderASCII(&sb, 30, 6); err != nil {
		t.Fatal(err)
	}
}

func TestChartMultiSeriesGlyphs(t *testing.T) {
	c := NewChart("Multi", "x", "y")
	a := c.AddSeries("a")
	b := c.AddSeries("b")
	a.Append(0, 0)
	a.Append(10, 0)
	b.Append(0, 10)
	b.Append(10, 10)
	var sb strings.Builder
	if err := c.RenderASCII(&sb, 30, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("expected two glyph kinds:\n%s", out)
	}
}

func TestChartCSV(t *testing.T) {
	c := NewChart("F", "t,s", "P")
	s := c.AddSeries("se,r")
	s.Append(1, 2.5)
	var sb strings.Builder
	if err := c.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "series,t;s,P\nse;r,1,2.5\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	c := NewChart("Tiny", "x", "y")
	s := c.AddSeries("s")
	s.Append(0, 0)
	s.Append(1, 1)
	var sb strings.Builder
	if err := c.RenderASCII(&sb, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("no output for minimum dimensions")
	}
}
