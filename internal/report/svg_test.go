package report

import (
	"os"
	"strings"
	"testing"
)

func svgChart() *Chart {
	c := NewChart(`Power & "limits" <test>`, "minutes", "kW")
	a := c.AddSeries("original")
	b := c.AddSeries("variable")
	for i := 0; i < 20; i++ {
		a.Append(float64(i), 100+float64(i*i))
		b.Append(float64(i), 80+float64(i))
	}
	return c
}

func TestRenderSVGStructure(t *testing.T) {
	var sb strings.Builder
	if err := svgChart().RenderSVG(&sb, 720, 420); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg" width="720" height="420"`,
		"</svg>",
		"polyline",
		"minutes", "kW",
		"original", "variable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// XML escaping of the title.
	if !strings.Contains(out, "Power &amp; &quot;limits&quot; &lt;test&gt;") {
		t.Error("title not XML-escaped")
	}
	if strings.Contains(out, `<test>`) {
		t.Error("raw angle brackets leaked into SVG")
	}
}

func TestRenderSVGEmptyChart(t *testing.T) {
	c := NewChart("Empty", "x", "y")
	var sb strings.Builder
	if err := c.RenderSVG(&sb, 400, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty SVG = %q", sb.String())
	}
}

func TestRenderSVGDegenerateRanges(t *testing.T) {
	c := NewChart("Flat", "x", "y")
	s := c.AddSeries("s")
	s.Append(5, 7)
	s.Append(5, 7)
	var sb strings.Builder
	if err := c.RenderSVG(&sb, 10, 10); err != nil { // below minimums
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("degenerate ranges produced NaN/Inf coordinates")
	}
	if !strings.Contains(out, `width="320" height="200"`) {
		t.Error("minimum dimensions not enforced")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2.5:     "2.5",
		1900:    "1900",
		0.001:   "1.0e-03",
		123456:  "1.23e+05",
		99.9999: "100",
	}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSaveChartIncludesSVG(t *testing.T) {
	dir := t.TempDir()
	if err := SaveChart(dir, "x", svgChart()); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".txt", ".csv", ".svg"} {
		if _, err := os.Stat(dir + "/x" + ext); err != nil {
			t.Errorf("missing x%s: %v", ext, err)
		}
	}
}
