package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveChart(t *testing.T) {
	dir := t.TempDir()
	c := NewChart("T", "x", "y")
	s := c.AddSeries("s")
	s.Append(0, 1)
	s.Append(1, 2)
	if err := SaveChart(dir, "fig", c); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "T") {
		t.Error("ASCII file missing title")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "s,0,1") {
		t.Errorf("CSV content = %q", csv)
	}
}

func TestSaveTable(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("T", "a", "b")
	tb.Add("1", "2")
	if err := SaveTable(dir, "tbl", tb); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"tbl.txt", "tbl.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestSaveChartBadDir(t *testing.T) {
	c := NewChart("T", "x", "y")
	c.AddSeries("s").Append(0, 1)
	if err := SaveChart("/nonexistent-dir-xyz", "fig", c); err == nil {
		t.Error("write to missing directory succeeded")
	}
	tb := NewTable("T", "a")
	if err := SaveTable("/nonexistent-dir-xyz", "t", tb); err == nil {
		t.Error("table write to missing directory succeeded")
	}
}
