// Package oversub quantifies power oversubscription (paper §II-B): how much
// IT equipment can share a breaker whose limit is far below the equipment's
// aggregate nameplate rating, because statistical multiplexing makes the
// simultaneous-peak probability negligible. Facebook's twenty largest data
// centers averaged 47 % more racks than nameplate provisioning would allow;
// this package computes the same ratios and exceedance probabilities for a
// trace, giving the operator the "how far can I push it" numbers that make
// the battery-recharge problem acute in the first place.
package oversub

import (
	"fmt"
	"sort"
	"time"

	"coordcharge/internal/rack"
	"coordcharge/internal/stats"
	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

// Result summarises a trace's aggregate-power distribution against nameplate
// provisioning.
type Result struct {
	// Racks is the population size; Nameplate is Racks × 12.6 kW.
	Racks     int
	Nameplate units.Power
	// Min, Mean, Peak, P99 describe the observed aggregate draw.
	Min, Mean, Peak, P99 units.Power
	// PeakToNameplate is the diversity factor: observed peak over nameplate.
	PeakToNameplate float64
}

// Analyze scans a trace's aggregate power over [0, window] at the given
// step. A non-positive window defaults to a week; a non-positive step to a
// minute.
func Analyze(src trace.Source, window, step time.Duration) Result {
	if window <= 0 {
		window = 7 * 24 * time.Hour
	}
	if step <= 0 {
		step = time.Minute
	}
	samples := collect(src, window, step)
	s := stats.Summarize(samples)
	r := Result{
		Racks:     src.NumRacks(),
		Nameplate: units.Power(src.NumRacks()) * rack.MaxITLoad,
		Min:       units.Power(s.Min),
		Mean:      units.Power(s.Mean),
		Peak:      units.Power(s.Max),
		P99:       units.Power(s.P99),
	}
	if r.Nameplate > 0 {
		r.PeakToNameplate = float64(r.Peak) / float64(r.Nameplate)
	}
	return r
}

func collect(src trace.Source, window, step time.Duration) []float64 {
	var out []float64
	for t := time.Duration(0); t <= window; t += step {
		out = append(out, float64(trace.Aggregate(src, t)))
	}
	return out
}

// Ratio returns the oversubscription ratio of a deployment: aggregate
// nameplate over the breaker limit (1.47 on average across the paper's
// twenty largest data centers; 1.7 at the most aggressive site).
func Ratio(nameplate, limit units.Power) float64 {
	if limit <= 0 {
		return 0
	}
	return float64(nameplate) / float64(limit)
}

// LimitForExceedance returns the smallest breaker limit whose probability of
// instantaneous overload — the fraction of trace samples above the limit —
// does not exceed target. target 0 returns the observed peak; larger targets
// permit deeper oversubscription at the price of more frequent capping. The
// error reports a target outside [0, 1).
func LimitForExceedance(src trace.Source, target float64, window, step time.Duration) (units.Power, error) {
	if target < 0 || target >= 1 {
		return 0, fmt.Errorf("oversub: exceedance target %v outside [0, 1)", target)
	}
	if window <= 0 {
		window = 7 * 24 * time.Hour
	}
	if step <= 0 {
		step = time.Minute
	}
	samples := collect(src, window, step)
	sort.Float64s(samples)
	return units.Power(stats.Percentile(samples, 1-target)), nil
}

// SupportableRacks estimates how many racks with the same statistical
// profile as the trace's population fit under the limit at the given
// exceedance target: the aggregate distribution is assumed to scale
// proportionally with the population (the statistical-multiplexing
// approximation behind §II-B's deployment numbers).
func SupportableRacks(src trace.Source, limit units.Power, target float64, window, step time.Duration) (int, error) {
	atCurrent, err := LimitForExceedance(src, target, window, step)
	if err != nil {
		return 0, err
	}
	if atCurrent <= 0 {
		return 0, fmt.Errorf("oversub: trace has no load")
	}
	scale := float64(limit) / float64(atCurrent)
	return int(float64(src.NumRacks()) * scale), nil
}
