package oversub

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/trace"
	"coordcharge/internal/units"
)

func gen(t *testing.T) *trace.Generator {
	t.Helper()
	g, err := trace.NewGenerator(trace.Spec{NumRacks: 316, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAnalyzeProductionTrace(t *testing.T) {
	r := Analyze(gen(t), 7*24*time.Hour, 10*time.Minute)
	if r.Racks != 316 {
		t.Errorf("racks = %d", r.Racks)
	}
	// 316 racks × 12.6 kW = 3.98 MW of nameplate.
	if math.Abs(r.Nameplate.MW()-3.98) > 0.01 {
		t.Errorf("nameplate = %v", r.Nameplate)
	}
	if r.Peak < 2.0*units.Megawatt || r.Peak > 2.2*units.Megawatt {
		t.Errorf("peak = %v", r.Peak)
	}
	if r.Min >= r.Mean || r.Mean >= r.Peak || r.P99 > r.Peak {
		t.Errorf("distribution inconsistent: %+v", r)
	}
	// The diversity factor: the trace peaks at ~53% of nameplate, which is
	// why oversubscription works.
	if r.PeakToNameplate < 0.45 || r.PeakToNameplate > 0.60 {
		t.Errorf("peak/nameplate = %v", r.PeakToNameplate)
	}
}

func TestAnalyzeDefaults(t *testing.T) {
	r := Analyze(gen(t), 0, 0)
	if r.Peak <= 0 {
		t.Error("default window/step produced no data")
	}
}

// The paper's §II-B numbers: a 2.5 MW MSB holding 316 racks of 12.6 kW
// nameplate is oversubscribed ~1.6×, in the range of the fleet's 1.47
// average and 1.7 maximum.
func TestRatioMatchesPaperRange(t *testing.T) {
	r := Analyze(gen(t), 24*time.Hour, 10*time.Minute)
	ratio := Ratio(r.Nameplate, 2.5*units.Megawatt)
	if ratio < 1.4 || ratio > 1.7 {
		t.Errorf("oversubscription ratio = %.2f, want ~1.6", ratio)
	}
	if Ratio(r.Nameplate, 0) != 0 {
		t.Error("zero limit did not return 0")
	}
}

func TestLimitForExceedance(t *testing.T) {
	g := gen(t)
	zero, err := LimitForExceedance(g, 0, 24*time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(g, 24*time.Hour, 10*time.Minute)
	if zero != r.Peak {
		t.Errorf("zero-exceedance limit %v != peak %v", zero, r.Peak)
	}
	// A permissive target allows a lower limit; monotone in target.
	five, err := LimitForExceedance(g, 0.05, 24*time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	twenty, err := LimitForExceedance(g, 0.20, 24*time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !(twenty < five && five < zero) {
		t.Errorf("limits not monotone: %v %v %v", twenty, five, zero)
	}
	if _, err := LimitForExceedance(g, 1.0, 0, 0); err == nil {
		t.Error("target 1.0 accepted")
	}
	if _, err := LimitForExceedance(g, -0.1, 0, 0); err == nil {
		t.Error("negative target accepted")
	}
}

func TestSupportableRacks(t *testing.T) {
	g := gen(t)
	// At the observed peak, the current population exactly fits.
	n, err := SupportableRacks(g, Analyze(g, 24*time.Hour, 10*time.Minute).Peak, 0, 24*time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 316 {
		t.Errorf("supportable at peak = %d, want 316", n)
	}
	// A 2.5 MW limit supports more racks than the trace's 2.1 MW peak needs.
	n, err = SupportableRacks(g, 2.5*units.Megawatt, 0, 24*time.Hour, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n < 340 || n > 420 {
		t.Errorf("supportable at 2.5 MW = %d, want ~375", n)
	}
}
