package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPowerScales(t *testing.T) {
	p := 2.5 * Megawatt
	if got := p.MW(); !almost(got, 2.5, 1e-12) {
		t.Errorf("MW() = %v, want 2.5", got)
	}
	if got := p.KW(); !almost(got, 2500, 1e-9) {
		t.Errorf("KW() = %v, want 2500", got)
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		p    Power
		want string
	}{
		{260 * Watt, "260.0 W"},
		{12.6 * Kilowatt, "12.60 kW"},
		{2.5 * Megawatt, "2.50 MW"},
		{-1.9 * Kilowatt, "-1.90 kW"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Power(%v).String() = %q, want %q", float64(c.p), got, c.want)
		}
	}
}

func TestPowerOver(t *testing.T) {
	if got := (2.6 * Megawatt).Over(2.5 * Megawatt); !almost(got.KW(), 100, 1e-9) {
		t.Errorf("Over = %v, want 100 kW", got)
	}
	if got := (2.4 * Megawatt).Over(2.5 * Megawatt); got != 0 {
		t.Errorf("Over below limit = %v, want 0", got)
	}
}

func TestEnergyScales(t *testing.T) {
	e := EnergyOver(3300*Watt, 90*time.Second)
	if got := e.KJ(); !almost(got, 297, 1e-9) {
		t.Errorf("full BBU discharge energy = %v kJ, want 297", got)
	}
	if got := e.Wh(); !almost(got, 82.5, 1e-9) {
		t.Errorf("full BBU discharge energy = %v Wh, want 82.5", got)
	}
	if got := (1 * KilowattHour).KWh(); !almost(got, 1, 1e-12) {
		t.Errorf("KWh round trip = %v", got)
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{500 * Joule, "500.0 J"},
		{297 * Kilojoule, "82.50 Wh"},
		{2 * KilowattHour, "2.00 kWh"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Energy(%v).String() = %q, want %q", float64(c.e), got, c.want)
		}
	}
}

func TestCurrentClamp(t *testing.T) {
	cases := []struct {
		in, lo, hi, want Current
	}{
		{0.5, 1, 5, 1},
		{7, 1, 5, 5},
		{3.3, 1, 5, 3.3},
		{1, 1, 5, 1},
		{5, 1, 5, 5},
	}
	for _, c := range cases {
		if got := c.in.Clamp(c.lo, c.hi); got != c.want {
			t.Errorf("%v.Clamp(%v,%v) = %v, want %v", c.in, c.lo, c.hi, got, c.want)
		}
	}
}

func TestPowerOf(t *testing.T) {
	// A BBU charging at 5 A around 52 V draws ~260 W.
	p := PowerOf(52*Volt, 5*Ampere)
	if !almost(float64(p), 260, 1e-9) {
		t.Errorf("PowerOf(52V, 5A) = %v, want 260 W", p)
	}
}

func TestChargeOver(t *testing.T) {
	q := ChargeOver(5*Ampere, 20*time.Minute)
	if !almost(q.Ah(), 5.0/3, 1e-9) {
		t.Errorf("ChargeOver(5A, 20min) = %v Ah, want 1.667", q.Ah())
	}
}

func TestDurationFor(t *testing.T) {
	d := DurationFor(297*Kilojoule, 3300*Watt)
	if d != 90*time.Second {
		t.Errorf("DurationFor = %v, want 90s", d)
	}
	if d := DurationFor(1*Joule, 0); d < time.Duration(math.MaxInt64) {
		t.Errorf("DurationFor with zero power should be maximal, got %v", d)
	}
}

func TestFraction(t *testing.T) {
	f := Fraction(0.225)
	if got := f.Percent(); !almost(got, 22.5, 1e-12) {
		t.Errorf("Percent = %v", got)
	}
	if got := f.String(); got != "22.5%" {
		t.Errorf("String = %q", got)
	}
	if !f.In(0, 1) || f.In(0.3, 1) {
		t.Errorf("In misbehaves for %v", f)
	}
}

func TestFractionClamp01(t *testing.T) {
	if got := Fraction(-0.2).Clamp01(); got != 0 {
		t.Errorf("Clamp01(-0.2) = %v", got)
	}
	if got := Fraction(1.7).Clamp01(); got != 1 {
		t.Errorf("Clamp01(1.7) = %v", got)
	}
	if got := Fraction(0.4).Clamp01(); got != 0.4 {
		t.Errorf("Clamp01(0.4) = %v", got)
	}
}

func TestClamp01Property(t *testing.T) {
	prop := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		c := Fraction(x).Clamp01()
		return c >= 0 && c <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClampProperty(t *testing.T) {
	prop := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		c := Current(x).Clamp(1, 5)
		return c >= 1 && c <= 5
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// EnergyOver is linear in duration: E(p, 2d) == 2*E(p, d).
	prop := func(pw uint16, secs uint8) bool {
		p := Power(pw)
		d := time.Duration(secs) * time.Second
		return almost(float64(EnergyOver(p, 2*d)), 2*float64(EnergyOver(p, d)), 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
