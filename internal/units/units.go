// Package units provides typed physical quantities used throughout the
// simulator: power, energy, electric current, voltage, and helpers for
// converting between them.
//
// All quantities are represented as float64 in SI base units (watts, joules,
// amperes, volts). Distinct named types prevent the most common class of
// modelling bug — adding a power to an energy, or passing a rack-level watt
// figure where a per-battery ampere figure is expected — while remaining
// zero-cost at runtime.
package units

import (
	"fmt"
	"math"
	"time"
)

// Power is an electric power in watts.
type Power float64

// Common power scales.
const (
	Watt     Power = 1
	Kilowatt Power = 1e3
	Megawatt Power = 1e6
)

// KW returns the power in kilowatts.
func (p Power) KW() float64 { return float64(p) / 1e3 }

// MW returns the power in megawatts.
func (p Power) MW() float64 { return float64(p) / 1e6 }

// String formats the power with an auto-selected scale.
func (p Power) String() string {
	abs := math.Abs(float64(p))
	switch {
	case abs >= 1e6:
		return fmt.Sprintf("%.2f MW", p.MW())
	case abs >= 1e3:
		return fmt.Sprintf("%.2f kW", p.KW())
	default:
		return fmt.Sprintf("%.1f W", float64(p))
	}
}

// Over returns the amount by which p exceeds limit, or zero.
func (p Power) Over(limit Power) Power {
	if p > limit {
		return p - limit
	}
	return 0
}

// Energy is an amount of energy in joules.
type Energy float64

// Common energy scales.
const (
	Joule        Energy = 1
	Kilojoule    Energy = 1e3
	WattHour     Energy = 3600
	KilowattHour Energy = 3.6e6
)

// KJ returns the energy in kilojoules.
func (e Energy) KJ() float64 { return float64(e) / 1e3 }

// Wh returns the energy in watt-hours.
func (e Energy) Wh() float64 { return float64(e) / 3600 }

// KWh returns the energy in kilowatt-hours.
func (e Energy) KWh() float64 { return float64(e) / 3.6e6 }

// String formats the energy with an auto-selected scale.
func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs >= 3.6e6:
		return fmt.Sprintf("%.2f kWh", e.KWh())
	case abs >= 3600:
		return fmt.Sprintf("%.2f Wh", e.Wh())
	case abs >= 1e3:
		return fmt.Sprintf("%.2f kJ", e.KJ())
	default:
		return fmt.Sprintf("%.1f J", float64(e))
	}
}

// Current is an electric current in amperes.
type Current float64

// Ampere is the base current unit.
const Ampere Current = 1

// String formats the current in amperes.
func (c Current) String() string { return fmt.Sprintf("%.2f A", float64(c)) }

// Clamp limits the current to [lo, hi].
func (c Current) Clamp(lo, hi Current) Current {
	if c < lo {
		return lo
	}
	if c > hi {
		return hi
	}
	return c
}

// Voltage is an electric potential in volts.
type Voltage float64

// Volt is the base voltage unit.
const Volt Voltage = 1

// String formats the voltage in volts.
func (v Voltage) String() string { return fmt.Sprintf("%.2f V", float64(v)) }

// Charge is an electric charge in coulombs (ampere-seconds).
type Charge float64

// Common charge scales.
const (
	Coulomb    Charge = 1
	AmpereHour Charge = 3600
)

// Ah returns the charge in ampere-hours.
func (q Charge) Ah() float64 { return float64(q) / 3600 }

// String formats the charge in ampere-hours.
func (q Charge) String() string { return fmt.Sprintf("%.3f Ah", q.Ah()) }

// PowerOf returns the electric power V*I.
func PowerOf(v Voltage, i Current) Power {
	return Power(float64(v) * float64(i))
}

// EnergyOver returns the energy accumulated by a constant power over d.
func EnergyOver(p Power, d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// ChargeOver returns the charge accumulated by a constant current over d.
func ChargeOver(i Current, d time.Duration) Charge {
	return Charge(float64(i) * d.Seconds())
}

// DurationFor returns how long energy e lasts when drained at power p.
// It returns a very large duration when p is not positive.
func DurationFor(e Energy, p Power) time.Duration {
	if p <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := float64(e) / float64(p)
	return time.Duration(sec * float64(time.Second))
}

// Fraction is a dimensionless ratio, typically in [0, 1] (e.g. depth of
// discharge, state of charge, efficiency).
type Fraction float64

// Percent returns the fraction scaled to percent.
func (f Fraction) Percent() float64 { return float64(f) * 100 }

// String formats the fraction as a percentage.
func (f Fraction) String() string { return fmt.Sprintf("%.1f%%", f.Percent()) }

// Clamp01 limits f to [0, 1].
func (f Fraction) Clamp01() Fraction {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// In reports whether f lies in [lo, hi].
func (f Fraction) In(lo, hi Fraction) bool { return f >= lo && f <= hi }
