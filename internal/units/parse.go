package units

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePower parses a human-friendly power string: a number followed by an
// optional unit suffix (W, kW, MW; case-insensitive, optional space). A bare
// number is watts.
//
//	"2.3MW" → 2.3e6 W     "190 kw" → 1.9e5 W     "380" → 380 W
func ParsePower(s string) (Power, error) {
	raw := strings.TrimSpace(s)
	lower := strings.ToLower(raw)
	scale := 1.0
	switch {
	case strings.HasSuffix(lower, "mw"):
		scale, lower = 1e6, lower[:len(lower)-2]
	case strings.HasSuffix(lower, "kw"):
		scale, lower = 1e3, lower[:len(lower)-2]
	case strings.HasSuffix(lower, "w"):
		lower = lower[:len(lower)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(lower), 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse power %q (want e.g. \"2.3MW\", \"190kW\", \"380W\")", s)
	}
	return Power(v * scale), nil
}

// ParseCurrent parses a current string: a number with an optional "A" suffix.
func ParseCurrent(s string) (Current, error) {
	lower := strings.ToLower(strings.TrimSpace(s))
	lower = strings.TrimSuffix(lower, "a")
	v, err := strconv.ParseFloat(strings.TrimSpace(lower), 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse current %q (want e.g. \"2.5A\")", s)
	}
	return Current(v), nil
}

// ParseFraction parses a ratio given either as a percentage ("70%") or a
// plain fraction ("0.7").
func ParseFraction(s string) (Fraction, error) {
	raw := strings.TrimSpace(s)
	percent := strings.HasSuffix(raw, "%")
	v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimSuffix(raw, "%")), 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse fraction %q (want e.g. \"0.7\" or \"70%%\")", s)
	}
	if percent {
		v /= 100
	}
	return Fraction(v), nil
}
