package units

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse drives the three human-friendly parsers with arbitrary input.
// The parsers back CLI flags and config files, so the invariants are the
// usual ones for untrusted text: never panic, fail with a descriptive error
// rather than a zero value, and — when parsing succeeds — round-trip through
// the documented suffix conventions.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"2.3MW", "190 kw", "380", "380W", " 12.5 kW ",
		"2.5A", "16a", "-3A",
		"0.7", "70%", "100 %", "-0.1", "1e3%",
		"", " ", "W", "%", "A", "kW", "NaN", "Inf", "-Inf",
		"0x10", "1_000", "+5", "..", "1.2.3", "ммW", "\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if p, err := ParsePower(s); err == nil {
			if math.IsNaN(float64(p)) && !strings.Contains(strings.ToLower(s), "nan") {
				t.Fatalf("ParsePower(%q) = NaN from non-NaN input", s)
			}
		} else if !strings.Contains(err.Error(), "cannot parse power") {
			t.Fatalf("ParsePower(%q): undescriptive error %v", s, err)
		}

		if c, err := ParseCurrent(s); err == nil {
			// "A" is the only unit: stripping it must not change the value.
			trimmed := strings.TrimSuffix(strings.TrimSpace(strings.ToLower(s)), "a")
			c2, err2 := ParseCurrent(trimmed)
			if err2 != nil {
				t.Fatalf("ParseCurrent(%q) ok but bare %q failed: %v", s, trimmed, err2)
			}
			if c != c2 && !math.IsNaN(float64(c)) {
				t.Fatalf("ParseCurrent(%q) = %v but ParseCurrent(%q) = %v", s, c, trimmed, c2)
			}
		} else if !strings.Contains(err.Error(), "cannot parse current") {
			t.Fatalf("ParseCurrent(%q): undescriptive error %v", s, err)
		}

		if fr, err := ParseFraction(s); err == nil {
			if strings.HasSuffix(strings.TrimSpace(s), "%") {
				bare := strings.TrimSuffix(strings.TrimSpace(s), "%")
				fr2, err2 := ParseFraction(bare)
				if err2 != nil {
					t.Fatalf("ParseFraction(%q) ok but bare %q failed: %v", s, bare, err2)
				}
				got, want := float64(fr), float64(fr2)/100
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("ParseFraction(%q) = %v, want %v/100", s, fr, fr2)
				}
			}
		} else if !strings.Contains(err.Error(), "cannot parse fraction") {
			t.Fatalf("ParseFraction(%q): undescriptive error %v", s, err)
		}
	})
}
