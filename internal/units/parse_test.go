package units

import (
	"math"
	"testing"
)

func TestParsePower(t *testing.T) {
	cases := map[string]float64{
		"2.3MW":   2.3e6,
		"2.3 mw":  2.3e6,
		"190kW":   1.9e5,
		"190 Kw":  1.9e5,
		"380W":    380,
		"380":     380,
		" 12.6kw": 12600,
		"0":       0,
	}
	for in, want := range cases {
		got, err := ParsePower(in)
		if err != nil {
			t.Errorf("ParsePower(%q): %v", in, err)
			continue
		}
		if math.Abs(float64(got)-want) > 1e-9 {
			t.Errorf("ParsePower(%q) = %v, want %v", in, float64(got), want)
		}
	}
	for _, bad := range []string{"", "MW", "two MW", "2.3GW2"} {
		if _, err := ParsePower(bad); err == nil {
			t.Errorf("ParsePower(%q) accepted", bad)
		}
	}
}

func TestParsePowerRoundTripsString(t *testing.T) {
	for _, p := range []Power{380 * Watt, 190 * Kilowatt, 2.5 * Megawatt} {
		got, err := ParsePower(p.String())
		if err != nil {
			t.Errorf("round trip %v: %v", p, err)
			continue
		}
		if math.Abs(float64(got-p)) > float64(p)*0.01 {
			t.Errorf("round trip %v = %v", p, got)
		}
	}
}

func TestParseCurrent(t *testing.T) {
	cases := map[string]float64{"2.5A": 2.5, "5 a": 5, "1": 1}
	for in, want := range cases {
		got, err := ParseCurrent(in)
		if err != nil || math.Abs(float64(got)-want) > 1e-12 {
			t.Errorf("ParseCurrent(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseCurrent("amps"); err == nil {
		t.Error("ParseCurrent accepted garbage")
	}
}

func TestParseFraction(t *testing.T) {
	cases := map[string]float64{"0.7": 0.7, "70%": 0.7, " 100 %": 1, "0": 0}
	for in, want := range cases {
		got, err := ParseFraction(in)
		if err != nil || math.Abs(float64(got)-want) > 1e-12 {
			t.Errorf("ParseFraction(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFraction("%"); err == nil {
		t.Error("ParseFraction accepted bare %")
	}
}
