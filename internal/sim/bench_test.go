package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(time.Duration(1+i%1000)*time.Millisecond, "b", func(time.Duration) {})
		if e.Pending() >= 1024 {
			e.Run(e.Now() + time.Second)
		}
	}
	e.RunAll()
}

func BenchmarkTickerHour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		tk := e.Every(3*time.Second, "t", func(time.Duration) {})
		e.Run(time.Hour)
		tk.Stop()
	}
}
