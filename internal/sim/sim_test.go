package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAt(3*time.Second, "c", func(time.Duration) { order = append(order, 3) })
	e.ScheduleAt(1*time.Second, "a", func(time.Duration) { order = append(order, 1) })
	e.ScheduleAt(2*time.Second, "b", func(time.Duration) { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("final time = %v, want 3s", e.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAt(time.Second, "tie", func(time.Duration) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of FIFO order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(time.Minute, "x", func(time.Duration) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(time.Second, "past", func(time.Duration) {})
}

func TestScheduleAfter(t *testing.T) {
	e := NewEngine()
	var ran time.Duration
	e.ScheduleAt(10*time.Second, "outer", func(now time.Duration) {
		e.ScheduleAfter(5*time.Second, "inner", func(now time.Duration) { ran = now })
	})
	e.RunAll()
	if ran != 15*time.Second {
		t.Errorf("nested ScheduleAfter ran at %v, want 15s", ran)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.ScheduleAt(time.Second, "x", func(time.Duration) { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.RunAll()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Executed() != 0 {
		t.Errorf("executed = %d, want 0", e.Executed())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []string
	a := e.ScheduleAt(1*time.Second, "a", func(time.Duration) { got = append(got, "a") })
	e.ScheduleAt(2*time.Second, "b", func(time.Duration) { got = append(got, "b") })
	e.ScheduleAt(3*time.Second, "c", func(time.Duration) { got = append(got, "c") })
	e.Cancel(a)
	e.RunAll()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("got %v, want [b c]", got)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	var ran []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		e.ScheduleAt(d, "x", func(now time.Duration) { ran = append(ran, now) })
	}
	end := e.Run(2 * time.Second)
	if len(ran) != 2 {
		t.Errorf("ran %d events before horizon, want 2", len(ran))
	}
	if end != 2*time.Second {
		t.Errorf("Run returned %v, want 2s", end)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Resume: the queue drains and the clock advances to the horizon.
	end = e.Run(10 * time.Second)
	if len(ran) != 4 {
		t.Errorf("ran %d events total, want 4", len(ran))
	}
	if end != 10*time.Second {
		t.Errorf("second Run returned %v, want 10s (clock advances to horizon)", end)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(time.Second, "tick", func(time.Duration) {
		n++
		if n == 5 {
			e.Halt()
			tk.Stop()
		}
	})
	e.Run(time.Hour)
	if n != 5 {
		t.Errorf("ticks = %d, want 5 (halted)", n)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	tk := e.Every(3*time.Second, "t", func(now time.Duration) { ticks = append(ticks, now) })
	e.Run(10 * time.Second)
	tk.Stop()
	want := []time.Duration{3 * time.Second, 6 * time.Second, 9 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideHandler(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(time.Second, "t", func(time.Duration) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run(time.Minute)
	if n != 2 {
		t.Errorf("ticks after in-handler Stop = %d, want 2", n)
	}
}

func TestZeroPeriodTickerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	e.Every(0, "bad", func(time.Duration) {})
}

func TestExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.ScheduleAfter(time.Duration(i+1)*time.Second, "x", func(time.Duration) {})
	}
	e.RunAll()
	if e.Executed() != 7 {
		t.Errorf("Executed = %d, want 7", e.Executed())
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	// Whatever permutation of delays we schedule, execution times are
	// monotone nondecreasing.
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var times []time.Duration
		for _, d := range delays {
			e.ScheduleAt(time.Duration(d)*time.Millisecond, "p", func(now time.Duration) {
				times = append(times, now)
			})
		}
		e.RunAll()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCancelledAccessor(t *testing.T) {
	e := NewEngine()
	ev := e.ScheduleAt(time.Second, "x", func(time.Duration) {})
	if ev.Cancelled() {
		t.Error("fresh event reports cancelled")
	}
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("cancelled event reports live")
	}
	// Cancelling an already-run event still marks it.
	ran := e.ScheduleAt(2*time.Second, "y", func(time.Duration) {})
	e.RunAll()
	if ran.Cancelled() {
		t.Error("executed event reports cancelled")
	}
	e.Cancel(ran)
	if !ran.Cancelled() {
		t.Error("post-run cancel did not mark the event")
	}
}

func TestNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Error("empty engine reports a pending deadline")
	}
	e.ScheduleAt(5*time.Second, "late", func(time.Duration) {})
	early := e.ScheduleAt(2*time.Second, "early", func(time.Duration) {})
	if at, ok := e.NextAt(); !ok || at != 2*time.Second {
		t.Errorf("NextAt = %v, %t; want 2s, true", at, ok)
	}
	e.Cancel(early)
	if at, ok := e.NextAt(); !ok || at != 5*time.Second {
		t.Errorf("NextAt after cancel = %v, %t; want 5s, true", at, ok)
	}
	e.RunAll()
	if _, ok := e.NextAt(); ok {
		t.Error("drained engine reports a pending deadline")
	}
}

func TestSnapshotOrderAndIsolation(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(3*time.Second, "c", func(time.Duration) {})
	e.ScheduleAt(1*time.Second, "a", func(time.Duration) {})
	e.ScheduleAt(1*time.Second, "b", func(time.Duration) {}) // same instant: seq breaks the tie
	views := e.Snapshot()
	want := []EventView{
		{At: 1 * time.Second, Label: "a"},
		{At: 1 * time.Second, Label: "b"},
		{At: 3 * time.Second, Label: "c"},
	}
	if len(views) != len(want) {
		t.Fatalf("snapshot has %d views, want %d", len(views), len(want))
	}
	for i := range want {
		if views[i] != want[i] {
			t.Errorf("views[%d] = %+v, want %+v", i, views[i], want[i])
		}
	}
	// The snapshot must not perturb execution order.
	var order []string
	e2 := NewEngine()
	e2.ScheduleAt(2*time.Second, "y", func(time.Duration) { order = append(order, "y") })
	e2.ScheduleAt(1*time.Second, "x", func(time.Duration) { order = append(order, "x") })
	_ = e2.Snapshot()
	e2.RunAll()
	if len(order) != 2 || order[0] != "x" || order[1] != "y" {
		t.Errorf("execution order after Snapshot = %v, want [x y]", order)
	}
}
