// Package sim provides a small discrete-event simulation kernel: a virtual
// clock, a time-ordered event queue, periodic processes, and run-loop
// control.
//
// The kernel is single-threaded by design. Data-center power events span
// seconds (open transitions) to years (Monte Carlo reliability runs), so a
// sequential event loop with a virtual clock is both simpler and faster than
// wall-clock concurrency, and it keeps every experiment deterministic.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Handler is the unit of simulated work. It runs at its scheduled virtual
// time and may schedule further events.
type Handler func(now time.Duration)

// Event is a scheduled callback, returned by the scheduling methods so the
// caller can cancel it.
type Event struct {
	at        time.Duration
	seq       uint64 // tie-break: FIFO among events at the same instant
	fn        Handler
	index     int // heap index, -1 once popped or cancelled
	cancelled bool
	label     string
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Label returns the optional debug label attached to the event.
func (e *Event) Label() string { return e.label }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is the simulation driver: a virtual clock plus a pending-event
// queue. The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	count  uint64 // events executed
	halted bool
}

// NewEngine returns an engine with its clock at zero and no pending events.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.count }

// Seq returns the number of events ever scheduled (the schedule-order
// counter). Together with Now and Executed it pins the engine's progress, so
// a checkpoint resume can verify that a deterministic replay reconstructed
// the event timeline exactly.
func (e *Engine) Seq() uint64 { return e.seq }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// NextAt returns the virtual time of the earliest pending event and whether
// one exists (Cancel removes events from the heap, so everything resident is
// live). This is the batched-wakeup primitive: a time-skipping caller peeks
// the next deadline, advances analytically up to it, and lets Run execute
// the batch of events due at that instant.
func (e *Engine) NextAt() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// EventView is the serializable projection of a pending event: its deadline
// and debug label. Handler closures cannot be serialized, so a checkpoint
// stores views; the resuming run rebuilds the real queue from its own spec
// and verifies the rebuilt deadlines against the stored views.
type EventView struct {
	At    time.Duration `json:"at"`
	Label string        `json:"label"`
}

// Snapshot returns the pending events as views in deterministic execution
// order (at, then schedule seq). It allocates a fresh slice and never
// perturbs the heap.
func (e *Engine) Snapshot() []EventView {
	pending := make([]*Event, len(e.queue))
	copy(pending, e.queue)
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].at != pending[j].at {
			return pending[i].at < pending[j].at
		}
		return pending[i].seq < pending[j].seq
	})
	views := make([]EventView, len(pending))
	for i, ev := range pending {
		views[i] = EventView{At: ev.at, Label: ev.label}
	}
	return views
}

// ErrPast is returned when an event is scheduled before the current virtual
// time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ScheduleAt queues fn to run at absolute virtual time at. Scheduling at the
// current instant is allowed (the event runs after all handlers already
// queued for this instant). It panics if at precedes the clock: that is
// always a modelling bug, never a recoverable condition.
func (e *Engine) ScheduleAt(at time.Duration, label string, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Errorf("%w: at=%v now=%v label=%q", ErrPast, at, e.now, label))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter queues fn to run d after the current virtual time.
func (e *Engine) ScheduleAfter(d time.Duration, label string, fn Handler) *Event {
	return e.ScheduleAt(e.now+d, label, fn)
}

// Cancel removes ev from the queue if it has not yet run. It is safe to call
// multiple times and on already-run events.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
}

// Ticker runs a handler at a fixed period. Cancel it with Stop.
type Ticker struct {
	engine *Engine
	period time.Duration
	fn     Handler
	next   *Event
	done   bool
}

// Every schedules fn to run every period, with the first invocation one
// period from now. Period must be positive.
func (e *Engine) Every(period time.Duration, label string, fn Handler) *Ticker {
	if period <= 0 {
		panic(fmt.Errorf("sim: non-positive ticker period %v (%s)", period, label))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	var tick Handler
	tick = func(now time.Duration) {
		if t.done {
			return
		}
		t.fn(now)
		if !t.done {
			t.next = e.ScheduleAfter(t.period, label, tick)
		}
	}
	t.next = e.ScheduleAfter(period, label, tick)
	return t
}

// Stop cancels future ticks. The current tick, if executing, completes.
func (t *Ticker) Stop() {
	t.done = true
	t.engine.Cancel(t.next)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.count++
		ev.fn(e.now)
		return true
	}
	return false
}

// Halt stops a Run in progress after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the clock would pass until or until Halt is
// called, then advances the clock to until. Events scheduled exactly at
// until are executed. Advancing the clock past an empty queue matters:
// callers driving a time-stepped co-simulation rely on ScheduleAfter being
// relative to the stepped clock, not to the last event.
func (e *Engine) Run(until time.Duration) time.Duration {
	e.halted = false
	for !e.halted {
		if len(e.queue) == 0 || e.queue[0].at > until {
			if until > e.now {
				e.now = until
			}
			return e.now
		}
		e.Step()
	}
	return e.now
}

// RunAll executes events until the queue is empty or Halt is called. Use
// only when the event population is known to be finite.
func (e *Engine) RunAll() time.Duration {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}
