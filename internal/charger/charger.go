// Package charger implements the battery-charger policies of the paper's
// §III: the original fixed-5A charger and the new variable charger whose
// initial constant-current setpoint scales with the battery's depth of
// discharge (Eq 1 and the Fig 6(a) flowchart), including the manual-override
// range used by the coordinated control plane.
package charger

import (
	"fmt"

	"coordcharge/internal/units"
)

// Hardware limits of the charger (paper §III-B): the variable charger's
// automatic range is 2–5 A and the manual override extends down to 1 A, the
// lower end of the recommended constant-current range for Li-ion cells.
const (
	// OverrideMin is the lowest settable charging current.
	OverrideMin units.Current = 1
	// AutoMin is the lowest current the variable charger selects on its own.
	AutoMin units.Current = 2
	// Max is the highest charging current (and the original charger's fixed
	// setting).
	Max units.Current = 5
)

// Policy selects the initial CC charging current a rack's PSUs apply when a
// discharged battery begins to recharge. The decision is local to the rack
// (no coordination): the paper's two hardware generations are the two
// implementations.
type Policy interface {
	// Name identifies the policy in reports ("original", "variable").
	Name() string
	// InitialCurrent returns the CC setpoint for a battery at the given
	// depth of discharge.
	InitialCurrent(dod units.Fraction) units.Current
}

// Original is the first-generation charger: a constant 5 A regardless of the
// energy discharged, the root cause of the worst-case recharge spike after
// every open transition (paper §III-A).
type Original struct{}

// Name implements Policy.
func (Original) Name() string { return "original" }

// InitialCurrent implements Policy: always the maximum.
func (Original) InitialCurrent(units.Fraction) units.Current { return Max }

// Variable is the new variable charger (paper §III-B): the initial current
// follows Eq 1, between 2 A and 5 A according to the depth of discharge.
type Variable struct{}

// Name implements Policy.
func (Variable) Name() string { return "variable" }

// InitialCurrent implements Policy using Eq 1.
func (Variable) InitialCurrent(dod units.Fraction) units.Current { return Eq1(dod) }

// Eq1 is the paper's Equation 1, the variable charger's current selection:
//
//	Ic = 2 + (DOD − 0.5) × 6   if DOD ≥ 50 %
//	Ic = 2                     if DOD < 50 %
//
// clamped to the charger's [2 A, 5 A] automatic range.
func Eq1(dod units.Fraction) units.Current {
	d := float64(dod.Clamp01())
	if d < 0.5 {
		return AutoMin
	}
	return units.Current(2+(d-0.5)*6).Clamp(AutoMin, Max)
}

// ClampOverride clamps a requested manual-override current to the hardware's
// settable range [1 A, 5 A].
func ClampOverride(i units.Current) units.Current {
	return i.Clamp(OverrideMin, Max)
}

// ByName returns the policy with the given name.
func ByName(name string) (Policy, error) {
	switch name {
	case "original":
		return Original{}, nil
	case "variable":
		return Variable{}, nil
	default:
		return nil, fmt.Errorf("charger: unknown policy %q (want original or variable)", name)
	}
}
