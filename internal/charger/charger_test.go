package charger

import (
	"math"
	"testing"
	"testing/quick"

	"coordcharge/internal/units"
)

func TestOriginalAlwaysMax(t *testing.T) {
	p := Original{}
	for _, dod := range []units.Fraction{0, 0.1, 0.5, 0.9, 1} {
		if got := p.InitialCurrent(dod); got != 5 {
			t.Errorf("original charger at DOD %v = %v, want 5 A", dod, got)
		}
	}
	if p.Name() != "original" {
		t.Errorf("Name = %q", p.Name())
	}
}

// Paper Fig 6(b): 2 A below 50 % DOD, rising linearly to 5 A at 100 %.
func TestEq1Anchors(t *testing.T) {
	cases := []struct {
		dod  units.Fraction
		want units.Current
	}{
		{0, 2},
		{0.2, 2},
		{0.499, 2},
		{0.5, 2},
		{0.6, 2.6},
		{0.7, 3.2},
		{0.75, 3.5},
		{0.9, 4.4},
		{1.0, 5},
	}
	for _, c := range cases {
		got := Eq1(c.dod)
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("Eq1(%v) = %v, want %v", c.dod, got, c.want)
		}
	}
}

func TestEq1ClampsOutOfRangeDOD(t *testing.T) {
	if got := Eq1(-0.5); got != 2 {
		t.Errorf("Eq1(-0.5) = %v, want 2 A", got)
	}
	if got := Eq1(1.5); got != 5 {
		t.Errorf("Eq1(1.5) = %v, want 5 A", got)
	}
}

func TestEq1RangeProperty(t *testing.T) {
	prop := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		i := Eq1(units.Fraction(x))
		return i >= 2 && i <= 5
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEq1MonotoneProperty(t *testing.T) {
	prop := func(aRaw, bRaw uint8) bool {
		a := units.Fraction(aRaw%101) / 100
		b := units.Fraction(bRaw%101) / 100
		if a > b {
			a, b = b, a
		}
		return Eq1(a) <= Eq1(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Paper §III-B: the variable charger cuts the recharge power by up to 60 %
// for shallow discharges (2 A vs 5 A).
func TestVariableChargerPowerReduction(t *testing.T) {
	v := Variable{}
	shallow := v.InitialCurrent(0.2)
	reduction := 1 - float64(shallow)/float64(Max)
	if math.Abs(reduction-0.6) > 1e-9 {
		t.Errorf("shallow-discharge power reduction = %.0f%%, want 60%%", reduction*100)
	}
	if v.Name() != "variable" {
		t.Errorf("Name = %q", v.Name())
	}
}

func TestClampOverride(t *testing.T) {
	cases := []struct{ in, want units.Current }{
		{0, 1}, {0.5, 1}, {1, 1}, {3, 3}, {5, 5}, {6, 5},
	}
	for _, c := range cases {
		if got := ClampOverride(c.in); got != c.want {
			t.Errorf("ClampOverride(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"original", "variable"} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("ByName accepted unknown policy")
	}
}
