package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultFlightCap is the number of events a recorder retains when
// constructed with a non-positive capacity.
const DefaultFlightCap = 4096

// Event is one journaled control decision: a telemetry evaluation, a plan, an
// override, a storm pause/admission, a guard demotion — anything the control
// plane decided. T is the virtual tick time (never wall clock, so event
// streams are reproducible); Seq orders events recorded at the same tick.
type Event struct {
	Seq  uint64            `json:"seq"`
	T    time.Duration     `json:"t"`
	Comp string            `json:"comp"`
	Kind string            `json:"kind"`
	Attr map[string]string `json:"attr,omitempty"`
}

// canonical returns the event's digest line: fixed field order, attribute
// keys sorted — byte-identical across runs for identical decision sequences.
func (e Event) canonical() string {
	keys := make([]string, 0, len(e.Attr))
	for k := range e.Attr {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("%d|%d|%s|%s", e.Seq, int64(e.T), e.Comp, e.Kind)
	for _, k := range keys {
		s += "|" + k + "=" + e.Attr[k]
	}
	return s
}

// Recorder is the control plane's flight recorder: a bounded ring buffer of
// Events plus a running digest over every event ever recorded (retention is
// bounded; the digest is not). Safe for concurrent use; nil-safe throughout.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event // guarded by mu
	n     int     // guarded by mu
	next  int     // guarded by mu
	seq   uint64  // guarded by mu
	hash  uint64  // guarded by mu; running FNV-64a over canonical event lines
	drops uint64  // guarded by mu; events evicted from the ring
}

// NewRecorder returns a recorder retaining the last capacity events
// (DefaultFlightCap if <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	const fnvOffset = 14695981039346656037
	return &Recorder{ring: make([]Event, capacity), hash: fnvOffset}
}

// Record journals one event (no-op on nil). kv lists attribute pairs; a
// trailing odd key is dropped.
func (r *Recorder) Record(t time.Duration, comp, kind string, kv ...string) {
	if r == nil {
		return
	}
	var attr map[string]string
	if len(kv) >= 2 {
		attr = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			attr[kv[i]] = kv[i+1]
		}
	}
	r.mu.Lock()
	e := Event{Seq: r.seq, T: t, Comp: comp, Kind: kind, Attr: attr}
	r.seq++
	if r.n == len(r.ring) {
		r.drops++
	}
	r.ring[r.next] = e
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	h := fnv.New64a()
	h.Write([]byte(e.canonical()))
	h.Write([]byte{'\n'})
	// Chain the per-event hash into the running digest (order-sensitive).
	r.hash = (r.hash ^ h.Sum64()) * 1099511628211
	r.mu.Unlock()
}

// Total returns how many events have ever been recorded (zero on nil).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many events aged out of the ring (zero on nil).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Last returns up to n of the most recent events, oldest first (nil on a nil
// recorder). n <= 0 returns everything retained.
func (r *Recorder) Last(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]Event, n)
	start := r.next - n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < n; i++ {
		out[i] = r.ring[(start+i)%len(r.ring)]
	}
	return out
}

// Digest returns the running digest over every event ever recorded, as a
// fixed-width hex string. Two runs of the same seeded scenario must produce
// identical digests; a mismatch means the control plane made different
// decisions (or made them in a different order) — the tripwire for
// map-iteration and timing nondeterminism.
func (r *Recorder) Digest() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return strconv.FormatUint(r.hash, 16)
}

// WriteJSONL dumps the retained events as JSON Lines, oldest first, so any
// trip or SLA miss can be reconstructed post-hoc from the decisions that led
// to it. A nil recorder writes nothing.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Last(0) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
