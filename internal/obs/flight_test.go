package obs

import (
	"strings"
	"testing"
	"time"
)

func record3(r *Recorder) {
	r.Record(1*time.Second, "controller/msb", "plan", "starts", "4", "available_w", "120000")
	r.Record(2*time.Second, "controller/msb", "override", "rack", "rack001", "amps", "5")
	r.Record(3*time.Second, "guard/msb", "demote", "rack", "rack002", "amps", "1")
}

func TestRecorderRingAndOrder(t *testing.T) {
	r := NewRecorder(2)
	record3(r)
	if r.Total() != 3 || r.Dropped() != 1 {
		t.Fatalf("total %d dropped %d, want 3 and 1", r.Total(), r.Dropped())
	}
	last := r.Last(0)
	if len(last) != 2 {
		t.Fatalf("retained %d events, want 2", len(last))
	}
	if last[0].Kind != "override" || last[1].Kind != "demote" {
		t.Fatalf("retained kinds %s,%s; want override,demote (oldest first)", last[0].Kind, last[1].Kind)
	}
	if last[0].Seq != 1 || last[1].Seq != 2 {
		t.Fatalf("seqs %d,%d; want 1,2", last[0].Seq, last[1].Seq)
	}
	if one := r.Last(1); len(one) != 1 || one[0].Kind != "demote" {
		t.Fatalf("Last(1) = %+v, want the newest event", one)
	}
}

func TestDigestDeterministicAndOrderSensitive(t *testing.T) {
	a, b := NewRecorder(8), NewRecorder(8)
	record3(a)
	record3(b)
	if a.Digest() == "" || a.Digest() != b.Digest() {
		t.Fatalf("digests differ for identical streams: %s vs %s", a.Digest(), b.Digest())
	}
	// Same events, different order: the digest must differ.
	c := NewRecorder(8)
	c.Record(2*time.Second, "controller/msb", "override", "rack", "rack001", "amps", "5")
	c.Record(1*time.Second, "controller/msb", "plan", "starts", "4", "available_w", "120000")
	c.Record(3*time.Second, "guard/msb", "demote", "rack", "rack002", "amps", "1")
	if c.Digest() == a.Digest() {
		t.Fatal("digest ignored event order")
	}
	// The digest covers evicted events too: a tiny ring and a large ring
	// over the same stream agree.
	tiny := NewRecorder(1)
	record3(tiny)
	if tiny.Digest() != a.Digest() {
		t.Fatalf("digest depends on ring capacity: %s vs %s", tiny.Digest(), a.Digest())
	}
}

func TestDigestCoversAttrs(t *testing.T) {
	a, b := NewRecorder(8), NewRecorder(8)
	a.Record(0, "c", "k", "rack", "rack001")
	b.Record(0, "c", "k", "rack", "rack002")
	if a.Digest() == b.Digest() {
		t.Fatal("digest ignored attribute values")
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(8)
	record3(r)
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"plan"`) || !strings.Contains(lines[0], `"starts":"4"`) {
		t.Fatalf("first line missing plan fields: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"comp":"guard/msb"`) {
		t.Fatalf("last line missing comp: %s", lines[2])
	}
}

func TestRecordOddKVDropsTail(t *testing.T) {
	r := NewRecorder(4)
	r.Record(0, "c", "k", "a", "1", "dangling")
	e := r.Last(1)[0]
	if len(e.Attr) != 1 || e.Attr["a"] != "1" {
		t.Fatalf("attrs = %v, want {a:1}", e.Attr)
	}
}
