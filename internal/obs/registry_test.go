package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("counter handle not stable across lookups")
	}
	g := r.Gauge("a.gauge")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	c.Set(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter after Set = %d, want 42", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1000)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot = %+v, want count 100, min 1, max 100", s)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("quantiles p50=%v p95=%v p99=%v, want 50/95/99", s.P50, s.P95, s.P99)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
}

func TestHistogramWindowSlides(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w", 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("all-time count = %d, want 100", s.Count)
	}
	if s.Min != 90 || s.Max != 99 {
		t.Fatalf("window min/max = %v/%v, want 90/99 (last 10 only)", s.Min, s.Max)
	}
}

// The disabled path: every method on nil receivers must be a safe no-op.
func TestNilSafety(t *testing.T) {
	var s *Sink
	s.Counter("x").Inc()
	s.Counter("x").Add(3)
	s.Gauge("y").Set(1)
	s.Histogram("z", 8).Observe(2)
	s.Event(0, "comp", "kind", "k", "v")
	if s.Counter("x").Value() != 0 || s.Gauge("y").Value() != 0 {
		t.Fatal("nil metrics returned non-zero values")
	}
	if snap := s.Histogram("z", 8).Snapshot(); snap.Count != 0 {
		t.Fatal("nil histogram returned observations")
	}
	var reg *Registry
	if reg.Counter("a") != nil || reg.Gauge("b") != nil || reg.Histogram("c", 1) != nil {
		t.Fatal("nil registry returned live metrics")
	}
	if snap := reg.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var fr *Recorder
	fr.Record(0, "c", "k")
	if fr.Total() != 0 || fr.Digest() != "" || fr.Last(10) != nil {
		t.Fatal("nil recorder not inert")
	}
	// A sink with nil fields is equally inert.
	half := &Sink{}
	half.Counter("x").Inc()
	half.Event(0, "c", "k")
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", 64).Observe(float64(j))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c1").Add(7)
	r.Gauge("g1").Set(2.25)
	r.Histogram("h1", 16).Observe(1)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"c1": 7`, `"g1": 2.25`, `"h1"`, `"p95"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
