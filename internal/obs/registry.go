package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultHistWindow is the observation window a histogram keeps when the
// caller passes a non-positive window.
const DefaultHistWindow = 1024

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (no-op on nil).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Set forces the counter to v (no-op on nil). It exists for mirroring
// externally accumulated totals (e.g. fault-injector counters) into the
// registry without double counting.
func (c *Counter) Set(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Gauge is a last-value metric. The zero value is ready to use; all methods
// are nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram keeps a sliding window of the most recent observations and
// summarises them as count/min/max/mean and p50/p95/p99 quantiles. All
// methods are nil-safe. Construct through Registry.Histogram (or NewSink);
// the zero value is not usable.
type Histogram struct {
	mu    sync.Mutex
	ring  []float64 // guarded by mu
	n     int       // guarded by mu; valid entries in ring
	next  int       // guarded by mu; next write position
	total int64     // guarded by mu; observations ever
}

func newHistogram(window int) *Histogram {
	if window <= 0 {
		window = DefaultHistWindow
	}
	return &Histogram{ring: make([]float64, window)}
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ring[h.next] = v
	h.next = (h.next + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	h.total++
	h.mu.Unlock()
}

// HistSnapshot is a histogram's summary over its current window (Count is
// the all-time observation count; the quantiles cover the window only).
type HistSnapshot struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarises the window (zero snapshot on nil or empty).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	vals := make([]float64, h.n)
	copy(vals, h.ring[:h.n])
	total := h.total
	h.mu.Unlock()
	if len(vals) == 0 {
		return HistSnapshot{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	sort.Float64s(vals)
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(vals)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(vals) {
			i = len(vals) - 1
		}
		return vals[i]
	}
	return HistSnapshot{
		Count: total,
		Min:   vals[0],
		Max:   vals[len(vals)-1],
		Mean:  sum / float64(len(vals)),
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
	}
}

// Registry is a concurrency-safe collection of named metrics. Metric handles
// are created on first use and stable thereafter, so hot paths should look
// them up once and hold the pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the given
// observation window (DefaultHistWindow if <= 0; the window of an existing
// histogram is not changed). Nil on a nil registry.
func (r *Registry) Histogram(name string, window int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(window)
		r.hists[name] = h
	}
	return h
}

// Snapshot is the registry's full state, JSON-marshalable with deterministic
// (sorted) key order — encoding/json sorts map keys.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
}

// Snapshot captures every metric's current value (empty snapshot on nil).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return emptySnapshot()
	}
	snap := emptySnapshot()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Snapshot()
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON (expvar-style:
// one object, sorted keys). A nil registry writes an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return writeSnapshotJSON(w, emptySnapshot())
	}
	return writeSnapshotJSON(w, r.Snapshot())
}

func writeSnapshotJSON(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
