package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPSurface(t *testing.T) {
	s := NewSink(64)
	s.Counter("dynamo.overrides").Add(3)
	s.Gauge("msb.headroom_w").Set(1500)
	s.Event(2*time.Second, "controller/msb", "plan", "starts", "2")
	srv := httptest.NewServer(Handler(s, func() map[string]any {
		return map[string]any{"scenario": "storm"}
	}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["dynamo.overrides"] != 3 || snap.Gauges["msb.headroom_w"] != 1500 {
		t.Fatalf("/metrics content wrong: %+v", snap)
	}

	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) || !strings.Contains(body, `"scenario": "storm"`) {
		t.Fatalf("/healthz = %d %s", code, body)
	}

	code, body = get(t, srv, "/debug/flight?n=10")
	if code != http.StatusOK || !strings.Contains(body, `"kind":"plan"`) {
		t.Fatalf("/debug/flight = %d %s", code, body)
	}
	if code, _ := get(t, srv, "/debug/flight?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad n accepted: %d", code)
	}

	code, body = get(t, srv, "/debug/flight/digest")
	if code != http.StatusOK || !strings.Contains(body, `"digest"`) {
		t.Fatalf("/debug/flight/digest = %d %s", code, body)
	}

	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof not mounted: %d", code)
	}
}

func TestHTTPSurfaceNilSink(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, `"counters": {}`) {
		t.Fatalf("nil-sink /metrics = %d %s", code, body)
	}
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("nil-sink /healthz = %d", code)
	}
	if code, _ := get(t, srv, "/debug/flight"); code != http.StatusOK {
		t.Fatalf("nil-sink /debug/flight = %d", code)
	}
}

// TestServeTimeoutsBounded is the slow-loris regression test: every I/O
// timeout on the served http.Server must be bounded, and the write timeout
// must still leave room for a default 30-second pprof CPU profile.
func TestServeTimeoutsBounded(t *testing.T) {
	srv, _, err := Serve("127.0.0.1:0", NewSink(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	checks := []struct {
		name string
		d    time.Duration
	}{
		{"ReadHeaderTimeout", srv.ReadHeaderTimeout},
		{"ReadTimeout", srv.ReadTimeout},
		{"WriteTimeout", srv.WriteTimeout},
		{"IdleTimeout", srv.IdleTimeout},
	}
	for _, c := range checks {
		if c.d <= 0 {
			t.Errorf("%s unbounded: a slow-loris client can pin the obs plane", c.name)
		}
		if c.d > 10*time.Minute {
			t.Errorf("%s = %v: effectively unbounded", c.name, c.d)
		}
	}
	if srv.WriteTimeout <= 30*time.Second {
		t.Errorf("WriteTimeout %v cannot serve a default 30s pprof profile", srv.WriteTimeout)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	s := NewSink(16)
	srv, addr, err := Serve("127.0.0.1:0", s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over Serve = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
