// Package obs is the observability plane of the coordinated-charging
// reproduction: a concurrency-safe metrics registry, a bounded flight
// recorder journaling every control decision, and an HTTP surface exposing
// both live. The paper's Dynamo control plane is operated from production
// dashboards — Figs 2 and 12–14 are telemetry (aggregate power against the
// breaker limit, per-priority charge completion, capping events); this
// package provides the substrate those dashboards read from.
//
// Design constraints:
//
//   - Stdlib only. The package imports nothing from the rest of the repo, so
//     every layer (rack, storm, dynamo, faults, scenario) can depend on it
//     without cycles.
//
//   - Nil-safe. Every method on *Sink, *Registry, *Recorder, *Counter,
//     *Gauge, and *Histogram is a no-op (or zero) on a nil receiver, so
//     instrumented hot paths cost one nil check when observability is
//     detached — the simulation sweeps that run thousands of experiments pay
//     nothing for the instrumentation they don't use (BenchmarkObsOverhead
//     holds this under 2%).
//
//   - Deterministic. Flight-recorder events carry virtual-time tick stamps,
//     never wall clock, and their canonical serialization feeds a running
//     digest: two runs of the same seeded scenario must produce byte-identical
//     digests, which is how accidental map-iteration or timing nondeterminism
//     in the control plane is caught (see TestFlightDigestDeterministic).
//
// The registry and recorder are safe for concurrent use: the simulation
// writes from its own goroutine while obs.Serve reads from HTTP handler
// goroutines. The HTTP surface deliberately reads only obs state — never the
// simulation's objects — so serving requires no locking in the sim itself.
package obs

import "time"

// Sink bundles the two observability outputs an instrumented component
// writes to. Components hold a *Sink and call its nil-safe helpers; a nil
// Sink (or nil fields) disables that output with no other code changes.
type Sink struct {
	// Reg receives metrics (counters, gauges, histograms).
	Reg *Registry
	// Flight receives structured control-decision events.
	Flight *Recorder
}

// NewSink returns a sink with a fresh registry and a flight recorder
// retaining the last flightCap events (DefaultFlightCap if <= 0).
func NewSink(flightCap int) *Sink {
	return &Sink{Reg: NewRegistry(), Flight: NewRecorder(flightCap)}
}

// Counter returns the named counter, or nil on a nil sink/registry.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Reg.Counter(name)
}

// Gauge returns the named gauge, or nil on a nil sink/registry.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Reg.Gauge(name)
}

// Histogram returns the named windowed histogram, or nil on a nil
// sink/registry.
func (s *Sink) Histogram(name string, window int) *Histogram {
	if s == nil {
		return nil
	}
	return s.Reg.Histogram(name, window)
}

// Event journals one control decision at virtual time t. kv lists attribute
// pairs (key1, value1, key2, value2, ...); a trailing odd key is dropped.
// No-op on a nil sink or recorder.
func (s *Sink) Event(t time.Duration, comp, kind string, kv ...string) {
	if s == nil {
		return
	}
	s.Flight.Record(t, comp, kind, kv...)
}
