package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// HealthFunc supplies extra fields for the /healthz response (may be nil).
// It is called from HTTP handler goroutines and must only read state that is
// safe to read concurrently with the simulation.
type HealthFunc func() map[string]any

// Handler returns the observability HTTP surface over a sink:
//
//	/metrics            registry snapshot (expvar-style JSON, sorted keys)
//	/healthz            {"status":"ok", ...health()}
//	/debug/flight       last-N flight-recorder events as JSONL (?n=, default 256)
//	/debug/flight/digest  running digest + totals as JSON
//	/debug/pprof/...    net/http/pprof
//
// A nil sink serves empty metrics and no flight events, never errors.
func Handler(s *Sink, health HealthFunc) http.Handler {
	var reg *Registry
	var fr *Recorder
	if s != nil {
		reg = s.Reg
		fr = s.Flight
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		resp := map[string]any{"status": "ok"}
		if health != nil {
			for k, v := range health() {
				resp[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n %q", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range fr.Last(n) {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/flight/digest", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"digest":  fr.Digest(),
			"total":   fr.Total(),
			"dropped": fr.Dropped(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server I/O bounds. Every timeout is set so a slow-loris client — one that
// dribbles header or body bytes, or never drains its response — occupies a
// connection for a bounded time instead of pinning the obs plane forever.
// WriteTimeout must accommodate the slowest legitimate response: a 30-second
// /debug/pprof/profile capture plus its transfer.
const (
	// ServeReadHeaderTimeout bounds how long a client may take to finish
	// sending request headers.
	ServeReadHeaderTimeout = 5 * time.Second
	// ServeReadTimeout bounds the whole request read (headers + body; obs
	// requests carry no meaningful bodies).
	ServeReadTimeout = 30 * time.Second
	// ServeWriteTimeout bounds the response write, from the end of the
	// request read. pprof CPU profiles default to 30 s of sampling before a
	// byte is written, so this must stay comfortably above that.
	ServeWriteTimeout = 2 * time.Minute
	// ServeIdleTimeout bounds how long a keep-alive connection may sit
	// between requests.
	ServeIdleTimeout = 2 * time.Minute
)

// NewServer builds the obs-plane http.Server with every I/O timeout bounded
// (see the Serve* constants). Serve and anything else exposing an obs
// handler on a real listener should build its server here so a slow or
// hostile client can never hold a connection unboundedly.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ServeReadHeaderTimeout,
		ReadTimeout:       ServeReadTimeout,
		WriteTimeout:      ServeWriteTimeout,
		IdleTimeout:       ServeIdleTimeout,
	}
}

// Serve listens on addr and serves Handler(s, health) in a background
// goroutine. It returns the server (for Shutdown/Close) and the bound
// listener address — useful when addr ends in ":0". Startup errors (bad
// address, port in use) are returned synchronously.
func Serve(addr string, s *Sink, health HealthFunc) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := NewServer(Handler(s, health))
	go srv.Serve(ln) //coordvet:detached lifecycle bounded by the returned *http.Server (Shutdown/Close joins it)
	return srv, ln.Addr(), nil
}
