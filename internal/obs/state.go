package obs

// RecorderState is a flight recorder's serializable state: the retained
// events (oldest first), the lifetime sequence counter, the running digest,
// and the eviction count. Restoring it makes the digest chain continue
// exactly where the checkpointed run left it, which is what lets a resumed
// run's final digest match an uninterrupted run byte for byte.
type RecorderState struct {
	Events []Event `json:"events,omitempty"`
	Seq    uint64  `json:"seq"`
	Hash   uint64  `json:"hash"`
	Drops  uint64  `json:"drops"`
}

// ExportState captures the recorder's retained events and digest chain
// (zero-value state on nil).
func (r *Recorder) ExportState() RecorderState {
	if r == nil {
		return RecorderState{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RecorderState{Seq: r.seq, Hash: r.hash, Drops: r.drops}
	if r.n > 0 {
		st.Events = make([]Event, r.n)
		start := r.next - r.n
		if start < 0 {
			start += len(r.ring)
		}
		for i := 0; i < r.n; i++ {
			st.Events[i] = r.ring[(start+i)%len(r.ring)]
		}
	}
	return st
}

// RestoreState overwrites the recorder's ring and digest chain from a
// checkpoint (no-op on nil). The recorder keeps its constructed capacity: if
// the checkpoint retains more events than fit, only the newest are kept and
// the overflow counts as dropped — the digest chain is unaffected either
// way, since it covers all events ever recorded.
func (r *Recorder) RestoreState(st RecorderState) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	events := st.Events
	drops := st.Drops
	if len(events) > len(r.ring) {
		drops += uint64(len(events) - len(r.ring))
		events = events[len(events)-len(r.ring):]
	}
	for i := range r.ring {
		r.ring[i] = Event{}
	}
	copy(r.ring, events)
	r.n = len(events)
	r.next = len(events) % len(r.ring)
	r.seq = st.Seq
	r.hash = st.Hash
	r.drops = drops
}
