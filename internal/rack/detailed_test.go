package rack

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/units"
)

func newDetailed(t *testing.T, pol charger.Policy) *DetailedRack {
	t.Helper()
	return NewDetailed("det-1", pol, battery.DefaultParams())
}

func TestDetailedConstruction(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	if len(d.Zones()) != 2 {
		t.Fatalf("zones = %d", len(d.Zones()))
	}
	for _, z := range d.Zones() {
		if len(z.PSUs()) != 3 {
			t.Fatalf("PSUs per zone = %d", len(z.PSUs()))
		}
		for _, p := range z.PSUs() {
			if p.BBU().State() != battery.FullyCharged {
				t.Errorf("PSU %s BBU not fully charged", p.Name())
			}
		}
	}
	if !d.InputUp() {
		t.Error("input not up")
	}
}

func TestDetailedNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for nil policy")
		}
	}()
	NewDetailed("x", nil, battery.DefaultParams())
}

// The 90-second design point: a fully loaded rack rides its BBUs for ~90 s.
func TestDetailedRuntimeAtFullLoad(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(MaxITLoad)
	rt := d.Runtime()
	// 6 BBUs × 297 kJ over 12.6 kW = 141 s of energy; the design point is
	// bounded by discharge capability and margin, but must exceed 90 s.
	if rt < 90*time.Second {
		t.Errorf("runtime at full load = %v, want ≥90 s", rt)
	}
	if rt > 5*time.Minute {
		t.Errorf("runtime at full load = %v, implausibly long", rt)
	}
}

func TestDetailedDischargeSharesAcrossHealthyPSUs(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(12 * units.Kilowatt) // 6 kW per zone, 2 kW per BBU
	d.LoseInput(0)
	d.Step(30*time.Second, 30*time.Second)
	for _, z := range d.Zones() {
		for _, p := range z.PSUs() {
			wantDOD := 2000.0 * 30 / float64(p.BBU().Params().FullEnergy)
			if math.Abs(float64(p.BBU().DOD())-wantDOD) > 1e-9 {
				t.Errorf("PSU %s DOD = %v, want %v", p.Name(), p.BBU().DOD(), wantDOD)
			}
		}
	}
	if d.Power() != 0 {
		t.Errorf("power during input loss = %v", d.Power())
	}
}

func TestDetailedRechargePerBBUDecision(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(12 * units.Kilowatt)
	d.LoseInput(0)
	d.Step(45*time.Second, 45*time.Second) // 2 kW per BBU × 45 s → ~30% DOD
	d.RestoreInput(45 * time.Second)
	if !d.Charging() {
		t.Fatal("not charging after restore")
	}
	for _, z := range d.Zones() {
		for _, p := range z.PSUs() {
			// Variable charger at <50% DOD: 2 A.
			if got := p.BBU().Setpoint(); got != 2 {
				t.Errorf("PSU %s setpoint = %v, want 2 A", p.Name(), got)
			}
		}
	}
	// 6 BBUs at 2 A ≈ 6 × ~95 W battery-side / 0.82.
	rp := d.RechargePower()
	if rp < 600*units.Watt || rp > 800*units.Watt {
		t.Errorf("recharge power = %v, want ~700 W", rp)
	}
	if got, want := d.Power(), 12*units.Kilowatt+rp; got != want {
		t.Errorf("rack power = %v, want %v", got, want)
	}
}

// The headline 1.9 kW figure: six fully discharged BBUs recharging at 5 A.
func TestDetailedOriginalChargerSpike(t *testing.T) {
	d := newDetailed(t, charger.Original{})
	d.SetDemand(MaxITLoad)
	d.LoseInput(0)
	d.Step(90*time.Second, 90*time.Second)
	d.RestoreInput(90 * time.Second)
	// All six BBUs in CC at 5 A (a 90 s full-load outage leaves each BBU at
	// ~64 % DOD — 2.1 kW shares, not the 3.3 kW single-BBU worst case — so
	// CC lasts ~11 min).
	d.Step(91*time.Second, 5*time.Minute)
	rp := d.RechargePower()
	if rp < 1.7*units.Kilowatt || rp > 2.0*units.Kilowatt {
		t.Errorf("recharge spike = %v, want ~1.9 kW", rp)
	}
}

func TestDetailedPSUFailureRedundancy(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(MaxITLoad)
	d.FailPSU(0, 1)
	// 2+1: one failure per zone is absorbed.
	if got := d.Shortfall(); got != 0 {
		t.Errorf("shortfall with one failed PSU = %v, want 0", got)
	}
	// Two failures in one zone exceed redundancy: 6.3 kW zone on one 3.15 kW
	// PSU.
	d.FailPSU(0, 2)
	if got := d.Shortfall(); math.Abs(float64(got)-3150) > 1 {
		t.Errorf("shortfall with two failed PSUs = %v, want 3.15 kW", got)
	}
	d.RepairPSU(0, 1)
	d.RepairPSU(0, 2)
	if got := d.Shortfall(); got != 0 {
		t.Errorf("shortfall after repair = %v", got)
	}
}

func TestDetailedFailedPSUDoesNotDischargeOrCharge(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(12 * units.Kilowatt)
	d.FailPSU(1, 0)
	d.LoseInput(0)
	d.Step(30*time.Second, 30*time.Second)
	failed := d.Zones()[1].PSUs()[0]
	if failed.BBU().DOD() != 0 {
		t.Errorf("failed PSU's BBU discharged: %v", failed.BBU().DOD())
	}
	// Its two zone-mates carried 3 kW each instead of 2 kW.
	mate := d.Zones()[1].PSUs()[1]
	wantDOD := 3000.0 * 30 / float64(mate.BBU().Params().FullEnergy)
	if math.Abs(float64(mate.BBU().DOD())-wantDOD) > 1e-9 {
		t.Errorf("zone-mate DOD = %v, want %v", mate.BBU().DOD(), wantDOD)
	}
	d.RestoreInput(30 * time.Second)
	if failed.BBU().State() == battery.Charging {
		t.Error("failed PSU's BBU charging")
	}
}

func TestDetailedOverrideCurrent(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(12 * units.Kilowatt)
	d.LoseInput(0)
	d.Step(45*time.Second, 45*time.Second)
	d.RestoreInput(45 * time.Second)
	d.OverrideCurrent(1)
	for _, z := range d.Zones() {
		for _, p := range z.PSUs() {
			if got := p.BBU().Setpoint(); got != 1 {
				t.Errorf("PSU %s setpoint after override = %v, want 1 A", p.Name(), got)
			}
		}
	}
	// Charging completes eventually and recharge power returns to zero.
	for i := 0; i < 500 && d.Charging(); i++ {
		d.Step(0, time.Minute)
	}
	if d.Charging() {
		t.Error("still charging after hours at 1 A")
	}
	if d.RechargePower() != 0 {
		t.Errorf("recharge power after completion = %v", d.RechargePower())
	}
}

func TestDetailedRuntimeEdgeCases(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	// Unloaded: effectively unlimited runtime.
	d.SetDemand(0)
	if rt := d.Runtime(); rt < time.Hour {
		t.Errorf("unloaded runtime = %v", rt)
	}
	// A zone with every PSU failed has zero runtime under load.
	d.SetDemand(12 * units.Kilowatt)
	d.FailPSU(0, 0)
	d.FailPSU(0, 1)
	d.FailPSU(0, 2)
	if rt := d.Runtime(); rt != 0 {
		t.Errorf("runtime with a dead zone = %v, want 0", rt)
	}
}

func TestDetailedDemandClamping(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(-1)
	if d.Demand() != 0 {
		t.Errorf("negative demand = %v", d.Demand())
	}
	d.SetDemand(50 * units.Kilowatt)
	if d.Demand() != MaxITLoad {
		t.Errorf("over-rating demand = %v, want clamped to %v", d.Demand(), MaxITLoad)
	}
}

func TestDetailedRestoreIdempotent(t *testing.T) {
	d := newDetailed(t, charger.Variable{})
	d.SetDemand(10 * units.Kilowatt)
	d.LoseInput(0)
	d.Step(20*time.Second, 20*time.Second)
	d.RestoreInput(20 * time.Second)
	sp := d.Zones()[0].PSUs()[0].BBU().Setpoint()
	d.RestoreInput(25 * time.Second) // no-op: must not restart charges
	if got := d.Zones()[0].PSUs()[0].BBU().Setpoint(); got != sp {
		t.Errorf("second restore changed setpoint: %v -> %v", sp, got)
	}
}
