package rack

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/units"
)

// The Open Rack V2 power architecture constants (paper §III-A).
const (
	// ZonesPerRack: a rack has two identical power zones.
	ZonesPerRack = 2
	// PSUsPerZone: each zone has three power supply units in a 2+1 redundant
	// arrangement, each backed by one BBU.
	PSUsPerZone = 3
	// MaxZoneLoad is half the rack rating.
	MaxZoneLoad = MaxITLoad / ZonesPerRack
	// MaxPSULoad is one PSU's output capability: a zone must be carriable by
	// two of its three PSUs.
	MaxPSULoad = MaxZoneLoad / 2
	// ConversionEfficiency is the AC→DC conversion plus charger losses; it
	// calibrates six BBUs charging at 5 A (~1572 W battery-side) to the
	// paper's 1.9 kW rack-input recharge figure.
	ConversionEfficiency = 0.82
)

// PSU is one power supply unit and its paired battery backup unit. The PSU
// converts rack input AC to DC for the IT gear and charges/discharges its
// BBU (paper §II-A).
type PSU struct {
	name   string
	bbu    *battery.BBU
	failed bool
}

// Name returns the PSU identifier.
func (p *PSU) Name() string { return p.name }

// BBU exposes the paired battery.
func (p *PSU) BBU() *battery.BBU { return p.bbu }

// Failed reports whether the PSU is out of service.
func (p *PSU) Failed() bool { return p.failed }

// Zone is one of the rack's two power zones: three PSUs sharing the zone's
// IT load, 2+1 redundant.
type Zone struct {
	psus [PSUsPerZone]*PSU
	load units.Power
}

// PSUs returns the zone's power supply units.
func (z *Zone) PSUs() []*PSU { return z.psus[:] }

// healthy returns the in-service PSUs.
func (z *Zone) healthy() []*PSU {
	var out []*PSU
	for _, p := range z.psus {
		if !p.failed {
			out = append(out, p)
		}
	}
	return out
}

// Capacity returns the zone's deliverable power given its healthy PSUs.
func (z *Zone) Capacity() units.Power {
	return units.Power(len(z.healthy())) * MaxPSULoad
}

// Shortfall returns the zone load the healthy PSUs cannot carry.
func (z *Zone) Shortfall() units.Power {
	return z.load.Over(z.Capacity())
}

// DetailedRack models the rack's power internals explicitly — two zones of
// three PSU+BBU pairs — where Rack abstracts them into one pack. It exists
// for hardware-level studies (PSU failures, per-BBU charge profiles); the
// fleet-scale simulations use Rack.
type DetailedRack struct {
	name    string
	policy  charger.Policy
	zones   [ZonesPerRack]*Zone
	inputUp bool
}

// NewDetailed builds a detailed rack with all PSUs healthy, all BBUs full,
// and input power up.
func NewDetailed(name string, policy charger.Policy, params battery.Params) *DetailedRack {
	if policy == nil {
		panic(fmt.Errorf("rack %s: nil charger policy", name))
	}
	d := &DetailedRack{name: name, policy: policy, inputUp: true}
	for zi := range d.zones {
		z := &Zone{}
		for pi := range z.psus {
			z.psus[pi] = &PSU{
				name: fmt.Sprintf("%s/z%d/psu%d", name, zi, pi),
				bbu:  battery.New(params),
			}
		}
		d.zones[zi] = z
	}
	return d
}

// Name returns the rack identifier.
func (d *DetailedRack) Name() string { return d.name }

// Zones returns the two power zones.
func (d *DetailedRack) Zones() []*Zone { return d.zones[:] }

// InputUp reports whether rack input power is present.
func (d *DetailedRack) InputUp() bool { return d.inputUp }

// SetDemand sets the rack's IT load, split evenly across the zones and
// clamped to the rack rating.
func (d *DetailedRack) SetDemand(p units.Power) {
	if p < 0 {
		p = 0
	}
	if p > MaxITLoad {
		p = MaxITLoad
	}
	for _, z := range d.zones {
		z.load = p / ZonesPerRack
	}
}

// Demand returns the rack's IT load.
func (d *DetailedRack) Demand() units.Power {
	var total units.Power
	for _, z := range d.zones {
		total += z.load
	}
	return total
}

// Shortfall returns IT load that cannot be served because too many PSUs have
// failed (beyond the 2+1 redundancy).
func (d *DetailedRack) Shortfall() units.Power {
	var total units.Power
	for _, z := range d.zones {
		total += z.Shortfall()
	}
	return total
}

// FailPSU takes a PSU out of service. Its BBU neither charges nor
// discharges.
func (d *DetailedRack) FailPSU(zone, psu int) {
	d.zones[zone].psus[psu].failed = true
}

// RepairPSU returns a PSU to service.
func (d *DetailedRack) RepairPSU(zone, psu int) {
	d.zones[zone].psus[psu].failed = false
}

// LoseInput starts an input-power loss: the healthy PSUs begin discharging
// their BBUs to carry the zone loads.
func (d *DetailedRack) LoseInput(time.Duration) { d.inputUp = false }

// RestoreInput ends the input-power loss: every discharged BBU begins its
// CC-CV recharge at the current chosen by the local charger policy from its
// own depth of discharge — the per-PSU decision the paper's §IV opens with.
func (d *DetailedRack) RestoreInput(time.Duration) {
	if d.inputUp {
		return
	}
	d.inputUp = true
	for _, z := range d.zones {
		for _, p := range z.healthy() {
			if dod := p.bbu.DOD(); dod > 0 {
				p.bbu.StartCharge(d.policy.InitialCurrent(dod))
			}
		}
	}
}

// OverrideCurrent applies a manual charging-current override to every
// charging BBU (the Dynamo agent's command).
func (d *DetailedRack) OverrideCurrent(i units.Current) {
	for _, z := range d.zones {
		for _, p := range z.psus {
			p.bbu.SetChargeCurrent(charger.ClampOverride(i))
		}
	}
}

// Step advances the rack by dt: discharging BBUs carry the zone loads while
// input is lost, charging BBUs progress while input is up.
func (d *DetailedRack) Step(_ time.Duration, dt time.Duration) {
	if dt <= 0 {
		return
	}
	for _, z := range d.zones {
		healthy := z.healthy()
		if !d.inputUp {
			if len(healthy) == 0 {
				continue
			}
			share := z.load / units.Power(len(healthy))
			for _, p := range healthy {
				p.bbu.Discharge(share, dt)
			}
			continue
		}
		for _, p := range healthy {
			p.bbu.StepCharge(dt)
		}
	}
}

// RechargePower returns the rack-input power drawn to recharge the BBUs
// (battery-side power divided by the conversion efficiency).
func (d *DetailedRack) RechargePower() units.Power {
	if !d.inputUp {
		return 0
	}
	var batterySide units.Power
	for _, z := range d.zones {
		for _, p := range z.psus {
			batterySide += p.bbu.ChargePower()
		}
	}
	return units.Power(float64(batterySide) / ConversionEfficiency)
}

// Power returns the rack's draw on the hierarchy: served IT load plus
// recharge power, zero while input is lost. IT conversion losses are treated
// as part of the load rating, matching the abstract Rack model.
func (d *DetailedRack) Power() units.Power {
	if !d.inputUp {
		return 0
	}
	var served units.Power
	for _, z := range d.zones {
		served += z.load - z.Shortfall()
	}
	return served + d.RechargePower()
}

// Charging reports whether any BBU is recharging.
func (d *DetailedRack) Charging() bool {
	for _, z := range d.zones {
		for _, p := range z.psus {
			if p.bbu.State() == battery.Charging {
				return true
			}
		}
	}
	return false
}

// Runtime returns how long the batteries can carry the present load at the
// present state of charge — the paper's 90-second design point when fully
// charged at the rack rating. It returns the minimum across zones; an
// unloaded rack reports the maximum representable duration.
func (d *DetailedRack) Runtime() time.Duration {
	min := time.Duration(1<<63 - 1)
	for _, z := range d.zones {
		if z.load <= 0 {
			continue
		}
		healthy := z.healthy()
		if len(healthy) == 0 {
			return 0
		}
		var energy units.Energy
		for _, p := range healthy {
			energy += units.Energy(float64(p.bbu.SOC()) * float64(p.bbu.Params().FullEnergy))
		}
		// Deliverable power is bounded by per-BBU discharge capability.
		cap := units.Power(len(healthy)) * healthy[0].bbu.Params().MaxDischarge
		load := z.load
		if load > cap {
			return 0 // the zone browns out immediately
		}
		if rt := units.DurationFor(energy, load); rt < min {
			min = rt
		}
	}
	return min
}
