package rack

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/units"
)

// Closed-loop discharge: while input is down the rack carries its IT load
// from the battery, so a second outage striking mid-recharge must surface as
// the pack's true depth of discharge at the next restore — not as a fresh
// open-loop estimate of the latest outage alone.

func TestSecondOutageReportsTrueDOD(t *testing.T) {
	r := newRack(t, P2, charger.Variable{})
	r.SetDemand(6300 * units.Watt)

	r.LoseInput(0)
	r.Step(60*time.Second, 60*time.Second)
	r.RestoreInput(60 * time.Second)
	dod1 := float64(r.LastDOD())
	if want := 6300.0 * 60 / battery.RackFullEnergy; math.Abs(dod1-want) > 1e-9 {
		t.Fatalf("first-outage DOD = %v, want %v", dod1, want)
	}

	// Recharge for 30 s, then lose input again mid-charge.
	r.Step(90*time.Second, 30*time.Second)
	mid := float64(r.BatteryDOD())
	if mid >= dod1 {
		t.Fatalf("charge made no progress: DOD %v after charging from %v", mid, dod1)
	}
	r.LoseInput(90 * time.Second)
	if r.Charging() {
		t.Fatal("still charging with input down")
	}
	if r.PendingDOD() != 0 {
		t.Fatalf("outage left a pending charge: %v", r.PendingDOD())
	}
	r.Step(120*time.Second, 30*time.Second)
	r.RestoreInput(120 * time.Second)

	want := mid + 6300.0*30/battery.RackFullEnergy
	if got := float64(r.LastDOD()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("restore DOD = %v, want %v (undelivered charge + new drain)", got, want)
	}
	if !r.Charging() {
		t.Fatal("rack not charging after second restore")
	}
}

func TestDepletionDropsLoadAndCountsUnserved(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(9100 * units.Watt) // depletes mid-tick at ~124.6 s
	r.LoseInput(0)
	for now := 3 * time.Second; now <= 150*time.Second; now += 3 * time.Second {
		r.Step(now, 3*time.Second)
	}
	if !r.Depleted() {
		t.Fatal("rack never depleted")
	}
	if got := r.LoadDropEvents(); got != 1 {
		t.Fatalf("LoadDropEvents = %d, want 1", got)
	}
	wantUnserved := 9100.0*150 - battery.RackFullEnergy
	if got := float64(r.UnservedEnergy()); math.Abs(got-wantUnserved) > 1e-6 {
		t.Fatalf("UnservedEnergy = %v, want %v", got, wantUnserved)
	}
	if r.Power() != 0 {
		t.Fatalf("depleted rack draws %v", r.Power())
	}
	r.RestoreInput(151 * time.Second)
	if r.LastDOD() != 1 {
		t.Fatalf("restore DOD = %v, want 1", r.LastDOD())
	}
	if !r.Charging() {
		t.Fatal("depleted rack not recharging after restore")
	}
	if r.Depleted() {
		t.Fatal("Depleted still true with input restored")
	}
}

func TestOutageFoldsPostponedChargeIntoTrueDOD(t *testing.T) {
	r := newRack(t, P3, charger.Variable{})
	r.SetDemand(5000 * units.Watt)
	r.LoseInput(0)
	r.Step(60*time.Second, 60*time.Second)
	r.RestoreInput(60 * time.Second)
	r.Postpone()
	pending := float64(r.PendingDOD())
	if pending <= 0 {
		t.Fatal("postpone left nothing pending")
	}

	// The next outage absorbs the pending charge into the pack's deficit:
	// the rack owes one combined recharge, not a stale postponed one.
	r.LoseInput(70 * time.Second)
	if r.PendingDOD() != 0 {
		t.Fatalf("pending DOD survived the outage: %v", r.PendingDOD())
	}
	r.Step(100*time.Second, 30*time.Second)
	r.RestoreInput(100 * time.Second)
	want := pending + 5000.0*30/battery.RackFullEnergy
	if got := float64(r.LastDOD()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("restore DOD = %v, want %v (postponed + new drain)", got, want)
	}
}
