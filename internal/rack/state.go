package rack

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/units"
)

// State is a rack's serializable mutable state: everything a checkpoint must
// carry to continue the rack bit-exactly. Construction-time configuration —
// name, priority, charger policy, battery surface, watchdog TTL and safe
// current, observability wiring — is rebuilt from the scenario spec on
// restore and deliberately absent here.
type State struct {
	Name           string                 `json:"name"`
	Demand         units.Power            `json:"demand"`
	Caps           map[string]units.Power `json:"caps,omitempty"`
	InputUp        bool                   `json:"input_up"`
	Version        uint64                 `json:"version"`
	UnservedEnergy units.Energy           `json:"unserved_energy"`
	LoadDrops      int                    `json:"load_drops"`
	ChargeStart    time.Duration          `json:"charge_start"`
	ChargeEnd      time.Duration          `json:"charge_end"`
	LastDOD        units.Fraction         `json:"last_dod"`
	PendingDOD     units.Fraction         `json:"pending_dod"`
	LastContact    time.Duration          `json:"last_contact"`
	HaveContact    bool                   `json:"have_contact"`
	FailSafe       bool                   `json:"fail_safe"`
	FailSafeCount  int                    `json:"fail_safe_count"`
	Pack           battery.PackState      `json:"pack"`
}

// ExportState captures the rack's mutable state. The caps map is copied so
// later mutations cannot alias into the checkpoint.
func (r *Rack) ExportState() State {
	st := State{
		Name:           r.name,
		Demand:         r.demand,
		InputUp:        r.inputUp,
		Version:        r.version,
		UnservedEnergy: r.unservedEnergy,
		LoadDrops:      r.loadDrops,
		ChargeStart:    r.chargeStart,
		ChargeEnd:      r.chargeEnd,
		LastDOD:        r.lastDOD,
		PendingDOD:     r.pendingDOD,
		LastContact:    r.lastContact,
		HaveContact:    r.haveContact,
		FailSafe:       r.failSafe,
		FailSafeCount:  r.failSafeCount,
		Pack:           r.pack.ExportState(),
	}
	if len(r.caps) > 0 {
		st.Caps = make(map[string]units.Power, len(r.caps))
		for k, v := range r.caps {
			st.Caps[k] = v
		}
	}
	return st
}

// RestoreState overwrites the rack's mutable state from a checkpoint. The
// rack must be the one the state was exported from (matched by name); its
// constructed policy, surface, watchdog configuration, and observability
// wiring are kept.
func (r *Rack) RestoreState(st State) error {
	if st.Name != r.name {
		return fmt.Errorf("rack: checkpoint state for %q restored into %q", st.Name, r.name)
	}
	r.demand = st.Demand
	r.caps = make(map[string]units.Power, len(st.Caps))
	for k, v := range st.Caps {
		r.caps[k] = v
	}
	r.refreshCapMin()
	r.inputUp = st.InputUp
	r.unservedEnergy = st.UnservedEnergy
	r.loadDrops = st.LoadDrops
	r.chargeStart = st.ChargeStart
	r.chargeEnd = st.ChargeEnd
	r.lastDOD = st.LastDOD
	r.pendingDOD = st.PendingDOD
	r.lastContact = st.LastContact
	r.haveContact = st.HaveContact
	r.failSafe = st.FailSafe
	r.failSafeCount = st.FailSafeCount
	r.pack.RestoreState(st.Pack)
	r.version = st.Version
	return nil
}
