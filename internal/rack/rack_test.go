package rack

import (
	"math"
	"testing"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/units"
)

func newRack(t *testing.T, p Priority, pol charger.Policy) *Rack {
	t.Helper()
	return New("rack-1", p, pol, battery.Fig5Surface())
}

func TestPriorityString(t *testing.T) {
	cases := map[Priority]string{P1: "P1", P2: "P2", P3: "P3", Priority(7): "Priority(7)"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if !P1.Valid() || Priority(0).Valid() || Priority(4).Valid() {
		t.Error("Valid() misclassifies priorities")
	}
}

func TestNewPanicsOnInvalidInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad priority": func() { New("r", Priority(9), charger.Variable{}, battery.Fig5Surface()) },
		"nil policy":   func() { New("r", P1, nil, battery.Fig5Surface()) },
		"nil surface":  func() { New("r", P1, charger.Variable{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDemandClamping(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(-5)
	if r.Demand() != 0 {
		t.Errorf("negative demand not clamped: %v", r.Demand())
	}
	r.SetDemand(99999 * units.Watt)
	if r.Demand() != MaxITLoad {
		t.Errorf("over-max demand not clamped: %v", r.Demand())
	}
}

func TestPowerIsLoadPlusRecharge(t *testing.T) {
	r := newRack(t, P2, charger.Variable{})
	r.SetDemand(8000 * units.Watt)
	if got := r.Power(); got != 8000*units.Watt {
		t.Errorf("steady-state power = %v, want 8 kW", got)
	}
	// Open transition: 45 s at 8 kW.
	r.LoseInput(0)
	if got := r.Power(); got != 0 {
		t.Errorf("power during input loss = %v, want 0", got)
	}
	r.Step(45*time.Second, 45*time.Second)
	r.RestoreInput(45 * time.Second)
	wantDOD := 8000.0 * 45 / battery.RackFullEnergy
	if math.Abs(float64(r.LastDOD())-wantDOD) > 1e-9 {
		t.Errorf("DOD = %v, want %v", r.LastDOD(), wantDOD)
	}
	if !r.Charging() {
		t.Error("rack not charging after restore")
	}
	// DOD ≈ 0.317 < 0.5 so the variable charger picks 2 A: 760 W recharge.
	if got := r.RechargePower(); math.Abs(float64(got)-760) > 1 {
		t.Errorf("recharge power = %v, want 760 W", got)
	}
	if got := r.Power(); math.Abs(float64(got)-(8000+760)) > 1 {
		t.Errorf("total power = %v, want 8760 W", got)
	}
}

func TestOriginalChargerSpikesAtMax(t *testing.T) {
	r := newRack(t, P3, charger.Original{})
	r.SetDemand(4000 * units.Watt)
	r.LoseInput(0)
	r.Step(10*time.Second, 10*time.Second)
	r.RestoreInput(10 * time.Second)
	// Original charger: 5 A regardless of tiny DOD → 1.9 kW.
	if got := r.RechargePower(); math.Abs(float64(got)-1900) > 1 {
		t.Errorf("original-charger recharge power = %v, want 1.9 kW", got)
	}
}

func TestCapping(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(10000 * units.Watt)
	r.Cap("msb", 6000*units.Watt)
	if got := r.ITLoad(); got != 6000*units.Watt {
		t.Errorf("capped IT load = %v, want 6 kW", got)
	}
	if got := r.CappedPower(); got != 4000*units.Watt {
		t.Errorf("capped power = %v, want 4 kW", got)
	}
	r.Uncap("msb")
	if got := r.ITLoad(); got != 10000*units.Watt {
		t.Errorf("uncapped IT load = %v", got)
	}
	// A cap above demand has no effect.
	r.Cap("msb", 12000*units.Watt)
	if got := r.CappedPower(); got != 0 {
		t.Errorf("cap above demand capped %v", got)
	}
}

func TestMultiSourceCapsTightestWins(t *testing.T) {
	r := newRack(t, P2, charger.Variable{})
	r.SetDemand(10000 * units.Watt)
	r.Cap("rpp", 8000*units.Watt)
	r.Cap("msb", 5000*units.Watt)
	if got := r.ITLoad(); got != 5000*units.Watt {
		t.Errorf("IT load = %v, want tightest cap 5 kW", got)
	}
	r.Uncap("msb")
	if got := r.ITLoad(); got != 8000*units.Watt {
		t.Errorf("IT load = %v, want remaining cap 8 kW", got)
	}
	r.Uncap("rpp")
	r.Uncap("rpp") // double-uncap is a no-op
	if got := r.ITLoad(); got != 10000*units.Watt {
		t.Errorf("IT load = %v, want uncapped demand", got)
	}
	// Negative caps clamp to zero.
	r.Cap("msb", -1)
	if got := r.ITLoad(); got != 0 {
		t.Errorf("IT load = %v, want 0 under negative cap", got)
	}
}

func TestChargeCompletion(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(12600 * units.Watt)
	r.LoseInput(0)
	r.Step(45*time.Second, 45*time.Second)
	r.RestoreInput(45 * time.Second) // 50% DOD → 2 A → 40 min charge
	now := 45 * time.Second
	const step = 3 * time.Second
	for r.Charging() && now < 3*time.Hour {
		now += step
		r.Step(now, step)
	}
	d, done := r.ChargeDuration(now)
	if !done {
		t.Fatal("charge never completed")
	}
	if d < 38*time.Minute || d > 42*time.Minute {
		t.Errorf("charge duration = %v, want ~40 min", d)
	}
}

func TestOverrideCurrentClamped(t *testing.T) {
	r := newRack(t, P2, charger.Variable{})
	r.SetDemand(12600 * units.Watt)
	r.LoseInput(0)
	r.Step(45*time.Second, 45*time.Second)
	r.RestoreInput(45 * time.Second)
	r.OverrideCurrent(0.2) // below hardware floor
	if got := r.Pack().Setpoint(); got != 1 {
		t.Errorf("override clamped to %v, want 1 A", got)
	}
	r.OverrideCurrent(9)
	if got := r.Pack().Setpoint(); got != 5 {
		t.Errorf("override clamped to %v, want 5 A", got)
	}
}

func TestLoseInputDuringChargeCarriesDeficit(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(12600 * units.Watt)
	r.LoseInput(0)
	r.Step(90*time.Second, 90*time.Second) // full discharge
	r.RestoreInput(90 * time.Second)
	if r.LastDOD() != 1 {
		t.Fatalf("DOD = %v, want 1", r.LastDOD())
	}
	// Charge half way, then lose input again with no load.
	now := 90 * time.Second
	for i := 0; i < 400; i++ { // 20 min at 3 s
		now += 3 * time.Second
		r.Step(now, 3*time.Second)
	}
	r.SetDemand(0)
	r.LoseInput(now)
	r.RestoreInput(now + 10*time.Second)
	// The unfinished half charge must reappear as a significant DOD.
	if r.LastDOD() < 0.2 || r.LastDOD() > 0.9 {
		t.Errorf("carried-over DOD = %v, want mid-range", r.LastDOD())
	}
	if !r.Charging() {
		t.Error("rack not recharging the carried-over deficit")
	}
}

func TestZeroLengthOutageNoCharge(t *testing.T) {
	r := newRack(t, P3, charger.Variable{})
	r.SetDemand(5000 * units.Watt)
	r.LoseInput(0)
	r.RestoreInput(0)
	if r.Charging() {
		t.Error("zero-energy outage started a charge")
	}
	if r.LastDOD() != 0 {
		t.Errorf("DOD = %v, want 0", r.LastDOD())
	}
}

func TestDoubleLoseRestoreIdempotent(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(6000 * units.Watt)
	r.LoseInput(0)
	r.LoseInput(time.Second) // no-op
	r.Step(30*time.Second, 30*time.Second)
	r.RestoreInput(30 * time.Second)
	dod := r.LastDOD()
	r.RestoreInput(40 * time.Second) // no-op
	if r.LastDOD() != dod {
		t.Error("second RestoreInput changed DOD")
	}
}

func TestOutageEnergySaturatesAtFullDischarge(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(12600 * units.Watt)
	r.LoseInput(0)
	r.Step(10*time.Minute, 10*time.Minute) // far beyond 90 s of battery
	r.RestoreInput(10 * time.Minute)
	if r.LastDOD() != 1 {
		t.Errorf("DOD after extended outage = %v, want 1 (saturated)", r.LastDOD())
	}
}

func TestChargeDurationInProgress(t *testing.T) {
	r := newRack(t, P1, charger.Variable{})
	r.SetDemand(12600 * units.Watt)
	r.LoseInput(0)
	r.Step(45*time.Second, 45*time.Second)
	r.RestoreInput(45 * time.Second)
	d, done := r.ChargeDuration(10 * time.Minute)
	if done {
		t.Error("charge reported complete immediately")
	}
	if d != 10*time.Minute-45*time.Second {
		t.Errorf("elapsed charge time = %v", d)
	}
}

// Once the watchdog has fired and no controller contact ever arrives, the
// fail-safe must persist across charges: a subsequent charge — whether from a
// fresh input restore or a postponed-charge resume — starts at the safe
// current instead of getting another full-rate run, and only controller
// contact restores normal operation.
func TestWatchdogFailSafePersistsAcrossCharges(t *testing.T) {
	r := newRack(t, P1, charger.Original{})
	r.SetWatchdog(20*time.Second, 1)
	r.SetDemand(9000 * units.Watt)

	// Charge 1: the watchdog fires one TTL after the charge starts.
	r.LoseInput(0)
	r.Step(45*time.Second, 45*time.Second)
	r.RestoreInput(45 * time.Second)
	if got := r.Pack().Setpoint(); got != 5 {
		t.Fatalf("initial setpoint = %v, want the original charger's 5 A", got)
	}
	for now := 48 * time.Second; now <= 90*time.Second; now += 3 * time.Second {
		r.Step(now, 3*time.Second)
	}
	if !r.FailSafeActive() || r.Pack().Setpoint() != 1 {
		t.Fatalf("watchdog did not demote charge 1: active=%v setpoint=%v",
			r.FailSafeActive(), r.Pack().Setpoint())
	}

	// Charge 2: still no contact — it must start at the safe current.
	r.LoseInput(100 * time.Second)
	r.Step(145*time.Second, 45*time.Second)
	r.RestoreInput(145 * time.Second)
	if got := r.Pack().Setpoint(); got != 1 {
		t.Errorf("charge 2 setpoint = %v, want the safe 1 A from the start", got)
	}
	if !r.FailSafeActive() {
		t.Error("fail-safe not latched across charges")
	}
	if got := r.FailSafeActivations(); got != 2 {
		t.Errorf("activations = %d, want 2 (one per demoted charge)", got)
	}

	// A postponed charge resumed while still partitioned is clamped too.
	r.Postpone()
	r.ResumeCharge(5)
	if got := r.Pack().Setpoint(); got != 1 {
		t.Errorf("resumed setpoint = %v, want the safe 1 A", got)
	}

	// Controller contact clears the latch; the next charge gets the policy
	// current and a fresh TTL.
	r.ControllerContact(150 * time.Second)
	if r.FailSafeActive() {
		t.Error("fail-safe not cleared by controller contact")
	}
	r.LoseInput(200 * time.Second)
	r.Step(245*time.Second, 45*time.Second)
	r.RestoreInput(245 * time.Second)
	if got := r.Pack().Setpoint(); got != 5 {
		t.Errorf("post-contact charge setpoint = %v, want the policy's 5 A", got)
	}
}
