// Package rack models an Open Rack V2 server rack as the coordinated
// charging system sees it: an IT load, a priority class, a battery backup
// (six BBUs abstracted as one rack-level pack), a local charger policy, and
// the input-power lifecycle — lose input during an open transition, ride on
// batteries, recharge when power returns (paper §II-A, §III).
package rack

import (
	"fmt"
	"time"

	"coordcharge/internal/battery"
	"coordcharge/internal/charger"
	"coordcharge/internal/obs"
	"coordcharge/internal/units"
)

// Priority is the service-priority class of a rack (paper §IV): P1 racks run
// stateful workloads needing the strongest power-availability guarantee; P3
// racks run stateless compute.
type Priority int

// Rack priorities, highest first.
const (
	P1 Priority = 1
	P2 Priority = 2
	P3 Priority = 3
)

// String returns "P1", "P2", or "P3".
func (p Priority) String() string {
	switch p {
	case P1, P2, P3:
		return fmt.Sprintf("P%d", int(p))
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Valid reports whether p is one of the three defined priorities.
func (p Priority) Valid() bool { return p >= P1 && p <= P3 }

// MaxITLoad is the Open Rack V2 rack rating.
const MaxITLoad = 12600 * units.Watt

// Rack is one server rack. Construct with New.
type Rack struct {
	name     string
	priority Priority
	policy   charger.Policy
	pack     *battery.RackPack

	demand  units.Power            // what the servers want to draw
	caps    map[string]units.Power // Dynamo power caps by issuing controller
	capMin  units.Power            // tightest entry of caps, kept in sync by Cap/Uncap //coordvet:transient derived: refreshCapMin rebuilds it from caps on restore
	hasCap  bool                   // whether caps is non-empty (capMin is meaningful) //coordvet:transient derived: refreshCapMin rebuilds it from caps on restore
	inputUp bool

	// version counts externally visible state mutations. Every mutating
	// method bumps it, so observers (dynamo agents) can reuse a snapshot
	// taken earlier in the same tick as long as the version is unchanged.
	// Bumping on a logical no-op is harmless (one wasted re-snapshot);
	// missing a bump would serve stale reads, so mutators bump up front.
	version uint64

	// Outage accounting for the closed discharge loop: IT energy the
	// batteries could not supply (the pack emptied mid-outage), and how many
	// outages drained the pack dry and dropped the rack's load.
	unservedEnergy units.Energy
	loadDrops      int

	// Charge bookkeeping for SLA accounting.
	chargeStart time.Duration
	chargeEnd   time.Duration
	lastDOD     units.Fraction

	// Postponed-charge bookkeeping: the undelivered depth of discharge of a
	// charge the control plane postponed (kept rack-local so a controller
	// that crashes and restarts can reconstruct its postponed set from
	// agent reads).
	pendingDOD units.Fraction

	// Fail-safe watchdog (degraded mode): if no controller contact arrives
	// within watchdogTTL while a charge is running, the rack reverts to the
	// safe low-current charging policy so a partitioned rack can never trip
	// its breaker. Zero TTL disables the watchdog.
	watchdogTTL   time.Duration //coordvet:transient config: scenario build re-arms SetWatchdog before RestoreState
	safeCurrent   units.Current //coordvet:transient config: scenario build re-arms SetWatchdog before RestoreState
	lastContact   time.Duration
	haveContact   bool
	failSafe      bool
	failSafeCount int

	// Observability (nil when detached): fail-safe activations are counted
	// and journaled so a watchdog firing can be traced post-hoc.
	sink      *obs.Sink    //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cFailSafe *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
}

// New returns a rack with input power up, a fully charged battery pack, and
// the given local charger policy. It panics on an invalid priority or nil
// dependencies: topology construction errors are programming mistakes.
func New(name string, p Priority, policy charger.Policy, surface *battery.Surface) *Rack {
	if !p.Valid() {
		panic(fmt.Errorf("rack %s: invalid priority %d", name, int(p)))
	}
	if policy == nil || surface == nil {
		panic(fmt.Errorf("rack %s: nil charger policy or surface", name))
	}
	return &Rack{
		name:     name,
		priority: p,
		policy:   policy,
		pack:     battery.NewRackPack(surface),
		caps:     make(map[string]units.Power),
		inputUp:  true,
	}
}

// Name returns the rack's identifier.
func (r *Rack) Name() string { return r.name }

// Version returns the rack's mutation counter. It increases (by at least
// one) whenever any telemetry-visible rack or pack state — demand, caps,
// input, charge state, setpoint, pending DOD — may have changed; two reads
// returning the same version bracket a window in which a telemetry snapshot
// of the rack would have been identical.
func (r *Rack) Version() uint64 { return r.version }

// Priority returns the rack's service priority.
func (r *Rack) Priority() Priority { return r.priority }

// Pack exposes the rack's battery pack (read/override access for the control
// plane).
func (r *Rack) Pack() *battery.RackPack { return r.pack }

// SetDemand sets the servers' power demand (driven by the trace replay).
// Values clamp to [0, MaxITLoad].
func (r *Rack) SetDemand(p units.Power) {
	r.version++
	if p < 0 {
		p = 0
	}
	if p > MaxITLoad {
		p = MaxITLoad
	}
	r.demand = p
}

// Demand returns the uncapped server power demand.
func (r *Rack) Demand() units.Power { return r.demand }

// ITLoad returns the power the servers actually consume: the demand, reduced
// to the tightest Dynamo cap from any controller.
func (r *Rack) ITLoad() units.Power {
	if r.hasCap && r.capMin < r.demand {
		return r.capMin
	}
	return r.demand
}

// refreshCapMin recomputes the cached tightest cap after Cap/Uncap. The min
// over the map is order-independent, so ranging it here is deterministic.
func (r *Rack) refreshCapMin() {
	r.hasCap = len(r.caps) > 0
	first := true
	for _, cap := range r.caps {
		if first || cap < r.capMin {
			r.capMin = cap
			first = false
		}
	}
}

// CappedPower returns how much server power is currently being capped away.
func (r *Rack) CappedPower() units.Power {
	return r.demand - r.ITLoad()
}

// Cap limits the rack's server power to at most p on behalf of the named
// controller (Dynamo power capping, the control plane's last resort).
// Controllers at different hierarchy levels cap independently; the tightest
// cap wins. A negative p clamps to zero.
func (r *Rack) Cap(source string, p units.Power) {
	if p < 0 {
		p = 0
	}
	if old, ok := r.caps[source]; ok && old == p {
		return // re-applying the same cap changes nothing observable
	}
	r.version++
	r.caps[source] = p
	r.refreshCapMin()
}

// Uncap removes the named controller's power cap, if any. Uncapping a rack
// the controller holds no cap on is a version-neutral no-op: controllers
// release caps every healthy tick, and that sweep must not invalidate the
// fleet's telemetry snapshots.
func (r *Rack) Uncap(source string) {
	if _, ok := r.caps[source]; !ok {
		return
	}
	r.version++
	delete(r.caps, source)
	r.refreshCapMin()
}

// InputUp reports whether the rack's input power is present.
func (r *Rack) InputUp() bool { return r.inputUp }

// Power returns the rack's instantaneous draw on the power hierarchy: zero
// while input is lost (the batteries carry the load), otherwise the IT load
// plus the battery recharge power.
func (r *Rack) Power() units.Power {
	if !r.inputUp {
		return 0
	}
	return r.ITLoad() + r.pack.Power()
}

// RechargePower returns the battery recharge component of the rack's draw.
func (r *Rack) RechargePower() units.Power {
	if !r.inputUp {
		return 0
	}
	return r.pack.Power()
}

// LoseInput starts an open transition (or outage) at virtual time now: the
// rack stops drawing from the hierarchy and the batteries carry the IT load.
// Losing input mid-charge suspends the charge in place — the energy already
// delivered stays in the pack and the subsequent discharge deepens the
// deficit, which the pack itself carries.
func (r *Rack) LoseInput(now time.Duration) {
	if !r.inputUp {
		return
	}
	r.version++
	r.inputUp = false
	// Any postponed deficit already lives in the pack; the charge (if one is
	// running) is suspended the same way, so the pack's DOD is the single
	// source of truth for the whole outage.
	r.pendingDOD = 0
	r.pack.Suspend()
}

// Step advances the rack by dt: while input is lost the batteries supply the
// IT load (the closed discharge loop), and a pack that empties drops the
// rack's load; while input is up it advances the recharge. now is the
// virtual time at the END of the step.
func (r *Rack) Step(now time.Duration, dt time.Duration) {
	if dt <= 0 {
		return
	}
	r.version++
	if !r.inputUp {
		wasDepleted := r.pack.Depleted()
		want := units.EnergyOver(r.ITLoad(), dt)
		got := r.pack.Discharge(r.ITLoad(), dt)
		if got < want {
			r.unservedEnergy += want - got
			if !wasDepleted && r.pack.Depleted() {
				r.loadDrops++
			}
		}
		return
	}
	wasCharging := r.pack.Charging()
	r.pack.Step(dt)
	if wasCharging && !r.pack.Charging() {
		r.chargeEnd = now
	}
	r.checkWatchdog(now)
}

// checkWatchdog degrades a charging rack to the safe current once the
// controller-contact TTL lapses. The TTL is measured from the later of the
// charge start and the last contact, so a rack is given one full TTL for the
// control plane to reach it before it concludes it is partitioned. Fail-safe
// mode persists until controller contact: while latched, any charge found
// above the safe current (however it got there) is demoted immediately, not
// after another TTL.
func (r *Rack) checkWatchdog(now time.Duration) {
	if r.watchdogTTL <= 0 || !r.pack.Charging() {
		return
	}
	if r.failSafe {
		if r.pack.Setpoint() > r.safeCurrent {
			r.noteFailSafe(now, "latched-demote")
			r.pack.SetCurrent(r.safeCurrent)
		}
		return
	}
	base := r.chargeStart
	if r.haveContact && r.lastContact > base {
		base = r.lastContact
	}
	if now-base <= r.watchdogTTL {
		return
	}
	r.failSafe = true
	r.noteFailSafe(now, "ttl-expired")
	if r.pack.Setpoint() > r.safeCurrent {
		r.pack.SetCurrent(r.safeCurrent)
	}
}

// RestoreInput ends the input-power loss at virtual time now: the rack
// reports the battery pack's true depth of discharge (not an open-loop
// outage-length estimate) and the local charger policy picks the initial
// charging current (the coordinated controller may override it moments
// later).
func (r *Rack) RestoreInput(now time.Duration) {
	if r.inputUp {
		return
	}
	r.version++
	r.inputUp = true
	dod := r.pack.DOD()
	r.lastDOD = dod
	if dod <= 0 {
		return
	}
	i := r.policy.InitialCurrent(dod)
	if r.failSafe && i > r.safeCurrent {
		// Still no controller contact since the watchdog fired: the new
		// charge starts at the safe current instead of getting another TTL
		// at the policy rate.
		i = r.safeCurrent
		r.noteFailSafe(now, "restore-while-latched")
	}
	r.pack.StartCharge(i, dod)
	r.chargeStart = now
	r.chargeEnd = 0
}

// ChargeStart returns the virtual time the current charge episode began —
// the instant of the input restore that started it, which is where the
// charging-time SLA clock starts. Meaningful only while a charge is in
// progress or postponed.
func (r *Rack) ChargeStart() time.Duration { return r.chargeStart }

// LastDOD returns the depth of discharge reported at the most recent input
// restore.
func (r *Rack) LastDOD() units.Fraction { return r.lastDOD }

// BatteryDOD returns the battery pack's live depth of discharge.
func (r *Rack) BatteryDOD() units.Fraction { return r.pack.DOD() }

// Depleted reports whether the rack is riding out an input-power loss on an
// empty battery: its IT load is dropped until input returns.
func (r *Rack) Depleted() bool { return !r.inputUp && r.pack.Depleted() }

// UnservedEnergy returns the cumulative IT energy the batteries could not
// supply during input-power losses (load lost to depleted packs).
func (r *Rack) UnservedEnergy() units.Energy { return r.unservedEnergy }

// LoadDropEvents counts the input-power losses that drained the pack dry.
func (r *Rack) LoadDropEvents() int { return r.loadDrops }

// Charging reports whether the rack's batteries are recharging.
func (r *Rack) Charging() bool { return r.pack.Charging() }

// Capped reports whether any controller or guard currently holds an IT-power
// cap on this rack. The event kernel refuses to skip ticks while caps exist:
// cap values are recomputed from per-tick demand, so capped spans are
// irreducibly dense.
func (r *Rack) Capped() bool { return r.hasCap }

// OverrideCurrent applies a manual charging-current override from the
// control plane, clamped to the hardware's [1 A, 5 A] range.
func (r *Rack) OverrideCurrent(i units.Current) {
	r.version++
	r.pack.SetCurrent(charger.ClampOverride(i))
}

// SetObs attaches an observability sink: fail-safe watchdog activations are
// counted under rack.failsafe_activations and journaled to the flight
// recorder. A nil sink detaches instrumentation.
func (r *Rack) SetObs(s *obs.Sink) {
	r.sink = s
	r.cFailSafe = s.Counter("rack.failsafe_activations")
}

// noteFailSafe records one watchdog activation (counter + flight event).
func (r *Rack) noteFailSafe(now time.Duration, cause string) {
	r.failSafeCount++
	r.cFailSafe.Inc()
	if r.sink != nil {
		r.sink.Event(now, "rack/"+r.name, "failsafe", "cause", cause)
	}
}

// SetWatchdog arms the rack's local fail-safe watchdog: whenever a charge
// runs for longer than ttl without any controller contact, the charging
// current reverts to safe (the paper's low-current charging policy), so a
// rack cut off from the control plane can never drive its breaker into a
// sustained overload. A zero ttl disables the watchdog.
func (r *Rack) SetWatchdog(ttl time.Duration, safe units.Current) {
	r.version++
	r.watchdogTTL = ttl
	r.safeCurrent = charger.ClampOverride(safe)
}

// ControllerContact records that the control plane reached this rack (a
// delivered override, cap, or heartbeat) at virtual time now, re-arming the
// watchdog and leaving fail-safe mode.
// ControllerContact deliberately does not bump the rack version: it touches
// only watchdog bookkeeping (lastContact, failSafe), none of which is
// telemetry-visible — any later effect on the setpoint happens inside Step
// or ResumeCharge, which do bump. Keeping heartbeats version-neutral lets
// snapshot caches survive the per-tick keepalive sweep.
func (r *Rack) ControllerContact(now time.Duration) {
	r.lastContact = now
	r.haveContact = true
	r.failSafe = false
}

// FailSafeActive reports whether the watchdog has degraded the rack to the
// safe charging current and no controller contact has arrived since.
func (r *Rack) FailSafeActive() bool { return r.failSafe }

// FailSafeActivations counts the charges the watchdog has demoted to the
// safe current (including charges started while fail-safe was latched).
func (r *Rack) FailSafeActivations() int { return r.failSafeCount }

// Postpone abandons the in-progress charge on control-plane orders,
// recording the undelivered depth of discharge locally so the charge can be
// resumed later — including by a controller that crashed and reconstructed
// its state from agent reads. It is a no-op when not charging.
func (r *Rack) Postpone() {
	if !r.pack.Charging() {
		return
	}
	r.version++
	r.pack.Suspend()
	r.pendingDOD = r.pack.DOD()
}

// PendingDOD returns the depth of discharge still owed to a postponed
// charge, zero if none.
func (r *Rack) PendingDOD() units.Fraction { return r.pendingDOD }

// ResumeCharge restarts a postponed charge at current i. It is a no-op when
// no charge is pending. A rack still in fail-safe mode resumes at the safe
// current regardless of i.
func (r *Rack) ResumeCharge(i units.Current) {
	if r.pendingDOD <= 0 {
		return
	}
	r.version++
	if r.failSafe && i > r.safeCurrent {
		i = r.safeCurrent
		// ResumeCharge carries no tick time; the last controller contact is
		// the deterministic stand-in (resumes follow a contact).
		r.noteFailSafe(r.lastContact, "resume-while-latched")
	}
	r.pack.StartCharge(i, r.pendingDOD)
	r.pendingDOD = 0
}

// ChargeDuration returns how long the most recent completed charge took, or
// (elapsed, false) if a charge is still in progress at now.
func (r *Rack) ChargeDuration(now time.Duration) (time.Duration, bool) {
	if r.pack.Charging() {
		return now - r.chargeStart, false
	}
	if r.chargeEnd == 0 {
		return 0, false
	}
	return r.chargeEnd - r.chargeStart, true
}
