package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"
)

// FuzzCheckpointDecode hardens the restore path against hostile or damaged
// checkpoint files: whatever the bytes, Decode must either verify and fill
// the payload or return an error — never panic, and never leave a partial
// payload behind a nil error.
func FuzzCheckpointDecode(f *testing.F) {
	raw, _ := json.Marshal(map[string]any{"ticks": 42, "name": "seed"})
	sum := sha256.Sum256(raw)
	good, _ := json.Marshal(File{Magic: Magic, Version: Version, Digest: hex.EncodeToString(sum[:]), Payload: raw})
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{"magic":"coordcharge-ckpt","version":99,"digest":"x","payload":{}}`))
	f.Add([]byte(`{"magic":"wrong","version":1,"digest":"x","payload":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"magic":"coordcharge-ckpt","version":1,"digest":"","payload":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var out map[string]any
		err := Decode(data, &out)
		if err != nil {
			return
		}
		// A nil error means the envelope fully verified: re-encoding the
		// parsed envelope's payload must reproduce the digest it carries.
		var env File
		if jerr := json.Unmarshal(data, &env); jerr != nil {
			t.Fatalf("Decode accepted bytes json.Unmarshal rejects: %v", jerr)
		}
		sum := sha256.Sum256(env.Payload)
		if hex.EncodeToString(sum[:]) != env.Digest {
			t.Fatalf("Decode accepted a digest mismatch")
		}
	})
}
