// Package ckpt is the crash-safe checkpoint codec: a versioned, digest-
// verified envelope around a JSON payload, written atomically so a process
// killed mid-write can never leave a torn or half-trusted checkpoint behind.
//
// The file format is a small JSON envelope:
//
//	{"magic":"coordcharge-ckpt","version":1,"digest":"<sha256 hex>","payload":{...}}
//
// The digest covers the payload bytes exactly as stored, so corruption of a
// single byte — truncation, bit rot, a concurrent writer — is detected before
// any state is restored. Version skew is detected before the digest check:
// a file written by a newer codec is refused with a descriptive error rather
// than misread. Decoding never panics and never half-restores: ReadFile
// unmarshals into the caller's payload only after the envelope fully
// verifies.
//
// WriteAtomic is the durability primitive (temp file in the destination
// directory + write + fsync + rename + directory fsync) and is reused by
// anything that must not emit torn files (benchmark archives, report
// artifacts), not just checkpoints.
package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Magic identifies a coordcharge checkpoint file.
const Magic = "coordcharge-ckpt"

// Version is the current envelope version. Older versions remain readable
// as long as their layout is understood; newer versions are refused.
const Version = 1

// File is the on-disk envelope.
type File struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	Digest  string          `json:"digest"`
	Payload json.RawMessage `json:"payload"`
}

// WriteAtomic writes data to path atomically: the bytes land in a temp file
// in the same directory, are fsynced, and only then renamed over path. A
// crash at any point leaves either the old file or the new one, never a
// prefix. The containing directory is fsynced after the rename so the new
// directory entry is durable too.
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	// Make the rename itself durable. Some filesystems do not support
	// fsync on directories; a failure here is not worth failing the write
	// over once the data file itself is synced and renamed.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileAtomic marshals payload, wraps it in a digest-verified envelope,
// and writes it to path atomically.
func WriteFileAtomic(path string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckpt: encode payload: %w", err)
	}
	sum := sha256.Sum256(raw)
	env, err := json.Marshal(File{
		Magic:   Magic,
		Version: Version,
		Digest:  hex.EncodeToString(sum[:]),
		Payload: raw,
	})
	if err != nil {
		return fmt.Errorf("ckpt: encode envelope: %w", err)
	}
	return WriteAtomic(path, append(env, '\n'))
}

// Decode verifies an envelope's magic, version, and payload digest, then
// unmarshals the payload. It never panics: any corrupt, truncated, or
// version-skewed input yields an error, and payload is only written to after
// the envelope fully verifies.
func Decode(data []byte, payload any) error {
	var env File
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("ckpt: not a checkpoint file: %w", err)
	}
	if env.Magic != Magic {
		return fmt.Errorf("ckpt: bad magic %q (want %q)", env.Magic, Magic)
	}
	if env.Version > Version {
		return fmt.Errorf("ckpt: file version %d was written by a newer version of this tool (max supported %d)", env.Version, Version)
	}
	if env.Version < 1 {
		return fmt.Errorf("ckpt: invalid file version %d", env.Version)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.Digest {
		return fmt.Errorf("ckpt: payload digest mismatch (file corrupt): have %s, stored %s", got, env.Digest)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("ckpt: decode payload: %w", err)
	}
	return nil
}

// ReadFile reads and verifies a checkpoint envelope from path and unmarshals
// its payload. See Decode for the verification contract.
func ReadFile(path string, payload any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return Decode(data, payload)
}
