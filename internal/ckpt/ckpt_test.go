package ckpt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string  `json:"name"`
	Ticks int     `json:"ticks"`
	Score float64 `json:"score"`
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	in := payload{Name: "storm", Ticks: 1200, Score: 97.25}
	if err := WriteFileAtomic(path, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := ReadFile(path, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: wrote %+v, read %+v", in, out)
	}
}

func TestWriteAtomicReplacesWholesale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteAtomic(path, []byte("a long first version of the file")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "short" {
		t.Fatalf("second write not wholesale: %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestReadFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := WriteFileAtomic(path, payload{Name: "x", Ticks: 7}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, "not a checkpoint"},
		{"empty", func(b []byte) []byte { return nil }, "not a checkpoint"},
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			i := strings.Index(string(c), `"ticks":7`)
			if i < 0 {
				t.Fatal("payload byte not found")
			}
			c[i+len(`"ticks":`)] = '8'
			return c
		}, "digest mismatch"},
		{"bad magic", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), Magic, "other-tool", 1))
		}, "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(dir, tc.name+".ckpt")
			if err := os.WriteFile(bad, tc.mutate(append([]byte(nil), good...)), 0o644); err != nil {
				t.Fatal(err)
			}
			var out payload
			err := ReadFile(bad, &out)
			if err == nil {
				t.Fatal("corrupt file accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if out != (payload{}) {
				t.Fatalf("payload half-restored from corrupt file: %+v", out)
			}
		})
	}
}

func TestReadFileRejectsNewerVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.ckpt")
	raw, _ := json.Marshal(payload{Name: "future"})
	env, _ := json.Marshal(File{Magic: Magic, Version: Version + 1, Digest: "unused", Payload: raw})
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	err := ReadFile(path, &out)
	if err == nil || !strings.Contains(err.Error(), "newer version") {
		t.Fatalf("version skew not refused: %v", err)
	}
}

func TestReadFileMissing(t *testing.T) {
	var out payload
	if err := ReadFile(filepath.Join(t.TempDir(), "nope.ckpt"), &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
