package ckpt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rotatePayload struct {
	Gen int `json:"gen"`
}

func TestWriteFileRotatedKeepsPreviousGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")

	// First write: no previous generation exists.
	if err := WriteFileRotated(path, rotatePayload{Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(PrevPath(path)); err == nil {
		t.Fatalf("%s exists after the first write", PrevPath(path))
	}

	// Second and third writes rotate: .prev always trails by one generation.
	for gen := 2; gen <= 3; gen++ {
		if err := WriteFileRotated(path, rotatePayload{Gen: gen}); err != nil {
			t.Fatal(err)
		}
		var latest, prev rotatePayload
		if err := ReadFile(path, &latest); err != nil {
			t.Fatal(err)
		}
		if err := ReadFile(PrevPath(path), &prev); err != nil {
			t.Fatal(err)
		}
		if latest.Gen != gen || prev.Gen != gen-1 {
			t.Fatalf("after write %d: latest gen %d, prev gen %d", gen, latest.Gen, prev.Gen)
		}
	}
}

func TestReadFileFallbackRecoversFromCorruptedLatest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := WriteFileRotated(path, rotatePayload{Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileRotated(path, rotatePayload{Gen: 2}); err != nil {
		t.Fatal(err)
	}

	// The clean path restores the newest generation.
	var got rotatePayload
	used, err := ReadFileFallback(path, &got)
	if err != nil {
		t.Fatal(err)
	}
	if used != path || got.Gen != 2 {
		t.Fatalf("clean read restored gen %d from %s", got.Gen, used)
	}

	// Corrupt the newest generation: one flipped byte inside the payload
	// breaks the sha256 digest, and the reader must fall back to .prev.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(string(data), `"gen"`)
	if idx < 0 {
		t.Fatal("payload marker not found")
	}
	data[idx+1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got = rotatePayload{}
	used, err = ReadFileFallback(path, &got)
	if err != nil {
		t.Fatalf("fallback read failed: %v", err)
	}
	if used != PrevPath(path) || got.Gen != 1 {
		t.Fatalf("fallback restored gen %d from %s, want gen 1 from %s", got.Gen, used, PrevPath(path))
	}
}

func TestReadFileFallbackMissingLatestUsesPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := WriteFileAtomic(PrevPath(path), rotatePayload{Gen: 7}); err != nil {
		t.Fatal(err)
	}
	var got rotatePayload
	used, err := ReadFileFallback(path, &got)
	if err != nil {
		t.Fatal(err)
	}
	if used != PrevPath(path) || got.Gen != 7 {
		t.Fatalf("restored gen %d from %s", got.Gen, used)
	}
}

// TestReadFileFallbackDoesNotLeakCorruptFields: when the newest generation's
// envelope verifies but its payload only partially unmarshals, fields the
// corrupt decode populated must not survive into the fallback result.
func TestReadFileFallbackDoesNotLeakCorruptFields(t *testing.T) {
	type wide struct {
		Gen   int `json:"gen"`
		Extra int `json:"extra,omitempty"`
	}
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := WriteFileAtomic(PrevPath(path), wide{Gen: 7}); err != nil {
		t.Fatal(err)
	}
	// The newest generation is a fully verified envelope whose payload
	// unmarshals only part-way: "extra" lands before "gen" fails its type
	// check, and the previous generation carries no "extra" at all.
	if err := WriteFileAtomic(path, json.RawMessage(`{"extra":9,"gen":"boom"}`)); err != nil {
		t.Fatal(err)
	}
	var got wide
	used, err := ReadFileFallback(path, &got)
	if err != nil {
		t.Fatal(err)
	}
	if used != PrevPath(path) {
		t.Fatalf("restored from %s, want %s", used, PrevPath(path))
	}
	if got.Gen != 7 || got.Extra != 0 {
		t.Fatalf("payload = %+v, want gen 7 with no leaked extra field", got)
	}
}

func TestReadFileFallbackBothCorruptReportsBoth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(PrevPath(path), []byte("also garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got rotatePayload
	if _, err := ReadFileFallback(path, &got); err == nil {
		t.Fatal("both generations corrupt, read succeeded")
	} else if !strings.Contains(err.Error(), "fallback") {
		t.Fatalf("error does not mention the fallback attempt: %v", err)
	}
}
