package ckpt

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"reflect"
)

// Checkpoint rotation: cadence writers keep the last two generations of a
// checkpoint — the file itself plus a ".prev" sibling holding the previous
// good envelope — so a reader can fall back when the newest generation fails
// digest verification. Torn writes are already impossible (WriteAtomic), but
// rotation additionally survives post-rename corruption of the latest file:
// bit rot, a truncating copy, an operator editing the wrong file. The
// previous generation is only ever produced by renaming a file that was
// itself written atomically, so it is always a complete verified envelope
// from one cadence earlier.

// PrevPath returns the previous-generation sibling of a rotated checkpoint
// path.
func PrevPath(path string) string { return path + ".prev" }

// WriteFileRotated writes payload to path like WriteFileAtomic, first
// rotating an existing file at path to PrevPath(path). The rotation itself
// is a rename, so a crash at any point leaves at least one complete
// generation on disk: before the rotation both files are the old pair, after
// it the previous-good envelope is at PrevPath(path), and only the final
// atomic rename publishes the new generation.
func WriteFileRotated(path string, payload any) error {
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, PrevPath(path)); err != nil {
			return fmt.Errorf("ckpt: rotate %s: %w", path, err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("ckpt: rotate %s: %w", path, err)
	}
	return WriteFileAtomic(path, payload)
}

// ReadFileFallback reads a rotated checkpoint: it verifies and decodes path,
// and when that fails — missing file, torn or corrupted envelope, version
// skew — falls back to the previous generation at PrevPath(path). It returns
// the path actually restored from. Both generations failing returns the
// newest generation's error wrapped with the fallback's, so the caller sees
// why each was rejected.
//
// Fallback is deliberately limited to envelope-level failures: a payload
// that verifies but describes the wrong experiment (fingerprint or seed
// mismatch) is an operator error the caller must surface, not mask by
// silently resuming older state.
func ReadFileFallback(path string, payload any) (string, error) {
	errNew := ReadFile(path, payload)
	if errNew == nil {
		return path, nil
	}
	prev := PrevPath(path)
	// The failed newest-generation decode may have partially populated
	// payload (an envelope can verify and still unmarshal only part-way), so
	// decode the fallback into a fresh value and copy it over only on
	// success — no corrupt-generation field may survive the merge.
	target := payload
	var fresh reflect.Value
	if rv := reflect.ValueOf(payload); rv.Kind() == reflect.Pointer && !rv.IsNil() {
		fresh = reflect.New(rv.Type().Elem())
		target = fresh.Interface()
	}
	if errPrev := ReadFile(prev, target); errPrev != nil {
		return "", fmt.Errorf("%w (fallback %s: %v)", errNew, prev, errPrev)
	}
	if fresh.IsValid() {
		reflect.ValueOf(payload).Elem().Set(fresh.Elem())
	}
	return prev, nil
}
