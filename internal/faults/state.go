package faults

import (
	"sort"
	"time"

	"coordcharge/internal/rng"
)

// CompState is one component's crash-schedule state: the boundaries already
// generated and the position of the stream that generates them.
type CompState struct {
	Name       string          `json:"name"`
	Boundaries []time.Duration `json:"boundaries,omitempty"`
	Src        rng.State       `json:"src"`
}

// InjectorState is the injector's serializable state: the fault totals, the
// position of the per-decision Bernoulli stream, and every per-component
// crash schedule (sorted by name for deterministic encoding). The
// configuration is construction-time and rebuilt from the spec.
type InjectorState struct {
	Counters Counters    `json:"counters"`
	Draws    rng.State   `json:"draws"`
	Comps    []CompState `json:"comps,omitempty"`
}

// ExportState captures the injector's stream positions, schedules, and
// counters.
func (in *Injector) ExportState() InjectorState {
	st := InjectorState{Counters: in.counters, Draws: in.draws.State()}
	for name, s := range in.comps {
		st.Comps = append(st.Comps, CompState{
			Name:       name,
			Boundaries: append([]time.Duration(nil), s.boundaries...),
			Src:        s.src.State(),
		})
	}
	sort.Slice(st.Comps, func(i, j int) bool { return st.Comps[i].Name < st.Comps[j].Name })
	return st
}

// RestoreState overwrites the injector's stream positions, schedules, and
// counters from a checkpoint. Schedules are rebuilt with the injector's own
// configuration parameters; components absent from the state start fresh
// (deterministically, from their name-derived seed) exactly as they would
// have in the original run.
func (in *Injector) RestoreState(st InjectorState) {
	in.counters = st.Counters
	in.draws = rng.FromState(st.Draws)
	in.comps = make(map[string]*schedule, len(st.Comps))
	for _, cs := range st.Comps {
		mtbf, mttr, agent := in.paramsFor(cs.Name)
		in.comps[cs.Name] = &schedule{
			src:        rng.FromState(cs.Src),
			agent:      agent,
			boundaries: append([]time.Duration(nil), cs.Boundaries...),
			mtbf:       mtbf,
			mttr:       mttr,
		}
	}
}
