package faults

import (
	"testing"
)

// FuzzParseSpec hardens the -faults flag parser against arbitrary input: it
// must never panic, an error must leave nothing half-parsed (the zero,
// disabled config), and any accepted spec must produce a config that passes
// its own validation.
func FuzzParseSpec(f *testing.F) {
	// Valid seeds.
	f.Add("")
	f.Add("off")
	f.Add("none")
	f.Add("on")
	f.Add("default")
	f.Add("cmdloss=0.2,ctlmtbf=10m,ctlmttr=8s")
	f.Add("seed=7,telloss=0.1,telstale=0.05,cmddup=0.01")
	f.Add("cmddelay=0.3,cmddelaymax=5s,agentmtbf=1h,agentmttr=30s")
	// Malformed seeds.
	f.Add("cmdloss")
	f.Add("cmdloss=")
	f.Add("cmdloss=2")
	f.Add("cmdloss=-1")
	f.Add("bogus=1")
	f.Add("ctlmtbf=10m")
	f.Add("cmddelaymax=-3s")
	f.Add("=,=,=")
	f.Add("seed=9223372036854775808")
	f.Add("telloss=NaN")

	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			if cfg != (Config{}) {
				t.Fatalf("ParseSpec(%q) errored but returned non-zero config %+v", spec, cfg)
			}
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid config %+v: %v", spec, cfg, verr)
		}
	})
}
