package faults

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{TelemetryLoss: -0.1},
		{CommandLoss: 1.5},
		{CommandDelayProb: 0.5},                // no delay max
		{AgentMTBF: time.Hour},                 // no MTTR
		{ControllerMTTR: time.Second},          // no MTBF
		{CommandDelayMax: -time.Second},        // negative
		{AgentMTBF: -time.Hour, AgentMTTR: -1}, // negative
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if !Default().Enabled() {
		t.Error("default config disabled")
	}
	if !(Config{CommandLoss: 1}).Enabled() {
		t.Error("command-loss config disabled")
	}
}

func TestParseSpec(t *testing.T) {
	for _, s := range []string{"", "off", "none"} {
		cfg, err := ParseSpec(s)
		if err != nil || cfg.Enabled() {
			t.Errorf("ParseSpec(%q) = %+v, %v; want disabled", s, cfg, err)
		}
	}
	for _, s := range []string{"on", "default", "Default"} {
		cfg, err := ParseSpec(s)
		if err != nil || cfg != Default() {
			t.Errorf("ParseSpec(%q) = %+v, %v; want Default()", s, cfg, err)
		}
	}
	cfg, err := ParseSpec("cmdloss=1, telloss=0.25, seed=7, ctlmttr=30s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CommandLoss != 1 || cfg.TelemetryLoss != 0.25 || cfg.Seed != 7 || cfg.ControllerMTTR != 30*time.Second {
		t.Errorf("parsed = %+v", cfg)
	}
	// Unmentioned keys keep their defaults.
	if cfg.CommandDup != Default().CommandDup {
		t.Errorf("CommandDup = %v, want default %v", cfg.CommandDup, Default().CommandDup)
	}
	for _, s := range []string{"bogus", "k=v", "cmdloss=abc", "cmdloss=2"} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestBernoulliRatesAndDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, TelemetryLoss: 0.3, CommandLoss: 0.1, CommandDup: 0.05,
		CommandDelayProb: 0.2, CommandDelayMax: 10 * time.Second}
	run := func() Counters {
		in := New(cfg)
		for i := 0; i < 10000; i++ {
			in.DropRead()
			in.DropCommand()
			in.DupCommand()
			in.CommandDelay()
		}
		return in.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different faults: %+v vs %+v", a, b)
	}
	approx := func(got uint64, want float64) bool {
		return float64(got) > want*0.8 && float64(got) < want*1.2
	}
	if !approx(a.ReadsDropped, 3000) || !approx(a.CommandsDropped, 1000) ||
		!approx(a.CommandsDuplicated, 500) || !approx(a.CommandsDelayed, 2000) {
		t.Errorf("counters off their rates: %+v", a)
	}
	// A different seed gives a different realisation.
	cfg.Seed = 43
	if c := run(); c == a {
		t.Error("different seed, identical faults")
	}
}

func TestZeroRatesDrawNothing(t *testing.T) {
	in := New(Config{})
	for i := 0; i < 100; i++ {
		if in.DropRead() || in.StaleRead() || in.DropCommand() || in.DupCommand() {
			t.Fatal("zero config injected a fault")
		}
		if in.CommandDelay() != 0 {
			t.Fatal("zero config delayed a command")
		}
		if !in.Up("agent/x", time.Duration(i)*time.Hour) {
			t.Fatal("zero config crashed a component")
		}
	}
	if in.Counters() != (Counters{}) {
		t.Errorf("counters moved: %+v", in.Counters())
	}
}

func TestCrashSchedules(t *testing.T) {
	cfg := Config{Seed: 1,
		AgentMTBF: 10 * time.Minute, AgentMTTR: 30 * time.Second,
		ControllerMTBF: 5 * time.Minute, ControllerMTTR: 10 * time.Second}
	in := New(cfg)

	// Schedules are deterministic per (seed, name) and independent of query
	// interleaving or other components.
	in2 := New(cfg)
	in2.Up("agent/other", time.Hour) // extra component must not perturb agent/a
	var downA, downCtl int
	const steps = 24 * 3600 // one simulated day at 1 s
	for i := 0; i <= steps; i++ {
		now := time.Duration(i) * time.Second
		upA := in.Up("agent/a", now)
		if upA != in2.Up("agent/a", now) {
			t.Fatalf("schedule for agent/a diverged at %v", now)
		}
		if !upA {
			downA++
		}
		if !in.Up("controller/msb", now) {
			downCtl++
		}
	}
	if downA == 0 || downCtl == 0 {
		t.Fatalf("no crashes over a day: agent down %d s, controller down %d s", downA, downCtl)
	}
	// Expected downtime fraction is roughly MTTR/(MTBF+MTTR); allow 3x slack
	// for a single-day realisation.
	fracA := float64(downA) / steps
	if fracA > 3*(30.0/630) {
		t.Errorf("agent down fraction %v implausibly high", fracA)
	}
	c := in.Counters()
	if c.AgentOutages == 0 || c.ControllerOutages == 0 {
		t.Errorf("outage counters: %+v", c)
	}
	// Components are up at t=0 (schedules start with an up interval).
	if !New(cfg).Up("agent/z", 0) {
		t.Error("component down at t=0")
	}
}

func TestUnknownComponentNeverCrashes(t *testing.T) {
	in := New(Default())
	for i := 0; i < 1000; i++ {
		if !in.Up("misc/thing", time.Duration(i)*time.Minute) {
			t.Fatal("unknown component crashed")
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{CommandLoss: 2})
}
