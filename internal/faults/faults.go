// Package faults implements deterministic, seeded fault injection for the
// coordinated-charging control plane. The paper's coordination loop (§IV-B)
// runs over a real network of TOR-switch agents with ~20 s command-settling
// latency; this package models the ways that plane degrades in production —
// lost or stale telemetry reads, dropped, delayed, or duplicated override
// commands, crashed agents, and crash-restarting controllers — so the
// hardening in internal/dynamo and internal/rack can be exercised
// reproducibly.
//
// Every random decision is drawn from seeded sources, and per-component
// crash schedules use sources derived by hashing the component name, so two
// runs with the same seed inject exactly the same faults and adding a
// component does not perturb the schedules of the others.
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"coordcharge/internal/obs"
	"coordcharge/internal/rng"
)

// Config parameterises an Injector. All probabilities are per-decision
// Bernoulli rates in [0, 1]; zero disables that fault class.
type Config struct {
	// Seed drives every random decision.
	Seed int64
	// TelemetryLoss is the probability that an agent read fails outright
	// (no reply; the controller must fall back to its last snapshot).
	TelemetryLoss float64
	// TelemetryStale is the probability that a read returns the agent's
	// previous snapshot — old data with its old timestamp — instead of a
	// fresh sample (a wedged poller or a delayed reply overtaken by time).
	TelemetryStale float64
	// CommandLoss is the probability that a command (charging-current
	// override, cap, uncap, heartbeat) is silently dropped.
	CommandLoss float64
	// CommandDup is the probability that a delivered command is applied
	// twice (an at-least-once transport retransmitting on a lost ack).
	CommandDup float64
	// CommandDelayProb is the probability that a delivered command is
	// delayed by up to CommandDelayMax beyond its normal latency.
	CommandDelayProb float64
	// CommandDelayMax bounds the injected command delay.
	CommandDelayMax time.Duration
	// AgentMTBF is the mean up-time between agent crashes (zero: agents
	// never crash). While crashed, an agent answers no reads and applies
	// no commands.
	AgentMTBF time.Duration
	// AgentMTTR is the mean agent repair time.
	AgentMTTR time.Duration
	// ControllerMTBF is the mean up-time between controller crashes
	// (zero: controllers never crash). A crashing controller loses its
	// in-memory state and must reconstruct it from agent reads.
	ControllerMTBF time.Duration
	// ControllerMTTR is the mean controller restart time.
	ControllerMTTR time.Duration
}

// Default returns the non-zero rates the chaos suite runs with: each fault
// class is exercised, crashes are short enough that a restarted controller
// resumes protection well inside the breaker trip-sustain window, and the
// overall loop still converges.
func Default() Config {
	return Config{
		TelemetryLoss:    0.05,
		TelemetryStale:   0.05,
		CommandLoss:      0.05,
		CommandDup:       0.02,
		CommandDelayProb: 0.05,
		CommandDelayMax:  5 * time.Second,
		AgentMTBF:        2 * time.Hour,
		AgentMTTR:        20 * time.Second,
		ControllerMTBF:   time.Hour,
		ControllerMTTR:   8 * time.Second,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"TelemetryLoss", c.TelemetryLoss},
		{"TelemetryStale", c.TelemetryStale},
		{"CommandLoss", c.CommandLoss},
		{"CommandDup", c.CommandDup},
		{"CommandDelayProb", c.CommandDelayProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.CommandDelayProb > 0 && c.CommandDelayMax <= 0 {
		return fmt.Errorf("faults: CommandDelayProb %v needs a positive CommandDelayMax", c.CommandDelayProb)
	}
	if c.CommandDelayMax < 0 {
		return fmt.Errorf("faults: negative CommandDelayMax %v", c.CommandDelayMax)
	}
	if (c.AgentMTBF > 0) != (c.AgentMTTR > 0) {
		return fmt.Errorf("faults: AgentMTBF and AgentMTTR must both be set or both be zero")
	}
	if (c.ControllerMTBF > 0) != (c.ControllerMTTR > 0) {
		return fmt.Errorf("faults: ControllerMTBF and ControllerMTTR must both be set or both be zero")
	}
	if c.AgentMTBF < 0 || c.AgentMTTR < 0 || c.ControllerMTBF < 0 || c.ControllerMTTR < 0 {
		return fmt.Errorf("faults: negative MTBF/MTTR")
	}
	return nil
}

// Enabled reports whether any fault class is active.
func (c Config) Enabled() bool {
	return c.TelemetryLoss > 0 || c.TelemetryStale > 0 ||
		c.CommandLoss > 0 || c.CommandDup > 0 || c.CommandDelayProb > 0 ||
		c.AgentMTBF > 0 || c.ControllerMTBF > 0
}

// ParseSpec parses a -faults command-line value. The empty string and "off"
// return a zero (disabled) config; "default" and "on" return Default();
// otherwise the value is a comma-separated k=v list overriding Default(),
// e.g. "cmdloss=1,telloss=0.2,seed=7". Keys: seed, telloss, telstale,
// cmdloss, cmddup, cmddelay (probability), cmddelaymax (duration), agentmtbf,
// agentmttr, ctlmtbf, ctlmttr (durations).
func ParseSpec(spec string) (Config, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "off", "none":
		return Config{}, nil
	case "on", "default":
		return Default(), nil
	}
	cfg := Default()
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: bad spec element %q (want k=v)", kv)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "telloss":
			cfg.TelemetryLoss, err = strconv.ParseFloat(v, 64)
		case "telstale":
			cfg.TelemetryStale, err = strconv.ParseFloat(v, 64)
		case "cmdloss":
			cfg.CommandLoss, err = strconv.ParseFloat(v, 64)
		case "cmddup":
			cfg.CommandDup, err = strconv.ParseFloat(v, 64)
		case "cmddelay":
			cfg.CommandDelayProb, err = strconv.ParseFloat(v, 64)
		case "cmddelaymax":
			cfg.CommandDelayMax, err = time.ParseDuration(v)
		case "agentmtbf":
			cfg.AgentMTBF, err = time.ParseDuration(v)
		case "agentmttr":
			cfg.AgentMTTR, err = time.ParseDuration(v)
		case "ctlmtbf":
			cfg.ControllerMTBF, err = time.ParseDuration(v)
		case "ctlmttr":
			cfg.ControllerMTTR, err = time.ParseDuration(v)
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Counters reports what the injector has done so far.
type Counters struct {
	ReadsDropped       uint64
	ReadsStaled        uint64
	CommandsDropped    uint64
	CommandsDuplicated uint64
	CommandsDelayed    uint64
	// Outages counts crash intervals generated per component class.
	AgentOutages      uint64
	ControllerOutages uint64
}

// schedule is the lazily extended alternating up/down timeline of one
// component. Intervals are generated from the component's own source, so the
// schedule depends only on (seed, component name).
type schedule struct {
	src   *rng.Source
	agent bool // selects which outage counter to bump
	// boundary i is the time at which the state flips; the component is up
	// on [boundaries[2k], boundaries[2k+1]) and down on
	// [boundaries[2k+1], boundaries[2k+2]).
	boundaries []time.Duration
	mtbf, mttr time.Duration
}

func (s *schedule) extendTo(now time.Duration, counters *Counters) {
	last := time.Duration(0)
	if n := len(s.boundaries); n > 0 {
		last = s.boundaries[n-1]
	}
	for last <= now {
		if len(s.boundaries)%2 == 0 {
			up := s.src.ExpDuration(s.mtbf)
			if up < time.Second {
				up = time.Second
			}
			last += up
		} else {
			down := s.src.ExpDuration(s.mttr)
			if down < time.Second {
				down = time.Second
			}
			last += down
			if s.agent {
				counters.AgentOutages++
			} else {
				counters.ControllerOutages++
			}
		}
		s.boundaries = append(s.boundaries, last)
	}
}

func (s *schedule) up(now time.Duration) bool {
	// Find the first boundary strictly after now; even index = up interval.
	i := sort.Search(len(s.boundaries), func(i int) bool { return s.boundaries[i] > now })
	return i%2 == 0
}

// Injector makes the individual fault decisions. It is not safe for
// concurrent use: the simulation kernel is single-threaded by design.
type Injector struct {
	cfg      Config
	draws    *rng.Source // per-decision Bernoulli draws, consumed in call order
	comps    map[string]*schedule
	counters Counters

	// Mirrored observability counters (nil when no sink is attached).
	cReadsDropped, cReadsStaled                 *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cCmdsDropped, cCmdsDuplicated, cCmdsDelayed *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
	cAgentOutages, cControllerOutages           *obs.Counter //coordvet:transient telemetry: re-attached by SetObs, not simulation state
}

// New builds an injector. It panics on an invalid config: injector
// construction is experiment setup, where failing loudly is right.
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		cfg:   cfg,
		draws: rng.New(cfg.Seed ^ 0x5eedfa17),
		comps: make(map[string]*schedule),
	}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Counters returns the fault totals injected so far.
func (in *Injector) Counters() Counters { return in.counters }

// SetObs mirrors the injector's fault counters into an observability
// registry (faults.* counters) so a live /metrics scrape shows what the
// injector has done. A nil sink detaches the mirroring.
func (in *Injector) SetObs(s *obs.Sink) {
	in.cReadsDropped = s.Counter("faults.reads_dropped")
	in.cReadsStaled = s.Counter("faults.reads_staled")
	in.cCmdsDropped = s.Counter("faults.commands_dropped")
	in.cCmdsDuplicated = s.Counter("faults.commands_duplicated")
	in.cCmdsDelayed = s.Counter("faults.commands_delayed")
	in.cAgentOutages = s.Counter("faults.agent_outages")
	in.cControllerOutages = s.Counter("faults.controller_outages")
}

// DropRead decides whether a telemetry read fails.
func (in *Injector) DropRead() bool {
	if in.cfg.TelemetryLoss <= 0 {
		return false
	}
	if in.draws.Float64() < in.cfg.TelemetryLoss {
		in.counters.ReadsDropped++
		in.cReadsDropped.Inc()
		return true
	}
	return false
}

// StaleRead decides whether a read returns the previous snapshot.
func (in *Injector) StaleRead() bool {
	if in.cfg.TelemetryStale <= 0 {
		return false
	}
	if in.draws.Float64() < in.cfg.TelemetryStale {
		in.counters.ReadsStaled++
		in.cReadsStaled.Inc()
		return true
	}
	return false
}

// DropCommand decides whether a command is silently lost.
func (in *Injector) DropCommand() bool {
	if in.cfg.CommandLoss <= 0 {
		return false
	}
	if in.draws.Float64() < in.cfg.CommandLoss {
		in.counters.CommandsDropped++
		in.cCmdsDropped.Inc()
		return true
	}
	return false
}

// DupCommand decides whether a delivered command is applied twice.
func (in *Injector) DupCommand() bool {
	if in.cfg.CommandDup <= 0 {
		return false
	}
	if in.draws.Float64() < in.cfg.CommandDup {
		in.counters.CommandsDuplicated++
		in.cCmdsDuplicated.Inc()
		return true
	}
	return false
}

// CommandDelay returns the extra delivery delay to add to a command (zero
// most of the time).
func (in *Injector) CommandDelay() time.Duration {
	if in.cfg.CommandDelayProb <= 0 {
		return 0
	}
	if in.draws.Float64() >= in.cfg.CommandDelayProb {
		return 0
	}
	in.counters.CommandsDelayed++
	in.cCmdsDelayed.Inc()
	return time.Duration(in.draws.Uniform(0, float64(in.cfg.CommandDelayMax)))
}

// Up reports whether the named component is alive at virtual time now.
// Components named "agent/..." follow the agent crash parameters; components
// named "leaf/...", "ctl/...", or "controller/..." follow the controller
// parameters. Unknown prefixes never crash. The per-component schedule is
// deterministic in (seed, name) and monotonic queries are O(1) amortised.
func (in *Injector) Up(component string, now time.Duration) bool {
	mtbf, mttr, agent := in.paramsFor(component)
	if mtbf <= 0 {
		return true
	}
	s := in.comps[component]
	if s == nil {
		h := fnv.New64a()
		h.Write([]byte(component))
		s = &schedule{
			src:   rng.New(in.cfg.Seed ^ int64(h.Sum64())),
			agent: agent,
			mtbf:  mtbf,
			mttr:  mttr,
		}
		in.comps[component] = s
	}
	before := in.counters
	s.extendTo(now, &in.counters)
	if d := in.counters.AgentOutages - before.AgentOutages; d > 0 {
		in.cAgentOutages.Add(int64(d))
	}
	if d := in.counters.ControllerOutages - before.ControllerOutages; d > 0 {
		in.cControllerOutages.Add(int64(d))
	}
	return s.up(now)
}

func (in *Injector) paramsFor(component string) (mtbf, mttr time.Duration, agent bool) {
	prefix, _, _ := strings.Cut(component, "/")
	switch prefix {
	case "agent":
		return in.cfg.AgentMTBF, in.cfg.AgentMTTR, true
	case "leaf", "ctl", "controller":
		return in.cfg.ControllerMTBF, in.cfg.ControllerMTTR, false
	default:
		return 0, 0, false
	}
}
