package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"coordcharge/internal/units"
)

// Materialized is a sampled trace: a Source backed by explicit per-rack
// sample arrays, used for CSV interchange and for dropping in real
// production traces.
type Materialized struct {
	step    time.Duration
	start   time.Duration
	samples [][]float64 // samples[rack][tick], watts
}

// Materialize samples a source every step over [from, to] into a
// Materialized trace.
func Materialize(s Source, from, to, step time.Duration) (*Materialized, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trace: non-positive step %v", step)
	}
	if to < from {
		return nil, fmt.Errorf("trace: empty window [%v, %v]", from, to)
	}
	n := int((to-from)/step) + 1
	samples := make([][]float64, s.NumRacks())
	for r := range samples {
		row := make([]float64, n)
		for k := 0; k < n; k++ {
			row[k] = float64(s.Rack(r, from+time.Duration(k)*step))
		}
		samples[r] = row
	}
	return &Materialized{step: step, start: from, samples: samples}, nil
}

// NumRacks implements Source.
func (m *Materialized) NumRacks() int { return len(m.samples) }

// Step returns the sampling interval.
func (m *Materialized) Step() time.Duration { return m.step }

// Start returns the virtual time of the first sample.
func (m *Materialized) Start() time.Duration { return m.start }

// Samples returns the number of ticks per rack.
func (m *Materialized) Samples() int {
	if len(m.samples) == 0 {
		return 0
	}
	return len(m.samples[0])
}

// Rack implements Source with floor sampling; times outside the window clamp
// to the nearest sample.
func (m *Materialized) Rack(i int, t time.Duration) units.Power {
	row := m.samples[i]
	k := int((t - m.start) / m.step)
	if k < 0 {
		k = 0
	}
	if k >= len(row) {
		k = len(row) - 1
	}
	return units.Power(row[k])
}

// Frames implements FrameSource with the same floor-sampling and clamping
// semantics as Rack, resolving each frame's tick index once instead of once
// per rack.
func (m *Materialized) Frames(dst []units.Power, from, to, step time.Duration) []units.Power {
	n := len(m.samples)
	dst = growFrames(dst, NumFrames(from, to, step)*n)
	for k := 0; k*n < len(dst); k++ {
		t := from + time.Duration(k)*step
		idx := int((t - m.start) / m.step)
		if idx < 0 {
			idx = 0
		}
		row := dst[k*n : (k+1)*n]
		for i := range row {
			samples := m.samples[i]
			j := idx
			if j >= len(samples) {
				j = len(samples) - 1
			}
			row[i] = units.Power(samples[j])
		}
	}
	return dst
}

// WriteCSV writes the trace in the interchange format: a header row
// "seconds,rack0,rack1,..." followed by one row per tick with whole-second
// timestamps and per-rack watts.
func (m *Materialized) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, m.NumRacks()+1)
	header[0] = "seconds"
	for i := 1; i < len(header); i++ {
		header[i] = fmt.Sprintf("rack%d", i-1)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	row := make([]string, len(header))
	for k := 0; k < m.Samples(); k++ {
		t := m.start + time.Duration(k)*m.step
		row[0] = strconv.FormatFloat(t.Seconds(), 'f', 0, 64)
		for r := 0; r < m.NumRacks(); r++ {
			row[r+1] = strconv.FormatFloat(m.samples[r][k], 'f', 1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row %d: %w", k, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or an equivalent export of a
// real production trace). The sampling step is inferred from the first two
// timestamps and must be uniform.
func ReadCSV(r io.Reader) (*Materialized, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(records) < 3 {
		return nil, fmt.Errorf("trace: CSV needs a header and ≥2 rows, got %d records", len(records))
	}
	nRacks := len(records[0]) - 1
	if nRacks < 1 {
		return nil, fmt.Errorf("trace: CSV has no rack columns")
	}
	parseT := func(row int) (time.Duration, error) {
		sec, err := strconv.ParseFloat(records[row][0], 64)
		if err != nil {
			return 0, fmt.Errorf("trace: bad timestamp on row %d: %w", row, err)
		}
		return time.Duration(sec * float64(time.Second)), nil
	}
	t0, err := parseT(1)
	if err != nil {
		return nil, err
	}
	t1, err := parseT(2)
	if err != nil {
		return nil, err
	}
	step := t1 - t0
	if step <= 0 {
		return nil, fmt.Errorf("trace: non-increasing timestamps (step %v)", step)
	}
	nTicks := len(records) - 1
	samples := make([][]float64, nRacks)
	for r := range samples {
		samples[r] = make([]float64, nTicks)
	}
	for k := 0; k < nTicks; k++ {
		row := records[k+1]
		if len(row) != nRacks+1 {
			return nil, fmt.Errorf("trace: row %d has %d columns, want %d", k+1, len(row), nRacks+1)
		}
		tk, err := parseT(k + 1)
		if err != nil {
			return nil, err
		}
		if want := t0 + time.Duration(k)*step; tk-want > step/100 || want-tk > step/100 {
			return nil, fmt.Errorf("trace: non-uniform step at row %d: %v, want %v", k+1, tk, want)
		}
		for r := 0; r < nRacks; r++ {
			w, err := strconv.ParseFloat(row[r+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad value at row %d rack %d: %w", k+1, r, err)
			}
			if w < 0 {
				return nil, fmt.Errorf("trace: negative power at row %d rack %d", k+1, r)
			}
			samples[r][k] = w
		}
	}
	return &Materialized{step: step, start: t0, samples: samples}, nil
}
