package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadCSV hardens the trace importer against arbitrary input: it must
// either return an error or a well-formed trace, never panic, and any
// accepted trace must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	// Valid seed: a real exported trace.
	g, err := NewGenerator(Spec{NumRacks: 3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	m, err := Materialize(g, 0, 9*time.Second, 3*time.Second)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	// Malformed seeds.
	f.Add("")
	f.Add("seconds,rack0\n0,1\n3,2\n")
	f.Add("seconds,rack0\n0,-1\n3,2\n")
	f.Add("seconds,rack0\nx,1\n3,2\n")
	f.Add("seconds\n0\n3\n")
	f.Add("a,b\n1,2\n1,2\n")
	f.Add(strings.Repeat(",", 100) + "\n1\n2\n")

	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if m.NumRacks() < 1 || m.Samples() < 2 || m.Step() <= 0 {
			t.Fatalf("accepted malformed trace: racks=%d samples=%d step=%v", m.NumRacks(), m.Samples(), m.Step())
		}
		// Accepted traces are readable everywhere and non-negative.
		for i := 0; i < m.NumRacks(); i++ {
			for k := 0; k < m.Samples(); k++ {
				if p := m.Rack(i, m.Start()+time.Duration(k)*m.Step()); p < 0 {
					t.Fatalf("negative power %v at rack %d tick %d", p, i, k)
				}
			}
		}
		// Round trip.
		var out bytes.Buffer
		if err := m.WriteCSV(&out); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		if _, err := ReadCSV(&out); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
