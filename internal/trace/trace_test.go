package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"coordcharge/internal/units"
)

func defaultGen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(Spec{NumRacks: 316, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpecDefaults(t *testing.T) {
	g := defaultGen(t)
	sp := g.Spec()
	if sp.Duration != 7*24*time.Hour {
		t.Errorf("default duration = %v", sp.Duration)
	}
	if sp.TroughPower != 1.9*units.Megawatt || sp.PeakPower != 2.1*units.Megawatt {
		t.Errorf("default envelope = [%v, %v]", sp.TroughPower, sp.PeakPower)
	}
	if sp.DiurnalPeriod != 24*time.Hour {
		t.Errorf("default period = %v", sp.DiurnalPeriod)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{NumRacks: 0},
		{NumRacks: 10, Duration: -time.Hour},
		{NumRacks: 10, TroughPower: 2 * units.Megawatt, PeakPower: 1 * units.Megawatt},
		{NumRacks: 10, NoiseFrac: 0.9},
	}
	for i, s := range bad {
		if _, err := NewGenerator(s); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

// Fig 12: the aggregate oscillates diurnally between ~1.9 and ~2.1 MW.
func TestFig12AggregateEnvelope(t *testing.T) {
	g := defaultGen(t)
	st := AggregateStats(g, 0, 7*24*time.Hour, 10*time.Minute)
	if st.Min < 1.85*units.Megawatt || st.Min > 1.95*units.Megawatt {
		t.Errorf("aggregate min = %v, want ~1.9 MW", st.Min)
	}
	if st.Max < 2.05*units.Megawatt || st.Max > 2.15*units.Megawatt {
		t.Errorf("aggregate max = %v, want ~2.1 MW", st.Max)
	}
	if st.Mean < st.Min || st.Mean > st.Max {
		t.Errorf("mean %v outside [min, max]", st.Mean)
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	g := defaultGen(t)
	// Aggregate at peak time each day stays near the peak; troughs 12 h
	// later stay near the trough.
	for day := 0; day < 7; day++ {
		peakT := 14*time.Hour + time.Duration(day)*24*time.Hour
		troughT := peakT + 12*time.Hour
		if troughT > 7*24*time.Hour {
			break
		}
		peak := Aggregate(g, peakT)
		trough := Aggregate(g, troughT)
		if peak < 2.0*units.Megawatt {
			t.Errorf("day %d peak = %v, want ≥2.0 MW", day, peak)
		}
		if trough > 2.0*units.Megawatt {
			t.Errorf("day %d trough = %v, want <2.0 MW", day, trough)
		}
	}
}

func TestFirstPeakNearPeakTime(t *testing.T) {
	g := defaultGen(t)
	p := g.FirstPeak(time.Minute)
	if p < 12*time.Hour || p > 16*time.Hour {
		t.Errorf("first peak at %v, want ~14 h", p)
	}
}

func TestPerRackBounds(t *testing.T) {
	g := defaultGen(t)
	for _, tm := range []time.Duration{0, 6 * time.Hour, 14 * time.Hour, 50 * time.Hour} {
		for i := 0; i < g.NumRacks(); i++ {
			p := g.Rack(i, tm)
			if p < 0 || p > 12600*units.Watt {
				t.Fatalf("rack %d at %v draws %v, outside [0, 12.6 kW]", i, tm, p)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewGenerator(Spec{NumRacks: 20, Seed: 7})
	b, _ := NewGenerator(Spec{NumRacks: 20, Seed: 7})
	c, _ := NewGenerator(Spec{NumRacks: 20, Seed: 8})
	var diff bool
	for i := 0; i < 20; i++ {
		for _, tm := range []time.Duration{0, time.Hour, 30 * time.Hour} {
			if a.Rack(i, tm) != b.Rack(i, tm) {
				t.Fatalf("same seed diverged at rack %d t=%v", i, tm)
			}
			if a.Rack(i, tm) != c.Rack(i, tm) {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical traces")
	}
}

func TestSmoothnessAt3s(t *testing.T) {
	// Between adjacent 3-second ticks a rack's power moves by well under 5%
	// of its level: the trace is smooth at simulation granularity.
	g := defaultGen(t)
	for i := 0; i < 50; i++ {
		prev := g.Rack(i, 13*time.Hour)
		for k := 1; k < 200; k++ {
			cur := g.Rack(i, 13*time.Hour+time.Duration(k)*3*time.Second)
			if delta := math.Abs(float64(cur - prev)); delta > 0.05*float64(prev)+50 {
				t.Fatalf("rack %d jumped %v W between ticks", i, delta)
			}
			prev = cur
		}
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	g, _ := NewGenerator(Spec{NumRacks: 5, Seed: 3})
	m, err := Materialize(g, time.Hour, time.Hour+time.Minute, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRacks() != 5 || m.Samples() != 21 || m.Step() != 3*time.Second {
		t.Fatalf("materialized shape: racks=%d samples=%d step=%v", m.NumRacks(), m.Samples(), m.Step())
	}
	// Values agree with the generator at sample instants.
	for i := 0; i < 5; i++ {
		for k := 0; k < 21; k++ {
			tm := time.Hour + time.Duration(k)*3*time.Second
			if m.Rack(i, tm) != g.Rack(i, tm) {
				t.Fatalf("materialized value differs at rack %d tick %d", i, k)
			}
		}
	}
	// Clamping outside the window.
	if m.Rack(0, 0) != m.Rack(0, time.Hour) {
		t.Error("pre-window access did not clamp to first sample")
	}
	if m.Rack(0, 10*time.Hour) != m.Rack(0, time.Hour+time.Minute) {
		t.Error("post-window access did not clamp to last sample")
	}
}

func TestMaterializeErrors(t *testing.T) {
	g, _ := NewGenerator(Spec{NumRacks: 2, Seed: 3})
	if _, err := Materialize(g, 0, time.Hour, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Materialize(g, time.Hour, 0, time.Second); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g, _ := NewGenerator(Spec{NumRacks: 4, Seed: 9})
	m, err := Materialize(g, 0, 30*time.Second, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRacks() != 4 || back.Samples() != m.Samples() || back.Step() != 3*time.Second {
		t.Fatalf("round-trip shape: racks=%d samples=%d step=%v", back.NumRacks(), back.Samples(), back.Step())
	}
	for i := 0; i < 4; i++ {
		for k := 0; k < m.Samples(); k++ {
			tm := time.Duration(k) * 3 * time.Second
			a, b := float64(m.Rack(i, tm)), float64(back.Rack(i, tm))
			if math.Abs(a-b) > 0.1 { // CSV rounds to 0.1 W
				t.Fatalf("round-trip value differs at rack %d tick %d: %v vs %v", i, k, a, b)
			}
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"too short":       "seconds,rack0\n0,5\n",
		"no racks":        "seconds\n0\n3\n6\n",
		"bad value":       "seconds,rack0\n0,x\n3,5\n",
		"negative":        "seconds,rack0\n0,-5\n3,5\n",
		"non-uniform":     "seconds,rack0\n0,5\n3,5\n7,5\n",
		"bad timestamp":   "seconds,rack0\nx,5\n3,5\n",
		"zero step":       "seconds,rack0\n0,5\n0,5\n",
		"ragged (csvlib)": "seconds,rack0\n0,5\n3,5,9\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: ReadCSV accepted malformed input", name)
		}
	}
}

func TestWeekendLevelDampsPeaks(t *testing.T) {
	damped, err := NewGenerator(Spec{NumRacks: 100, Seed: 4, WeekendLevel: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := NewGenerator(Spec{NumRacks: 100, Seed: 4})
	// Weekday peaks (day 0, hour 14) are identical; weekend peaks (day 5)
	// are shallower.
	weekday := 14 * time.Hour
	weekend := 5*24*time.Hour + 14*time.Hour
	if a, b := Aggregate(damped, weekday), Aggregate(flat, weekday); a != b {
		t.Errorf("weekday aggregate differs: %v vs %v", a, b)
	}
	a, b := Aggregate(damped, weekend), Aggregate(flat, weekend)
	if a >= b {
		t.Errorf("weekend peak not damped: %v vs %v", a, b)
	}
	// Troughs are unaffected by the swing scale.
	trough := 5*24*time.Hour + 2*time.Hour
	at, bt := Aggregate(damped, trough), Aggregate(flat, trough)
	if math.Abs(float64(at-bt)) > float64(bt)*0.02 {
		t.Errorf("weekend trough moved: %v vs %v", at, bt)
	}
}

func TestWeekendLevelValidation(t *testing.T) {
	if _, err := NewGenerator(Spec{NumRacks: 5, WeekendLevel: -0.5}); err == nil {
		t.Error("negative WeekendLevel accepted")
	}
	if _, err := NewGenerator(Spec{NumRacks: 5, WeekendLevel: 1.5}); err == nil {
		t.Error("WeekendLevel > 1 accepted")
	}
}

func TestSwingScaleHeterogeneousProfiles(t *testing.T) {
	const n = 100
	scale := make([]float64, n)
	for i := range scale {
		if i < n/2 {
			scale[i] = 0.2 // stateful: flat
		} else {
			scale[i] = 1.8 // stateless web: strongly diurnal
		}
	}
	// An envelope the 100-rack population can actually carry (~6 kW/rack).
	g, err := NewGenerator(Spec{
		NumRacks: n, Seed: 6, SwingScale: scale, NoiseFrac: 0.001,
		TroughPower: 600 * units.Kilowatt, PeakPower: 663 * units.Kilowatt,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate envelope is preserved despite heterogeneous weights.
	st := AggregateStats(g, 0, 48*time.Hour, 10*time.Minute)
	if st.Min < 585*units.Kilowatt || st.Max > 680*units.Kilowatt || st.Max < 645*units.Kilowatt {
		t.Errorf("envelope with SwingScale = [%v, %v]", st.Min, st.Max)
	}
	// Flat racks vary much less between trough and peak than web racks.
	ratio := func(i int) float64 {
		peak := float64(g.Rack(i, 14*time.Hour))
		trough := float64(g.Rack(i, 2*time.Hour))
		return peak / trough
	}
	flat, web := ratio(0), ratio(n-1)
	if flat > 1.06 {
		t.Errorf("flat rack peak/trough = %v, want ≈1", flat)
	}
	if web < 1.12 {
		t.Errorf("web rack peak/trough = %v, want strongly diurnal", web)
	}
}

func TestSwingScaleValidation(t *testing.T) {
	if _, err := NewGenerator(Spec{NumRacks: 3, SwingScale: []float64{1, 1}}); err == nil {
		t.Error("wrong-length SwingScale accepted")
	}
	if _, err := NewGenerator(Spec{NumRacks: 2, SwingScale: []float64{1, -1}}); err == nil {
		t.Error("negative SwingScale accepted")
	}
	if _, err := NewGenerator(Spec{NumRacks: 2, SwingScale: []float64{0, 0}}); err == nil {
		t.Error("all-zero SwingScale accepted")
	}
}

func TestSwingScaleUniformMatchesDefault(t *testing.T) {
	uniform := []float64{1, 1, 1, 1}
	a, _ := NewGenerator(Spec{NumRacks: 4, Seed: 2, SwingScale: uniform})
	b, _ := NewGenerator(Spec{NumRacks: 4, Seed: 2})
	for i := 0; i < 4; i++ {
		for _, tm := range []time.Duration{0, 7 * time.Hour, 30 * time.Hour} {
			if av, bv := a.Rack(i, tm), b.Rack(i, tm); math.Abs(float64(av-bv)) > 1e-6 {
				t.Fatalf("uniform SwingScale diverged from default at rack %d t=%v: %v vs %v", i, tm, av, bv)
			}
		}
	}
}

func TestAggregateStatsEmptyWindow(t *testing.T) {
	g, _ := NewGenerator(Spec{NumRacks: 2, Seed: 1})
	st := AggregateStats(g, time.Hour, time.Hour, time.Minute)
	if st.Samples != 1 {
		t.Errorf("single-instant stats samples = %d, want 1", st.Samples)
	}
	if st.Min != st.Max || st.Min != st.Mean {
		t.Errorf("single-sample stats inconsistent: %+v", st)
	}
}
