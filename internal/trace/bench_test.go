package trace

import (
	"testing"
	"time"
)

func BenchmarkGeneratorRack(b *testing.B) {
	g, err := NewGenerator(Spec{NumRacks: 316, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Rack(i%316, time.Duration(i)*3*time.Second)
	}
}

// One simulation tick's worth of trace reads: the whole MSB population.
func BenchmarkAggregate316(b *testing.B) {
	g, err := NewGenerator(Spec{NumRacks: 316, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Aggregate(g, time.Duration(i)*3*time.Second)
	}
}

func BenchmarkMaterializedRack(b *testing.B) {
	g, _ := NewGenerator(Spec{NumRacks: 32, Seed: 1})
	m, err := Materialize(g, 0, time.Hour, 3*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Rack(i%32, time.Duration(i%1200)*3*time.Second)
	}
}
