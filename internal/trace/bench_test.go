package trace

import (
	"testing"
	"time"

	"coordcharge/internal/units"
)

func BenchmarkGeneratorRack(b *testing.B) {
	g, err := NewGenerator(Spec{NumRacks: 316, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Rack(i%316, time.Duration(i)*3*time.Second)
	}
}

// One simulation tick's worth of trace reads: the whole MSB population.
func BenchmarkAggregate316(b *testing.B) {
	g, err := NewGenerator(Spec{NumRacks: 316, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Aggregate(g, time.Duration(i)*3*time.Second)
	}
}

// BenchmarkTraceFrames contrasts the two ways of reading one hour of the
// 316-rack trace at the 3 s tick: per-call Rack versus the block Frames API
// (which hoists the per-tick swing/diurnal terms out of the rack loop).
func BenchmarkTraceFrames(b *testing.B) {
	g, err := NewGenerator(Spec{NumRacks: 316, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const hour = time.Hour
	b.Run("per-call", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum float64
			for t := time.Duration(0); t <= hour; t += 3 * time.Second {
				for r := 0; r < 316; r++ {
					sum += float64(g.Rack(r, t))
				}
			}
			_ = sum
		}
	})
	b.Run("frames", func(b *testing.B) {
		var buf []units.Power
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum float64
			buf = Frames(g, buf, 0, hour, 3*time.Second)
			for _, p := range buf {
				sum += float64(p)
			}
			_ = sum
		}
	})
}

func BenchmarkMaterializedRack(b *testing.B) {
	g, _ := NewGenerator(Spec{NumRacks: 32, Seed: 1})
	m, err := Materialize(g, 0, time.Hour, 3*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Rack(i%32, time.Duration(i%1200)*3*time.Second)
	}
}
