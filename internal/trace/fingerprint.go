package trace

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Fingerprint hashes a source's identity — its rack count plus a sparse grid
// of sampled frames — so a resume can cheaply verify that a checkpoint was
// produced against the same trace. It is a tripwire, not a proof: two traces
// that agree on every sampled frame hash alike, but any seed, scale, or
// shape change perturbs sampled values and is caught.
func Fingerprint(s Source) uint64 {
	h := fnv.New64a()
	n := s.NumRacks()
	fmt.Fprintf(h, "racks=%d", n)
	if n == 0 {
		return h.Sum64()
	}
	racks := []int{0, n / 2, n - 1}
	times := []time.Duration{0, time.Hour, 7*time.Hour + 13*time.Minute, 25 * time.Hour, 6 * 24 * time.Hour}
	for _, t := range times {
		for _, i := range racks {
			fmt.Fprintf(h, "|%d:%d:%x", i, int64(t), float64(s.Rack(i, t)))
		}
	}
	return h.Sum64()
}
