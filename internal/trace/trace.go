// Package trace synthesizes and replays per-rack power traces.
//
// The paper's coordinated-charging evaluation replays a production rack
// power trace collected at 3-second granularity for 316 racks under one MSB,
// whose weekly aggregate oscillates diurnally between 1.9 MW and 2.1 MW
// (Fig 12). Production traces are proprietary, so this package generates a
// seeded synthetic equivalent shaped to the same envelope: per-rack base
// loads, a coherent diurnal swing, and incoherent per-rack noise that
// averages out in the aggregate. Real traces can be substituted through the
// CSV reader; everything downstream consumes the Source interface.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"coordcharge/internal/rng"
	"coordcharge/internal/units"
)

// Source is a replayable per-rack power trace.
type Source interface {
	// NumRacks returns the number of racks in the trace.
	NumRacks() int
	// Rack returns rack i's power draw at virtual time t.
	Rack(i int, t time.Duration) units.Power
}

// FrameSource is a Source that can materialise whole blocks of frames at
// once, amortising per-tick work (time decomposition, coherent diurnal
// terms) across the rack population. Implementations must produce exactly
// the same values as per-call Rack — frame precomputation is a performance
// path, never a semantic one.
type FrameSource interface {
	Source
	// Frames fills dst with NumFrames(from, to, step)·NumRacks() samples in
	// frame-major order: frame k's rack i lands at dst[k·NumRacks()+i],
	// where frame k is virtual time from+k·step. dst is reused when its
	// capacity suffices; the filled slice is returned.
	Frames(dst []units.Power, from, to, step time.Duration) []units.Power
}

// NumFrames returns the number of ticks a [from, to] window holds at the
// given step (both endpoints inclusive, matching `for t := from; t <= to`
// loops). Zero when the window is empty or the step non-positive.
func NumFrames(from, to, step time.Duration) int {
	if step <= 0 || to < from {
		return 0
	}
	return int((to-from)/step) + 1
}

// Frames materialises a block of frames from any Source, using the native
// block implementation when the source provides one and falling back to
// per-call Rack otherwise. Layout and reuse semantics match FrameSource.
func Frames(s Source, dst []units.Power, from, to, step time.Duration) []units.Power {
	if fs, ok := s.(FrameSource); ok {
		return fs.Frames(dst, from, to, step)
	}
	n := s.NumRacks()
	dst = growFrames(dst, NumFrames(from, to, step)*n)
	for k := 0; k*n < len(dst); k++ {
		t := from + time.Duration(k)*step
		row := dst[k*n : (k+1)*n]
		for i := range row {
			row[i] = s.Rack(i, t)
		}
	}
	return dst
}

// growFrames returns dst resized to n samples, reallocating only when the
// existing capacity is too small.
func growFrames(dst []units.Power, n int) []units.Power {
	if cap(dst) < n {
		return make([]units.Power, n)
	}
	return dst[:n]
}

// Aggregate sums all racks of a source at time t.
func Aggregate(s Source, t time.Duration) units.Power {
	var total units.Power
	for i := 0; i < s.NumRacks(); i++ {
		total += s.Rack(i, t)
	}
	return total
}

// Spec parameterises the synthetic generator.
type Spec struct {
	// NumRacks is the rack population (the paper's MSB: 316).
	NumRacks int
	// Duration is the trace length (default one week).
	Duration time.Duration
	// TroughPower and PeakPower bound the aggregate diurnal envelope
	// (defaults 1.9 MW and 2.1 MW, the Fig 12 range).
	TroughPower units.Power
	PeakPower   units.Power
	// DiurnalPeriod is the cycle length (default 24 h).
	DiurnalPeriod time.Duration
	// PeakTime is the virtual time of the first aggregate peak (default 14 h).
	PeakTime time.Duration
	// NoiseFrac is the per-rack noise amplitude as a fraction of base load
	// (default 0.05). Noise is incoherent across racks.
	NoiseFrac float64
	// WeekendLevel scales the diurnal swing on days 6 and 7 of each week
	// (weekend traffic dips). 1 (the default) disables the effect; 0.7
	// makes weekend peaks 30 % shallower.
	WeekendLevel float64
	// SwingScale optionally weights each rack's diurnal swing (stateful
	// database racks are flatter than stateless web tiers). Length must be
	// zero (uniform) or NumRacks; weights must be non-negative and not all
	// zero. The global swing renormalises so the aggregate envelope still
	// spans [TroughPower, PeakPower].
	SwingScale []float64
	// Seed makes the generator deterministic.
	Seed int64
}

func (s *Spec) fillDefaults() error {
	if s.NumRacks <= 0 {
		return fmt.Errorf("trace: NumRacks must be positive, got %d", s.NumRacks)
	}
	if s.Duration == 0 {
		s.Duration = 7 * 24 * time.Hour
	}
	if s.Duration < 0 {
		return fmt.Errorf("trace: negative duration %v", s.Duration)
	}
	if s.TroughPower == 0 {
		s.TroughPower = 1.9 * units.Megawatt
	}
	if s.PeakPower == 0 {
		s.PeakPower = 2.1 * units.Megawatt
	}
	if s.PeakPower < s.TroughPower {
		return fmt.Errorf("trace: peak %v below trough %v", s.PeakPower, s.TroughPower)
	}
	if s.DiurnalPeriod == 0 {
		s.DiurnalPeriod = 24 * time.Hour
	}
	if s.PeakTime == 0 {
		s.PeakTime = 14 * time.Hour
	}
	if s.NoiseFrac == 0 {
		s.NoiseFrac = 0.05
	}
	if s.NoiseFrac < 0 || s.NoiseFrac > 0.5 {
		return fmt.Errorf("trace: NoiseFrac %v out of [0, 0.5]", s.NoiseFrac)
	}
	if s.WeekendLevel == 0 {
		s.WeekendLevel = 1
	}
	if s.WeekendLevel < 0 || s.WeekendLevel > 1 {
		return fmt.Errorf("trace: WeekendLevel %v out of (0, 1]", s.WeekendLevel)
	}
	if len(s.SwingScale) != 0 {
		if len(s.SwingScale) != s.NumRacks {
			return fmt.Errorf("trace: SwingScale has %d entries, want %d", len(s.SwingScale), s.NumRacks)
		}
		var sum float64
		for i, w := range s.SwingScale {
			if w < 0 {
				return fmt.Errorf("trace: negative SwingScale[%d]", i)
			}
			sum += w
		}
		if sum == 0 {
			return fmt.Errorf("trace: SwingScale is all zeros")
		}
	}
	return nil
}

// rackShape holds one rack's deterministic noise parameters: two
// incommensurate slow sinusoids with random phases, giving random access in
// time (no AR state) while remaining smooth at 3-second granularity.
type rackShape struct {
	base           float64 // watts at the diurnal trough
	swingWeight    float64 // per-rack diurnal swing multiplier
	n1Period       float64 // seconds
	n2Period       float64
	n1Phase        float64
	n2Phase        float64
	noiseAmplitude float64 // watts
}

// Generator produces synthetic rack power analytically: load_i(t) =
// base_i·(1 + swing·diurnal(t)) + noise_i(t), clipped to [0, 12.6 kW].
type Generator struct {
	spec   Spec
	swing  float64 // (peak − trough)/trough
	shapes []rackShape
}

// NewGenerator builds a deterministic generator for the spec.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	src := rng.New(spec.Seed)
	shapes := make([]rackShape, spec.NumRacks)
	// Draw raw per-rack bases from a clipped lognormal-ish spread, then
	// normalise so they sum exactly to the trough target.
	raw := make([]float64, spec.NumRacks)
	var sum float64
	for i := range raw {
		v := math.Exp(src.Normal(0, 0.35))
		raw[i] = v
		sum += v
	}
	target := float64(spec.TroughPower)
	for i := range shapes {
		base := raw[i] / sum * target
		// Keep each rack within its physical budget even at peak+noise.
		maxBase := 12600.0 / (1 + (float64(spec.PeakPower)/float64(spec.TroughPower) - 1) + spec.NoiseFrac)
		if base > maxBase {
			base = maxBase
		}
		weight := 1.0
		if len(spec.SwingScale) != 0 {
			weight = spec.SwingScale[i]
		}
		shapes[i] = rackShape{
			base:           base,
			swingWeight:    weight,
			n1Period:       src.Uniform(15*60, 45*60),
			n2Period:       src.Uniform(2*3600, 5*3600),
			n1Phase:        src.Uniform(0, 2*math.Pi),
			n2Phase:        src.Uniform(0, 2*math.Pi),
			noiseAmplitude: base * spec.NoiseFrac,
		}
	}
	// The aggregate peak is Σ base_i·(1 + swing·weight_i) + trough terms;
	// renormalise the global swing so heterogeneous weights still hit the
	// configured envelope exactly.
	var baseSum, weightedSum float64
	for _, sh := range shapes {
		baseSum += sh.base
		weightedSum += sh.base * sh.swingWeight
	}
	swing := float64(spec.PeakPower)/float64(spec.TroughPower) - 1
	if weightedSum > 0 {
		swing = (float64(spec.PeakPower) - float64(spec.TroughPower)) * (baseSum / float64(spec.TroughPower)) / weightedSum
	}
	return &Generator{
		spec:   spec,
		swing:  swing,
		shapes: shapes,
	}, nil
}

// Spec returns the generator's (default-filled) spec.
func (g *Generator) Spec() Spec { return g.spec }

// NumRacks implements Source.
func (g *Generator) NumRacks() int { return len(g.shapes) }

// diurnal returns the coherent daily shape in [0, 1], peaking at PeakTime.
func (g *Generator) diurnal(t time.Duration) float64 {
	phase := 2 * math.Pi * float64(t-g.spec.PeakTime) / float64(g.spec.DiurnalPeriod)
	return 0.5 * (1 + math.Cos(phase))
}

// swingAt returns the diurnal swing amplitude in effect at t, damped on
// weekend days.
func (g *Generator) swingAt(t time.Duration) float64 {
	day := int(t/(24*time.Hour)) % 7
	if day == 5 || day == 6 {
		return g.swing * g.spec.WeekendLevel
	}
	return g.swing
}

// Rack implements Source.
func (g *Generator) Rack(i int, t time.Duration) units.Power {
	sh := &g.shapes[i]
	sec := t.Seconds()
	noise := sh.noiseAmplitude * 0.5 *
		(math.Sin(2*math.Pi*sec/sh.n1Period+sh.n1Phase) +
			math.Sin(2*math.Pi*sec/sh.n2Period+sh.n2Phase))
	w := sh.base*(1+g.swingAt(t)*sh.swingWeight*g.diurnal(t)) + noise
	if w < 0 {
		w = 0
	}
	if w > 12600 {
		w = 12600
	}
	return units.Power(w)
}

// Frames implements FrameSource. The coherent per-tick terms — the second
// count, the 2π·sec sinusoid argument, the weekend-damped swing, and the
// diurnal shape — are computed once per frame and shared by every rack,
// instead of once per rack per call. The per-rack arithmetic keeps the exact
// expression shape of Rack (same operation order, same two Sin calls), so
// the produced samples are bit-identical to the per-call path; the golden
// tests in trace_test.go hold this invariant.
func (g *Generator) Frames(dst []units.Power, from, to, step time.Duration) []units.Power {
	n := len(g.shapes)
	dst = growFrames(dst, NumFrames(from, to, step)*n)
	for k := 0; k*n < len(dst); k++ {
		t := from + time.Duration(k)*step
		sec := t.Seconds()
		omega := 2 * math.Pi * sec // (2π)·sec, the shared sinusoid numerator
		sw := g.swingAt(t)
		di := g.diurnal(t)
		row := dst[k*n : (k+1)*n]
		for i := range row {
			sh := &g.shapes[i]
			noise := sh.noiseAmplitude * 0.5 *
				(math.Sin(omega/sh.n1Period+sh.n1Phase) +
					math.Sin(omega/sh.n2Period+sh.n2Phase))
			w := sh.base*(1+sw*sh.swingWeight*di) + noise
			if w < 0 {
				w = 0
			}
			if w > 12600 {
				w = 12600
			}
			row[i] = units.Power(w)
		}
	}
	return dst
}

// FrameAggregates reduces a frame-major block (as produced by Frames) to one
// clamped aggregate per frame: dst[k] = Σ_i clamp(frames[k·numRacks+i]),
// where clamp limits every sample to [0, max]. The clamp and the rack-index
// summation order mirror exactly what a simulation applying the block through
// rack.SetDemand and summing ITLoad would compute, bit for bit — which is
// what lets an event-driven kernel derive demand-crossing wakeups (and even
// synthesized IT samples) from the block without touching any rack. dst is
// reused when its capacity suffices; the filled slice is returned.
func FrameAggregates(frames []units.Power, numRacks int, max units.Power, dst []units.Power) []units.Power {
	if numRacks <= 0 {
		return dst[:0]
	}
	nf := len(frames) / numRacks
	dst = growFrames(dst, nf)
	for k := 0; k < nf; k++ {
		var total units.Power
		for _, p := range frames[k*numRacks : (k+1)*numRacks] {
			if p < 0 {
				p = 0
			}
			if p > max {
				p = max
			}
			total += p
		}
		dst[k] = total
	}
	return dst
}

// FirstPeak returns the virtual time of the maximum aggregate draw of any
// source within [0, horizon], scanned at the given resolution (the paper
// injects its open transitions "at the first peak in the trace" where
// available power is most constrained). Non-positive arguments default to
// 24 hours and one minute.
//
// For the synthetic Generator the scan is a pure function of the (seeded)
// spec, and figure suites, sweeps, and benchmark harnesses rebuild the same
// generator dozens of times per process — so Generator results are memoised.
func FirstPeak(s Source, horizon, resolution time.Duration) time.Duration {
	if horizon <= 0 {
		horizon = 24 * time.Hour
	}
	if resolution <= 0 {
		resolution = time.Minute
	}
	g, ok := s.(*Generator)
	if !ok {
		return firstPeakScan(s, horizon, resolution)
	}
	key := firstPeakKeyOf(g, horizon, resolution)
	if v, ok := firstPeakMemo.Load(key); ok {
		return v.(time.Duration)
	}
	t := firstPeakScan(s, horizon, resolution)
	// Bound the cache: a process cycling through unboundedly many distinct
	// trace specs (a fuzzing loop, a parameter search) must not leak; past the
	// cap new specs simply pay the scan.
	if n := firstPeakMemoLen.Add(1); n <= 1024 {
		firstPeakMemo.Store(key, t)
	} else {
		firstPeakMemoLen.Add(-1)
	}
	return t
}

// firstPeakKey identifies one memoised FirstPeak scan: every scalar field of
// the generator spec (the SwingScale slice, unhashable, is folded to a
// bit-exact hash) plus the scan window.
type firstPeakKey struct {
	numRacks            int
	duration            time.Duration
	trough, peak        units.Power
	diurnal, peakTime   time.Duration
	noiseFrac, weekend  float64
	seed                int64
	swingFP             uint64
	horizon, resolution time.Duration
}

var (
	firstPeakMemo    sync.Map // firstPeakKey → time.Duration
	firstPeakMemoLen atomic.Int64
)

func firstPeakKeyOf(g *Generator, horizon, resolution time.Duration) firstPeakKey {
	key := firstPeakKey{
		numRacks:   g.spec.NumRacks,
		duration:   g.spec.Duration,
		trough:     g.spec.TroughPower,
		peak:       g.spec.PeakPower,
		diurnal:    g.spec.DiurnalPeriod,
		peakTime:   g.spec.PeakTime,
		noiseFrac:  g.spec.NoiseFrac,
		weekend:    g.spec.WeekendLevel,
		seed:       g.spec.Seed,
		horizon:    horizon,
		resolution: resolution,
	}
	if len(g.spec.SwingScale) != 0 {
		h := fnv.New64a()
		var b [8]byte
		for _, w := range g.spec.SwingScale {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
			h.Write(b[:])
		}
		key.swingFP = h.Sum64()
	}
	return key
}

func firstPeakScan(s Source, horizon, resolution time.Duration) time.Duration {
	// Scan in frame blocks: same samples, same summation order, same
	// first-maximum tie-breaking as the per-call Aggregate loop — but the
	// per-tick trace terms are computed once per frame.
	n := s.NumRacks()
	best, bestT := units.Power(-1), time.Duration(0)
	const block = 256
	var buf []units.Power
	for t0 := time.Duration(0); t0 <= horizon; t0 += block * resolution {
		t1 := t0 + (block-1)*resolution
		if t1 > horizon {
			t1 = horizon
		}
		buf = Frames(s, buf, t0, t1, resolution)
		for k := 0; k*n < len(buf); k++ {
			var total units.Power
			for _, p := range buf[k*n : (k+1)*n] {
				total += p
			}
			if total > best {
				best, bestT = total, t0+time.Duration(k)*resolution
			}
		}
	}
	return bestT
}

// AggregateRate returns an upper bound, in watts per virtual second, on how
// fast the generator's aggregate demand can move — clamped or not, since
// clipping and clamping are 1-Lipschitz. Per rack the bound is the triangle
// sum of the diurnal term's derivative (|d/dt base·swing·w·diurnal| ≤
// base·swing·w·π/Period, as |diurnal'| = |0.5·sin·2π/P| ≤ π/P) and the two
// noise sinusoids' (amp·0.5·(ω₁+ω₂)). It lets an event-driven kernel hold a
// demand envelope between exact evaluations: |agg(t) − agg(t₀)| ≤
// AggregateRate()·(t−t₀) whenever SwingRegime is constant over [t₀, t].
func (g *Generator) AggregateRate() float64 {
	p := g.spec.DiurnalPeriod.Seconds()
	var rate float64
	for i := range g.shapes {
		sh := &g.shapes[i]
		rate += sh.base*g.swing*sh.swingWeight*math.Pi/p +
			sh.noiseAmplitude*math.Pi*(1/sh.n1Period+1/sh.n2Period)
	}
	return rate
}

// SwingRegime identifies the diurnal swing amplitude in effect at t. The
// weekend damping switches it discontinuously at day boundaries, which
// invalidates the AggregateRate Lipschitz bound across the switch; callers
// holding a rate-bounded envelope must re-anchor it whenever the regime of
// the anchor and the query differ.
func (g *Generator) SwingRegime(t time.Duration) float64 { return g.swingAt(t) }

// FirstPeak scans the generator's first diurnal period for the aggregate
// maximum.
func (g *Generator) FirstPeak(resolution time.Duration) time.Duration {
	horizon := g.spec.DiurnalPeriod
	if horizon > g.spec.Duration {
		horizon = g.spec.Duration
	}
	return FirstPeak(g, horizon, resolution)
}

// Stats summarises the aggregate draw over [from, to] at the given step.
type Stats struct {
	Min, Max, Mean units.Power
	Samples        int
}

// AggregateStats scans the aggregate power of a source.
func AggregateStats(s Source, from, to, step time.Duration) Stats {
	if step <= 0 {
		step = time.Minute
	}
	st := Stats{Min: units.Power(math.Inf(1)), Max: units.Power(math.Inf(-1))}
	var sum float64
	for t := from; t <= to; t += step {
		p := Aggregate(s, t)
		if p < st.Min {
			st.Min = p
		}
		if p > st.Max {
			st.Max = p
		}
		sum += float64(p)
		st.Samples++
	}
	if st.Samples > 0 {
		st.Mean = units.Power(sum / float64(st.Samples))
	}
	return st
}
