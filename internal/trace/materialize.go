package trace

import (
	"fmt"
	"math"
	"time"
)

// FromSamples builds a Materialized trace directly from per-rack sample rows
// (samples[rack][tick], watts). It is the constructor behind streamed-trace
// ingestion: a validated frame stream lands here instead of round-tripping
// through CSV. Every row must have the same length, and every value must be
// a finite, non-negative wattage — the same physics checks ReadCSV applies.
func FromSamples(start, step time.Duration, samples [][]float64) (*Materialized, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trace: non-positive step %v", step)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace: no racks")
	}
	n := len(samples[0])
	if n < 2 {
		return nil, fmt.Errorf("trace: need ≥2 samples per rack, got %d", n)
	}
	copied := make([][]float64, len(samples))
	for r, row := range samples {
		if len(row) != n {
			return nil, fmt.Errorf("trace: rack %d has %d samples, rack 0 has %d", r, len(row), n)
		}
		for k, w := range row {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("trace: non-finite power at rack %d tick %d", r, k)
			}
			if w < 0 {
				return nil, fmt.Errorf("trace: negative power at rack %d tick %d", r, k)
			}
		}
		copied[r] = append([]float64(nil), row...)
	}
	return &Materialized{step: step, start: start, samples: copied}, nil
}
