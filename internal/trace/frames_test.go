package trace

import (
	"testing"
	"time"

	"coordcharge/internal/units"
)

// TestGeneratorFramesMatchRack is the golden equality behind the frame API:
// the block path must reproduce the per-call path bit for bit, or every
// "same results, faster" claim downstream of it is void.
func TestGeneratorFramesMatchRack(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		gen, err := NewGenerator(Spec{NumRacks: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkFramesMatchRack(t, gen, seed, 0, 2*time.Hour, 3*time.Second)
		// Off-grid start and an uneven step exercise the hoisted per-frame
		// terms at times the generator was never probed at before.
		checkFramesMatchRack(t, gen, seed, 11*time.Second, time.Hour, 7*time.Second)
	}
}

// TestMaterializedFramesMatchRack covers the CSV-import path: the frame fill
// must apply the same index clamping as per-call Rack at both ends of the
// recorded window.
func TestMaterializedFramesMatchRack(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		gen, err := NewGenerator(Spec{NumRacks: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Materialize(gen, 0, 30*time.Minute, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Spans past both edges of the recording, so the clamps fire.
		checkFramesMatchRack(t, m, seed, -time.Minute, 40*time.Minute, 7*time.Second)
	}
}

// TestGenericFramesFallback drives the package-level helper over a Source
// without a native block implementation.
func TestGenericFramesFallback(t *testing.T) {
	gen, err := NewGenerator(Spec{NumRacks: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	type bare struct{ Source } // hides the native Frames method
	wrapped := bare{gen}
	native := Frames(gen, nil, 0, time.Minute, 3*time.Second)
	generic := Frames(wrapped, nil, 0, time.Minute, 3*time.Second)
	if len(native) != len(generic) {
		t.Fatalf("length mismatch: native %d generic %d", len(native), len(generic))
	}
	for i := range native {
		if native[i] != generic[i] {
			t.Fatalf("sample %d: native %v generic %v", i, native[i], generic[i])
		}
	}
}

// TestFrameAggregatesMatchScalarSum holds the bit-exactness contract of the
// event kernel's demand plane: per-frame clamped aggregates must equal a
// scalar clamp-then-sum loop in rack-index order, including frames where the
// clamp actually fires.
func TestFrameAggregatesMatchScalarSum(t *testing.T) {
	gen, err := NewGenerator(Spec{NumRacks: 17, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	frames := Frames(gen, nil, 0, time.Hour, 3*time.Second)
	n := gen.NumRacks()
	// A clamp tight enough that many samples hit it, plus a negative sample
	// to exercise the low clamp (generator output is non-negative).
	frames[3*n+1] = -5
	const max = 5000 * units.Watt
	agg := FrameAggregates(frames, n, max, nil)
	if len(agg) != len(frames)/n {
		t.Fatalf("got %d aggregates, want %d", len(agg), len(frames)/n)
	}
	clamped := 0
	for k := range agg {
		var want units.Power
		for _, p := range frames[k*n : (k+1)*n] {
			if p < 0 {
				p = 0
			}
			if p > max {
				p = max
				clamped++
			}
			want += p
		}
		if agg[k] != want {
			t.Fatalf("frame %d: aggregate %v != scalar sum %v", k, agg[k], want)
		}
	}
	if clamped == 0 {
		t.Fatal("clamp never fired; the test is not exercising the clamped path")
	}
	// Buffer reuse must not change a bit.
	again := FrameAggregates(frames, n, max, agg)
	for k := range again {
		var want units.Power
		for _, p := range frames[k*n : (k+1)*n] {
			if p < 0 {
				p = 0
			}
			if p > max {
				p = max
			}
			want += p
		}
		if again[k] != want {
			t.Fatalf("frame %d: reused-buffer aggregate %v != scalar sum %v", k, again[k], want)
		}
	}
	if got := FrameAggregates(frames, 0, max, nil); len(got) != 0 {
		t.Fatalf("numRacks=0 returned %d aggregates, want none", len(got))
	}
}

func checkFramesMatchRack(t *testing.T, s Source, seed int64, from, to, step time.Duration) {
	t.Helper()
	n := s.NumRacks()
	got := Frames(s, nil, from, to, step)
	frames := NumFrames(from, to, step)
	if len(got) != frames*n {
		t.Fatalf("seed %d: got %d samples, want %d frames x %d racks", seed, len(got), frames, n)
	}
	var reuse []units.Power
	reuse = Frames(s, reuse, from, to, step)
	for k := 0; k < frames; k++ {
		at := from + time.Duration(k)*step
		for i := 0; i < n; i++ {
			want := s.Rack(i, at)
			if got[k*n+i] != want {
				t.Fatalf("seed %d rack %d t=%v: frame %v != per-call %v", seed, i, at, got[k*n+i], want)
			}
			if reuse[k*n+i] != want {
				t.Fatalf("seed %d rack %d t=%v: reused-buffer frame %v != per-call %v", seed, i, at, reuse[k*n+i], want)
			}
		}
	}
}

// TestAggregateRateSound checks the Lipschitz contract: between any two ticks
// inside one swing regime, the clamped aggregate moves no faster than
// AggregateRate says, across rack counts, noise levels, and weekend damping.
func TestAggregateRateSound(t *testing.T) {
	for _, spec := range []Spec{
		{NumRacks: 30, Seed: 1},
		{NumRacks: 316, Seed: 2},
		{NumRacks: 50, Seed: 3, NoiseFrac: 0.2},
		{NumRacks: 40, Seed: 4, WeekendLevel: 0.7},
		{NumRacks: 25, Seed: 5, SwingScale: swingRamp(25)},
	} {
		g, err := NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		rate := g.AggregateRate()
		if rate <= 0 {
			t.Fatalf("seed %d: non-positive rate %v", spec.Seed, rate)
		}
		const step = 3 * time.Second
		maxIT := units.Power(10500)
		var buf, agg []units.Power
		// Two windows: a weekday afternoon and the span around the first
		// weekend boundary (regime checks must gate the bound there).
		for _, from := range []time.Duration{13 * time.Hour, 5*24*time.Hour - 10*time.Minute} {
			to := from + 20*time.Minute
			buf = Frames(g, buf, from, to, step)
			agg = FrameAggregates(buf, g.NumRacks(), maxIT, agg)
			for k := 1; k < len(agg); k++ {
				tk0, tk1 := from+time.Duration(k-1)*step, from+time.Duration(k)*step
				if g.SwingRegime(tk0) != g.SwingRegime(tk1) {
					continue // bound holds only within one regime
				}
				limit := units.Power(rate * step.Seconds())
				delta := agg[k] - agg[k-1]
				if delta < 0 {
					delta = -delta
				}
				if delta > limit {
					t.Fatalf("seed %d: aggregate moved %v in one step at %v, rate bound allows %v",
						spec.Seed, delta, tk1, limit)
				}
			}
		}
	}
}

func swingRamp(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.2 + 1.6*float64(i)/float64(n-1)
	}
	return w
}

// TestFirstPeakMemoized: the memo must be invisible — same answer on repeat
// calls and the same answer as a fresh generator of an identical spec, while
// distinct specs stay distinct.
func TestFirstPeakMemoized(t *testing.T) {
	spec := Spec{NumRacks: 12, Seed: 97}
	g1, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := FirstPeak(g1, 24*time.Hour, time.Minute)
	if again := FirstPeak(g1, 24*time.Hour, time.Minute); again != first {
		t.Fatalf("repeat call changed: %v then %v", first, again)
	}
	g2, _ := NewGenerator(spec)
	if fresh := FirstPeak(g2, 24*time.Hour, time.Minute); fresh != first {
		t.Fatalf("fresh generator of same spec diverged: %v vs %v", fresh, first)
	}
	// A different resolution or seed is a different scan, not a cache hit.
	coarse := FirstPeak(g1, 24*time.Hour, 7*time.Minute)
	if coarse%(7*time.Minute) != 0 {
		t.Fatalf("coarse scan returned off-grid %v; stale cache entry?", coarse)
	}
	other, _ := NewGenerator(Spec{NumRacks: 12, Seed: 98})
	_ = FirstPeak(other, 24*time.Hour, time.Minute) // must not panic or collide
}
