package trace

import (
	"testing"
	"time"

	"coordcharge/internal/units"
)

// TestGeneratorFramesMatchRack is the golden equality behind the frame API:
// the block path must reproduce the per-call path bit for bit, or every
// "same results, faster" claim downstream of it is void.
func TestGeneratorFramesMatchRack(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		gen, err := NewGenerator(Spec{NumRacks: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkFramesMatchRack(t, gen, seed, 0, 2*time.Hour, 3*time.Second)
		// Off-grid start and an uneven step exercise the hoisted per-frame
		// terms at times the generator was never probed at before.
		checkFramesMatchRack(t, gen, seed, 11*time.Second, time.Hour, 7*time.Second)
	}
}

// TestMaterializedFramesMatchRack covers the CSV-import path: the frame fill
// must apply the same index clamping as per-call Rack at both ends of the
// recorded window.
func TestMaterializedFramesMatchRack(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		gen, err := NewGenerator(Spec{NumRacks: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Materialize(gen, 0, 30*time.Minute, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Spans past both edges of the recording, so the clamps fire.
		checkFramesMatchRack(t, m, seed, -time.Minute, 40*time.Minute, 7*time.Second)
	}
}

// TestGenericFramesFallback drives the package-level helper over a Source
// without a native block implementation.
func TestGenericFramesFallback(t *testing.T) {
	gen, err := NewGenerator(Spec{NumRacks: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	type bare struct{ Source } // hides the native Frames method
	wrapped := bare{gen}
	native := Frames(gen, nil, 0, time.Minute, 3*time.Second)
	generic := Frames(wrapped, nil, 0, time.Minute, 3*time.Second)
	if len(native) != len(generic) {
		t.Fatalf("length mismatch: native %d generic %d", len(native), len(generic))
	}
	for i := range native {
		if native[i] != generic[i] {
			t.Fatalf("sample %d: native %v generic %v", i, native[i], generic[i])
		}
	}
}

func checkFramesMatchRack(t *testing.T, s Source, seed int64, from, to, step time.Duration) {
	t.Helper()
	n := s.NumRacks()
	got := Frames(s, nil, from, to, step)
	frames := NumFrames(from, to, step)
	if len(got) != frames*n {
		t.Fatalf("seed %d: got %d samples, want %d frames x %d racks", seed, len(got), frames, n)
	}
	var reuse []units.Power
	reuse = Frames(s, reuse, from, to, step)
	for k := 0; k < frames; k++ {
		at := from + time.Duration(k)*step
		for i := 0; i < n; i++ {
			want := s.Rack(i, at)
			if got[k*n+i] != want {
				t.Fatalf("seed %d rack %d t=%v: frame %v != per-call %v", seed, i, at, got[k*n+i], want)
			}
			if reuse[k*n+i] != want {
				t.Fatalf("seed %d rack %d t=%v: reused-buffer frame %v != per-call %v", seed, i, at, reuse[k*n+i], want)
			}
		}
	}
}
