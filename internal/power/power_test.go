package power

import (
	"fmt"
	"testing"
	"time"

	"coordcharge/internal/units"
)

// stubLoad is a fixed-power Load for hierarchy tests.
type stubLoad struct {
	name string
	p    units.Power
}

func (s *stubLoad) Name() string       { return s.name }
func (s *stubLoad) Power() units.Power { return s.p }

func TestLevelString(t *testing.T) {
	cases := map[Level]string{LevelMSB: "MSB", LevelSB: "SB", LevelRPP: "RPP", Level(9): "Level(9)"}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestAggregation(t *testing.T) {
	msb := NewNode("msb", LevelMSB, DefaultMSBLimit)
	sb := msb.AddChild(NewNode("sb", LevelSB, DefaultSBLimit))
	rpp1 := sb.AddChild(NewNode("rpp1", LevelRPP, DefaultRPPLimit))
	rpp2 := sb.AddChild(NewNode("rpp2", LevelRPP, DefaultRPPLimit))
	rpp1.AttachLoad(&stubLoad{"a", 10 * units.Kilowatt})
	rpp1.AttachLoad(&stubLoad{"b", 5 * units.Kilowatt})
	rpp2.AttachLoad(&stubLoad{"c", 7 * units.Kilowatt})
	if got := rpp1.Power(); got != 15*units.Kilowatt {
		t.Errorf("rpp1 power = %v, want 15 kW", got)
	}
	if got := msb.Power(); got != 22*units.Kilowatt {
		t.Errorf("msb power = %v, want 22 kW", got)
	}
	if got := msb.Headroom(); got != DefaultMSBLimit-22*units.Kilowatt {
		t.Errorf("headroom = %v", got)
	}
}

func TestParentEqualsSumOfChildrenEverywhere(t *testing.T) {
	loads := make([]Load, 50)
	for i := range loads {
		loads[i] = &stubLoad{fmt.Sprintf("r%d", i), units.Power(i+1) * units.Kilowatt}
	}
	msb, err := Build(Spec{Name: "m"}, loads)
	if err != nil {
		t.Fatal(err)
	}
	msb.Walk(func(n *Node) {
		var sum units.Power
		for _, c := range n.Children() {
			sum += c.Power()
		}
		for _, l := range n.Loads() {
			sum += l.Power()
		}
		if n.Power() != sum {
			t.Errorf("node %s power %v != sum of parts %v", n.Name(), n.Power(), sum)
		}
	})
}

func TestOverloaded(t *testing.T) {
	rpp := NewNode("rpp", LevelRPP, 100*units.Kilowatt)
	l := &stubLoad{"x", 90 * units.Kilowatt}
	rpp.AttachLoad(l)
	if rpp.Overloaded() {
		t.Error("below-limit node reported overloaded")
	}
	l.p = 110 * units.Kilowatt
	if !rpp.Overloaded() {
		t.Error("over-limit node not reported overloaded")
	}
	if rpp.Headroom() != -10*units.Kilowatt {
		t.Errorf("negative headroom = %v", rpp.Headroom())
	}
}

// Paper §I: a 30% overdraw sustained for more than 30 s trips the breaker.
func TestTripRuleSustainedOverdraw(t *testing.T) {
	rpp := NewNode("rpp", LevelRPP, 100*units.Kilowatt)
	l := &stubLoad{"x", 135 * units.Kilowatt} // 35% overdraw
	rpp.AttachLoad(l)
	now := time.Duration(0)
	for i := 0; i < 10; i++ { // 30 s of 3 s ticks
		if rpp.Observe(now) {
			t.Fatalf("tripped too early at %v", now)
		}
		now += 3 * time.Second
	}
	if !rpp.Observe(now) {
		t.Error("breaker did not trip after sustained 35% overdraw")
	}
	if !rpp.Tripped() {
		t.Error("Tripped() false after trip")
	}
	// Stays tripped; Observe no longer reports a new trip.
	if rpp.Observe(now + time.Minute) {
		t.Error("tripped breaker reported tripping again")
	}
	rpp.Reset(now + 2*time.Minute)
	if rpp.Tripped() {
		t.Error("Reset did not clear trip")
	}
}

func TestTripRuleRecoversWhenOverdrawClears(t *testing.T) {
	rpp := NewNode("rpp", LevelRPP, 100*units.Kilowatt)
	l := &stubLoad{"x", 135 * units.Kilowatt}
	rpp.AttachLoad(l)
	rpp.Observe(0)
	rpp.Observe(15 * time.Second)
	l.p = 95 * units.Kilowatt // overdraw clears
	rpp.Observe(20 * time.Second)
	l.p = 135 * units.Kilowatt // overdraw returns: the sustain clock restarts
	rpp.Observe(25 * time.Second)
	if rpp.Observe(40 * time.Second) {
		t.Error("breaker tripped without a full sustained window")
	}
	if !rpp.Observe(60 * time.Second) {
		t.Error("breaker did not trip after the new sustained window")
	}
}

func TestTripRuleIgnoresMildOverload(t *testing.T) {
	// Overloaded but below the 30% trip fraction: Dynamo's problem, not the
	// breaker's.
	rpp := NewNode("rpp", LevelRPP, 100*units.Kilowatt)
	rpp.AttachLoad(&stubLoad{"x", 120 * units.Kilowatt})
	for now := time.Duration(0); now < 10*time.Minute; now += time.Second {
		if rpp.Observe(now) {
			t.Fatal("breaker tripped below the trip fraction")
		}
	}
}

func TestAddChildPanics(t *testing.T) {
	a := NewNode("a", LevelMSB, 1*units.Megawatt)
	b := NewNode("b", LevelSB, 1*units.Megawatt)
	a.AddChild(b)
	t.Run("double parent", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on double-parenting")
			}
		}()
		NewNode("c", LevelMSB, 1*units.Megawatt).AddChild(b)
	})
	t.Run("cycle", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on cycle")
			}
		}()
		b.AddChild(a)
	})
	t.Run("nil load", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on nil load")
			}
		}()
		a.AttachLoad(nil)
	})
	t.Run("bad limit", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on non-positive limit")
			}
		}()
		NewNode("zero", LevelRPP, 0)
	})
}

func TestBuildTopologyShape(t *testing.T) {
	loads := make([]Load, 316) // the paper's evaluation MSB: 316 racks
	for i := range loads {
		loads[i] = &stubLoad{fmt.Sprintf("r%d", i), 6 * units.Kilowatt}
	}
	msb, err := Build(Spec{Name: "msb0"}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if msb.Level() != LevelMSB || msb.Limit() != DefaultMSBLimit {
		t.Errorf("root = %v/%v", msb.Level(), msb.Limit())
	}
	nSB := len(msb.Children())
	if nSB < 2 || nSB > 4 {
		t.Errorf("SB count = %d, want 2..4", nSB)
	}
	var nRPP, nLoads int
	msb.Walk(func(n *Node) {
		if n.Level() == LevelRPP {
			nRPP++
			if len(n.Loads()) > 14 {
				t.Errorf("RPP %s has %d racks, want ≤14", n.Name(), len(n.Loads()))
			}
		}
		nLoads += len(n.Loads())
	})
	if nLoads != 316 {
		t.Errorf("attached loads = %d, want 316", nLoads)
	}
	if want := (316 + 13) / 14; nRPP != want {
		t.Errorf("RPP count = %d, want %d", nRPP, want)
	}
	if got := len(msb.RackLoads()); got != 316 {
		t.Errorf("RackLoads = %d, want 316", got)
	}
}

func TestBuildEmptyLoads(t *testing.T) {
	if _, err := Build(Spec{}, nil); err == nil {
		t.Error("Build accepted empty load list")
	}
}

func TestBuildCustomSpec(t *testing.T) {
	loads := make([]Load, 17)
	for i := range loads {
		loads[i] = &stubLoad{fmt.Sprintf("r%d", i), 5 * units.Kilowatt}
	}
	msb, err := Build(Spec{Name: "x", SBCount: 3, RacksPerRPP: 17, MSBLimit: 2 * units.Megawatt}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(msb.Children()) != 3 {
		t.Errorf("SB count = %d, want 3", len(msb.Children()))
	}
	if msb.Limit() != 2*units.Megawatt {
		t.Errorf("limit = %v", msb.Limit())
	}
}

func TestValidateDuplicateNames(t *testing.T) {
	a := NewNode("dup", LevelMSB, 1*units.Megawatt)
	a.AddChild(NewNode("dup", LevelSB, 1*units.Megawatt))
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted duplicate names")
	}
}

func TestSetLimit(t *testing.T) {
	n := NewNode("m", LevelMSB, DefaultMSBLimit)
	n.SetLimit(2.3 * units.Megawatt)
	if n.Limit() != 2.3*units.Megawatt {
		t.Errorf("limit = %v", n.Limit())
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero limit")
		}
	}()
	n.SetLimit(0)
}
