package power

import (
	"testing"
	"time"

	"coordcharge/internal/units"
)

// switchLoad is a Load + InputSwitchable recording its input state.
type switchLoad struct {
	name string
	p    units.Power
	up   bool
	lost int // LoseInput calls
}

func newSwitchLoad(name string, p units.Power) *switchLoad {
	return &switchLoad{name: name, p: p, up: true}
}

func (s *switchLoad) Name() string { return s.name }
func (s *switchLoad) Power() units.Power {
	if !s.up {
		return 0
	}
	return s.p
}
func (s *switchLoad) LoseInput(time.Duration) {
	if s.up {
		s.lost++
	}
	s.up = false
}
func (s *switchLoad) RestoreInput(time.Duration) { s.up = true }

func buildThree() (*Node, *Node, *Node, []*switchLoad) {
	msb := NewNode("msb", LevelMSB, DefaultMSBLimit)
	sb := msb.AddChild(NewNode("sb", LevelSB, DefaultSBLimit))
	rpp := sb.AddChild(NewNode("rpp", LevelRPP, DefaultRPPLimit))
	loads := []*switchLoad{newSwitchLoad("a", 10*units.Kilowatt), newSwitchLoad("b", 5*units.Kilowatt)}
	for _, l := range loads {
		rpp.AttachLoad(l)
	}
	return msb, sb, rpp, loads
}

func TestDeenergizePropagatesToLoads(t *testing.T) {
	msb, sb, rpp, loads := buildThree()
	if !msb.Energized() || !rpp.Energized() {
		t.Fatal("fresh tree not energized")
	}
	sb.Deenergize(time.Minute)
	for _, l := range loads {
		if l.up {
			t.Errorf("load %s still up after SB de-energize", l.name)
		}
	}
	if rpp.Energized() {
		t.Error("RPP reports energized under a de-energized SB")
	}
	if got := msb.Power(); got != 0 {
		t.Errorf("MSB power during transition = %v, want 0", got)
	}
	sb.Reenergize(time.Minute + 45*time.Second)
	for _, l := range loads {
		if !l.up {
			t.Errorf("load %s still down after re-energize", l.name)
		}
	}
	if got := msb.Power(); got != 15*units.Kilowatt {
		t.Errorf("MSB power after restore = %v", got)
	}
}

func TestDeenergizeIdempotent(t *testing.T) {
	_, sb, _, loads := buildThree()
	sb.Deenergize(0)
	sb.Deenergize(time.Second)
	if loads[0].lost != 1 {
		t.Errorf("LoseInput delivered %d times, want 1", loads[0].lost)
	}
	sb.Reenergize(2 * time.Second)
	sb.Reenergize(3 * time.Second) // no-op
	if !loads[0].up {
		t.Error("load down after double re-energize")
	}
}

func TestNestedDeenergizeKeepsSubtreeDown(t *testing.T) {
	msb, sb, rpp, loads := buildThree()
	msb.Deenergize(0)
	rpp.Deenergize(time.Second)
	// Restoring the MSB does not restore loads under the still-open RPP.
	msb.Reenergize(time.Minute)
	for _, l := range loads {
		if l.up {
			t.Error("load restored under a de-energized RPP")
		}
	}
	rpp.Reenergize(2 * time.Minute)
	for _, l := range loads {
		if !l.up {
			t.Error("load still down after both levels restored")
		}
	}
	_ = sb
}

func TestTripCutsPowerToSubtree(t *testing.T) {
	_, _, rpp, loads := buildThree()
	rpp.SetLimit(10 * units.Kilowatt) // 15 kW of load: 50% overdraw
	now := time.Duration(0)
	for !rpp.Tripped() && now < 5*time.Minute {
		rpp.Observe(now)
		now += 3 * time.Second
	}
	if !rpp.Tripped() {
		t.Fatal("breaker never tripped under 50% overdraw")
	}
	for _, l := range loads {
		if l.up {
			t.Error("load still powered under a tripped breaker")
		}
	}
	if got := rpp.Power(); got != 0 {
		t.Errorf("tripped breaker carries %v", got)
	}
	// Repair restores the subtree.
	rpp.Reset(now + time.Hour)
	for _, l := range loads {
		if !l.up {
			t.Error("load still down after breaker reset")
		}
	}
	if rpp.Tripped() {
		t.Error("breaker still tripped after reset")
	}
}

func TestResetWithoutTripIsHarmless(t *testing.T) {
	_, _, rpp, loads := buildThree()
	rpp.Reset(time.Minute)
	for _, l := range loads {
		if !l.up {
			t.Error("reset on healthy breaker dropped loads")
		}
	}
}

func TestOpenTransitionHelper(t *testing.T) {
	_, sb, _, loads := buildThree()
	restore := sb.OpenTransition(10 * time.Second)
	if loads[0].up {
		t.Error("load up during open transition")
	}
	restore(55 * time.Second)
	if !loads[0].up {
		t.Error("load down after transition restore")
	}
}

func TestNonSwitchableLoadsTolerated(t *testing.T) {
	rpp := NewNode("rpp", LevelRPP, DefaultRPPLimit)
	rpp.AttachLoad(&stubLoad{"fixed", 5 * units.Kilowatt})
	rpp.Deenergize(0) // must not panic
	if got := rpp.Power(); got != 0 {
		t.Errorf("de-energized node power = %v, want 0", got)
	}
	rpp.Reenergize(time.Second)
	if got := rpp.Power(); got != 5*units.Kilowatt {
		t.Errorf("restored node power = %v", got)
	}
}
