package power

import (
	"fmt"
	"testing"

	"coordcharge/internal/units"
)

// Aggregating the full production tree: the hot path of every monitoring
// tick.
func BenchmarkTreePower316(b *testing.B) {
	loads := make([]Load, 316)
	for i := range loads {
		loads[i] = &stubLoad{fmt.Sprintf("r%d", i), 6 * units.Kilowatt}
	}
	msb, err := Build(Spec{Name: "m"}, loads)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = msb.Power()
	}
}
