package power

import (
	"time"
)

// InputSwitchable is implemented by loads that react to losing and regaining
// input power (racks fall back to their batteries). Loads that do not
// implement it simply keep reporting their draw.
type InputSwitchable interface {
	LoseInput(now time.Duration)
	RestoreInput(now time.Duration)
}

// Energized reports whether the breaker is carrying power: it is not
// de-energized for maintenance, has not tripped, and neither has any
// ancestor.
func (n *Node) Energized() bool {
	for p := n; p != nil; p = p.parent {
		if p.deenergized || p.tripped {
			return false
		}
	}
	return true
}

// Deenergize removes the breaker from the critical power path at virtual
// time now — the start of an open transition at this level of the hierarchy
// (paper §II-C: maintenance transfers, utility failures). Every
// InputSwitchable load at or below the node loses input power. It is a no-op
// if the node is already de-energized.
func (n *Node) Deenergize(now time.Duration) {
	if n.deenergized {
		return
	}
	n.deenergized = true
	n.propagateInput(now)
}

// Reenergize restores the breaker to the power path at virtual time now (the
// transfer back, or repair completion). Loads regain input power only if no
// ancestor is still de-energized or tripped. It is a no-op if the node is
// not de-energized.
func (n *Node) Reenergize(now time.Duration) {
	if !n.deenergized {
		return
	}
	n.deenergized = false
	n.propagateInput(now)
}

// propagateInput pushes the current energization state to every switchable
// load in the subtree. Racks under a still-de-energized descendant stay down.
func (n *Node) propagateInput(now time.Duration) {
	var walk func(m *Node, up bool)
	walk = func(m *Node, up bool) {
		up = up && !m.deenergized && !m.tripped
		for _, l := range m.loads {
			sw, ok := l.(InputSwitchable)
			if !ok {
				continue
			}
			if up {
				sw.RestoreInput(now)
			} else {
				sw.LoseInput(now)
			}
		}
		for _, c := range m.children {
			walk(c, up)
		}
	}
	walk(n, n.Energized())
}

// OpenTransition performs a complete open transition at this breaker using
// the engine-free tick pattern: it de-energizes now and returns the restore
// callback to invoke at the end of the transition. Most callers instead call
// Deenergize/Reenergize directly from their simulation loop; this helper
// exists for event-driven code.
func (n *Node) OpenTransition(start time.Duration) (restore func(now time.Duration)) {
	n.Deenergize(start)
	return n.Reenergize
}
