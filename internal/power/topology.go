package power

import (
	"fmt"

	"coordcharge/internal/units"
)

// Spec describes an MSB-rooted topology to assemble from a flat list of rack
// loads: the shape used by every MSB-level experiment in the paper's §V.
type Spec struct {
	// Name prefixes every breaker name ("msb0", "msb0/sb1", ...).
	Name string
	// MSBLimit, SBLimit, RPPLimit are breaker ratings; zero selects the
	// Open Compute defaults (2.5 MW / 1.25 MW / 190 kW).
	MSBLimit units.Power
	SBLimit  units.Power
	RPPLimit units.Power
	// RacksPerRPP is the number of racks per row; zero selects 14 (the
	// paper's production test row, and within the 190 kW RPP rating at
	// 12.6 kW per rack).
	RacksPerRPP int
	// SBCount forces the number of switch boards; zero selects enough SBs
	// so that aggregate RPP rating per SB stays within roughly 2× the SB
	// rating (matching the paper's 2–4 SBs per MSB and its oversubscribed
	// reality), bounded to [2, 4].
	SBCount int
}

func (s *Spec) fillDefaults(nLoads int) {
	if s.Name == "" {
		s.Name = "msb"
	}
	if s.MSBLimit == 0 {
		s.MSBLimit = DefaultMSBLimit
	}
	if s.SBLimit == 0 {
		s.SBLimit = DefaultSBLimit
	}
	if s.RPPLimit == 0 {
		s.RPPLimit = DefaultRPPLimit
	}
	if s.RacksPerRPP == 0 {
		s.RacksPerRPP = 14
	}
	if s.SBCount == 0 {
		nRPP := (nLoads + s.RacksPerRPP - 1) / s.RacksPerRPP
		s.SBCount = nRPP / 8
		if s.SBCount < 2 {
			s.SBCount = 2
		}
		if s.SBCount > 4 {
			s.SBCount = 4
		}
	}
}

// Build assembles an MSB → SB → RPP tree and attaches the loads to RPPs in
// order, RacksPerRPP per RPP, RPPs spread round-robin across the SBs. It
// returns the MSB root.
func Build(spec Spec, loads []Load) (*Node, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("power: Build needs at least one load")
	}
	spec.fillDefaults(len(loads))
	msb := NewNode(spec.Name, LevelMSB, spec.MSBLimit)
	sbs := make([]*Node, spec.SBCount)
	for i := range sbs {
		sbs[i] = NewNode(fmt.Sprintf("%s/sb%d", spec.Name, i), LevelSB, spec.SBLimit)
		msb.AddChild(sbs[i])
	}
	nRPP := (len(loads) + spec.RacksPerRPP - 1) / spec.RacksPerRPP
	for ri := 0; ri < nRPP; ri++ {
		sb := sbs[ri%len(sbs)]
		rpp := NewNode(fmt.Sprintf("%s/rpp%d", spec.Name, ri), LevelRPP, spec.RPPLimit)
		sb.AddChild(rpp)
		lo := ri * spec.RacksPerRPP
		hi := lo + spec.RacksPerRPP
		if hi > len(loads) {
			hi = len(loads)
		}
		for _, l := range loads[lo:hi] {
			rpp.AttachLoad(l)
		}
	}
	if err := msb.Validate(); err != nil {
		return nil, err
	}
	return msb, nil
}
