package power

import (
	"testing"
	"time"

	"coordcharge/internal/units"
)

// Trip latching across open transitions: a tripped breaker stays tripped —
// and its subtree stays dark — through any Deenergize/Reenergize cycle until
// an explicit Reset. Re-energization restores the maintenance path only, not
// a blown breaker.

// tripThree builds the three-level tree with the MSB limit tightened so a
// load of 15 kW (both switchLoads) overdraws a 10 kW limit beyond the default
// 30 % threshold.
func tripThree() (*Node, *Node, []*switchLoad) {
	msb, _, rpp, loads := buildThree()
	msb.SetLimit(10 * units.Kilowatt)
	return msb, rpp, loads
}

func tripNow(t *testing.T, n *Node, at time.Duration) {
	t.Helper()
	n.Observe(at) // arms the overdraw window
	if !n.Observe(at + n.Rule().Sustain) {
		t.Fatalf("setup: breaker %s did not trip", n.Name())
	}
}

func TestTripSurvivesDeenergizeReenergize(t *testing.T) {
	msb, _, loads := tripThree()
	tripNow(t, msb, 0)
	if !msb.Tripped() {
		t.Fatal("breaker not tripped after sustained overdraw")
	}

	// A maintenance transfer on the tripped breaker must not clear the trip.
	msb.Deenergize(40 * time.Second)
	if !msb.Tripped() {
		t.Fatal("Deenergize cleared the trip")
	}
	msb.Reenergize(50 * time.Second)
	if !msb.Tripped() {
		t.Fatal("Reenergize cleared the trip")
	}
	for _, l := range loads {
		if l.up {
			t.Fatalf("load %s regained input through a tripped breaker", l.name)
		}
	}
	if msb.Power() != 0 {
		t.Fatalf("tripped breaker carries %v", msb.Power())
	}

	// Only Reset repairs it.
	msb.Reset(time.Minute)
	if msb.Tripped() {
		t.Fatal("Reset did not clear the trip")
	}
	for _, l := range loads {
		if !l.up {
			t.Fatalf("load %s still down after Reset", l.name)
		}
	}
}

func TestOpenTransitionRestoreDoesNotClearTrip(t *testing.T) {
	msb, _, loads := tripThree()
	restore := msb.OpenTransition(0)
	// The breaker trips mid-transition (e.g. a downstream fault found during
	// maintenance): Power() is 0 while de-energized, so trip it directly via
	// a nested child... the MSB itself cannot overdraw while dark. Instead,
	// re-energize first, then trip, then run a second transition.
	restore(10 * time.Second)
	tripNow(t, msb, 10*time.Second)

	restore2 := msb.OpenTransition(60 * time.Second)
	restore2(70 * time.Second)
	if !msb.Tripped() {
		t.Fatal("OpenTransition restore cleared the trip")
	}
	for _, l := range loads {
		if l.up {
			t.Fatalf("load %s up under a tripped breaker after OpenTransition restore", l.name)
		}
	}
}

func TestTrippedChildStaysDarkWhenParentCycles(t *testing.T) {
	msb, rpp, loads := tripThree()
	rpp.SetLimit(10 * units.Kilowatt)
	tripNow(t, rpp, 0)

	// Cycling the MSB (site-wide outage and restore) must not resurrect the
	// tripped RPP's subtree.
	msb.Deenergize(time.Minute)
	msb.Reenergize(2 * time.Minute)
	if !rpp.Tripped() {
		t.Fatal("parent cycle cleared the child trip")
	}
	for _, l := range loads {
		if l.up {
			t.Fatalf("load %s up under tripped RPP after parent restore", l.name)
		}
	}
	rpp.Reset(3 * time.Minute)
	for _, l := range loads {
		if !l.up {
			t.Fatalf("load %s down after RPP reset", l.name)
		}
	}
}

func TestObserveWhileTrippedStaysLatched(t *testing.T) {
	msb, _, _ := tripThree()
	tripNow(t, msb, 0)
	// Draw is zero now (breaker open); further observations must neither
	// re-trip nor unlatch.
	for now := 40 * time.Second; now <= 2*time.Minute; now += 10 * time.Second {
		if msb.Observe(now) {
			t.Fatalf("tripped breaker re-tripped at %v", now)
		}
		if !msb.Tripped() {
			t.Fatalf("trip unlatched at %v", now)
		}
	}
}
