// Package power models the data-center power-delivery hierarchy of the
// paper's §II-A: a tree of circuit breakers — main switch board (MSB, 2.5 MW)
// over switch boards (SB, 1.25 MW) over reactor power panels (RPP, 190 kW) —
// with racks as leaves, plus metering, headroom accounting, and a
// sustained-overload breaker-trip model.
package power

import (
	"fmt"
	"time"

	"coordcharge/internal/units"
)

// Level is the position of a node in the power hierarchy.
type Level int

// Hierarchy levels, top down.
const (
	LevelMSB Level = iota
	LevelSB
	LevelRPP
)

// String returns the level's conventional name.
func (l Level) String() string {
	switch l {
	case LevelMSB:
		return "MSB"
	case LevelSB:
		return "SB"
	case LevelRPP:
		return "RPP"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Default breaker ratings of the Open Compute hierarchy (paper §II-A).
const (
	DefaultMSBLimit = 2.5 * units.Megawatt
	DefaultSBLimit  = 1.25 * units.Megawatt
	DefaultRPPLimit = 190 * units.Kilowatt
)

// Load is anything that draws power from a breaker: racks implement it.
type Load interface {
	Name() string
	Power() units.Power
}

// TripRule is the breaker protection curve: a sustained overdraw beyond
// Fraction of the limit for at least Sustain trips the breaker. The paper's
// example: a 30 % overdraw for more than 30 seconds (§I).
type TripRule struct {
	Fraction units.Fraction
	Sustain  time.Duration
}

// DefaultTripRule is the paper's §I example curve.
func DefaultTripRule() TripRule {
	return TripRule{Fraction: 0.3, Sustain: 30 * time.Second}
}

// Node is one circuit breaker in the hierarchy. Construct with NewNode and
// assemble with AddChild/AttachLoad.
type Node struct {
	name     string
	level    Level
	limit    units.Power //coordvet:transient config: scenario build re-applies SetLimit before RestoreState
	rule     TripRule    //coordvet:transient config: scenario build re-applies SetTripRule before RestoreState
	parent   *Node       //coordvet:transient topology: rebuilt by AddChild/AttachLoad at scenario build
	children []*Node     //coordvet:transient topology: rebuilt by AddChild/AttachLoad at scenario build
	loads    []Load      //coordvet:transient topology: rebuilt by AddChild/AttachLoad at scenario build

	overSince   time.Duration // virtual time the sustained overdraw began
	overdrawn   bool
	tripped     bool
	deenergized bool // removed from the power path for maintenance
}

// NewNode returns a breaker with the given name, level, and power limit.
func NewNode(name string, level Level, limit units.Power) *Node {
	if limit <= 0 {
		panic(fmt.Errorf("power: breaker %s has non-positive limit %v", name, limit))
	}
	return &Node{name: name, level: level, limit: limit, rule: DefaultTripRule()}
}

// Name returns the breaker's identifier.
func (n *Node) Name() string { return n.name }

// Level returns the breaker's hierarchy level.
func (n *Node) Level() Level { return n.level }

// Limit returns the breaker's rated power limit.
func (n *Node) Limit() units.Power { return n.limit }

// SetLimit changes the breaker's power limit (the evaluation sweeps MSB
// limits to vary available power).
func (n *Node) SetLimit(limit units.Power) {
	if limit <= 0 {
		panic(fmt.Errorf("power: breaker %s set to non-positive limit %v", n.name, limit))
	}
	n.limit = limit
}

// SetTripRule replaces the breaker's protection curve.
func (n *Node) SetTripRule(r TripRule) { n.rule = r }

// Rule returns the breaker's protection curve (read access for watchdogs
// that must act before the trip window closes).
func (n *Node) Rule() TripRule { return n.rule }

// Parent returns the breaker feeding this one, or nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the downstream breakers.
func (n *Node) Children() []*Node { return n.children }

// Loads returns the loads attached directly to this breaker.
func (n *Node) Loads() []Load { return n.loads }

// AddChild attaches a downstream breaker. It panics if child already has a
// parent or if the attachment would create a cycle: both are construction
// bugs.
func (n *Node) AddChild(child *Node) *Node {
	if child.parent != nil {
		panic(fmt.Errorf("power: %s already has parent %s", child.name, child.parent.name))
	}
	for p := n; p != nil; p = p.parent {
		if p == child {
			panic(fmt.Errorf("power: attaching %s to %s would create a cycle", child.name, n.name))
		}
	}
	child.parent = n
	n.children = append(n.children, child)
	return child
}

// AttachLoad attaches a load (rack) directly to this breaker.
func (n *Node) AttachLoad(l Load) {
	if l == nil {
		panic(fmt.Errorf("power: nil load attached to %s", n.name))
	}
	n.loads = append(n.loads, l)
}

// Power returns the instantaneous draw through this breaker: the sum of all
// attached loads and downstream breakers. A tripped or de-energized breaker
// carries no power.
func (n *Node) Power() units.Power {
	if n.tripped || n.deenergized {
		return 0
	}
	var total units.Power
	for _, c := range n.children {
		total += c.Power()
	}
	for _, l := range n.loads {
		total += l.Power()
	}
	return total
}

// Headroom returns limit − draw (negative when overloaded): the paper's
// "available power".
func (n *Node) Headroom() units.Power {
	return n.limit - n.Power()
}

// Overloaded reports whether the instantaneous draw exceeds the limit.
func (n *Node) Overloaded() bool { return n.Power() > n.limit }

// Tripped reports whether the breaker has tripped. A tripped breaker stays
// tripped until Reset.
func (n *Node) Tripped() bool { return n.tripped }

// Overdrawn reports whether the breaker is inside a sustained-overload
// episode (Observe saw draw above the trip threshold and the sustain window
// is running). The event kernel refuses to skip ticks while an episode is
// open: Observe must keep stamping the physics clock.
func (n *Node) Overdrawn() bool { return n.overdrawn }

// Reset clears a tripped breaker at virtual time now (the repair action) and
// restores input power to the subtree where possible.
func (n *Node) Reset(now time.Duration) {
	if !n.tripped {
		n.overdrawn = false
		return
	}
	n.tripped = false
	n.overdrawn = false
	n.propagateInput(now)
}

// Observe advances the trip model to virtual time now: a draw beyond
// (1+Fraction)·limit sustained for Sustain trips the breaker. Call it once
// per simulation tick, top-down or in any order. It returns true if the
// breaker tripped during this observation.
func (n *Node) Observe(now time.Duration) bool {
	if n.tripped {
		return false
	}
	threshold := units.Power(float64(n.limit) * (1 + float64(n.rule.Fraction)))
	if n.Power() <= threshold {
		n.overdrawn = false
		return false
	}
	if !n.overdrawn {
		n.overdrawn = true
		n.overSince = now
		return false
	}
	if now-n.overSince >= n.rule.Sustain {
		// The breaker opens: a power outage for everything beneath it
		// (paper §II-C — outages, unlike open transitions, last until
		// repair).
		n.tripped = true
		n.propagateInput(now)
		return true
	}
	return false
}

// Walk visits n and every descendant breaker in depth-first order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.children {
		c.Walk(visit)
	}
}

// RackLoads returns every load attached at or below this breaker, in
// depth-first order.
func (n *Node) RackLoads() []Load {
	var out []Load
	n.Walk(func(m *Node) { out = append(out, m.loads...) })
	return out
}

// Validate checks structural invariants of the subtree: positive limits,
// unique names, parent links consistent. Aggregate child ratings MAY exceed
// the parent's limit — that is exactly what power oversubscription means
// (paper §II-B) — so no capacity check is made.
func (n *Node) Validate() error {
	seen := make(map[string]bool)
	var walk func(m *Node) error
	walk = func(m *Node) error {
		if m.limit <= 0 {
			return fmt.Errorf("power: breaker %s has non-positive limit", m.name)
		}
		if seen[m.name] {
			return fmt.Errorf("power: duplicate breaker name %q", m.name)
		}
		seen[m.name] = true
		for _, c := range m.children {
			if c.parent != m {
				return fmt.Errorf("power: %s has inconsistent parent link", c.name)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(n)
}
