package power

import (
	"fmt"
	"time"
)

// NodeState is one breaker's serializable mutable state. Topology (parents,
// children, loads), limits, and trip rules are construction-time
// configuration rebuilt from the scenario spec; only the protection latches
// are checkpointed. Input-path state (which racks see power) is restored
// verbatim on the rack side, so restoring these flags needs no input
// propagation.
type NodeState struct {
	Name        string        `json:"name"`
	OverSince   time.Duration `json:"over_since"`
	Overdrawn   bool          `json:"overdrawn"`
	Tripped     bool          `json:"tripped"`
	Deenergized bool          `json:"deenergized"`
}

// ExportState captures the breaker's protection latches.
func (n *Node) ExportState() NodeState {
	return NodeState{
		Name:        n.name,
		OverSince:   n.overSince,
		Overdrawn:   n.overdrawn,
		Tripped:     n.tripped,
		Deenergized: n.deenergized,
	}
}

// RestoreState overwrites the breaker's protection latches from a
// checkpoint. The node must be the one the state was exported from (matched
// by name).
func (n *Node) RestoreState(st NodeState) error {
	if st.Name != n.name {
		return fmt.Errorf("power: checkpoint state for %q restored into %q", st.Name, n.name)
	}
	n.overSince = st.OverSince
	n.overdrawn = st.Overdrawn
	n.tripped = st.Tripped
	n.deenergized = st.Deenergized
	return nil
}
