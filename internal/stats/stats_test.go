package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if !almost(s.Mean, 3, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almost(s.StdDev, math.Sqrt(2), 1e-12) {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if !almost(s.P50, 3, 1e-12) {
		t.Errorf("p50 = %v", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {0.25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%.2f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleton(t *testing.T) {
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Percentile(nil, 0.5) },
		"below": func() { Percentile([]float64{1}, -0.1) },
		"above": func() { Percentile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPercentileOrderedProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, r)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		p50 := Percentile(xs, 0.5)
		p90 := Percentile(xs, 0.9)
		p99 := Percentile(xs, 0.99)
		return p50 <= p90 && p90 <= p99 && p50 >= xs[0] && p99 <= xs[len(xs)-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if len(bins) != 5 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 10 {
		t.Errorf("histogram lost samples: %d", total)
	}
	// The max value lands in the last bin.
	if bins[4].Count == 0 {
		t.Error("max value not binned")
	}
	if bins[0].Lo != 0 || !almost(bins[4].Hi, 10, 1e-12) {
		t.Errorf("bin range [%v, %v]", bins[0].Lo, bins[4].Hi)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := Histogram(nil, 4); h != nil {
		t.Error("empty histogram not nil")
	}
	if h := Histogram([]float64{1}, 0); h != nil {
		t.Error("zero bins not nil")
	}
	h := Histogram([]float64{5, 5, 5}, 4)
	if len(h) != 1 || h[0].Count != 3 {
		t.Errorf("constant-sample histogram = %+v", h)
	}
}

func TestHistogramConservesCountProperty(t *testing.T) {
	prop := func(raw []float64, nRaw uint8) bool {
		var xs []float64
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, r)
			}
		}
		n := 1 + int(nRaw)%20
		bins := Histogram(xs, n)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
