// Package stats provides the small set of summary statistics the experiment
// analytics need: means, percentiles, and fixed-width histograms over
// float64 samples. It exists so scenario-level analyses (charge-duration
// distributions, depth-of-discharge spreads) share one tested implementation
// rather than ad-hoc arithmetic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	Count          int
	Min, Max, Mean float64
	// StdDev is the population standard deviation.
	StdDev float64
	// P50, P90, P99 are percentiles by linear interpolation.
	P50, P90, P99 float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumsq float64
	for _, x := range sorted {
		sum += x
		sumsq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		P50:    Percentile(sorted, 0.50),
		P90:    Percentile(sorted, 0.90),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample by linear interpolation between closest ranks. It panics on an
// empty sample or p outside [0,1]: both are caller bugs.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,1]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Bin is one histogram bucket: [Lo, Hi) except the last, which is closed.
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets xs into n fixed-width bins spanning [min, max]. An empty
// sample or non-positive n yields nil.
func Histogram(xs []float64, n int) []Bin {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max == min {
		return []Bin{{Lo: min, Hi: max, Count: len(xs)}}
	}
	width := (max - min) / float64(n)
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Lo = min + float64(i)*width
		bins[i].Hi = min + float64(i+1)*width
	}
	for _, x := range xs {
		i := int((x - min) / width)
		// Clamp: the max lands in the final (closed) bin, and pathological
		// float ranges (width overflowing to +Inf makes the quotient NaN)
		// degrade to the first bin instead of panicking.
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0
		}
		bins[i].Count++
	}
	return bins
}
