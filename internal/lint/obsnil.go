package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsNil protects the observability plane's disabled-path budget
// (BenchmarkObsOverhead: nil-sink instrumentation must cost <2%). Two
// contracts:
//
//  1. Every exported pointer-receiver method in internal/obs must open with
//     a nil-receiver guard (`if x == nil { ... }` as the first statement),
//     so detached instrumentation is a branch, not a panic.
//
//  2. Call sites of the flight-recorder entry points (Sink.Event,
//     Recorder.Record) must not compute arguments — fmt.Sprintf, string
//     concatenation, composite literals — outside an explicit
//     `sink != nil` guard: Go evaluates arguments before the callee's nil
//     check, so unguarded formatting allocates even when observability is
//     detached.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "require nil-receiver guards in internal/obs and nil-guarded argument computation at flight-recorder call sites",
	Run:  runObsNil,
}

// isObsPkg matches the observability package (real tree or golden
// fixtures).
func isObsPkg(path string) bool {
	return strings.HasSuffix(path, "internal/obs")
}

func runObsNil(p *Pass) {
	if isObsPkg(p.Pkg.Path) {
		checkObsMethodGuards(p)
	}
	checkObsCallSites(p)
}

// checkObsMethodGuards enforces contract 1 over the obs package itself.
func checkObsMethodGuards(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			if _, isPtr := recv.Type.(*ast.StarExpr); !isPtr {
				continue // value receivers cannot be nil
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				p.Reportf(fd.Pos(), "exported method %s has an unnamed pointer receiver: it cannot nil-guard itself", fd.Name.Name)
				continue
			}
			name := recv.Names[0].Name
			if !startsWithNilGuard(fd.Body, name) {
				p.Reportf(fd.Pos(), "exported method (%s) %s must begin with `if %s == nil` — obs methods are nil-safe by contract",
					name, fd.Name.Name, name)
			}
		}
	}
}

// startsWithNilGuard reports whether the body's first statement is an if
// whose condition checks `recv == nil`.
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if ok && b.Op == token.EQL && (isNilCheckPair(b.X, b.Y, recv) || isNilCheckPair(b.Y, b.X, recv)) {
			found = true
		}
		return !found
	})
	return found
}

func isNilCheckPair(x, y ast.Expr, recv string) bool {
	xi, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || xi.Name != recv {
		return false
	}
	yi, ok := ast.Unparen(y).(*ast.Ident)
	return ok && yi.Name == "nil"
}

// checkObsCallSites enforces contract 2 everywhere.
func checkObsCallSites(p *Pass) {
	for _, f := range p.Pkg.Files {
		scanGuarded(f, nil, func(call *ast.CallExpr, guards []string) {
			fn := p.Callee(call)
			if fn == nil || !isFlightEmit(fn) {
				return
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			recv := types.ExprString(sel.X)
			for _, g := range guards {
				if g == recv {
					return
				}
			}
			for _, arg := range call.Args {
				if alloc := allocExpr(p, arg); alloc != "" {
					p.Reportf(arg.Pos(),
						"%s argument computes %s outside an `if %s != nil` guard: arguments are evaluated even when the sink is nil (disabled-path budget, DESIGN.md §8)",
						fn.Name(), alloc, recv)
					return // one finding per call is enough
				}
			}
		})
	}
}

// scanGuarded walks n, tracking the set of expressions proven non-nil by
// enclosing if conditions, and invokes onCall for every call expression
// with the guards active at that point. Flow-insensitive beyond lexical
// if-nesting: else branches and early returns are not modeled.
func scanGuarded(n ast.Node, guards []string, onCall func(*ast.CallExpr, []string)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.IfStmt:
			if v.Init != nil {
				scanGuarded(v.Init, guards, onCall)
			}
			scanGuarded(v.Cond, guards, onCall)
			scanGuarded(v.Body, append(guards, nonNilConjuncts(v.Cond)...), onCall)
			if v.Else != nil {
				scanGuarded(v.Else, guards, onCall)
			}
			return false
		case *ast.CallExpr:
			onCall(v, guards)
		}
		return true
	})
}

// nonNilConjuncts extracts the expressions a condition proves non-nil:
// `x != nil` conjuncts joined by &&.
func nonNilConjuncts(cond ast.Expr) []string {
	switch v := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			return append(nonNilConjuncts(v.X), nonNilConjuncts(v.Y)...)
		case token.NEQ:
			if id, ok := ast.Unparen(v.Y).(*ast.Ident); ok && id.Name == "nil" {
				return []string{types.ExprString(ast.Unparen(v.X))}
			}
			if id, ok := ast.Unparen(v.X).(*ast.Ident); ok && id.Name == "nil" {
				return []string{types.ExprString(ast.Unparen(v.Y))}
			}
		}
	}
	return nil
}

// allocExpr describes the first allocation-bearing sub-expression of an
// argument ("" when the argument is a simple identifier/selector/literal
// or a pure conversion chain).
func allocExpr(p *Pass, e ast.Expr) string {
	desc := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if p.IsConversion(v) {
				return true // conversions are free; keep scanning operands
			}
			desc = "a call (" + types.ExprString(v.Fun) + ")"
			return false
		case *ast.BinaryExpr:
			if t := p.Pkg.Info.TypeOf(v); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					desc = "a string concatenation"
					return false
				}
			}
		case *ast.CompositeLit:
			desc = "a composite literal"
			return false
		}
		return true
	})
	return desc
}
