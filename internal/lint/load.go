package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages from source, stdlib-only: module
// packages are resolved against the module root (with an optional testdata
// overlay so golden fixtures can shadow real packages), everything else is
// delegated to the go/importer "source" importer, which type-checks the
// standard library from GOROOT.
type Loader struct {
	Fset *token.FileSet
	// ModRoot is the module root directory; ModPath its module path.
	ModRoot string
	ModPath string
	// GoVersion is the language version the type-checker enforces
	// ("go1.22"), read from the module's go directive. Without it go/types
	// accepts any language feature the toolchain knows — including ones
	// `go build` would reject under the module's declared version — and,
	// conversely, a future toolchain could start rejecting constructs the
	// directive permits. Pinning it keeps coordvet's accept set identical
	// to the compiler's, generics included.
	GoVersion string
	// OverlayRoot, when set, is a GOPATH-style source tree
	// (OverlayRoot/<import/path>/*.go) consulted before the module —
	// the golden-fixture convention.
	OverlayRoot string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
	order   []string // load completion order, for the annotation prescan
}

// NewLoader returns a loader rooted at the module containing dir (dir or a
// parent must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath, goVersion := "", ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
		} else if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	// The source importer type-checks the standard library from GOROOT
	// source; with cgo disabled it sticks to the pure-Go variants, which is
	// all type information needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		ModRoot:   root,
		ModPath:   modPath,
		GoVersion: goVersion,
		std:       importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:      map[string]*Package{},
		loading:   map[string]bool{},
	}, nil
}

// resolveDir maps an import path to a source directory, or "" when the path
// is not ours (stdlib).
func (l *Loader) resolveDir(path string) string {
	if l.OverlayRoot != "" {
		dir := filepath.Join(l.OverlayRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
	}
	if path == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}
	return ""
}

// Load parses and type-checks the package at the given import path (module
// or overlay paths only; stdlib is loaded implicitly through imports).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	dir := l.resolveDir(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %q is not under module %s", path, l.ModPath)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l, GoVersion: l.GoVersion}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Fset: l.Fset}
	l.pkgs[path] = p
	l.order = append(l.order, path)
	return p, nil
}

// Import implements types.Importer over the same resolution rules as Load.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.resolveDir(path) != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom; dir is ignored (no vendoring).
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// Program bundles the scanned packages with the cross-package annotation
// index. Every package the loader has seen (scanned or dependency)
// contributes its `// guarded by` annotations.
func (l *Loader) Program(scanned []*Package) *Program {
	prog := &Program{Fset: l.Fset, Packages: scanned, Guarded: map[types.Object]GuardInfo{}}
	for _, path := range l.order {
		collectGuarded(l.pkgs[path], prog.Guarded)
	}
	return prog
}

// LoadPatterns expands `./...`-style patterns relative to the module root
// and loads every matching package, sorted by import path.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	seen := map[string]bool{}
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		rel, recursive := strings.CutSuffix(pat, "...")
		rel = strings.TrimSuffix(rel, "/")
		if rel == "" || rel == "." {
			rel = "."
		} else {
			rel = filepath.Clean(strings.TrimPrefix(rel, "./"))
		}
		base := filepath.Join(l.ModRoot, rel)
		if !recursive {
			if ok, err := hasGoSources(base); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("lint: no Go sources match %q", pat)
			}
			add(l.pathFor(base))
			continue
		}
		err := filepath.WalkDir(base, func(dir string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); dir != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if ok, err := hasGoSources(dir); err != nil {
				return err
			} else if ok {
				add(l.pathFor(dir))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// goSources lists the non-test Go files in dir, sorted for deterministic
// load order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func hasGoSources(dir string) (bool, error) {
	names, err := goSources(dir)
	if err != nil {
		return false, err
	}
	return len(names) > 0, nil
}

// collectGuarded records every `// guarded by <mutex>` field annotation in
// the package. The annotation is a trailing comment on the field line (or a
// line of the field's doc comment) of the form:
//
//	mu    sync.Mutex
//	ring  []Event // guarded by mu
func collectGuarded(pkg *Package, out map[types.Object]GuardInfo) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mutex := guardAnnotation(field)
					if mutex == "" {
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out[obj] = GuardInfo{Mutex: mutex, Struct: ts.Name.Name, PkgPath: pkg.Path}
						}
					}
				}
			}
		}
	}
}

// guardAnnotation extracts the mutex name from a field's `guarded by X`
// comment, or "".
func guardAnnotation(field *ast.Field) string {
	scan := func(cg *ast.CommentGroup) string {
		if cg == nil {
			return ""
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			if _, rest, ok := strings.Cut(text, "guarded by "); ok {
				name := strings.FieldsFunc(rest, func(r rune) bool {
					return r == ' ' || r == '.' || r == ',' || r == ';' || r == '*' || r == '\t'
				})
				if len(name) > 0 {
					return name[0]
				}
			}
		}
		return ""
	}
	if m := scan(field.Comment); m != "" {
		return m
	}
	return scan(field.Doc)
}
