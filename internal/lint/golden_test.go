package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runGolden is the hand-rolled analysistest: it loads fixture packages from
// testdata/<name>/src/<import/path>/*.go, runs the given analyzers, and
// matches every diagnostic against `// want "regexp"` expectation comments
// on the same line. Each want must be matched by a diagnostic and each
// diagnostic by a want; anything else fails the test. A want comment may
// list several quoted regexps, and the marker may also appear mid-comment
// (so an //coordvet:ignore line can still carry an expectation for the
// stale-ignore finding it provokes).
func runGolden(t *testing.T, name string, analyzers []*Analyzer, pkgPaths ...string) []Diagnostic {
	t.Helper()
	loader, scanned, diags := loadFixture(t, name, analyzers, pkgPaths...)

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range scanned {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, pat := range wantPatterns(t, c.Text) {
						pos := loader.Fset.Position(c.Pos())
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], pat)
					}
				}
			}
		}
	}

	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ok := false
		for _, pat := range wants[k] {
			if !matched[pat] && pat.MatchString(d.Message) {
				matched[pat] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, pats := range wants {
		for _, pat := range pats {
			if !matched[pat] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, pat)
			}
		}
	}
	return diags
}

// loadFixture loads fixture packages under testdata/<name>/src and runs
// the analyzers, returning the loader, scanned packages, and diagnostics.
func loadFixture(t *testing.T, name string, analyzers []*Analyzer, pkgPaths ...string) (*Loader, []*Package, []Diagnostic) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.OverlayRoot = filepath.Join("testdata", name, "src")
	var scanned []*Package
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		scanned = append(scanned, pkg)
	}
	return loader, scanned, Run(loader.Program(scanned), analyzers)
}

// runFixture is loadFixture without want-matching, for tests that assert
// on the diagnostics directly.
func runFixture(t *testing.T, name string, analyzers []*Analyzer, pkgPaths ...string) []Diagnostic {
	t.Helper()
	_, _, diags := loadFixture(t, name, analyzers, pkgPaths...)
	return diags
}

// wantPatterns extracts the quoted regexps following a `want ` marker in a
// comment, compiling each.
func wantPatterns(t *testing.T, comment string) []*regexp.Regexp {
	t.Helper()
	_, rest, ok := strings.Cut(comment, "want ")
	if !ok {
		return nil
	}
	var pats []*regexp.Regexp
	for {
		i := strings.IndexByte(rest, '"')
		if i < 0 {
			break
		}
		q, err := strconv.QuotedPrefix(rest[i:])
		if err != nil {
			break
		}
		raw, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("bad want string %s: %v", q, err)
		}
		pat, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", raw, err)
		}
		pats = append(pats, pat)
		rest = rest[i+len(q):]
	}
	return pats
}

// mustPos is a tiny helper for tests asserting on diagnostic positions.
func mustPos(t *testing.T, d Diagnostic) string {
	t.Helper()
	if d.Pos.Filename == "" || d.Pos.Line == 0 {
		t.Fatalf("diagnostic without position: %v", d)
	}
	return fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
}
