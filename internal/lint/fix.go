package lint

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix in diags to the source files they
// touch and returns the new file contents, keyed by filename. Nothing is
// written to disk — the caller (the driver's -fix mode) owns that, so tests
// can exercise fixing without mutating the tree.
//
// Edits are applied per file in descending offset order so earlier spans
// stay valid. Overlapping edits are a conflict: the first (lowest-position)
// fix wins and the overlapped one is skipped and reported in skipped, never
// half-applied.
func ApplyFixes(prog *Program, diags []Diagnostic) (fixed map[string][]byte, applied int, skipped []Diagnostic, err error) {
	type edit struct {
		start, end int
		text       string
		diag       int // index into fixers, to attribute conflicts
	}
	perFile := map[string][]edit{}
	var fixers []Diagnostic
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		idx := len(fixers)
		fixers = append(fixers, d)
		for _, e := range d.Fix.Edits {
			start := prog.Fset.Position(e.Pos)
			end := start
			if e.End.IsValid() {
				end = prog.Fset.Position(e.End)
			}
			if start.Filename == "" || end.Filename != start.Filename || end.Offset < start.Offset {
				return nil, 0, nil, fmt.Errorf("lint: fix for %s has an invalid edit span", d)
			}
			perFile[start.Filename] = append(perFile[start.Filename], edit{start.Offset, end.Offset, e.NewText, idx})
		}
	}
	if len(perFile) == 0 {
		return nil, 0, nil, nil
	}

	fixed = map[string][]byte{}
	conflicted := map[int]bool{}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, 0, nil, err
		}
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		// Mark every edit that overlaps an earlier-starting one; all edits
		// of a conflicted diagnostic are dropped together.
		prevEnd := -1
		for _, e := range edits {
			if e.start < prevEnd || e.start > len(src) || e.end > len(src) {
				conflicted[e.diag] = true
				continue
			}
			if e.end > prevEnd {
				prevEnd = e.end
			}
		}
		out := src
		for i := len(edits) - 1; i >= 0; i-- {
			e := edits[i]
			if conflicted[e.diag] {
				continue
			}
			out = append(out[:e.start:e.start], append([]byte(e.text), out[e.end:]...)...)
		}
		fixed[name] = out
	}
	for i, d := range fixers {
		if conflicted[i] {
			skipped = append(skipped, d)
		} else {
			applied++
		}
	}
	return fixed, applied, skipped, nil
}
