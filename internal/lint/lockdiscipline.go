package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline checks the `// guarded by <mutex>` field-annotation
// convention: a struct field annotated
//
//	ring []Event // guarded by mu
//
// may only be read or written (a) inside the declaring package, (b) from a
// function that locks the named mutex somewhere in its body. The check is
// deliberately flow-insensitive — it asks "does this function ever take the
// lock", not "is the lock held here" — which is cheap, has no false
// negatives for the single-mutex structs this repo uses, and catches the
// real bug class: a new method reading a registry map with no locking at
// all.
//
// Two escapes: composite-literal construction (keyed fields in `&T{...}`)
// is exempt because the value is not yet shared, and helpers named
// `...Locked` are exempt by convention (they document that the caller holds
// the lock).
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "annotated mutex-guarded fields may only be touched by functions that lock the named mutex",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	if len(p.Prog.Guarded) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			locked := lockedMutexes(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := p.Pkg.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				guard, ok := p.Prog.Guarded[selection.Obj()]
				if !ok {
					return true
				}
				if guard.PkgPath != p.Pkg.Path {
					p.Reportf(sel.Sel.Pos(), "field %s.%s is guarded by %s and must not be touched outside package %s",
						guard.Struct, sel.Sel.Name, guard.Mutex, guard.PkgPath)
					return true
				}
				if !locked[guard.Mutex] {
					p.Reportf(sel.Sel.Pos(), "field %s.%s is guarded by %s, but %s never locks %s",
						guard.Struct, sel.Sel.Name, guard.Mutex, fd.Name.Name, guard.Mutex)
				}
				return true
			})
		}
	}
}

// lockedMutexes collects the terminal names of every mutex the function
// body locks (`x.mu.Lock()`, `mu.RLock()`, ...).
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			out[x.Sel.Name] = true
		case *ast.Ident:
			out[x.Name] = true
		}
		return true
	})
	return out
}
