package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF output: the minimal, spec-valid subset of SARIF 2.1.0 that CI
// annotators (GitHub code scanning, reviewdog, sarif-tools) consume — one
// run, one rule per analyzer, one result per finding with a physical
// location whose artifact URI is module-relative. Everything optional is
// omitted rather than half-filled.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifMetaRules lists result sources that are not analyzers proper but can
// appear as diagnostics (the suppression machinery).
var sarifMetaRules = map[string]string{
	"ignore":    "malformed or stale //coordvet:ignore suppressions",
	"transient": "malformed or stale //coordvet:transient annotations",
	"detached":  "malformed or stale //coordvet:detached annotations",
}

// WriteSARIF renders diags as a SARIF 2.1.0 log. Rules cover every analyzer
// that ran (findings or not, so a clean run still documents its coverage)
// plus any meta rule a diagnostic references.
func WriteSARIF(w io.Writer, modRoot string, analyzers []*Analyzer, diags []Diagnostic) error {
	driver := sarifDriver{
		Name:           "coordvet",
		InformationURI: "https://github.com/coordcharge/coordcharge#static-analysis-coordvet",
		Rules:          []sarifRule{},
	}
	ruleIndex := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	results := []sarifResult{}
	for _, d := range diags {
		if _, ok := ruleIndex[d.Analyzer]; !ok {
			doc := sarifMetaRules[d.Analyzer]
			if doc == "" {
				doc = d.Analyzer
			}
			addRule(d.Analyzer, doc)
		}
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(modRoot, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
