package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's headline reproducibility contract
// (DESIGN.md §8–9): two runs of the same seeded scenario must make
// byte-identical decision sequences, so simulation and control-plane code
// must never read the wall clock, sleep, or draw from the global math/rand
// state. Virtual time flows in as an argument; randomness comes from a
// seeded *rand.Rand (internal/rng).
//
// Scope: packages under internal/ and cmd/. Allowlist: cmd/reproduce (its
// artifact index is wall-clock stamped by design) and named tap functions —
// obs.Serve (the live HTTP surface), svc's wallNow/wallSleep (the service
// plane's injected clock), and coordsim's wallSleep (the -pace hook) — so
// each deliberate wall-clock boundary is one grep-able function and the
// rest of its package stays checked.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, sleeps, and global math/rand in sim/control packages",
	Run:  runDeterminism,
}

// forbiddenTime lists the time package's nondeterminism sources: clock
// reads and anything that couples execution to real elapsed time.
var forbiddenTime = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "couples the run to real elapsed time",
	"After":     "couples the run to real elapsed time",
	"Tick":      "couples the run to real elapsed time",
	"NewTimer":  "couples the run to real elapsed time",
	"NewTicker": "couples the run to real elapsed time",
	"AfterFunc": "couples the run to real elapsed time",
}

// allowedRand lists math/rand package-level functions that do not touch the
// global generator.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// determinismAllowedPkg exempts whole packages.
func determinismAllowedPkg(path string) bool {
	return strings.HasSuffix(path, "cmd/reproduce")
}

// determinismAllowedFunc exempts specific functions: pkg-path suffix →
// function names.
var determinismAllowedFunc = map[string]map[string]bool{
	"internal/obs": {"Serve": true},
	// The service plane is a deliberate wall-clock boundary: request
	// deadlines, queue aging, breaker cooldowns, and the resident-run stall
	// watchdog are wall-clock concepts. All of internal/svc reads time
	// through these two injected taps (see svc.Clock), so the hosted
	// simulations stay on virtual tick time.
	"internal/svc": {"wallNow": true, "wallSleep": true},
	// coordsim's -pace hook deliberately slaves virtual time to the wall
	// clock for live scraping; the sleep is funnelled through one tap.
	"cmd/coordsim": {"wallSleep": true},
}

func runDeterminism(p *Pass) {
	path := p.Pkg.Path
	if !strings.Contains(path, "/internal/") && !strings.Contains(path, "/cmd/") {
		return
	}
	if determinismAllowedPkg(path) {
		return
	}
	var allowedFuncs map[string]bool
	for suffix, fns := range determinismAllowedFunc {
		if strings.HasSuffix(path, suffix) {
			allowedFuncs = fns
		}
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowedFuncs[fd.Name.Name] && fd.Recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := p.Callee(call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if why, bad := forbiddenTime[fn.Name()]; bad {
						p.Reportf(call.Pos(), "time.%s %s; sim/control code must use virtual tick time", fn.Name(), why)
					}
				case "math/rand", "math/rand/v2":
					if !allowedRand[fn.Name()] {
						p.Reportf(call.Pos(), "global rand.%s is shared mutable state; draw from a seeded *rand.Rand (internal/rng) instead", fn.Name())
					}
				}
				return true
			})
		}
	}
}
