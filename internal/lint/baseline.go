package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the committed debt ledger that lets a new analyzer land
// strict: every finding present when the analyzer was introduced is
// recorded here, `coordvet -baseline` subtracts the ledger from its output,
// and CI fails only on findings that are not in it. Entries are keyed by
// (file, analyzer, message) — never by line number — so unrelated edits
// that shift code do not invalidate the ledger, while fixing a finding
// (or changing the code enough to alter its message) retires the entry.
// Retired entries do not fail the run; `-write-baseline` prunes them, so
// the ledger only ever shrinks.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one suppressed legacy finding. Count collapses duplicate
// (file, analyzer, message) triples: a file with three identical findings
// baselines as one entry with Count 3, and a fourth appearance is new.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count,omitempty"`
}

// baselineVersion is the current ledger schema.
const baselineVersion = 1

func (e BaselineEntry) key() string { return e.File + "\x00" + e.Analyzer + "\x00" + e.Message }

// entryFor normalizes a diagnostic into its ledger key form, with the file
// path made module-relative (and slash-separated) so the ledger is portable
// across checkouts.
func entryFor(modRoot string, d Diagnostic) BaselineEntry {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return BaselineEntry{File: filepath.ToSlash(file), Analyzer: d.Analyzer, Message: d.Message, Count: 1}
}

// ReadBaseline loads a ledger from path. A missing file is an empty
// baseline, not an error — the flag can be wired into CI before the first
// ledger is committed.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want %d", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Filter subtracts the baseline from diags: it returns the findings not
// covered by the ledger (the ones that must fail the run) and the ledger
// entries that matched nothing (retired debt, safe to prune).
func (b *Baseline) Filter(modRoot string, diags []Diagnostic) (fresh []Diagnostic, retired []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[e.key()] += n
	}
	used := map[string]int{}
	for _, d := range diags {
		k := entryFor(modRoot, d).key()
		if used[k] < budget[k] {
			used[k]++
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Findings {
		if used[e.key()] == 0 {
			retired = append(retired, e)
		}
	}
	return fresh, retired
}

// NewBaseline builds a pruned ledger covering exactly the given findings,
// sorted and deduplicated, ready to be written with WriteBaseline.
func NewBaseline(modRoot string, diags []Diagnostic) *Baseline {
	counts := map[string]BaselineEntry{}
	for _, d := range diags {
		e := entryFor(modRoot, d)
		if prev, ok := counts[e.key()]; ok {
			prev.Count++
			counts[e.key()] = prev
		} else {
			counts[e.key()] = e
		}
	}
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for _, e := range counts {
		if e.Count == 1 {
			e.Count = 0 // omitempty: 1 is the implied default
		}
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the ledger as stable, diff-friendly JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
