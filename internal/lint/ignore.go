package lint

import (
	"go/token"
	"strings"
)

// IgnoreMarker opens a suppression comment:
//
//	//coordvet:ignore <analyzer>[,<analyzer>] <justification>
//
// It silences matching findings on the same line or the line directly
// below (so it can trail the offending statement or sit on its own line
// above it). The justification is mandatory, and a stale ignore — one that
// suppresses nothing — is itself reported, so suppressions cannot outlive
// the code they excuse.
const IgnoreMarker = "coordvet:ignore"

type ignoreEntry struct {
	pos       token.Position
	analyzers []string
	reason    string
	used      bool
}

// applyIgnores filters suppressed diagnostics and appends "ignore"
// diagnostics for malformed or stale entries.
func applyIgnores(prog *Program, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}

	var entries []*ignoreEntry
	var bad []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, IgnoreMarker)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
					e := &ignoreEntry{pos: pos, reason: strings.TrimSpace(reason)}
					for _, n := range strings.Split(names, ",") {
						if n = strings.TrimSpace(n); n != "" {
							e.analyzers = append(e.analyzers, n)
						}
					}
					for _, n := range e.analyzers {
						if !known[n] {
							bad = append(bad, Diagnostic{Analyzer: "ignore", Pos: pos,
								Message: "//" + IgnoreMarker + " names unknown analyzer \"" + n + "\""})
						}
					}
					if len(e.analyzers) == 0 {
						bad = append(bad, Diagnostic{Analyzer: "ignore", Pos: pos,
							Message: "//" + IgnoreMarker + " must name the analyzer(s) it suppresses"})
						continue
					}
					if e.reason == "" {
						bad = append(bad, Diagnostic{Analyzer: "ignore", Pos: pos,
							Message: "//" + IgnoreMarker + " needs a justification after the analyzer name"})
					}
					entries = append(entries, e)
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, e := range entries {
			if e.pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Pos.Line != e.pos.Line && d.Pos.Line != e.pos.Line+1 {
				continue
			}
			for _, n := range e.analyzers {
				if n == d.Analyzer {
					e.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	out := append(kept, bad...)
	for _, e := range entries {
		if e.used {
			continue
		}
		// Only call an ignore stale when every analyzer it names actually
		// ran; a partial -run invocation must not flag ignores it cannot
		// have matched.
		allRan := true
		for _, n := range e.analyzers {
			if !ran[n] || !known[n] {
				allRan = false
			}
		}
		if allRan {
			out = append(out, Diagnostic{Analyzer: "ignore", Pos: e.pos,
				Message: "stale //" + IgnoreMarker + " " + strings.Join(e.analyzers, ",") +
					": nothing to suppress on this or the next line"})
		}
	}
	return out
}
