package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map whose loop body does something
// order-sensitive: appends to a slice that is never sorted afterwards,
// emits a flight-recorder event, or writes formatted output. Go randomizes
// map iteration order, so any of these silently breaks the per-seed flight
// digest (DESIGN.md §8) or byte-identical report output. The sanctioned
// idiom — collect keys, sort, then act — is recognized: an append whose
// target is passed to a sort call later in the same enclosing block is
// clean.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-sensitive work (append-without-sort, flight events, formatted output) inside map iteration",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Statements live in block statements and in switch/select
			// clauses; scan every such list so a following sort is visible.
			var list []ast.Stmt
			switch v := n.(type) {
			case *ast.BlockStmt:
				list = v.List
			case *ast.CaseClause:
				list = v.Body
			case *ast.CommClause:
				list = v.Body
			default:
				return true
			}
			for i, stmt := range list {
				rng, ok := stmt.(*ast.RangeStmt)
				if ok && isMapType(p, rng.X) {
					checkMapRangeBody(p, rng, list[i+1:])
				}
			}
			return true
		})
	}
}

func isMapType(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody scans one map-range body for order-sensitive
// operations; rest is the tail of the enclosing block after the loop, where
// a sorting call can launder collected keys.
func checkMapRangeBody(p *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && isMapType(p, inner.X) {
			// Nested map ranges are reported on their own enclosing block
			// walk; don't double-report their bodies here.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target := appendTarget(p, call); target != "" {
			if !sortedAfter(p, target, rest) {
				p.Reportf(call.Pos(),
					"append to %q inside map iteration without a later sort of %q: slice order follows randomized map order", target, target)
			}
			return true
		}
		if fn := p.Callee(call); fn != nil {
			if isFlightEmit(fn) {
				p.Reportf(call.Pos(),
					"flight-recorder %s inside map iteration: event order follows randomized map order and breaks the per-seed digest", fn.Name())
			} else if isFormattedWrite(fn) {
				p.Reportf(call.Pos(),
					"%s.%s inside map iteration: output order follows randomized map order", fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// appendTarget returns the root identifier a call like
// `keys = append(keys, k)` grows, detected from the first argument (""
// when the call is not append or the slice has no simple root).
func appendTarget(p *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return ""
	}
	if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return ""
	}
	return rootIdent(call.Args[0])
}

// rootIdent unwraps x.y.z / x[i] / (x) to the base identifier name, or "".
func rootIdent(e ast.Expr) string {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return ""
		}
	}
}

// sortedAfter reports whether any statement in rest passes the named
// variable to a sort/slices ordering call.
func sortedAfter(p *Pass, target string, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.Callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			if len(call.Args) > 0 && rootIdent(call.Args[0]) == target {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isFlightEmit recognizes the flight-recorder entry points: Record on
// obs.Recorder, Event on obs.Sink.
func isFlightEmit(fn *types.Func) bool {
	if fn.Pkg() == nil || !isObsPkg(fn.Pkg().Path()) {
		return false
	}
	return fn.Name() == "Record" || fn.Name() == "Event"
}

// isFormattedWrite recognizes fmt's printing functions (writers and
// printers; Sprintf and friends build strings and are judged by what is
// done with them, not here).
func isFormattedWrite(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
		return true
	}
	return false
}
