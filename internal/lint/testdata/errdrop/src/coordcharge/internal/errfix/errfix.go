// Package errfix is the errdrop golden fixture: blank-assigned errors with
// and without the required justification.
package errfix

import (
	"errors"
	"strconv"
)

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func silentDrop() {
	_ = fallible() // want "error discarded with a blank assignment and no justification"
}

func justifiedSameLine() {
	_ = fallible() // best-effort flush: the retry path re-reports any failure
}

func justifiedLineAbove() {
	// Shutdown path; the connection is going away regardless.
	_ = fallible()
}

func doubleBlank() {
	_, _ = pair() // want "error discarded with a blank assignment and no justification"
}

func keepsAValue() {
	// Keeping one result makes the discard visible and deliberate: clean.
	v, _ := strconv.Atoi("42")
	_ = v // not an error value: clean
}

func nonErrorDiscard() {
	_ = len("x")
}
