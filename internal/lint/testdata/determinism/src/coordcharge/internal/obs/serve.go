// Package obs mirrors the real observability package: Serve is the one
// allowlisted wall-clock boundary (live HTTP pacing), while every other
// function in the package stays checked.
package obs

import "time"

func Serve() time.Time {
	return time.Now() // allowlisted: the live HTTP surface is wall-clock by design
}

func notServe() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
