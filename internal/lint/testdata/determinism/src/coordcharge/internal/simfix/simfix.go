// Package simfix is a determinism golden fixture: a stand-in sim/control
// package exercising every forbidden wall-clock and global-rand call plus
// the sanctioned alternatives.
package simfix

import (
	"math/rand"
	"time"
)

func clockReads() time.Duration {
	start := time.Now()                       // want "time.Now reads the wall clock"
	_ = time.Since(start)                     // want "time.Since reads the wall clock"
	time.Sleep(time.Millisecond)              // want "time.Sleep couples the run to real elapsed time"
	<-time.After(time.Millisecond)            // want "time.After couples the run to real elapsed time"
	return time.Until(start.Add(time.Second)) // want "time.Until reads the wall clock"
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle is shared mutable state"
	return rand.Intn(10)               // want "global rand.Intn is shared mutable state"
}

// seededRand is the sanctioned idiom: a locally seeded generator.
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are allowed
	return r.Float64()                  // methods on *rand.Rand are allowed
}

// virtualTime shows that time.Duration arithmetic and constants are fine;
// only clock reads are banned.
func virtualTime(now time.Duration) time.Duration {
	return now + 3*time.Second
}
