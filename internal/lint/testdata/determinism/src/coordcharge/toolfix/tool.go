// Package toolfix sits outside internal/ and cmd/, so the determinism
// analyzer does not apply. No finding expected.
package toolfix

import "time"

func Stamp() time.Time { return time.Now() }
