// Package main mirrors cmd/reproduce: allowlisted wholesale, because the
// artifact index is wall-clock stamped by design. No finding expected.
package main

import "time"

func main() {
	_ = time.Now()
	time.Sleep(0)
}
