// Package goannot holds the goroutinediscipline annotation case whose
// finding lands on the annotation comment itself — a same-line `want` would
// become the justification and change the case under test. The driver test
// asserts on the diagnostics directly.
package goannot

func spin() {
	for i := 0; i < 1e6; i++ {
		_ = i
	}
}

// Bare launches a detached goroutine with a reasonless marker: the
// annotation suppresses the no-join finding but earns a missing-why one.
func Bare() {
	go spin() //coordvet:detached
}
