// Package gofix is the goroutinediscipline golden fixture: joined and
// unjoined goroutines, detached annotations and their stale detection,
// ticker Stop reachability, and context cancel hygiene.
package gofix

import (
	"context"
	"sync"
	"time"
)

// joined goroutines: WaitGroup, close, and channel send all count.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()

	done := make(chan struct{})
	go func() { close(done) }()
	<-done

	res := make(chan int, 1)
	go func() { res <- 1 }()
	<-res
}

func unjoined() {
	go func() {}() // want "goroutine has no provable join \\(WaitGroup Done, channel send, or close\\) and no //coordvet:detached annotation"
}

// worker signals completion by sending; a goroutine spawning it by name is
// provably joined through the resolved declaration.
func worker(ch chan int) { ch <- 1 }

func namedJoined() {
	ch := make(chan int)
	go worker(ch)
	<-ch
}

func pump() {
	for i := 0; i < 1e9; i++ {
		_ = i
	}
}

func namedUnjoined() {
	go pump() // want "goroutine has no provable join"
}

func detachedOK() {
	go pump() //coordvet:detached metrics pump runs for the process lifetime
}

func staleDetachedOnJoined() {
	done := make(chan struct{})
	go func() { close(done) }() //coordvet:detached bogus: this one is joined // want "stale //coordvet:detached: this goroutine has a provable join; drop the annotation"
	<-done
}

//coordvet:detached bogus: nothing spawns here // want "stale //coordvet:detached: no go statement on this or the adjacent line"
func noGoroutineHere() {}

// tickers: a reachable Stop, or an escape that hands the obligation on.
func tickerStopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

func tickerDropped() {
	time.NewTicker(time.Second) // want "time.NewTicker result is dropped; nothing can ever Stop it"
}

func tickerDiscarded() {
	_ = time.NewTicker(time.Second) // want "time.NewTicker result is discarded; nothing can ever Stop it"
}

func tickerLeaked() {
	t := time.NewTicker(time.Second) // want "time.NewTicker result t has no reachable Stop in tickerLeaked and does not escape; defer t.Stop\\(\\)"
	<-t.C
}

func tickerEscapes() *time.Ticker {
	t := time.NewTicker(time.Second)
	return t
}

func timerStopped() {
	t := time.NewTimer(time.Minute)
	defer t.Stop()
	<-t.C
}

// contexts: the cancel func must be used.
func cancelDiscarded(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second) // want "context.WithTimeout cancel func is discarded; the context can never be released"
	return ctx
}

func cancelDeferred(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	<-ctx.Done()
}
