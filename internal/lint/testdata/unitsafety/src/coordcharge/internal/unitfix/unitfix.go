// Package unitfix is the unitsafety golden fixture: dimension drift,
// cross-dimension arithmetic and assignment, reinterpreting conversions,
// and bare literals flowing into unit-named parameters.
package unitfix

import (
	"time"

	"coordcharge/internal/units"
)

// Spec mixes properly-typed quantities, convention-named bare numerics,
// json-tagged fields, and one naming drift.
type Spec struct {
	Limit    units.Power
	CapKWh   float64
	Step     float64       `json:"step_s"`
	BudgetMW float64       `json:"budget_mw"`
	Skew     units.Current // untagged, unsuffixed: carries its own type
	Drift_W  units.Current // want "Drift_W is named as a power \\(W\\) but typed .*Current \\(a current \\(A\\)\\); rename it or fix the type"
}

// compare exercises cross-dimension comparison between convention-named
// bare numerics. Multiplication and division legitimately change dimension
// and stay silent.
func compare(capKW, budgetKWh, window_s float64) float64 {
	if capKW > budgetKWh { // want "> mixes a power \\(W\\) and an energy \\(Wh\\); convert through internal/units first"
		return 0
	}
	return budgetKWh / capKW * window_s // mult/div are dimension-changing: ok
}

// assign exercises cross-dimension assignment, including :=.
func assign(s *Spec) {
	var total_Wh float64
	hold_s := 5.0
	total_Wh = hold_s // want "assigning a time \\(s\\) to an energy \\(Wh\\); convert through internal/units first"
	total_Wh = s.CapKWh
	cap_W := s.CapKWh // want "assigning an energy \\(Wh\\) to a power \\(W\\); convert through internal/units first"
	_, _ = total_Wh, cap_W
}

// convert exercises dimensioned-to-dimensioned conversions. Going through
// float64 is the sanctioned spelling and stays silent.
func convert(e units.Energy, d time.Duration) (units.Power, units.Energy) {
	bad := units.Power(e) // want "conversion reinterprets an energy \\(Wh\\) as a power \\(W\\)"
	ok := units.Energy(float64(e) * 0.5)
	_ = time.Duration(d)
	return bad, ok
}

// SetLimit takes a convention-named bare numeric parameter.
func SetLimit(limit_W float64) float64 { return limit_W }

const defaultLimit_W = 5500.0

func callers(s *Spec) {
	SetLimit(5000)           // want "bare literal flows into parameter limit_W \\(a power \\(W\\)\\) of SetLimit; pass a named constant or convert through internal/units"
	SetLimit(0)              // zero is dimensionless enough
	SetLimit(defaultLimit_W) // named constant carries the unit in its name
	SetLimit(s.CapKWh)       // want "argument is an energy \\(Wh\\) but parameter limit_W of SetLimit is a power \\(W\\)"
	SetLimit(float64(s.Limit))
}
