// Package genfix is a loader regression fixture: generic declarations,
// instantiations, and the go1.21 min/max builtins must type-check under the
// loader exactly as they do under `go build` — the loader feeds the go.mod
// language version into types.Config.GoVersion, so its accept set tracks
// the compiler's instead of silently allowing everything.
package genfix

// Pair is a generic container.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Collect folds a slice of pairs into a map, instantiating Pair.
func Collect[K comparable, V any](ps []Pair[K, V]) map[K]V {
	m := make(map[K]V, len(ps))
	for _, p := range ps {
		m[p.Key] = p.Val
	}
	return m
}

// Clamp uses the go1.21 min/max builtins.
func Clamp(v, lo, hi int) int { return max(lo, min(v, hi)) }

// Named instantiation at package scope.
type Row = Pair[string, float64]

// Lookup exercises a generic function call with inferred type arguments.
func Lookup(rows []Row, key string) float64 {
	return Collect(rows)[key]
}
