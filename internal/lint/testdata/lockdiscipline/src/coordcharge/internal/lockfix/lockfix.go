// Package lockfix is the lockdiscipline golden fixture: a registry-shaped
// struct whose annotated fields must only be touched under the named mutex.
package lockfix

import "sync"

type registry struct {
	mu sync.Mutex
	// names is the lookup table.
	names map[string]int // guarded by mu
	Hits  int            // guarded by mu
	free  int            // unannotated: no discipline enforced
}

// newRegistry constructs through a composite literal: the value is not yet
// shared, so keyed initialization is exempt.
func newRegistry() *registry {
	return &registry{names: map[string]int{}}
}

// lookup takes the lock before touching the annotated field: clean.
func (r *registry) lookup(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.names[name]
}

// record locks via defer pairing and writes both annotated fields: clean.
func (r *registry) record(name string) {
	r.mu.Lock()
	r.names[name]++
	r.Hits++
	r.mu.Unlock()
}

// leak reads an annotated field with no locking anywhere in the function.
func (r *registry) leak(name string) int {
	return r.names[name] // want "field registry.names is guarded by mu, but leak never locks mu"
}

// bump writes an annotated field without the lock.
func (r *registry) bump() {
	r.Hits++ // want "field registry.Hits is guarded by mu, but bump never locks mu"
}

// wrongLock locks a different mutex than the annotation names.
var other sync.Mutex

func (r *registry) wrongLock() int {
	other.Lock()
	defer other.Unlock()
	return r.Hits // want "field registry.Hits is guarded by mu, but wrongLock never locks mu"
}

// drainLocked follows the ...Locked naming convention: the caller holds the
// lock, so the helper is exempt.
func (r *registry) drainLocked() {
	r.names = map[string]int{}
	r.Hits = 0
}

// touchFree shows unannotated fields carry no discipline.
func (r *registry) touchFree() int { return r.free }
