// Package lockext exports a guarded field so the cross-package rule can be
// exercised from lockuse.
package lockext

import "sync"

type Store struct {
	Mu    sync.Mutex
	Total int // guarded by Mu
}

func (s *Store) Add(n int) {
	s.Mu.Lock()
	s.Total += n
	s.Mu.Unlock()
}
