// Package lockuse reaches into a sibling package's exported guarded field:
// annotated fields must not be touched outside the declaring package at
// all, locked or not.
package lockuse

import "coordcharge/internal/lockext"

func Peek(s *lockext.Store) int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.Total // want "field Store.Total is guarded by Mu and must not be touched outside package coordcharge/internal/lockext"
}
