// Package ignfix exercises the //coordvet:ignore machinery: a justified
// ignore silences its finding, and a stale ignore is itself reported.
package ignfix

import "time"

// suppressedTrailing: the finding on this line is silenced by the trailing
// justified ignore.
func suppressedTrailing() time.Time {
	return time.Now() //coordvet:ignore determinism fixture demonstrates a justified suppression
}

// suppressedAbove: an ignore on its own line covers the line below.
func suppressedAbove() time.Time {
	//coordvet:ignore determinism fixture demonstrates the line-above form
	return time.Now()
}

// stale: nothing to suppress here, so the ignore itself is the finding.
func stale() time.Duration {
	//coordvet:ignore determinism nothing is wrong below, so expect: want "stale //coordvet:ignore determinism: nothing to suppress"
	return 3 * time.Second
}
