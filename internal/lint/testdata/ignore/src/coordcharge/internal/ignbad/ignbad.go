// Package ignbad holds malformed suppressions; the test asserts on the
// resulting diagnostics directly (the marker occupies the whole comment, so
// no want expectation can share its line).
package ignbad

import "time"

// reasonless: the violation is suppressed, but the bare marker is reported
// for lacking a justification (and, suppressing nothing else, stays
// non-stale because it did fire).
func reasonless() time.Time {
	return time.Now() //coordvet:ignore determinism
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer() time.Duration {
	//coordvet:ignore nosuchanalyzer typo in the analyzer name
	return 3 * time.Second
}
