// Package mapfix is the maporder golden fixture: order-sensitive work
// inside randomized map iteration, against the sanctioned
// collect-sort-act idiom.
package mapfix

import (
	"fmt"
	"sort"

	"coordcharge/internal/obs"
)

// unsortedAppend grows a slice in map order and never sorts it.
func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration without a later sort"
	}
	return keys
}

// sortedAppend is the sanctioned idiom: collect, then sort.
func sortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceAlsoCounts accepts any sort/slices ordering call on the target.
func sortSliceAlsoCounts(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// printsInMapOrder writes formatted output per iteration.
func printsInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside map iteration"
	}
}

// emitsFlightEvents journals one event per iteration: the exact bug class
// that breaks the per-seed digest.
func emitsFlightEvents(s *obs.Sink, m map[string]int) {
	for k := range m {
		s.Event(0, "fix", "tick", "k", k) // want "flight-recorder Event inside map iteration"
	}
}

// recorderDirect hits the Recorder entry point too.
func recorderDirect(r *obs.Recorder, m map[string]int) {
	for k := range m {
		r.Record(0, "fix", k) // want "flight-recorder Record inside map iteration"
	}
}

// mapToMapCopy is order-insensitive and clean.
func mapToMapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sliceRange is not a map range; appends are fine.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// caseClause checks ranges nested in switch bodies (statement lists that
// are not block statements).
func caseClause(mode int, m map[string]int) []string {
	var keys []string
	switch mode {
	case 1:
		for k := range m {
			keys = append(keys, k) // want "append to \"keys\" inside map iteration without a later sort"
		}
		return keys
	default:
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
}
