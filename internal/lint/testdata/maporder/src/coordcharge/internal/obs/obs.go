// Package obs is a minimal stand-in for the real observability package:
// just the flight-recorder entry points the maporder analyzer recognizes.
package obs

import "time"

type Recorder struct{}

func (r *Recorder) Record(t time.Duration, comp, kind string, kv ...string) {
	if r == nil {
		return
	}
}

type Sink struct{ Flight *Recorder }

func (s *Sink) Event(t time.Duration, comp, kind string, kv ...string) {
	if s == nil {
		return
	}
	s.Flight.Record(t, comp, kind, kv...)
}
