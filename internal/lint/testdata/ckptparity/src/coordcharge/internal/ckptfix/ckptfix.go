// Package ckptfix is the ckptparity golden fixture: checkpoint-capable
// types with full, partial, and annotated field coverage.
package ckptfix

// Good round-trips every mutable field: no findings.
type Good struct {
	count int
	total float64
}

type GoodState struct {
	Count int
	Total float64
}

func (g *Good) Tick() {
	g.count++
	g.total += 0.5
}

func (g *Good) ExportState() GoodState {
	return GoodState{Count: g.count, Total: g.total}
}

func (g *Good) RestoreState(st GoodState) {
	g.count = st.Count
	g.total = st.Total
}

// Leaky mutates a field that neither direction of the checkpoint touches.
type Leaky struct {
	kept int
	lost int // want "Leaky\\.lost is mutated by \\(\\*Leaky\\)\\.Tick but not read by ExportState and not written by RestoreState"
}

type LeakyState struct{ Kept int }

func (l *Leaky) Tick() {
	l.kept++
	l.lost++
}

func (l *Leaky) ExportState() LeakyState { return LeakyState{Kept: l.kept} }

func (l *Leaky) RestoreState(st LeakyState) { l.kept = st.Kept }

// HalfExported restores a field the export side forgot.
type HalfExported struct {
	seen int // want "HalfExported\\.seen is mutated by \\(\\*HalfExported\\)\\.Mark but not read by ExportState; round-trip"
}

type HalfExportedState struct{ Seen int }

func (h *HalfExported) Mark() { h.seen++ }

func (h *HalfExported) ExportState() HalfExportedState { return HalfExportedState{} }

func (h *HalfExported) RestoreState(st HalfExportedState) { h.seen = st.Seen }

// HalfRestored exports a field the restore side drops on the floor.
type HalfRestored struct {
	depth int // want "HalfRestored\\.depth is mutated by \\(\\*HalfRestored\\)\\.Push but not written by RestoreState; resume would keep the stale pre-checkpoint value"
}

type HalfRestoredState struct{ Depth int }

func (h *HalfRestored) Push() { h.depth++ }

func (h *HalfRestored) ExportState() HalfRestoredState { return HalfRestoredState{Depth: h.depth} }

func (h *HalfRestored) RestoreState(st HalfRestoredState) { _ = st }

// Annotated shows the escape hatch and its stale detection.
type Annotated struct {
	live    int
	derived int //coordvet:transient derived: recomputed from live on restore
	idle    int //coordvet:transient bogus: the field is never mutated // want "stale //coordvet:transient on Annotated\\.idle"
}

type AnnotatedState struct{ Live int }

func (a *Annotated) Bump() {
	a.live++
	a.derived = a.live * 2
}

func (a *Annotated) ExportState() AnnotatedState { return AnnotatedState{Live: a.live} }

func (a *Annotated) RestoreState(st AnnotatedState) {
	a.live = st.Live
	a.derived = a.live * 2
}

// NoPair has a transient annotation but nothing to be transient from.
type NoPair struct {
	x int //coordvet:transient bogus: no checkpoint here // want "//coordvet:transient on NoPair\\.x, but NoPair has no ExportState/RestoreState pair"
}

func (n *NoPair) Set(v int) { n.x = v }

// ExportOnly is half a checkpoint type.
type ExportOnly struct{ n int }

func (e *ExportOnly) ExportState() int { return e.n } // want "ExportOnly has ExportState but no RestoreState; a checkpoint of it can never be resumed"

// RestoreOnly is the other half.
type RestoreOnly struct{ n int }

func (r *RestoreOnly) RestoreState(n int) { r.n = n } // want "RestoreOnly has RestoreState but no ExportState; a checkpoint can never capture it"

// Counter uses the rng-style State/FromState pair.
type Counter struct{ n int }

type CounterState struct{ N int }

func (c *Counter) Inc() { c.n++ }

func (c *Counter) State() CounterState { return CounterState{N: c.n} }

func FromState(st CounterState) *Counter {
	c := &Counter{}
	c.n = st.N
	return c
}

// Deep covers the transitive same-type method closure: the entry points
// delegate per-field work to helpers.
type Deep struct {
	a int
	b int
}

type DeepState struct {
	A int
	B int
}

func (d *Deep) Bump() {
	d.a++
	d.b++
}

func (d *Deep) ExportState() DeepState { return DeepState{A: d.a, B: d.readB()} }

func (d *Deep) readB() int { return d.b }

func (d *Deep) RestoreState(st DeepState) {
	d.a = st.A
	d.restoreB(st)
}

func (d *Deep) restoreB(st DeepState) { d.b = st.B }
