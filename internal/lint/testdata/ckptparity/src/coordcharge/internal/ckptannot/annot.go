// Package ckptannot holds the ckptparity annotation cases whose finding
// lands on the annotation comment itself, so a same-line `want` expectation
// would change the case under test (it would become the justification).
// The driver test asserts on the diagnostics directly.
package ckptannot

// Bare carries a marker with no justification.
type Bare struct {
	scratch int //coordvet:transient
}

type BareState struct{}

func (b *Bare) Poke() { b.scratch++ }

func (b *Bare) ExportState() BareState { return BareState{} }

func (b *Bare) RestoreState(st BareState) { _ = st }
