// Package usefix is the obsnil call-site fixture: flight-recorder calls
// whose arguments allocate must sit behind an explicit sink nil-check,
// because Go evaluates arguments before the callee's own guard runs.
package usefix

import (
	"fmt"
	"strconv"
	"time"

	"coordcharge/internal/obs"
)

type rack struct {
	name string
	sink *obs.Sink
}

func (r *rack) id() string { return r.name }

// simpleArgs passes only identifiers and literals: nothing allocates, no
// guard needed.
func (r *rack) simpleArgs(now int) {
	r.sink.Event(0, r.name, "tick")
}

// unguardedSprintf formats on the disabled path.
func (r *rack) unguardedSprintf(v float64) {
	r.sink.Event(0, r.name, "tick", "v", fmt.Sprintf("%.1f", v)) // want "Event argument computes a call \\(fmt.Sprintf\\) outside an `if r.sink != nil` guard"
}

// unguardedConcat allocates a string on the disabled path.
func (r *rack) unguardedConcat() {
	r.sink.Event(0, "rack/"+r.name, "tick") // want "Event argument computes a string concatenation outside an `if r.sink != nil` guard"
}

// unguardedMethodCall calls through on the disabled path.
func (r *rack) unguardedMethodCall() {
	r.sink.Event(0, r.id(), "tick") // want "Event argument computes a call \\(r.id\\) outside an `if r.sink != nil` guard"
}

// guarded is the sanctioned shape: the formatting cost is paid only when a
// sink is attached.
func (r *rack) guarded(v float64) {
	if r.sink != nil {
		r.sink.Event(0, r.name, "tick", "v", strconv.FormatFloat(v, 'f', 1, 64))
	}
}

// guardedCompound accepts the guard as one conjunct of a wider condition.
func (r *rack) guardedCompound(v float64, loud bool) {
	if loud && r.sink != nil {
		r.sink.Event(0, r.name, "tick", "v", strconv.FormatFloat(v, 'f', 1, 64))
	}
}

// conversionOnly is free — type conversions do not allocate.
func (r *rack) conversionOnly(ticks int64) {
	r.sink.Event(time.Duration(ticks), r.name, "tick")
}
