// Package obs is the obsnil golden fixture's stand-in observability
// package: correct nil-guarded methods beside every guard mistake the
// analyzer must catch.
package obs

import "time"

type Recorder struct{ n int }

// Record opens with the contractual guard: clean.
func (r *Recorder) Record(t time.Duration, comp, kind string, kv ...string) {
	if r == nil {
		return
	}
	r.n++
}

// Total guards with the operands reversed: still clean.
func (r *Recorder) Total() int {
	if nil == r {
		return 0
	}
	return r.n
}

// Dropped does real work before the guard. // want is on the decl below.
func (r *Recorder) Dropped() int { // want "exported method \\(r\\) Dropped must begin with `if r == nil`"
	n := r.n
	if r == nil {
		return 0
	}
	return n
}

// Reset has no guard at all.
func (r *Recorder) Reset() { // want "exported method \\(r\\) Reset must begin with `if r == nil`"
	r.n = 0
}

// snapshot is unexported: callers inside the package guard for it.
func (r *Recorder) snapshot() int { return r.n }

type Sink struct{ Flight *Recorder }

func (s *Sink) Event(t time.Duration, comp, kind string, kv ...string) {
	if s == nil {
		return
	}
	s.Flight.Record(t, comp, kind, kv...)
}

// ID has a value receiver, which cannot be nil: clean without a guard.
func (s Sink) ID() string { return "sink" }
