package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCkptParityGolden(t *testing.T) {
	runGolden(t, "ckptparity", []*Analyzer{CkptParity}, "coordcharge/internal/ckptfix")
}

// TestCkptParityMissingWhy: a reasonless //coordvet:transient suppresses the
// parity finding but earns its own diagnostic. Asserted directly because the
// finding lands on the annotation comment, where a `want` would become the
// justification.
func TestCkptParityMissingWhy(t *testing.T) {
	diags := runFixture(t, "ckptparity", []*Analyzer{CkptParity}, "coordcharge/internal/ckptannot")
	if len(diags) != 1 {
		t.Fatalf("want exactly the missing-why diagnostic, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "//coordvet:transient needs a justification after the marker") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}

// TestCkptParityCatchesGridCursorDrop is the mutation test on a real
// package: delete the eventCursor restore from internal/grid's RestoreState
// (in a copy, via the fixture overlay) and ckptparity must flag the field.
// This is the drift the analyzer exists to catch — the checkpoint would
// resume with the grid event cursor rewound to zero and replay fired events.
func TestCkptParityCatchesGridCursorDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/grid and its dependencies; skipped in -short")
	}
	overlay := t.TempDir()
	dst := filepath.Join(overlay, "coordcharge", "internal", "grid")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	srcs, err := filepath.Glob(filepath.Join("..", "grid", "*.go"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("glob internal/grid: %v (%d files)", err, len(srcs))
	}
	const dropped = "p.eventCursor = st.EventCursor"
	found := false
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, []byte(dropped)) {
			data = bytes.Replace(data, []byte(dropped), []byte("_ = st.EventCursor"), 1)
			found = true
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !found {
		t.Fatalf("internal/grid no longer contains %q; update the mutation", dropped)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.OverlayRoot = overlay
	pkg, err := loader.Load("coordcharge/internal/grid")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(loader.Program([]*Package{pkg}), []*Analyzer{CkptParity})
	for _, d := range diags {
		if strings.Contains(d.Message, "Policy.eventCursor") &&
			strings.Contains(d.Message, "not written by RestoreState") {
			return
		}
	}
	t.Fatalf("dropped eventCursor restore not caught; got %d diagnostic(s): %v", len(diags), diags)
}

// TestCkptParityCatchesKernelTickDrop is the same mutation test against the
// event kernel's checkpoint block (DESIGN.md §15): delete the ticksExecuted
// restore from scenario's eventKernel.RestoreState and ckptparity must flag
// the field. Without it, a resumed event-kernel run would report kernel
// tick accounting rewound to zero — and any schedule derived from it would
// silently fork from the checkpointed timeline.
func TestCkptParityCatchesKernelTickDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/scenario and its dependencies; skipped in -short")
	}
	overlay := t.TempDir()
	dst := filepath.Join(overlay, "coordcharge", "internal", "scenario")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	srcs, err := filepath.Glob(filepath.Join("..", "scenario", "*.go"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("glob internal/scenario: %v (%d files)", err, len(srcs))
	}
	const dropped = "k.ticksExecuted = ck.Kernel.TicksExecuted"
	found := false
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, []byte(dropped)) {
			data = bytes.Replace(data, []byte(dropped), []byte("_ = ck.Kernel.TicksExecuted"), 1)
			found = true
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !found {
		t.Fatalf("internal/scenario no longer contains %q; update the mutation", dropped)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	loader.OverlayRoot = overlay
	pkg, err := loader.Load("coordcharge/internal/scenario")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(loader.Program([]*Package{pkg}), []*Analyzer{CkptParity})
	for _, d := range diags {
		if strings.Contains(d.Message, "eventKernel.ticksExecuted") &&
			strings.Contains(d.Message, "not written by RestoreState") {
			return
		}
	}
	t.Fatalf("dropped kernel ticksExecuted restore not caught; got %d diagnostic(s): %v", len(diags), diags)
}

func TestUnitSafetyGolden(t *testing.T) {
	runGolden(t, "unitsafety", []*Analyzer{UnitSafety}, "coordcharge/internal/unitfix")
}

func TestGoroutineDisciplineGolden(t *testing.T) {
	runGolden(t, "goroutinediscipline", []*Analyzer{GoroutineDiscipline}, "coordcharge/internal/gofix")
}

// TestGoroutineDisciplineMissingWhy mirrors the ckptparity case for
// //coordvet:detached.
func TestGoroutineDisciplineMissingWhy(t *testing.T) {
	diags := runFixture(t, "goroutinediscipline", []*Analyzer{GoroutineDiscipline}, "coordcharge/internal/goannot")
	if len(diags) != 1 {
		t.Fatalf("want exactly the missing-why diagnostic, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "//coordvet:detached needs a justification after the marker") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}

// TestLoaderGenerics: generic declarations and the go1.21 min/max builtins
// must load and type-check, and the loader must carry go.mod's language
// version so its accept set matches `go build`.
func TestLoaderGenerics(t *testing.T) {
	loader, scanned, diags := loadFixture(t, "generics", All(), "coordcharge/internal/genfix")
	if loader.GoVersion == "" {
		t.Error("loader did not pick up the go.mod language version")
	}
	if len(scanned) != 1 {
		t.Fatalf("scanned %d packages, want 1", len(scanned))
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestApplyFixes applies ckptparity's suggested annotations to the fixture
// and checks the insertion — before the existing trailing comment, without
// touching the disk copy.
func TestApplyFixes(t *testing.T) {
	loader, scanned, diags := loadFixture(t, "ckptparity", []*Analyzer{CkptParity}, "coordcharge/internal/ckptfix")
	fixed, applied, skipped, err := ApplyFixes(loader.Program(scanned), diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("unexpected conflicts: %v", skipped)
	}
	if applied == 0 {
		t.Fatal("no fixes applied")
	}
	if len(fixed) != 1 {
		t.Fatalf("fixed %d files, want 1", len(fixed))
	}
	for name, content := range fixed {
		if !strings.HasSuffix(name, "ckptfix.go") {
			t.Errorf("unexpected fixed file %s", name)
		}
		annotated := false
		for _, line := range strings.Split(string(content), "\n") {
			if strings.Contains(line, "lost int") &&
				strings.Contains(line, TransientMarker+" TODO(coordvet)") {
				annotated = true
			}
		}
		if !annotated {
			t.Error("Leaky.lost did not gain a transient annotation")
		}
		orig, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(orig, content) {
			t.Error("fixed content identical to original")
		}
		if strings.Contains(string(orig), "TODO(coordvet)") {
			t.Error("ApplyFixes wrote to disk (fixture contains the placeholder)")
		}
	}
}

// TestApplyFixesDetached applies the goroutinediscipline fix: the detached
// annotation is appended after the go statement.
func TestApplyFixesDetached(t *testing.T) {
	loader, scanned, diags := loadFixture(t, "goroutinediscipline", []*Analyzer{GoroutineDiscipline}, "coordcharge/internal/gofix")
	fixed, applied, _, err := ApplyFixes(loader.Program(scanned), diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("no fixes applied")
	}
	for _, content := range fixed {
		if !strings.Contains(string(content), "go func() {}() //"+DetachedMarker+" TODO(coordvet)") {
			t.Errorf("unjoined goroutine did not gain a detached annotation")
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	modRoot := t.TempDir()
	mk := func(file, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: filepath.Join(modRoot, file), Line: 1, Column: 1},
			Message:  msg,
		}
	}
	diags := []Diagnostic{
		mk("a/a.go", "ckptparity", "A.x is mutated"),
		mk("a/a.go", "ckptparity", "A.x is mutated"), // duplicate: Count 2
		mk("b/b.go", "unitsafety", "mixes W and Wh"),
	}
	b := NewBaseline(modRoot, diags)
	if len(b.Findings) != 2 {
		t.Fatalf("want 2 deduplicated entries, got %d", len(b.Findings))
	}
	path := filepath.Join(modRoot, "baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Full coverage: nothing fresh, nothing retired.
	fresh, retired := rb.Filter(modRoot, diags)
	if len(fresh) != 0 || len(retired) != 0 {
		t.Errorf("full coverage: fresh=%v retired=%v", fresh, retired)
	}

	// A third duplicate exceeds the budgeted count: fresh.
	fresh, _ = rb.Filter(modRoot, append(diags, mk("a/a.go", "ckptparity", "A.x is mutated")))
	if len(fresh) != 1 {
		t.Errorf("over-budget duplicate not fresh: %v", fresh)
	}

	// Fixing the unitsafety finding retires its entry without failing.
	fresh, retired = rb.Filter(modRoot, diags[:2])
	if len(fresh) != 0 {
		t.Errorf("unexpected fresh findings: %v", fresh)
	}
	if len(retired) != 1 || retired[0].Analyzer != "unitsafety" {
		t.Errorf("want the unitsafety entry retired, got %v", retired)
	}

	// A new finding is always fresh, and line moves don't matter.
	moved := mk("a/a.go", "ckptparity", "A.y is mutated")
	moved.Pos.Line = 99
	fresh, _ = rb.Filter(modRoot, []Diagnostic{moved})
	if len(fresh) != 1 {
		t.Errorf("new finding not fresh: %v", fresh)
	}

	// Missing file is an empty ledger; wrong version is an error.
	empty, err := ReadBaseline(filepath.Join(modRoot, "nope.json"))
	if err != nil || len(empty.Findings) != 0 {
		t.Errorf("missing baseline: %v %v", empty, err)
	}
	if err := os.WriteFile(path, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Error("version mismatch not rejected")
	}
}

func TestWriteSARIF(t *testing.T) {
	modRoot := t.TempDir()
	diags := []Diagnostic{
		{
			Analyzer: "ckptparity",
			Pos:      token.Position{Filename: filepath.Join(modRoot, "internal", "grid", "policy.go"), Line: 12, Column: 3},
			Message:  "Policy.x is mutated but not read by ExportState",
		},
		{
			Analyzer: "ignore",
			Pos:      token.Position{Filename: filepath.Join(modRoot, "a.go"), Line: 1, Column: 1},
			Message:  "stale //coordvet:ignore",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, modRoot, All(), diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad log shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "coordvet" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) < len(All())+1 {
		t.Errorf("want a rule per analyzer plus the ignore meta rule, got %d", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	for _, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result level %q", r.Level)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("ruleIndex %d does not resolve to %s", r.RuleIndex, r.RuleID)
		}
	}
	uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if uri != "internal/grid/policy.go" {
		t.Errorf("URI not module-relative slash form: %q", uri)
	}
	if run.Results[0].Locations[0].PhysicalLocation.Region.StartLine != 12 {
		t.Errorf("startLine lost")
	}
}
