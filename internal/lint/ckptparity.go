package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CkptParity proves checkpoint field coverage for every type that
// participates in crash-safe resume (DESIGN.md §9): a type with an
// ExportState/RestoreState pair (or the rng-style State/FromState pair)
// promises that restoring an exported state reproduces the live value
// bit-exactly. The invariant that keeps that promise is *parity*: every
// mutable field of the live type — one some method other than RestoreState
// assigns to — must be read by ExportState and written by RestoreState, or
// resume silently diverges the first time the field's value matters. The
// runtime kill-and-resume chaos suites only catch that drift on seeds that
// happen to exercise the field; this check catches it at review time, on
// the field declaration.
//
// Mechanics. For each pair type the analyzer computes three sets over the
// package's AST:
//
//   - mutable: fields assigned (including op=, ++/--, element and nested
//     writes) in any method of the type except RestoreState itself;
//   - exported: fields referenced anywhere in ExportState's body or in
//     same-type methods it (transitively) calls;
//   - restored: the same closure over RestoreState (or FromState).
//
// A mutable field outside exported∩restored is a finding. The only escape
// hatch is an explicit per-field annotation in the field's doc or trailing
// comment:
//
//	shaveSet map[string]bool //coordvet:transient derived: rebuilt from shaving on restore
//
// The justification is mandatory, and the annotation is itself checked: a
// //coordvet:transient on a field that round-trips (or is never mutated, or
// sits on a type with no pair) is stale and reported, so annotations cannot
// outlive the code they excuse. A type with only one half of the
// ExportState/RestoreState pair is also reported.
//
// Limits, so the contract is honest: mutability is receiver-method
// assignment analysis — mutations through copy(), taken addresses, or
// functions outside the declaring type are not seen; reads/writes are
// "field is referenced in the closure", not dataflow. Both err toward
// silence, never toward false alarms.
var CkptParity = &Analyzer{
	Name: "ckptparity",
	Doc:  "every mutable field of an ExportState/RestoreState type must round-trip through its *State struct or carry //coordvet:transient",
	Run:  runCkptParity,
}

// TransientMarker opens a checkpoint-exemption annotation on a struct
// field: //coordvet:transient <why>.
const TransientMarker = "coordvet:transient"

// transientFixText is the placeholder annotation -fix inserts.
const transientFixText = " //" + TransientMarker + " TODO(coordvet): justify why this field need not round-trip through the checkpoint"

// transientAnnot is one parsed //coordvet:transient annotation.
type transientAnnot struct {
	pos   token.Pos
	why   string
	used  bool
	field *ast.Field
}

func runCkptParity(p *Pass) {
	// Index the package's declarations: struct types in declaration order,
	// methods by receiver type, package-level functions by name.
	type typeDecl struct {
		name string
		st   *ast.StructType
	}
	var typeOrder []typeDecl
	methods := map[string]map[string]*ast.FuncDecl{}
	funcs := map[string]*ast.FuncDecl{}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						typeOrder = append(typeOrder, typeDecl{ts.Name.Name, st})
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil {
					if _, ok := funcs[d.Name.Name]; !ok {
						funcs[d.Name.Name] = d
					}
					continue
				}
				recv := recvTypeName(d)
				if recv == "" {
					continue
				}
				if methods[recv] == nil {
					methods[recv] = map[string]*ast.FuncDecl{}
				}
				methods[recv][d.Name.Name] = d
			}
		}
	}

	for _, td := range typeOrder {
		m := methods[td.name]
		export, restore := m["ExportState"], m["RestoreState"]
		restoreName := "RestoreState"
		if export == nil && restore == nil {
			// rng-style pair: a State() method plus a package-level
			// FromState constructor returning the type.
			if st, ff := m["State"], funcs["FromState"]; st != nil && ff != nil && returnsType(ff, td.name) {
				export, restore, restoreName = st, ff, "FromState"
			}
		}
		annots := transientAnnots(td.st)
		switch {
		case export == nil && restore == nil:
			// Not a checkpoint type: any transient annotation is stale.
			for _, a := range annots {
				p.Reportf(a.pos, "//%s on %s.%s, but %s has no ExportState/RestoreState pair",
					TransientMarker, td.name, fieldNames(a.field), td.name)
			}
			continue
		case export == nil:
			p.Reportf(restore.Name.Pos(), "%s has RestoreState but no ExportState; a checkpoint can never capture it", td.name)
			continue
		case restore == nil:
			p.Reportf(export.Name.Pos(), "%s has ExportState but no RestoreState; a checkpoint of it can never be resumed", td.name)
			continue
		}

		fieldset := map[types.Object]*ast.Field{}
		var fieldOrder []*ast.Field
		for _, field := range td.st.Fields.List {
			if len(field.Names) == 0 {
				continue // embedded fields cannot be annotated by name; out of scope
			}
			fieldOrder = append(fieldOrder, field)
			for _, name := range field.Names {
				if obj := p.Pkg.Info.Defs[name]; obj != nil {
					fieldset[obj] = field
				}
			}
		}

		// Sorted method order so a field mutated by several methods gets a
		// stable attribution (baseline keys include the message).
		mnames := make([]string, 0, len(m))
		for mname := range m {
			mnames = append(mnames, mname)
		}
		sort.Strings(mnames)
		mutatedBy := map[types.Object]string{}
		for _, mname := range mnames {
			fd := m[mname]
			if mname == restore.Name.Name && fd == restore {
				continue
			}
			collectFieldWrites(p, fd.Body, fieldset, "(*"+td.name+")."+mname, mutatedBy)
		}
		exported := fieldMentions(p, export, methods[td.name])
		restored := fieldMentions(p, restore, methods[td.name])

		annotByField := map[*ast.Field]*transientAnnot{}
		for _, a := range annots {
			annotByField[a.field] = a
			if a.why == "" {
				p.Reportf(a.pos, "//%s needs a justification after the marker", TransientMarker)
			}
		}

		for _, field := range fieldOrder {
			fixed := false
			for _, name := range field.Names {
				obj := p.Pkg.Info.Defs[name]
				by, mutable := mutatedBy[obj]
				if !mutable {
					continue
				}
				missEx, missRe := !exported[obj], !restored[obj]
				if !missEx && !missRe {
					continue
				}
				if a := annotByField[field]; a != nil {
					a.used = true
					continue
				}
				var miss string
				switch {
				case missEx && missRe:
					miss = "not read by ExportState and not written by " + restoreName
				case missEx:
					miss = "not read by ExportState"
				default:
					miss = "not written by " + restoreName + "; resume would keep the stale pre-checkpoint value"
				}
				d := Diagnostic{
					Analyzer: p.Analyzer.Name,
					Pos:      p.Prog.Fset.Position(name.Pos()),
					Message: td.name + "." + name.Name + " is mutated by " + by + " but " + miss +
						"; round-trip it through the state struct or annotate //" + TransientMarker + " <why>",
				}
				if !fixed {
					d.Fix = &SuggestedFix{
						Message: "annotate " + td.name + "." + name.Name + " as checkpoint-transient",
						Edits:   []TextEdit{{Pos: transientInsertPos(field), End: transientInsertPos(field), NewText: transientFixText}},
					}
					fixed = true
				}
				*p.diags = append(*p.diags, d)
			}
		}
		for _, a := range annots {
			if a.used {
				continue
			}
			p.Reportf(a.pos, "stale //%s on %s.%s: the field round-trips (or is never mutated); drop the annotation",
				TransientMarker, td.name, fieldNames(a.field))
		}
	}
}

// recvTypeName extracts a method's receiver base type name ("T" from *T,
// T, or generic T[P]).
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// returnsType reports whether fd's result list includes the named type
// (possibly behind a pointer).
func returnsType(fd *ast.FuncDecl, name string) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		t := r.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// transientAnnots parses the //coordvet:transient annotations on a struct's
// fields (doc or trailing comment; the marker may sit mid-comment so it can
// share the line with e.g. a `guarded by` annotation).
func transientAnnots(st *ast.StructType) []*transientAnnot {
	var out []*transientAnnot
	for _, field := range st.Fields.List {
		for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if _, rest, ok := strings.Cut(c.Text, TransientMarker); ok {
					out = append(out, &transientAnnot{pos: c.Pos(), why: strings.TrimSpace(rest), field: field})
				}
			}
		}
	}
	return out
}

// transientInsertPos is where -fix inserts a transient annotation: before
// the field's existing trailing comment, else at the end of the field.
func transientInsertPos(field *ast.Field) token.Pos {
	if field.Comment != nil && len(field.Comment.List) > 0 {
		return field.Comment.List[0].Pos()
	}
	return field.End()
}

// fieldNames joins a field's declared names for diagnostics.
func fieldNames(field *ast.Field) string {
	names := make([]string, len(field.Names))
	for i, n := range field.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ",")
}

// collectFieldWrites records fields of the live type assigned in body
// (plain/compound assignment and ++/--, through element, pointer, and
// nested-struct spines), attributing each to the method named by label.
func collectFieldWrites(p *Pass, body *ast.BlockStmt, fieldset map[types.Object]*ast.Field, label string, out map[types.Object]string) {
	if body == nil {
		return
	}
	mark := func(lhs ast.Expr) {
		for {
			switch x := lhs.(type) {
			case *ast.ParenExpr:
				lhs = x.X
			case *ast.IndexExpr:
				lhs = x.X
			case *ast.StarExpr:
				lhs = x.X
			case *ast.SelectorExpr:
				if obj := p.Pkg.Info.Uses[x.Sel]; obj != nil {
					if _, ok := fieldset[obj]; ok {
						if _, seen := out[obj]; !seen {
							out[obj] = label
						}
						return
					}
				}
				lhs = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		}
		return true
	})
}

// fieldMentions computes the set of live-type fields referenced in fn's
// body or in same-type methods it transitively calls.
func fieldMentions(p *Pass, fn *ast.FuncDecl, typeMethods map[string]*ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	visited := map[*ast.FuncDecl]bool{}
	var walk func(fd *ast.FuncDecl)
	walk = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if obj := p.Pkg.Info.Uses[x]; obj != nil {
					out[obj] = true
				}
			case *ast.CallExpr:
				if callee := p.Callee(x); callee != nil {
					if next, ok := typeMethods[callee.Name()]; ok && sameReceiverType(p, callee, next) {
						walk(next)
					}
				}
			}
			return true
		})
	}
	walk(fn)
	return out
}

// sameReceiverType guards the closure walk: the resolved callee must be the
// method decl we indexed (same package, same receiver type), not a
// same-named method of another type.
func sameReceiverType(p *Pass, callee *types.Func, decl *ast.FuncDecl) bool {
	obj := p.Pkg.Info.Defs[decl.Name]
	return obj == callee
}
