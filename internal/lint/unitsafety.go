package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitSafety is a conventions-based dimensional checker. Go's type system
// already separates the internal/units quantities (adding a units.Power to
// a units.Energy does not compile), but two holes remain, and both are
// exactly where the connect-and-manage cap math lives:
//
//   - explicit conversions: units.Power(e) compiles for any units.Energy e,
//     silently reinterpreting joules as watts — dimensioned-to-dimensioned
//     conversions must go through float64 (or a helper like
//     units.EnergyOver) so the scale factor is spelled out;
//   - bare float64/int plumbing named by convention: fields and parameters
//     carrying their unit in the name (snake suffixes `_A _W _V _s _Wh
//     _kWh _MW ...`, camel tails `LimitMW`, `FullKWh`, or a json tag like
//     `json:"step_s"`) are dimensioned in the author's head only.
//
// The analyzer assigns every expression a dimension — from its type when it
// is a units quantity or time.Duration, else from the declared name/tag
// convention — and reports:
//
//   - addition, subtraction, or comparison of operands with different
//     dimensions (multiplication and division legitimately change
//     dimension and are exempt);
//   - assignment (including := and op=) across dimensions;
//   - conversion from one dimensioned type directly to another;
//   - a declaration whose unit-suffixed name contradicts its units type
//     (naming drift: `limit_W units.Current`);
//   - a bare non-zero numeric literal passed for a unit-named bare-numeric
//     parameter — route it through internal/units or a named constant so
//     the unit is checked or at least greppable.
//
// Dimensions are compared as base dimensions (watts, watt-hours, amps,
// volts, seconds, ampere-hours, hertz), so `cap_kW` vs `limit_MW` agree
// (both power) while `cap_kW` vs `budget_kWh` collide. Suppress a
// deliberate violation with //coordvet:ignore unitsafety <why>.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "flag cross-dimension unit arithmetic, conversions, naming drift, and bare literals into unit-named parameters",
	Run:  runUnitSafety,
}

// unitsPkgSuffix identifies the quantity package by import-path suffix, so
// fixtures shadowing the module resolve too.
const unitsPkgSuffix = "internal/units"

// unitsTypeDims maps internal/units type names to base dimensions.
var unitsTypeDims = map[string]string{
	"Power":    "W",
	"Energy":   "Wh",
	"Current":  "A",
	"Voltage":  "V",
	"Charge":   "Ah",
	"Fraction": "ratio",
}

// suffixDims maps lower-cased name suffixes (snake tail after the last
// underscore) to base dimensions.
var suffixDims = map[string]string{
	"a": "A", "ma": "A",
	"w": "W", "kw": "W", "mw": "W", "gw": "W",
	"v": "V", "mv": "V", "kv": "V",
	"s": "s", "ms": "s", "sec": "s",
	"wh": "Wh", "kwh": "Wh", "mwh": "Wh", "gwh": "Wh",
	"ah": "Ah", "mah": "Ah",
	"hz": "Hz", "mhz": "Hz",
}

// camelTails are the multi-character camel-case tails recognized on
// identifiers (`LimitMW`, `FullKWh`). Single capital letters are
// deliberately not matched — `optionA` is not a current — which is why the
// snake/tag spelling is the convention for one-letter units.
var camelTails = []string{"KWh", "MWh", "GWh", "Wh", "KW", "MW", "GW", "KV", "MV", "Ah", "Hz"}

// nameDim extracts the dimension a declared name carries by convention.
func nameDim(name string) string {
	if i := strings.LastIndexByte(name, '_'); i >= 0 {
		if d, ok := suffixDims[strings.ToLower(name[i+1:])]; ok {
			return d
		}
		return ""
	}
	for _, tail := range camelTails {
		if rest, ok := strings.CutSuffix(name, tail); ok && rest != "" {
			r := rest[len(rest)-1]
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
				return suffixDims[strings.ToLower(tail)]
			}
		}
	}
	return ""
}

// typeDim extracts the dimension a type carries: a units quantity, or
// time.Duration (seconds).
func typeDim(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch {
	case strings.HasSuffix(obj.Pkg().Path(), unitsPkgSuffix):
		return unitsTypeDims[obj.Name()]
	case obj.Pkg().Path() == "time" && obj.Name() == "Duration":
		return "s"
	}
	return ""
}

// isNumeric reports whether t's underlying type is an integer or float —
// the only types the naming convention can meaningfully dimension.
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

func runUnitSafety(p *Pass) {
	// Field dimensions from declarations: json-tag suffix first (the
	// repo's serialized structs carry the unit there), else the name.
	fieldDim := map[types.Object]string{}
	declCheck := func(name *ast.Ident, tag string) {
		obj := p.Pkg.Info.Defs[name]
		if obj == nil {
			return
		}
		nd := ""
		if tag != "" {
			nd = tagDim(tag)
		}
		if nd == "" {
			nd = nameDim(name.Name)
		}
		if nd == "" {
			return
		}
		td := typeDim(obj.Type())
		if td != "" && td != "ratio" && td != nd {
			p.Reportf(name.Pos(), "%s is named as %s but typed %s (%s); rename it or fix the type",
				name.Name, dimNoun(nd), obj.Type(), dimNoun(td))
			return
		}
		if td == "" && isNumeric(obj.Type()) {
			fieldDim[obj] = nd
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.StructType:
				for _, field := range d.Fields.List {
					tag := ""
					if field.Tag != nil {
						tag = field.Tag.Value
					}
					for _, name := range field.Names {
						declCheck(name, tag)
					}
				}
			case *ast.FuncType:
				for _, list := range []*ast.FieldList{d.Params, d.Results} {
					if list == nil {
						continue
					}
					for _, field := range list.List {
						for _, name := range field.Names {
							declCheck(name, "")
						}
					}
				}
			}
			return true
		})
	}

	dimOf := func(e ast.Expr) string {
		e = ast.Unparen(e)
		if tv, ok := p.Pkg.Info.Types[e]; ok {
			if d := typeDim(tv.Type); d != "" {
				return d
			}
			if !isNumeric(tv.Type) {
				return ""
			}
		}
		var id *ast.Ident
		switch x := e.(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			return ""
		}
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			if d, ok := fieldDim[obj]; ok {
				return d
			}
			if !isNumeric(obj.Type()) {
				return ""
			}
		}
		return nameDim(id.Name)
	}

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				switch x.Op {
				case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
					dx, dy := dimOf(x.X), dimOf(x.Y)
					if dx != "" && dy != "" && dx != dy {
						p.Reportf(x.OpPos, "%s mixes %s and %s; convert through internal/units first",
							x.Op, dimNoun(dx), dimNoun(dy))
					}
				}
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				switch x.Tok {
				case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
				default:
					return true
				}
				for i := range x.Lhs {
					dl := dimOf(x.Lhs[i])
					if dl == "" && x.Tok == token.DEFINE {
						if id, ok := x.Lhs[i].(*ast.Ident); ok {
							dl = nameDim(id.Name)
						}
					}
					dr := dimOf(x.Rhs[i])
					if dl != "" && dr != "" && dl != dr {
						p.Reportf(x.TokPos, "assigning %s to %s; convert through internal/units first",
							dimNoun(dr), dimNoun(dl))
					}
				}
			case *ast.CallExpr:
				if p.IsConversion(x) && len(x.Args) == 1 {
					tv := p.Pkg.Info.Types[x.Fun]
					dst := typeDim(tv.Type)
					argTV, ok := p.Pkg.Info.Types[ast.Unparen(x.Args[0])]
					if dst == "" || !ok {
						return true
					}
					src := typeDim(argTV.Type)
					if src != "" && dst != src {
						p.Reportf(x.Pos(), "conversion reinterprets %s as %s; go through float64 or a units helper (PowerOf, EnergyOver, ...) so the physics is explicit",
							dimNoun(src), dimNoun(dst))
					}
					return true
				}
				checkCallArgs(p, x, dimOf)
			}
			return true
		})
	}
}

// checkCallArgs checks argument dimensions against the callee's declared
// parameter names: cross-dimension passing, and bare numeric literals
// flowing into unit-named bare-numeric parameters.
func checkCallArgs(p *Pass, call *ast.CallExpr, dimOf func(ast.Expr) string) {
	fn := p.Callee(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		param := params.At(pi)
		pd := nameDim(param.Name())
		if pd == "" || typeDim(param.Type()) != "" || !isNumeric(param.Type()) {
			continue
		}
		if lit := bareLiteral(arg); lit != nil {
			if v, ok := p.Pkg.Info.Types[lit]; ok && v.Value != nil {
				if c := constant.ToFloat(v.Value); c.Kind() == constant.Float {
					if f, _ := constant.Float64Val(c); f == 0 {
						continue // zero is dimensionless enough
					}
				}
			}
			p.Reportf(arg.Pos(), "bare literal flows into parameter %s (%s) of %s; pass a named constant or convert through internal/units",
				param.Name(), dimNoun(pd), fn.Name())
			continue
		}
		if ad := dimOf(arg); ad != "" && ad != pd {
			p.Reportf(arg.Pos(), "argument is %s but parameter %s of %s is %s",
				dimNoun(ad), param.Name(), fn.Name(), dimNoun(pd))
		}
	}
}

// bareLiteral unwraps an argument to a numeric literal (allowing a sign),
// or nil.
func bareLiteral(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	if lit, ok := e.(*ast.BasicLit); ok && (lit.Kind == token.INT || lit.Kind == token.FLOAT) {
		return lit
	}
	return nil
}

// tagDim extracts a dimension from a struct tag's json name suffix
// (`json:"step_s"` → seconds).
func tagDim(tag string) string {
	tag = strings.Trim(tag, "`")
	_, rest, ok := strings.Cut(tag, `json:"`)
	if !ok {
		return ""
	}
	name, _, ok := strings.Cut(rest, `"`)
	if !ok {
		return ""
	}
	name, _, _ = strings.Cut(name, ",")
	if i := strings.LastIndexByte(name, '_'); i >= 0 {
		return suffixDims[strings.ToLower(name[i+1:])]
	}
	return ""
}

// dimNoun names a base dimension for humans.
func dimNoun(d string) string {
	switch d {
	case "W":
		return "a power (W)"
	case "Wh":
		return "an energy (Wh)"
	case "A":
		return "a current (A)"
	case "V":
		return "a voltage (V)"
	case "s":
		return "a time (s)"
	case "Ah":
		return "a charge (Ah)"
	case "Hz":
		return "a frequency (Hz)"
	case "ratio":
		return "a dimensionless ratio"
	}
	return d
}
