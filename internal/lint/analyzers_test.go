package lint

import (
	"strings"
	"testing"
)

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, "determinism", []*Analyzer{Determinism},
		"coordcharge/internal/simfix",
		"coordcharge/internal/obs",
		"coordcharge/cmd/reproduce",
		"coordcharge/toolfix",
	)
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, "maporder", []*Analyzer{MapOrder},
		"coordcharge/internal/mapfix",
		"coordcharge/internal/obs",
	)
}

func TestObsNilGolden(t *testing.T) {
	runGolden(t, "obsnil", []*Analyzer{ObsNil},
		"coordcharge/internal/obs",
		"coordcharge/internal/usefix",
	)
}

func TestLockDisciplineGolden(t *testing.T) {
	runGolden(t, "lockdiscipline", []*Analyzer{LockDiscipline},
		"coordcharge/internal/lockfix",
		"coordcharge/internal/lockext",
		"coordcharge/internal/lockuse",
	)
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, "errdrop", []*Analyzer{ErrDrop},
		"coordcharge/internal/errfix",
	)
}

// TestIgnoreSuppression covers the //coordvet:ignore contract end to end:
// a justified ignore silences exactly its finding, and a stale ignore is
// reported as a finding of its own (golden side), while malformed markers
// are asserted directly (they occupy their whole line, leaving no room for
// a want comment).
func TestIgnoreSuppression(t *testing.T) {
	diags := runGolden(t, "ignore", []*Analyzer{Determinism},
		"coordcharge/internal/ignfix",
	)
	// The fixture contains three time.Now violations; two are suppressed,
	// none may leak through as determinism findings.
	for _, d := range diags {
		if d.Analyzer == "determinism" {
			t.Errorf("suppressed finding leaked: %s", d)
		}
	}
}

func TestIgnoreMalformed(t *testing.T) {
	diags := runFixture(t, "ignore", []*Analyzer{Determinism},
		"coordcharge/internal/ignbad",
	)
	var sawReasonless, sawUnknown bool
	for _, d := range diags {
		if d.Analyzer != "ignore" {
			t.Errorf("unexpected non-ignore diagnostic: %s", d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "needs a justification"):
			sawReasonless = true
			if want := "ignbad.go:12"; mustPos(t, d) != want {
				t.Errorf("reasonless ignore reported at %s, want %s", mustPos(t, d), want)
			}
		case strings.Contains(d.Message, `unknown analyzer "nosuchanalyzer"`):
			sawUnknown = true
		default:
			t.Errorf("unexpected ignore diagnostic: %s", d)
		}
	}
	if !sawReasonless {
		t.Error("reasonless //coordvet:ignore was not reported")
	}
	if !sawUnknown {
		t.Error("unknown-analyzer //coordvet:ignore was not reported")
	}
}

// TestStaleIgnoreNotReportedOnPartialRun: an ignore naming an analyzer that
// did not run must not be called stale — a -run subset cannot know.
func TestStaleIgnoreNotReportedOnPartialRun(t *testing.T) {
	diags := runFixture(t, "ignore", []*Analyzer{ErrDrop},
		"coordcharge/internal/ignfix",
	)
	for _, d := range diags {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale ignore reported although determinism did not run: %s", d)
		}
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("determinism, errdrop")
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "errdrop" {
		t.Fatalf("ByName = %v, %v", got, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestLoadPatterns sanity-checks ./... expansion against the real module:
// the lint package itself must be found, testdata must not be.
func TestLoadPatterns(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./internal/lint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "coordcharge/internal/lint" {
		t.Fatalf("LoadPatterns(./internal/lint) = %v", pkgs)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("testdata package leaked into scan: %s", p.Path)
		}
	}
	if loader.ModPath != "coordcharge" {
		t.Errorf("unexpected module path %s (root %s)", loader.ModPath, loader.ModRoot)
	}
}
