package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineDiscipline enforces the repo's concurrency lifecycle contract in
// internal/ and cmd/: nothing may outlive its owner silently. The svc, obs,
// and par planes all spawn workers, and the campus sharding will spawn many
// more; a goroutine without a join is a leak under churn and a data race at
// shutdown, and a ticker or context without a reachable Stop/cancel pins
// timers and parents forever.
//
// Three checks:
//
//   - every `go` statement must have a provable join: the spawned body (a
//     func literal, or a same-module function/method the analyzer can
//     resolve) signals completion by calling (*sync.WaitGroup).Done,
//     sending on a channel, or closing one. A deliberately fire-and-forget
//     goroutine must say so where it is launched:
//
//     go srv.Serve(ln) //coordvet:detached lifecycle bounded by srv.Shutdown
//
//     The justification is mandatory; an annotation on a goroutine that
//     does have a provable join — or on a line with no `go` statement at
//     all — is stale and reported, so annotations cannot outlive the code.
//
//   - every time.NewTicker/NewTimer result must reach a Stop: a .Stop()
//     call (usually deferred) in the same function, or an escape (returned,
//     passed on, stored in a field) that hands the obligation to the owner
//     of the longer-lived value. A dropped result can never be stopped.
//
//   - every context.WithCancel/WithTimeout/WithDeadline cancel func must be
//     used: called, deferred, returned, passed, or stored. Assigning it to
//     `_` leaks the context's resources (go vet's lostcancel, kept here so
//     the whole discipline gates together and fixtures cover it).
//
// The join proof is syntactic, not a dataflow analysis: it asks "does the
// body contain a completion signal", not "is it always reached" — cheap,
// deterministic, and catches the real bug class (a worker nobody waits
// for). Calls the analyzer cannot resolve (function values, external
// packages) are unprovable and need the annotation.
var GoroutineDiscipline = &Analyzer{
	Name: "goroutinediscipline",
	Doc:  "every go statement needs a provable join or //coordvet:detached, every ticker a Stop, every context a cancel",
	Run:  runGoroutineDiscipline,
}

// DetachedMarker opens a fire-and-forget annotation on a go statement:
// //coordvet:detached <why>.
const DetachedMarker = "coordvet:detached"

// detachedFixText is the placeholder annotation -fix inserts after the go
// statement.
const detachedFixText = " //" + DetachedMarker + " TODO(coordvet): justify why nothing joins this goroutine"

type detachedAnnot struct {
	pos  token.Position
	tok  token.Pos
	why  string
	used bool
}

func runGoroutineDiscipline(p *Pass) {
	path := p.Pkg.Path
	if !strings.Contains(path, "/internal/") && !strings.Contains(path, "/cmd/") {
		return
	}

	// Parse every //coordvet:detached annotation in the package.
	var annots []*detachedAnnot
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Only a comment that *starts* with the marker is an
				// annotation; prose that mentions it (like this package's
				// docs) is not.
				if rest, ok := strings.CutPrefix(c.Text, "//"+DetachedMarker); ok {
					a := &detachedAnnot{pos: p.Prog.Fset.Position(c.Pos()), tok: c.Pos(), why: strings.TrimSpace(rest)}
					annots = append(annots, a)
					if a.why == "" {
						p.Reportf(c.Pos(), "//%s needs a justification after the marker", DetachedMarker)
					}
				}
			}
		}
	}
	// An annotation attaches to a go statement on its own line, the line
	// below, or whose last line it trails (so multi-line `go func(){...}()`
	// can carry it after the closing parenthesis).
	annotFor := func(g *ast.GoStmt) *detachedAnnot {
		pos := p.Prog.Fset.Position(g.Pos())
		end := p.Prog.Fset.Position(g.End())
		for _, a := range annots {
			if a.pos.Filename != pos.Filename {
				continue
			}
			if a.pos.Line == pos.Line || a.pos.Line == pos.Line-1 || a.pos.Line == end.Line {
				return a
			}
		}
		return nil
	}

	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.GoStmt:
					if a := annotFor(s); a != nil {
						a.used = true
						if joinEvidence(p, s) {
							p.Reportf(a.tok, "stale //%s: this goroutine has a provable join; drop the annotation", DetachedMarker)
						}
						return true
					}
					if !joinEvidence(p, s) {
						*p.diags = append(*p.diags, Diagnostic{
							Analyzer: p.Analyzer.Name,
							Pos:      p.Prog.Fset.Position(s.Pos()),
							Message: "goroutine has no provable join (WaitGroup Done, channel send, or close) and no //" +
								DetachedMarker + " annotation",
							Fix: &SuggestedFix{
								Message: "annotate the goroutine as deliberately detached",
								Edits:   []TextEdit{{Pos: s.End(), End: s.End(), NewText: detachedFixText}},
							},
						})
					}
				case *ast.CallExpr:
					checkTickerAndCancel(p, fd, s)
				}
				return true
			})
		}
	}

	for _, a := range annots {
		if !a.used {
			p.Reportf(a.tok, "stale //%s: no go statement on this or the adjacent line", DetachedMarker)
		}
	}
}

// joinEvidence reports whether the spawned body provably signals
// completion. Bodies it can see: func literals, and functions or methods
// whose declaration lives in a scanned package.
func joinEvidence(p *Pass, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return bodySignalsCompletion(p, lit.Body)
	}
	if fn := p.Callee(g.Call); fn != nil {
		if decl := findFuncDecl(p.Prog, fn); decl != nil && decl.Body != nil {
			return bodySignalsCompletion(p, decl.Body)
		}
	}
	return false
}

// bodySignalsCompletion scans a body (including nested closures, which
// covers `defer wg.Done()` wrappers) for a completion signal.
func bodySignalsCompletion(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					found = true
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// findFuncDecl locates the declaration of fn in any scanned package.
func findFuncDecl(prog *Program, fn *types.Func) *ast.FuncDecl {
	for _, pkg := range prog.Packages {
		if pkg.Types != fn.Pkg() {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == fn {
					return fd
				}
			}
		}
	}
	return nil
}

// checkTickerAndCancel handles the resource half of the discipline at each
// call site.
func checkTickerAndCancel(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() != "NewTicker" && fn.Name() != "NewTimer" {
			return
		}
		assign := enclosingAssign(fd, call)
		if assign == nil || len(assign.Lhs) != 1 {
			p.Reportf(call.Pos(), "time.%s result is dropped; nothing can ever Stop it", fn.Name())
			return
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			p.Reportf(call.Pos(), "time.%s result is discarded; nothing can ever Stop it", fn.Name())
			return
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if !stopReachable(p, fd, obj, call) {
			p.Reportf(call.Pos(), "time.%s result %s has no reachable Stop in %s and does not escape; defer %s.Stop()",
				fn.Name(), id.Name, fd.Name.Name, id.Name)
		}
	case "context":
		switch fn.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline":
		default:
			return
		}
		assign := enclosingAssign(fd, call)
		if assign == nil || len(assign.Lhs) != 2 {
			return // tuple used some other way; out of scope
		}
		id, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			p.Reportf(call.Pos(), "context.%s cancel func is discarded; the context can never be released", fn.Name())
			return
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj != nil && !referencedAgain(p, fd, obj, id) {
			p.Reportf(call.Pos(), "context.%s cancel func %s is never used; defer %s()", fn.Name(), id.Name, id.Name)
		}
	}
}

// enclosingAssign finds the assignment statement whose RHS is exactly this
// call, scanning the declaring function.
func enclosingAssign(fd *ast.FuncDecl, call *ast.CallExpr) *ast.AssignStmt {
	var out *ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if a, ok := n.(*ast.AssignStmt); ok && len(a.Rhs) == 1 && ast.Unparen(a.Rhs[0]) == call {
			out = a
			return false
		}
		return true
	})
	return out
}

// stopReachable reports whether the ticker/timer object reaches a Stop
// call or escapes the function (argument, return, send, or assignment into
// a longer-lived value).
func stopReachable(p *Pass, fd *ast.FuncDecl, obj types.Object, origin *ast.CallExpr) bool {
	if obj == nil {
		return false
	}
	refersTo := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.Pkg.Info.Uses[x] == obj || p.Pkg.Info.Defs[x] == obj
		case *ast.UnaryExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && x.Op == token.AND {
				return p.Pkg.Info.Uses[id] == obj
			}
		}
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if x == origin {
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" && refersTo(sel.X) {
				found = true
				return false
			}
			for _, arg := range x.Args {
				if refersTo(arg) {
					found = true // handed to someone; the obligation travels with it
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if refersTo(r) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if refersTo(x.Value) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel && i < len(x.Rhs) && refersTo(x.Rhs[i]) {
					found = true // stored in a field; the owner stops it
					return false
				}
			}
		}
		return true
	})
	return found
}

// referencedAgain reports whether obj is used anywhere beyond its defining
// identifier — for a cancel func, any use (call, defer, arg, return,
// store) discharges the obligation.
func referencedAgain(p *Pass, fd *ast.FuncDecl, obj types.Object, def *ast.Ident) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id != def && p.Pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
