package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full suite over the whole module and subtracts
// the committed baseline — the same gate CI uses (`go run ./cmd/coordvet
// -baseline coordvet_baseline.json ./...`): the tree must stay burned down,
// every contract violation fixed, explicitly annotated with a justification,
// or recorded in the ledger. A failure here is a new finding; run coordvet
// locally for positions. Retired ledger entries also fail, so the baseline
// can only ever shrink in step with the code.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("suspiciously few packages scanned: %d", len(pkgs))
	}
	diags := Run(loader.Program(pkgs), All())

	baseline, err := ReadBaseline(filepath.Join(loader.ModRoot, "coordvet_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, retired := baseline.Filter(loader.ModRoot, diags)
	for _, d := range fresh {
		t.Errorf("%s", d)
	}
	for _, e := range retired {
		t.Errorf("retired baseline entry (prune with -write-baseline): %s [%s] %s", e.File, e.Analyzer, e.Message)
	}
}
