package lint

import "testing"

// TestRepoIsClean runs the full suite over the whole module, the same
// invocation CI uses (`go run ./cmd/coordvet ./...`): the tree must stay
// burned down — every contract violation either fixed or explicitly
// suppressed with a justification. A failure here is a new finding; run
// coordvet locally for positions.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("suspiciously few packages scanned: %d", len(pkgs))
	}
	for _, d := range Run(loader.Program(pkgs), All()) {
		t.Errorf("%s", d)
	}
}
