// Package lint is coordvet's analysis framework: a stdlib-only static
// analysis driver (go/ast + go/types, no external modules) that enforces the
// repo's domain contracts — determinism of the control plane, flight-recorder
// ordering, nil-safe observability, mutex discipline, and error hygiene —
// before the code ever runs. The runtime tests (digest determinism, chaos,
// storm acceptance) catch these bug classes after the fact; coordvet rejects
// them at review time with a position and a reason.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature (Analyzer/Pass/Diagnostic, `// want` golden fixtures,
// `//coordvet:ignore` suppressions) so the analyzers would port to the real
// driver if the zero-dependency constraint is ever lifted.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //coordvet:ignore comments.
	Name string
	// Doc is a short description of the contract the analyzer enforces.
	Doc string
	// Run executes the check over pass.Pkg.
	Run func(*Pass)
}

// All lists every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, ObsNil, LockDiscipline, ErrDrop,
		CkptParity, UnitSafety, GoroutineDiscipline}
}

// ByName resolves a comma-separated analyzer list ("determinism,errdrop").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// TextEdit is one span replacement in a source file: the bytes in
// [Pos, End) are replaced by NewText. Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is an optional machine-applicable remedy attached to a
// diagnostic. The driver's -fix mode applies the edits; fixes are only
// offered where the edit is safe to apply blindly — today that means
// inserting a `TODO(coordvet)`-justified //coordvet:transient or
// //coordvet:detached annotation. The placeholder justification is valid
// (the finding is silenced) but deliberately grep-able, so review can hold
// the line on replacing it with a real reason.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fix, when non-nil, is a machine-applicable remedy (see -fix).
	Fix *SuggestedFix
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package plus the whole-program
// context (cross-package guarded-field annotations).
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Callee resolves the *types.Func a call expression invokes (static calls
// and method calls; nil for calls through function values, conversions, and
// builtins).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// IsConversion reports whether the call is a type conversion, not a
// function call.
func (p *Pass) IsConversion(call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// Package is one parsed, type-checked package.
type Package struct {
	// Path is the import path ("coordcharge/internal/obs").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// GuardInfo is one `// guarded by <mutex>` field annotation.
type GuardInfo struct {
	// Mutex names the sibling field whose Lock must be held.
	Mutex string
	// Struct is the declaring type's name, for diagnostics.
	Struct string
	// PkgPath is the declaring package.
	PkgPath string
}

// Program is the full set of packages under analysis plus cross-package
// state the analyzers share.
type Program struct {
	Fset *token.FileSet
	// Packages is the scanned set, sorted by import path. Dependency
	// packages that were loaded only for type information are not listed.
	Packages []*Package
	// Guarded maps an annotated struct field object to its annotation.
	// Populated from every loaded package (scanned or dependency) so
	// cross-package accesses to annotated fields are visible.
	Guarded map[types.Object]GuardInfo
}

// Run executes the analyzers over every scanned package, applies
// //coordvet:ignore suppressions, and appends a finding for every stale or
// malformed ignore. Diagnostics come back sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags})
		}
	}
	diags = applyIgnores(prog, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
