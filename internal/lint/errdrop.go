package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop forbids silently discarded errors in internal/ packages: an
// assignment whose left-hand side is entirely blank (`_ = f()`,
// `_, _ = g()`) that throws away an error value must carry an adjacent
// justification comment (same line or the line above). In a control plane
// where a dropped error means a lost override or an unjournaled decision,
// "ignored on purpose" has to be visible in the source.
//
// Multi-value assignments that keep at least one result (`v, _ := f()`)
// are a visible, deliberate choice and are not flagged.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "blank-assigning an error in internal/ requires an adjacent justification comment",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	if !strings.Contains(p.Pkg.Path, "/internal/") {
		return
	}
	for _, f := range p.Pkg.Files {
		commented := commentLines(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || !allBlank(as.Lhs) {
				return true
			}
			if !dropsError(p, as) {
				return true
			}
			line := p.Prog.Fset.Position(as.Pos()).Line
			if commented[line] || commented[line-1] {
				return true
			}
			p.Reportf(as.Pos(), "error discarded with a blank assignment and no justification; add an adjacent comment saying why it is safe to ignore")
			return true
		})
	}
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

// dropsError reports whether any value the assignment discards is an error.
func dropsError(p *Pass, as *ast.AssignStmt) bool {
	isErr := func(t types.Type) bool {
		return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value call: inspect the tuple.
		if tv, ok := p.Pkg.Info.Types[as.Rhs[0]]; ok {
			if tuple, ok := tv.Type.(*types.Tuple); ok {
				for i := 0; i < tuple.Len(); i++ {
					if isErr(tuple.At(i).Type()) {
						return true
					}
				}
			}
			return isErr(tv.Type)
		}
		return false
	}
	for _, rhs := range as.Rhs {
		if isErr(p.Pkg.Info.TypeOf(rhs)) {
			return true
		}
	}
	return false
}

// commentLines records the lines carrying a justification-capable comment:
// any comment except coordvet markers and golden-test `want` expectations
// (which must not double as justifications in fixtures).
func commentLines(p *Pass, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if strings.HasPrefix(text, "want ") || strings.HasPrefix(text, IgnoreMarker) {
				continue
			}
			start := p.Prog.Fset.Position(c.Pos()).Line
			end := p.Prog.Fset.Position(c.End()).Line
			for line := start; line <= end; line++ {
				out[line] = true
			}
		}
	}
	return out
}
