package core

import (
	"testing"

	"coordcharge/internal/rack"
	"coordcharge/internal/units"
)

func benchRacks(n int) []RackInfo {
	out := make([]RackInfo, n)
	for i := range out {
		out[i] = RackInfo{
			ID:       i,
			Priority: rack.Priority(1 + i%3),
			DOD:      units.Fraction(5+(i*13)%91) / 100,
		}
	}
	return out
}

// The production MSB population: one full Algorithm 1 planning pass.
func BenchmarkPlanPriorityAware316(b *testing.B) {
	cfg := DefaultConfig()
	racks := benchRacks(316)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PlanPriorityAware(200*units.Kilowatt, racks, cfg)
	}
}

func BenchmarkPlanGlobal316(b *testing.B) {
	cfg := DefaultConfig()
	racks := benchRacks(316)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PlanGlobal(200*units.Kilowatt, racks, cfg)
	}
}

func BenchmarkThrottleToMinimum316(b *testing.B) {
	cfg := DefaultConfig()
	active := make([]ActiveCharge, 316)
	for i := range active {
		active[i] = ActiveCharge{RackInfo: benchRacks(316)[i], Current: 3}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ThrottleToMinimum(50*units.Kilowatt, active, cfg)
	}
}

func BenchmarkSLACurrent(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		_, _ = cfg.SLACurrent(rack.Priority(1+i%3), units.Fraction(i%101)/100)
	}
}
